package gupt

// Noisy-answer cache for the embedded platform: a repeat of a previously
// released query is re-served the same already-published answer at zero
// additional ε (differential privacy is closed under post-processing).
// Caching is opt-in for the embedded API — EnableCache — because embedded
// callers often replay identical seeded queries precisely to observe fresh
// draws; the hosted server (cmd/guptd) enables it by default instead.
//
// The fingerprint must be exact: only queries whose every
// distribution-relevant component can be hashed canonically are cached.
// Programs are fingerprinted by a type switch over the platform's builtin
// value-struct programs; custom Program implementations, Func closures,
// Translate functions and custom Chambers make a query uncachable — the
// hash cannot see inside a closure, and a wrong "identical" here would
// re-serve an answer from a different distribution. Uncachable queries
// simply run normally every time.

import (
	"fmt"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/qcache"
)

// EnableCache turns on the noisy-answer cache with the given capacity:
// repeat queries (and repeat sessions) whose fingerprint matches a
// previously released answer are served that same answer with no budget
// charge. ttl expires entries for memory reclamation (0 keeps them until
// evicted); correctness never depends on it, because the dataset content
// version inside every fingerprint already makes stale answers
// unreachable. maxEntries <= 0 disables caching again.
func (p *Platform) EnableCache(maxEntries int, ttl time.Duration) {
	p.cache = qcache.New(qcache.Config{MaxEntries: maxEntries, TTL: ttl})
}

// CacheStats snapshots the cache counters; all zeros when disabled.
func (p *Platform) CacheStats() qcache.Stats { return p.cache.Stats() }

// InvalidateCache drops every cached answer for the named dataset,
// returning the count. Mutation paths call this after bumping the
// dataset's content version; the bump alone already guarantees a mutated
// dataset can never serve a stale answer.
func (p *Platform) InvalidateCache(name string) int { return p.cache.Invalidate(name) }

// hashProgram writes a program's canonical identity, or reports that the
// program cannot be fingerprinted (closures, custom implementations).
// Every case writes a distinct type tag before its fields so two programs
// of different types can never alias even with identical field bytes.
func hashProgram(h *qcache.Hasher, prog Program) bool {
	switch pr := prog.(type) {
	case analytics.Mean:
		h.Str("mean")
		h.Int(pr.Col)
	case analytics.Median:
		h.Str("median")
		h.Int(pr.Col)
	case analytics.Variance:
		h.Str("variance")
		h.Int(pr.Col)
	case analytics.Percentile:
		h.Str("percentile")
		h.Int(pr.Col)
		h.F64(pr.P)
	case analytics.Covariance:
		h.Str("covariance")
		h.Int(pr.ColA)
		h.Int(pr.ColB)
	case analytics.Histogram:
		h.Str("histogram")
		h.Int(pr.Col)
		h.F64(pr.Lo)
		h.F64(pr.Hi)
		h.Int(pr.Bins)
	case analytics.KMeans:
		h.Str("kmeans")
		h.Int(pr.K)
		h.Int(pr.FeatureDims)
		h.Int(pr.Iters)
		h.I64(pr.Seed)
	case analytics.LogisticRegression:
		h.Str("logreg")
		h.Int(pr.FeatureDims)
		h.Int(pr.LabelCol)
		h.Int(pr.Iters)
		h.F64(pr.LearnRate)
		h.F64(pr.L2)
		h.F64(pr.L1)
	case analytics.LinearRegression:
		h.Str("linreg")
		h.Int(pr.FeatureDims)
		h.Int(pr.TargetCol)
		h.F64(pr.Ridge)
	case analytics.NaiveBayes:
		h.Str("naivebayes")
		h.Int(pr.FeatureDims)
		h.Int(pr.LabelCol)
	case analytics.Pad:
		h.Str("pad")
		h.Int(pr.Dims)
		h.F64(pr.Fill)
		return hashProgram(h, pr.Inner)
	default:
		return false
	}
	return true
}

// hashRangeList writes a count-prefixed range list.
func hashRangeList(h *qcache.Hasher, rs []Range) {
	h.Int(len(rs))
	for _, r := range rs {
		h.F64(r.Lo)
		h.F64(r.Hi)
	}
}

// hashQueryBody writes the per-query fields shared by standalone queries
// and session members (everything except dataset/content version/budget,
// which the caller hashes once). Reports false if the query is uncachable.
func hashQueryBody(h *qcache.Hasher, q *Query) bool {
	if q.Translate != nil || q.Chambers != nil {
		return false // closures cannot be fingerprinted
	}
	if !hashProgram(h, q.Program) {
		return false
	}
	h.Int(int(q.Mode))
	hashRangeList(h, q.OutputRanges)
	hashRangeList(h, q.InputRanges)
	h.F64(q.PercentileLow)
	h.F64(q.PercentileHigh)
	h.F64(q.Epsilon)
	if q.Accuracy != nil {
		h.Bool(true)
		h.F64(q.Accuracy.Rho)
		h.F64(q.Accuracy.Confidence)
	} else {
		h.Bool(false)
	}
	h.Int(q.BlockSize)
	h.Bool(q.AutoBlockSize)
	h.Int(q.Gamma)
	h.I64(q.Seed)
	h.I64(int64(q.Quantum))
	h.I64(int64(q.BlockTimeout))
	h.F64(q.MaxFailFrac)
	h.Bool(q.UserLevel)
	h.Int(q.UserColumn)
	return true
}

// queryFingerprint computes the cache key for a standalone query at the
// given dataset content version; ok is false when the query is uncachable
// or caching is disabled.
func (p *Platform) queryFingerprint(q *Query, contentVersion uint64) (qcache.Fingerprint, bool) {
	if p.cache == nil {
		return qcache.Fingerprint{}, false
	}
	h := qcache.NewHasher()
	h.Str("gupt-query-v1")
	h.Str(q.Dataset)
	h.U64(contentVersion)
	if !hashQueryBody(h, q) {
		return qcache.Fingerprint{}, false
	}
	return h.Sum(), true
}

// sessionFingerprint computes the cache key for a whole session: its ε is
// distributed and charged atomically, so the batch re-releases (or not) as
// one unit.
func (p *Platform) sessionFingerprint(s *Session, contentVersion uint64) (qcache.Fingerprint, bool) {
	if p.cache == nil {
		return qcache.Fingerprint{}, false
	}
	h := qcache.NewHasher()
	h.Str("gupt-session-v1")
	h.Str(s.dataset)
	h.U64(contentVersion)
	h.F64(s.budget)
	h.Int(len(s.queries))
	for i := range s.queries {
		if !hashQueryBody(h, &s.queries[i]) {
			return qcache.Fingerprint{}, false
		}
	}
	return h.Sum(), true
}

// resultCacheSize approximates a cached result's footprint for the bytes
// gauge.
func resultCacheSize(res *Result) int64 {
	return 128 + int64(8*len(res.Output)) + int64(16*len(res.EffectiveRanges))
}

// cacheHitResult returns a caller-owned copy of a cached result with the
// hit flag set, after journaling the ε=0 re-release against the dataset's
// ledger (cache_hit record; the accountant is never touched).
func (p *Platform) cacheHitResult(dataset, label string, cached Result) (*Result, error) {
	if err := p.mgr.CacheHit(dataset, label); err != nil {
		return nil, fmt.Errorf("gupt: recording cache hit: %w", err)
	}
	res := cached
	res.CacheHit = true
	return &res, nil
}
