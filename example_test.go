package gupt_test

import (
	"context"
	"fmt"

	"gupt"
	"gupt/internal/mathutil"
)

// syntheticAges builds a deterministic single-column dataset for the
// examples.
func syntheticAges(n int) [][]float64 {
	rng := mathutil.NewRNG(7)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	return rows
}

// The basic flow: register a dataset with a lifetime privacy budget, run a
// black-box query at an explicit ε.
func Example() {
	p := gupt.New()
	if err := p.Register("ages", syntheticAges(10000), []string{"age"}, gupt.DatasetOptions{
		TotalBudget: 10,
		Ranges:      []gupt.Range{{Lo: 0, Hi: 150}},
	}); err != nil {
		panic(err)
	}
	res, err := p.Run(context.Background(), gupt.Query{
		Dataset:      "ages",
		Program:      gupt.Mean{Col: 0},
		OutputRanges: []gupt.Range{{Lo: 0, Hi: 150}},
		Epsilon:      2,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean within the public range: %v\n", res.Output[0] >= 0 && res.Output[0] <= 150)
	fmt.Printf("epsilon spent: %v\n", res.EpsilonSpent)
	// Output:
	// mean within the public range: true
	// epsilon spent: 2
}

// Accuracy goals instead of ε: GUPT estimates the cheapest budget that
// delivers the requested utility from the dataset's aged sample (§5.1).
func ExamplePlatform_EstimateEpsilon() {
	p := gupt.New()
	if err := p.Register("ages", syntheticAges(20000), []string{"age"}, gupt.DatasetOptions{
		TotalBudget:  10,
		Ranges:       []gupt.Range{{Lo: 0, Hi: 150}},
		AgedFraction: 0.1,
		Seed:         3,
	}); err != nil {
		panic(err)
	}
	eps, err := p.EstimateEpsilon("ages", gupt.Mean{Col: 0}, 60,
		[]gupt.Range{{Lo: 0, Hi: 150}}, gupt.AccuracyGoal{Rho: 0.9, Confidence: 0.9})
	if err != nil {
		panic(err)
	}
	fmt.Printf("goal translates to a positive epsilon: %v\n", eps > 0)
	// Estimating costs nothing.
	rem, _ := p.RemainingBudget("ages")
	fmt.Printf("budget untouched: %v\n", rem == 10)
	// Output:
	// goal translates to a positive epsilon: true
	// budget untouched: true
}

// Sessions split one budget across several queries in proportion to their
// noise scales (§5.2), so a wide-range query is not drowned out.
func ExampleSession() {
	p := gupt.New()
	if err := p.Register("ages", syntheticAges(10000), []string{"age"}, gupt.DatasetOptions{
		TotalBudget: 10,
	}); err != nil {
		panic(err)
	}
	s := p.NewSession("ages", 2)
	_ = s.Add(gupt.Query{Program: gupt.Mean{Col: 0}, OutputRanges: []gupt.Range{{Lo: 0, Hi: 150}}})
	_ = s.Add(gupt.Query{Program: gupt.Variance{Col: 0}, OutputRanges: []gupt.Range{{Lo: 0, Hi: 5625}}})
	alloc, err := s.Plan()
	if err != nil {
		panic(err)
	}
	fmt.Printf("variance query gets the larger share: %v\n", alloc[1] > alloc[0])
	fmt.Printf("allocations sum to the session budget: %v\n", alloc[0]+alloc[1] > 1.999 && alloc[0]+alloc[1] < 2.001)
	// Output:
	// variance query gets the larger share: true
	// allocations sum to the session budget: true
}
