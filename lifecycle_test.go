package gupt

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestPlatformLifecycle walks the full life of a dataset on the platform,
// end to end: registration, DP synthesis of an aged sample, accuracy-goal
// queries with automatic block-size tuning, a budget-distributed session,
// budget exhaustion, and retirement.
func TestPlatformLifecycle(t *testing.T) {
	ctx := context.Background()
	p := New()

	// 1. The data owner registers a dataset with a lifetime budget and
	// public attribute bounds — no aged data yet.
	if err := p.Register("census", censusRows(1, 8000), []string{"age"}, DatasetOptions{
		TotalBudget: 8,
		Ranges:      []Range{{Lo: 0, Hi: 150}},
	}); err != nil {
		t.Fatal(err)
	}

	// 2. Bootstrap the aging model: spend a small slice of budget on a DP
	// sketch and install synthetic aged data (§3.3).
	if err := p.SynthesizeAgedSample("census", 0.5, 0, 0, 2); err != nil {
		t.Fatal(err)
	}

	// 3. An analyst runs an accuracy-goal query — ε chosen by the platform
	// from the (synthetic) aged sample (§5.1).
	res, err := p.Run(ctx, Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Accuracy:     &AccuracyGoal{Rho: 0.9, Confidence: 0.9},
		BlockSize:    25,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-40)/40 > 0.15 {
		t.Errorf("accuracy-goal output = %v", res.Output[0])
	}
	goalEps := res.EpsilonSpent

	// 4. Another analyst runs an auto-tuned explicit-ε query (§4.3).
	res, err = p.Run(ctx, Query{
		Dataset:       "census",
		Program:       Mean{Col: 0},
		OutputRanges:  []Range{{Lo: 0, Hi: 150}},
		Epsilon:       1,
		AutoBlockSize: true,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockSize >= DefaultBlockSize(8000) {
		t.Errorf("auto-tuned block size %d not below default", res.BlockSize)
	}

	// 5. A session splits one budget across heterogeneous queries (§5.2).
	s := p.NewSession("census", 2)
	_ = s.Add(Query{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 150}}, Seed: 5})
	_ = s.Add(Query{Program: Variance{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 5625}}, Seed: 6})
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}

	// 6. The ledger adds up exactly.
	rem, err := p.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	wantRemaining := 8 - 0.5 - goalEps - 1 - 2
	if math.Abs(rem-wantRemaining) > 1e-9 {
		t.Errorf("remaining = %v, want %v", rem, wantRemaining)
	}

	// 7. Draining the rest hits the wall atomically.
	if rem > 0 {
		if _, err := p.Run(ctx, Query{
			Dataset:      "census",
			Program:      Mean{Col: 0},
			OutputRanges: []Range{{Lo: 0, Hi: 150}},
			Epsilon:      rem + 0.1,
		}); !errors.Is(err, ErrBudgetExhausted) {
			t.Errorf("over-budget err = %v", err)
		}
	}

	// 8. Retirement.
	if err := p.Unregister("census"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RemainingBudget("census"); err == nil {
		t.Error("retired dataset still answers")
	}
}
