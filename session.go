package gupt

import (
	"context"
	"errors"
	"fmt"

	"gupt/internal/budget"
	"gupt/internal/core"
	"gupt/internal/qcache"
)

// Session plans a batch of queries against one dataset under a single
// session budget, distributing ε across them automatically in proportion to
// their noise scales (paper §5.2). This is the executable form of
// Example 4: the platform, not the analyst, decides how much of the budget
// each query needs so that every query suffers comparable noise.
//
// Usage:
//
//	s := platform.NewSession("census", 2.0)
//	s.Add(gupt.Query{Program: gupt.Mean{Col: 0}, OutputRanges: ...})
//	s.Add(gupt.Query{Program: gupt.Variance{Col: 0}, OutputRanges: ...})
//	results, err := s.Run(ctx)
//
// Queries added to a session must use Tight or Loose mode (the noise-scale
// weight ζ is computed from their output ranges) and must not set their own
// Epsilon or Accuracy — the session owns the budget.
type Session struct {
	platform *Platform
	dataset  string
	budget   float64
	queries  []Query
}

// NewSession starts a session holding totalEpsilon for the named dataset.
// The budget is not charged until Run.
func (p *Platform) NewSession(dataset string, totalEpsilon float64) *Session {
	return &Session{platform: p, dataset: dataset, budget: totalEpsilon}
}

// Add appends a query to the session plan. The query's Dataset, Epsilon and
// Accuracy fields must be unset; everything else (mode, ranges, block size,
// resampling, seed) is per-query.
func (s *Session) Add(q Query) error {
	if q.Dataset != "" && q.Dataset != s.dataset {
		return fmt.Errorf("gupt: session is bound to %q, query names %q", s.dataset, q.Dataset)
	}
	if q.Epsilon != 0 || q.Accuracy != nil {
		return errors.New("gupt: session queries must not set Epsilon or Accuracy; the session distributes its own budget")
	}
	if q.Program == nil {
		return errors.New("gupt: session query needs a program")
	}
	if q.Mode != Tight && q.Mode != Loose {
		return errors.New("gupt: session queries need output ranges (Tight or Loose mode)")
	}
	if len(q.OutputRanges) != q.Program.OutputDims() {
		return fmt.Errorf("gupt: query has %d output ranges for %d output dims",
			len(q.OutputRanges), q.Program.OutputDims())
	}
	q.Dataset = s.dataset
	s.queries = append(s.queries, q)
	return nil
}

// Plan returns the per-query ε allocation the session would charge, without
// charging it. Allocations are proportional to each query's noise scale
// ζ = Σ outputWidth · β / n.
func (s *Session) Plan() ([]float64, error) {
	if len(s.queries) == 0 {
		return nil, errors.New("gupt: empty session")
	}
	reg, err := s.platform.reg.Lookup(s.dataset)
	if err != nil {
		return nil, err
	}
	n := reg.Private.NumRows()
	zetas := make([]float64, len(s.queries))
	for i, q := range s.queries {
		beta := q.BlockSize
		if beta == 0 {
			beta = core.DefaultBlockSize(n)
		}
		z, err := budget.Zeta(q.OutputRanges, beta, n)
		if err != nil {
			return nil, fmt.Errorf("gupt: session query %d: %w", i, err)
		}
		zetas[i] = z
	}
	return budget.Distribute(s.budget, zetas)
}

// Run charges the session budget (atomically: all-or-nothing against the
// dataset's lifetime ledger) and executes every query at its allocated ε,
// returning results in Add order.
//
// Failures degrade gracefully: once the charge has settled, a query that
// fails mid-session leaves a nil slot in the results and the remaining
// queries still run — aborting would waste the survivors' budget, and
// refunding any of it would reopen the §6.2 privacy-budget attack. The
// returned error joins every per-query failure (nil when all succeeded);
// the session's full budget is consumed either way.
func (s *Session) Run(ctx context.Context) ([]*Result, error) {
	alloc, err := s.Plan()
	if err != nil {
		return nil, err
	}
	label := fmt.Sprintf("session:%s:%d-queries", s.dataset, len(s.queries))

	// Noisy-answer cache: the session's ε is charged atomically, so the
	// batch caches (and re-releases) as one unit. A hit re-serves every
	// member's published answer and charges nothing.
	var fp qcache.Fingerprint
	cachable := false
	if reg, err := s.platform.reg.Lookup(s.dataset); err == nil {
		fp, cachable = s.platform.sessionFingerprint(s, reg.ContentVersion())
	}
	if cachable {
		if v, ok := s.platform.cache.Get(fp); ok {
			cached := v.([]Result)
			if err := s.platform.mgr.CacheHit(s.dataset, label); err != nil {
				return nil, fmt.Errorf("gupt: recording cache hit: %w", err)
			}
			out := make([]*Result, len(cached))
			for i := range cached {
				r := cached[i]
				r.CacheHit = true
				out[i] = &r
			}
			return out, nil
		}
	}

	// One atomic charge for the whole session; per-query epsilons then flow
	// from the session's own pot, so a mid-session failure cannot leave the
	// ledger inconsistent with what was released.
	if err := s.platform.mgr.Charge(s.dataset, label, s.budget); err != nil {
		return nil, err
	}

	results := make([]*Result, len(s.queries))
	var errs []error
	for i, q := range s.queries {
		q.Epsilon = alloc[i]
		reg, err := s.platform.reg.Lookup(s.dataset)
		if err != nil {
			errs = append(errs, fmt.Errorf("gupt: session query %d: %w", i, err))
			continue
		}
		spec := core.RangeSpec{Mode: q.Mode, Output: q.OutputRanges}
		res, err := core.Run(ctx, q.Program, reg.Private.Rows(), spec, core.Options{
			Epsilon:      q.Epsilon,
			BlockSize:    q.BlockSize,
			Gamma:        q.Gamma,
			Seed:         q.Seed,
			Quantum:      q.Quantum,
			BlockTimeout: q.BlockTimeout,
			MaxFailFrac:  q.MaxFailFrac,
			NewChamber:   q.Chambers,
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("gupt: session query %d (%s): %w", i, q.Program.Name(), err))
			continue
		}
		results[i] = res
	}
	// Fill only when every member released cleanly, same stance as
	// standalone queries: re-serving a partially failed batch would pin its
	// failures.
	if cachable && len(errs) == 0 {
		clean := true
		for _, r := range results {
			if r == nil || r.FailedBlocks > 0 {
				clean = false
				break
			}
		}
		if clean {
			stored := make([]Result, len(results))
			var size int64
			for i, r := range results {
				stored[i] = *r
				size += resultCacheSize(r)
			}
			s.platform.cache.Put(fp, s.dataset, stored, size)
		}
	}
	return results, errors.Join(errs...)
}
