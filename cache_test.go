package gupt

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"gupt/internal/mathutil"
)

func seededMeanQuery(seed int64) Query {
	return Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Epsilon:      1,
		Seed:         seed,
	}
}

// TestCacheRepeatQueryZeroEpsilon is the tentpole contract end to end on
// the embedded API: a byte-identical repeat of a released query is served
// the same answer, flagged as a cache hit, and charges nothing.
func TestCacheRepeatQueryZeroEpsilon(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	p.EnableCache(16, 0)
	ctx := context.Background()

	first, err := p.Run(ctx, seededMeanQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("cold query flagged as cache hit")
	}
	remAfterFirst, _ := p.RemainingBudget("census")

	second, err := p.Run(ctx, seededMeanQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repeat query missed the cache")
	}
	if second.Output[0] != first.Output[0] {
		t.Errorf("cache re-released a different answer: %v vs %v", second.Output[0], first.Output[0])
	}
	rem, _ := p.RemainingBudget("census")
	if rem != remAfterFirst {
		t.Errorf("cache hit charged budget: %v -> %v", remAfterFirst, rem)
	}
	st := p.CacheStats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}

	// A different seed is a different released distribution: miss.
	third, err := p.Run(ctx, seededMeanQuery(4))
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("different seed hit the cache")
	}
	rem2, _ := p.RemainingBudget("census")
	if math.Abs(rem2-(rem-1)) > 1e-9 {
		t.Errorf("fresh query charged %v, want 1", rem-rem2)
	}
}

// TestCacheOffByDefault: embedded callers often replay seeded queries to
// observe fresh draws, so caching must be strictly opt-in.
func TestCacheOffByDefault(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	ctx := context.Background()
	if _, err := p.Run(ctx, seededMeanQuery(3)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ctx, seededMeanQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("cache hit without EnableCache")
	}
	rem, _ := p.RemainingBudget("census")
	if math.Abs(rem-8) > 1e-9 {
		t.Errorf("remaining = %v, want 8 (both runs charged)", rem)
	}
}

// TestCacheUncachableClosures: programs the fingerprint cannot see inside
// (custom Program implementations, closures) must never be cached — an
// aliased fingerprint could re-serve an answer from a different
// distribution. They run normally, charging every time.
func TestCacheUncachableClosures(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	p.EnableCache(16, 0)
	ctx := context.Background()
	over60 := ProgramFunc{ProgName: "over60", Dims: 1, F: func(block []mathutil.Vec) (mathutil.Vec, error) {
		count := 0
		for _, r := range block {
			if r[0] > 60 {
				count++
			}
		}
		return mathutil.Vec{float64(count) / float64(len(block))}, nil
	}}
	q := Query{
		Dataset:      "census",
		Program:      over60,
		OutputRanges: []Range{{Lo: 0, Hi: 1}},
		Epsilon:      1,
		Seed:         3,
	}
	for i := 0; i < 2; i++ {
		res, err := p.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatalf("run %d: custom program was cached", i)
		}
	}
	rem, _ := p.RemainingBudget("census")
	if math.Abs(rem-8) > 1e-9 {
		t.Errorf("remaining = %v, want 8", rem)
	}
	if st := p.CacheStats(); st.Entries != 0 {
		t.Errorf("uncachable query filled the cache: %+v", st)
	}
}

// TestCacheInvalidatedByMutation: synthesizing an aged sample mutates the
// dataset's queryable state, so a post-mutation repeat must be a fresh
// draw, not the pre-mutation answer.
func TestCacheInvalidatedByMutation(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	p.EnableCache(16, 0)
	ctx := context.Background()

	if _, err := p.Run(ctx, seededMeanQuery(3)); err != nil {
		t.Fatal(err)
	}
	if err := p.SynthesizeAgedSample("census", 0.5, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Entries != 0 {
		t.Errorf("mutation left %d cached entries", st.Entries)
	}
	res, err := p.Run(ctx, seededMeanQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("post-mutation repeat served the pre-mutation answer")
	}
}

// TestCacheSessionRepeat: a session's budget is charged atomically, so the
// whole batch caches as one unit and a repeat re-serves every member.
func TestCacheSessionRepeat(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	p.EnableCache(16, 0)
	ctx := context.Background()

	buildSession := func() *Session {
		s := p.NewSession("census", 2)
		for _, q := range []Query{
			{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 150}}, Seed: 5},
			{Program: Variance{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 5000}}, Seed: 6},
		} {
			if err := s.Add(q); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}

	first, err := buildSession().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	remAfterFirst, _ := p.RemainingBudget("census")

	second, err := buildSession().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].CacheHit {
			t.Fatalf("member %d missed the cache", i)
		}
		if second[i].Output[0] != first[i].Output[0] {
			t.Errorf("member %d re-released a different answer", i)
		}
	}
	rem, _ := p.RemainingBudget("census")
	if rem != remAfterFirst {
		t.Errorf("session cache hit charged budget: %v -> %v", remAfterFirst, rem)
	}
}

// TestCacheInvalidationRace drives concurrent repeat queries against
// concurrent dataset mutations under -race. The content version inside
// every fingerprint makes a stale serve structurally impossible; this test
// pins the absence of data races on the version/cache/ledger paths and
// that the system stays coherent throughout.
func TestCacheInvalidationRace(t *testing.T) {
	p := newCensusPlatform(t, 1000, 0)
	p.EnableCache(64, time.Minute)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				// Two workers per seed so repeats contend with mutations.
				if _, err := p.Run(ctx, seededMeanQuery(int64(g%2))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := p.SynthesizeAgedSample("census", 0.1, 0, 0, int64(i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles, one more repeat pair must behave: first run
	// fills, second hits.
	if _, err := p.Run(ctx, seededMeanQuery(99)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ctx, seededMeanQuery(99))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("post-race repeat missed the cache")
	}
}
