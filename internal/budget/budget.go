// Package budget implements GUPT's privacy budget management (paper §5):
// automatic distribution of a total budget across queries in proportion to
// their noise scales (§5.2, Example 4), and a manager that charges each
// dataset's platform-owned accountant — the defense against privacy-budget
// attacks (§6.2), since analyst code never holds the ledger.
package budget

import (
	"errors"
	"fmt"
	"math"

	"gupt/internal/aging"
	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/telemetry"
)

// Distribute splits a total privacy budget across m queries in proportion
// to their noise scales ζ_i: ε_i = ζ_i/Σζ · ε (paper §5.2). With this
// allocation every query's Laplace noise has the same standard deviation,
// instead of queries with wide output ranges drowning in noise (the
// average-vs-variance example: ζ ratio 1:max equalizes their errors).
//
// ζ_i is the numerator of query i's Laplace scale — for a
// sample-and-aggregate query, outputRange_i · β_i / n_i.
func Distribute(total float64, zetas []float64) ([]float64, error) {
	if !(total > 0) || math.IsInf(total, 0) || math.IsNaN(total) {
		return nil, fmt.Errorf("%w: total %v", dp.ErrInvalidEpsilon, total)
	}
	if len(zetas) == 0 {
		return nil, errors.New("budget: no queries to distribute across")
	}
	var sum float64
	for i, z := range zetas {
		if !(z > 0) || math.IsInf(z, 0) || math.IsNaN(z) {
			return nil, fmt.Errorf("budget: noise scale %d must be positive and finite, got %v", i, z)
		}
		sum += z
	}
	out := make([]float64, len(zetas))
	for i, z := range zetas {
		out[i] = total * z / sum
	}
	return out, nil
}

// Zeta computes the noise-scale weight of a sample-and-aggregate query:
// the width of its output range times β/n. For multi-dimensional outputs
// the per-dimension widths are summed, reflecting that the per-dimension
// budget is ε/p.
func Zeta(ranges []dp.Range, blockSize, n int) (float64, error) {
	if blockSize < 1 || n < blockSize {
		return 0, fmt.Errorf("budget: invalid blockSize=%d n=%d", blockSize, n)
	}
	if len(ranges) == 0 {
		return 0, errors.New("budget: no output ranges")
	}
	var w float64
	for i, r := range ranges {
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("budget: range %d: %w", i, err)
		}
		w += r.Width()
	}
	z := w * float64(blockSize) / float64(n)
	if z <= 0 {
		return 0, fmt.Errorf("budget: degenerate ranges give zero noise scale")
	}
	return z, nil
}

// QuotaKeeper is the per-tenant ε quota layer (implemented by
// tenant.Registry). Reserve debits a tenant's quota on a dataset, refusing
// when the ceiling would be exceeded; Release backs out a reservation whose
// downstream global charge was refused. The quota sits ON TOP of the
// dataset-global budget: both must admit a charge.
type QuotaKeeper interface {
	Reserve(tenant, dataset string, eps float64) error
	Release(tenant, dataset string, eps float64)
}

// QuotaReporter is optionally implemented by the QuotaKeeper
// (tenant.Registry does): authoritative post-charge quota state, read by
// the ε burn-down plane so tenant rows track the real balance instead of
// re-deriving it from charge deltas.
type QuotaReporter interface {
	QuotaState(tenant, dataset string) (spent, quota float64, limited bool)
}

// Manager charges privacy spends to datasets in a registry. All spends
// flow through here; analyst-side code never sees an accountant.
type Manager struct {
	reg    *dataset.Registry
	tel    *telemetry.Registry
	quotas QuotaKeeper
	plane  *telemetry.BudgetPlane
}

// NewManager returns a manager over the given registry.
func NewManager(reg *dataset.Registry) *Manager {
	return &Manager{reg: reg}
}

// Instrument routes charge/refusal counters into a telemetry registry
// (budget.charges[.<dataset>] and budget.refusals[.<dataset>]). Call before
// serving; the counters carry event counts and labels only, never ε values.
func (m *Manager) Instrument(tel *telemetry.Registry) {
	m.tel = tel
}

// SetQuotas layers per-tenant ε quotas onto every tenant-attributed charge
// (PR 8). Call before serving; nil disables the layer. Charges with an
// empty tenant id (embedded platform, single-tenant mode) bypass quotas.
func (m *Manager) SetQuotas(q QuotaKeeper) {
	m.quotas = q
}

// SetBurnDown routes every successful charge into the ε burn-down plane
// (PR 10). Call before serving; nil disables the plane.
func (m *Manager) SetBurnDown(p *telemetry.BudgetPlane) {
	m.plane = p
}

// burn feeds the plane after a successful charge against r: the dataset's
// global row always, plus the tenant's row when the charge was
// tenant-attributed. State is read back from the accountant and the quota
// keeper, so refunds and concurrent charges can never drift the plane.
func (m *Manager) burn(tenant, datasetName string, eps float64, r *dataset.Registered) {
	if m.plane == nil {
		return
	}
	m.plane.Observe("", datasetName, eps, r.Accountant.Spent(), r.Accountant.Total())
	if tenant == "" {
		return
	}
	spent, quota, limited := 0.0, 0.0, false
	if rep, ok := m.quotas.(QuotaReporter); ok {
		spent, quota, limited = rep.QuotaState(tenant, datasetName)
	}
	if !limited {
		quota = 0 // unlimited row: the plane tracks spend without a ceiling
	}
	m.plane.Observe(tenant, datasetName, eps, spent, quota)
}

// Charge debits eps from the named dataset's budget, labeled for audit.
// It fails atomically: either the full charge is recorded or nothing is.
func (m *Manager) Charge(datasetName, label string, eps float64) error {
	return m.ChargeAs("", datasetName, label, eps)
}

// ChargeAs is Charge attributed to a tenant id. Admission order: the
// tenant's quota reservation first (a refusal here is free — nothing
// durable happened), then the dataset-global durable charge; a global
// refusal releases the reservation. A crash between the two can only lose
// the release, leaving the tenant's quota over-counted — the safe
// direction, and the quota balance is rebuilt from the ledger at next boot
// anyway. The empty tenant is exactly Charge.
func (m *Manager) ChargeAs(tenant, datasetName, label string, eps float64) error {
	r, err := m.reg.Lookup(datasetName)
	if err != nil {
		return err
	}
	if tenant != "" && m.quotas != nil {
		if err := m.quotas.Reserve(tenant, datasetName, eps); err != nil {
			m.tel.Counter("budget.tenant_quota_refusals").Inc()
			return m.record(datasetName, err)
		}
	}
	err = m.record(datasetName, r.SpendAs(tenant, label, eps))
	if err != nil && tenant != "" && m.quotas != nil {
		m.quotas.Release(tenant, datasetName, eps)
	}
	if err == nil {
		m.burn(tenant, datasetName, eps, r)
	}
	return err
}

// record tallies a settled or refused charge. Only budget refusals count as
// refusals; validation errors (bad ε) are neither.
func (m *Manager) record(datasetName string, err error) error {
	switch {
	case err == nil:
		m.tel.Counter("budget.charges").Inc()
		m.tel.Counter("budget.charges." + datasetName).Inc()
	case errors.Is(err, dp.ErrBudgetExhausted):
		m.tel.Counter("budget.refusals").Inc()
		m.tel.Counter("budget.refusals." + datasetName).Inc()
	}
	return err
}

// CacheHit journals an ε=0 re-release of a previously published answer for
// the named dataset. No budget moves — the accountant is never touched —
// but when a durable ledger backs the dataset, a cache_hit record lands in
// the WAL so the books distinguish re-releases from fresh spends. The
// counters (budget.cache_hits[.<dataset>]) carry event counts only.
func (m *Manager) CacheHit(datasetName, label string) error {
	return m.CacheHitAs("", datasetName, label)
}

// CacheHitAs is CacheHit attributed to a tenant id, so the WAL shows whose
// cached answer was re-released. Still budget- and quota-neutral: a cache
// hit is post-processing of an answer already paid for.
func (m *Manager) CacheHitAs(tenant, datasetName, label string) error {
	r, err := m.reg.Lookup(datasetName)
	if err != nil {
		return err
	}
	if err := r.RecordCacheHitAs(tenant, label); err != nil {
		return err
	}
	m.tel.Counter("budget.cache_hits").Inc()
	m.tel.Counter("budget.cache_hits." + datasetName).Inc()
	return nil
}

// Remaining reports the named dataset's unspent budget.
func (m *Manager) Remaining(datasetName string) (float64, error) {
	r, err := m.reg.Lookup(datasetName)
	if err != nil {
		return 0, err
	}
	return r.Accountant.Remaining(), nil
}

// ChargeForAccuracy translates an accuracy goal into the minimal ε using
// the dataset's aged sample (paper §5.1) and debits exactly that amount.
// It returns the estimate so the caller can run the query at the granted
// budget. The estimate itself touches only aged data and costs nothing.
func (m *Manager) ChargeForAccuracy(datasetName, label string, program analytics.Program, blockSize int, ranges []dp.Range, goal aging.AccuracyGoal) (aging.EpsilonEstimate, error) {
	return m.ChargeForAccuracyAs("", datasetName, label, program, blockSize, ranges, goal)
}

// ChargeForAccuracyAs is ChargeForAccuracy attributed to a tenant id. The
// estimate runs first (aged data only, costs nothing), so the tenant's
// quota is reserved for the exact ε the goal translates to.
func (m *Manager) ChargeForAccuracyAs(tenant, datasetName, label string, program analytics.Program, blockSize int, ranges []dp.Range, goal aging.AccuracyGoal) (aging.EpsilonEstimate, error) {
	r, err := m.reg.Lookup(datasetName)
	if err != nil {
		return aging.EpsilonEstimate{}, err
	}
	if !r.HasAged() {
		return aging.EpsilonEstimate{}, aging.ErrNoAgedData
	}
	n := r.Private.NumRows()
	if blockSize == 0 {
		blockSize = core.DefaultBlockSize(n)
	}
	est, err := aging.EstimateEpsilon(program, r.Aged.Rows(), n, blockSize, ranges, goal)
	if err != nil {
		return aging.EpsilonEstimate{}, err
	}
	if tenant != "" && m.quotas != nil {
		if err := m.quotas.Reserve(tenant, datasetName, est.Epsilon); err != nil {
			m.tel.Counter("budget.tenant_quota_refusals").Inc()
			return aging.EpsilonEstimate{}, m.record(datasetName, err)
		}
	}
	if err := m.record(datasetName, r.SpendAs(tenant, label, est.Epsilon)); err != nil {
		if tenant != "" && m.quotas != nil {
			m.quotas.Release(tenant, datasetName, est.Epsilon)
		}
		return aging.EpsilonEstimate{}, err
	}
	m.burn(tenant, datasetName, est.Epsilon, r)
	return est, nil
}
