package budget

import (
	"errors"
	"math"
	"testing"

	"gupt/internal/dp"
)

// The §6.2 privacy-budget-attack defense rests on an ordering contract:
// every query's ε is charged before its execution starts, and no execution
// outcome — success, abort, retry — ever writes to the ledger. These
// table-driven tests pin that contract at the ledger level by replaying
// charge/execute sequences in which executions fail in various ways, and
// checking the ledger ends exactly where the charges alone put it.

// outcome models how a charged query's execution ended. The manager has no
// refund API by design, so the only legal ledger effect of any outcome is
// "none" — the tables below exist to prove the accounting stays correct
// when failures and refusals interleave with successes.
type outcome int

const (
	execOK outcome = iota
	execAborted      // engine failed after the charge settled
	execRetriedOK    // first run failed, a retry released the output
	execRetriedAbort // every retry failed; nothing was released
)

func TestBudgetChargedOnAbortSequences(t *testing.T) {
	type step struct {
		eps      float64
		out      outcome
		wantFail bool // the charge itself must be refused (overdraw)
	}
	cases := []struct {
		name    string
		total   float64
		steps   []step
		wantRem float64
	}{
		{
			name:  "abort consumes like success",
			total: 1.0,
			steps: []step{
				{eps: 0.3, out: execOK},
				{eps: 0.3, out: execAborted},
				{eps: 0.3, out: execOK},
			},
			wantRem: 0.1,
		},
		{
			name:  "all aborts drain the budget",
			total: 1.0,
			steps: []step{
				{eps: 0.5, out: execAborted},
				{eps: 0.5, out: execRetriedAbort},
				{eps: 0.1, out: execOK, wantFail: true},
			},
			wantRem: 0,
		},
		{
			name:  "retry does not double-charge",
			total: 1.0,
			steps: []step{
				{eps: 0.6, out: execRetriedOK},
				{eps: 0.4, out: execOK},
			},
			wantRem: 0,
		},
		{
			name:  "refused charge consumes nothing",
			total: 0.5,
			steps: []step{
				{eps: 0.4, out: execAborted},
				{eps: 0.4, out: execOK, wantFail: true},
				{eps: 0.1, out: execOK},
			},
			wantRem: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, name := managerFixture(t, tc.total, 0)
			charged := 0.0
			for i, s := range tc.steps {
				err := m.Charge(name, "q", s.eps)
				if s.wantFail {
					if !errors.Is(err, dp.ErrBudgetExhausted) {
						t.Fatalf("step %d: err = %v, want ErrBudgetExhausted", i, err)
					}
					continue // no execution: the query was refused pre-charge
				}
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				charged += s.eps
				// The execution happens here and ends in s.out. Whatever it
				// is, there is no ledger operation to perform: the charge
				// already settled, aborts (§6.2) and retries change nothing.
				_ = s.out
				rem, err := m.Remaining(name)
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if math.Abs(rem-(tc.total-charged)) > 1e-9 {
					t.Fatalf("step %d (%v): remaining %v, want %v", i, s.out, rem, tc.total-charged)
				}
			}
			rem, err := m.Remaining(name)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rem-tc.wantRem) > 1e-9 {
				t.Errorf("final remaining %v, want %v", rem, tc.wantRem)
			}
		})
	}
}

// A failed charge must be atomic even at the exact budget boundary: a
// spend of precisely the remainder succeeds, one ulp more is refused whole.
func TestChargeBoundaryAtomicity(t *testing.T) {
	m, name := managerFixture(t, 1.0, 0)
	if err := m.Charge(name, "q1", 0.75); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(name, "too-big", 0.25000001); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("overdraw err = %v", err)
	}
	rem, err := m.Remaining(name)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-0.25) > 1e-9 {
		t.Errorf("refused charge moved the ledger: remaining %v, want 0.25", rem)
	}
	if err := m.Charge(name, "exact", rem); err != nil {
		t.Errorf("exact-remainder charge refused: %v", err)
	}
}
