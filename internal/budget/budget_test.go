package budget

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gupt/internal/aging"
	"gupt/internal/analytics"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func TestDistributeProportional(t *testing.T) {
	// Example 4: average has zeta 1, variance has zeta max; allocating
	// 1:max equalizes their noise.
	got, err := Distribute(1.0, []float64{1, 150})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1.0/151) > 1e-12 || math.Abs(got[1]-150.0/151) > 1e-12 {
		t.Errorf("Distribute = %v", got)
	}
	// Equal zetas split evenly.
	even, err := Distribute(2.0, []float64{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range even {
		if math.Abs(e-0.5) > 1e-12 {
			t.Errorf("even split = %v", even)
		}
	}
}

// Property: allocations are positive, sum to the total, and equalize the
// per-query noise std (zeta_i / eps_i constant).
func TestDistributeProperty(t *testing.T) {
	f := func(totalRaw float64, zetasRaw []float64) bool {
		total := math.Abs(math.Mod(totalRaw, 10)) + 0.1
		zetas := make([]float64, 0, len(zetasRaw))
		for _, z := range zetasRaw {
			zz := math.Abs(math.Mod(z, 100)) + 0.01
			zetas = append(zetas, zz)
		}
		if len(zetas) == 0 {
			return true
		}
		out, err := Distribute(total, zetas)
		if err != nil {
			return false
		}
		var sum float64
		ratio := zetas[0] / out[0]
		for i, e := range out {
			if e <= 0 {
				return false
			}
			sum += e
			if math.Abs(zetas[i]/e-ratio) > 1e-6*ratio {
				return false
			}
		}
		return math.Abs(sum-total) < 1e-9*total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributeValidation(t *testing.T) {
	if _, err := Distribute(0, []float64{1}); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := Distribute(1, nil); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := Distribute(1, []float64{1, 0}); err == nil {
		t.Error("zero zeta accepted")
	}
	if _, err := Distribute(1, []float64{1, -2}); err == nil {
		t.Error("negative zeta accepted")
	}
	if _, err := Distribute(1, []float64{math.NaN()}); err == nil {
		t.Error("NaN zeta accepted")
	}
}

func TestZeta(t *testing.T) {
	z, err := Zeta([]dp.Range{{Lo: 0, Hi: 150}}, 60, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-150.0*60/30000) > 1e-12 {
		t.Errorf("Zeta = %v", z)
	}
	// Multi-dim widths add.
	z2, err := Zeta([]dp.Range{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 20}}, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z2-3) > 1e-12 {
		t.Errorf("multi-dim Zeta = %v", z2)
	}
	if _, err := Zeta(nil, 10, 100); err == nil {
		t.Error("no ranges accepted")
	}
	if _, err := Zeta([]dp.Range{{Lo: 0, Hi: 1}}, 0, 100); err == nil {
		t.Error("blockSize=0 accepted")
	}
	if _, err := Zeta([]dp.Range{{Lo: 0, Hi: 1}}, 200, 100); err == nil {
		t.Error("blockSize>n accepted")
	}
	if _, err := Zeta([]dp.Range{{Lo: 5, Hi: 5}}, 10, 100); err == nil {
		t.Error("zero-width range accepted")
	}
}

func managerFixture(t *testing.T, totalBudget float64, agedFrac float64) (*Manager, string) {
	t.Helper()
	rng := mathutil.NewRNG(1)
	tbl := dataset.New([]string{"v"})
	for i := 0; i < 2000; i++ {
		if err := tbl.Append(mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}); err != nil {
			t.Fatal(err)
		}
	}
	reg := dataset.NewRegistry()
	if _, err := reg.Register("d", tbl, dataset.RegisterOptions{
		TotalBudget: totalBudget, AgedFraction: agedFrac, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	return NewManager(reg), "d"
}

func TestManagerCharge(t *testing.T) {
	m, name := managerFixture(t, 1.0, 0)
	if err := m.Charge(name, "q1", 0.7); err != nil {
		t.Fatal(err)
	}
	rem, err := m.Remaining(name)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-0.3) > 1e-9 {
		t.Errorf("Remaining = %v", rem)
	}
	if err := m.Charge(name, "q2", 0.5); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Errorf("overspend err = %v", err)
	}
	if err := m.Charge("missing", "q", 0.1); !errors.Is(err, dataset.ErrNotFound) {
		t.Errorf("unknown dataset err = %v", err)
	}
	if _, err := m.Remaining("missing"); !errors.Is(err, dataset.ErrNotFound) {
		t.Errorf("unknown dataset err = %v", err)
	}
}

func TestChargeForAccuracy(t *testing.T) {
	m, name := managerFixture(t, 100.0, 0.2)
	goal := aging.AccuracyGoal{Rho: 0.9, Confidence: 0.9}
	ranges := []dp.Range{{Lo: 0, Hi: 150}}
	est, err := m.ChargeForAccuracy(name, "avg", analytics.Mean{Col: 0}, 0, ranges, goal)
	if err != nil {
		t.Fatal(err)
	}
	if est.Epsilon <= 0 {
		t.Fatalf("estimated eps = %v", est.Epsilon)
	}
	rem, _ := m.Remaining(name)
	if math.Abs((100-rem)-est.Epsilon) > 1e-9 {
		t.Errorf("charged %v but estimate was %v", 100-rem, est.Epsilon)
	}
}

func TestChargeForAccuracyNoAgedData(t *testing.T) {
	m, name := managerFixture(t, 10, 0)
	_, err := m.ChargeForAccuracy(name, "avg", analytics.Mean{Col: 0}, 0,
		[]dp.Range{{Lo: 0, Hi: 150}}, aging.AccuracyGoal{Rho: 0.9, Confidence: 0.9})
	if !errors.Is(err, aging.ErrNoAgedData) {
		t.Errorf("err = %v, want ErrNoAgedData", err)
	}
}

func TestChargeForAccuracyBudgetGate(t *testing.T) {
	// A tiny total budget: the estimate may exceed it, and then nothing is
	// charged (the failed spend is atomic).
	m, name := managerFixture(t, 1e-6, 0.2)
	_, err := m.ChargeForAccuracy(name, "avg", analytics.Mean{Col: 0}, 0,
		[]dp.Range{{Lo: 0, Hi: 150}}, aging.AccuracyGoal{Rho: 0.9, Confidence: 0.9})
	if !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	rem, _ := m.Remaining(name)
	if rem != 1e-6 {
		t.Errorf("failed charge consumed budget: remaining %v", rem)
	}
}
