package analytics

import (
	"strings"
	"testing"
)

// Every built-in program has a stable, informative Name and a consistent
// OutputDims declaration.
func TestProgramMetadata(t *testing.T) {
	cases := []struct {
		prog     Program
		wantName string
		wantDims int
	}{
		{Mean{Col: 2}, "mean(col=2)", 1},
		{Median{Col: 0}, "median(col=0)", 1},
		{Variance{Col: 1}, "variance(col=1)", 1},
		{Percentile{Col: 0, P: 0.25}, "percentile(col=0,p=0.25)", 1},
		{Covariance{ColA: 1, ColB: 2}, "cov(1,2)", 1},
		{Histogram{Col: 0, Lo: 0, Hi: 1, Bins: 7}, "histogram(col=0,bins=7)", 7},
		{KMeans{K: 3, FeatureDims: 4, Iters: 9}, "kmeans(k=3,iters=9)", 12},
		{LogisticRegression{FeatureDims: 5, Iters: 3, LearnRate: 0.1}, "logreg(d=5,iters=3)", 6},
		{LinearRegression{FeatureDims: 5, TargetCol: 5}, "linreg(d=5,target=5)", 6},
		{NaiveBayes{FeatureDims: 3, LabelCol: 3}, "naivebayes(d=3)", 13},
		{Pad{Inner: Mean{Col: 0}, Dims: 4}, "pad(mean(col=0),dims=4)", 4},
		{Func{ProgName: "custom", Dims: 2}, "custom", 2},
	}
	for _, c := range cases {
		if got := c.prog.Name(); got != c.wantName {
			t.Errorf("Name() = %q, want %q", got, c.wantName)
		}
		if got := c.prog.OutputDims(); got != c.wantDims {
			t.Errorf("%s: OutputDims() = %d, want %d", c.wantName, got, c.wantDims)
		}
		if strings.TrimSpace(c.prog.Name()) == "" {
			t.Errorf("empty program name for %T", c.prog)
		}
	}
}
