package analytics

import (
	"fmt"

	"gupt/internal/mathutil"
)

// Pad wraps a program whose raw output length can vary from block to block
// (the paper's §8.1 example: SVMs emit an indefinite number of support
// vectors) and forces it to the fixed dimensionality GUPT requires: longer
// outputs are truncated, shorter ones are padded with Fill. Because every
// block then reports exactly Dims values, the output dimension itself can
// no longer leak information.
type Pad struct {
	// Inner is the wrapped computation (its OutputDims is ignored).
	Inner Program
	// Dims is the fixed output dimensionality presented to GUPT.
	Dims int
	// Fill is the pad value; pick something inside the declared output
	// range (it will be clamped like any block output).
	Fill float64
}

// Name implements Program.
func (p Pad) Name() string { return fmt.Sprintf("pad(%s,dims=%d)", p.Inner.Name(), p.Dims) }

// OutputDims implements Program.
func (p Pad) OutputDims() int { return p.Dims }

// Run implements Program.
func (p Pad) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if p.Inner == nil {
		return nil, fmt.Errorf("analytics: pad with nil inner program")
	}
	if p.Dims <= 0 {
		return nil, fmt.Errorf("analytics: pad needs positive Dims, got %d", p.Dims)
	}
	raw, err := p.Inner.Run(block)
	if err != nil {
		return nil, err
	}
	out := make(mathutil.Vec, p.Dims)
	n := copy(out, raw)
	for i := n; i < p.Dims; i++ {
		out[i] = p.Fill
	}
	return out, nil
}
