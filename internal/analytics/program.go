// Package analytics implements the data-analysis programs used as the
// untrusted black boxes in GUPT's evaluation: summary statistics (mean,
// median, variance, percentile), k-means clustering and logistic
// regression. GUPT itself never looks inside these — it only needs the
// Program contract below — but shipping them in-repo gives the examples,
// tests and experiment harness realistic workloads, and cmd/gupt-app wraps
// each one as a standalone executable for subprocess isolation.
package analytics

import (
	"errors"
	"fmt"

	"gupt/internal/mathutil"
)

// ErrEmptyBlock is returned when a program is run on a block with no rows.
var ErrEmptyBlock = errors.New("analytics: empty block")

// Program is GUPT's contract with an analysis program: a black box that maps
// any subset of the dataset's records to a fixed-dimensional real vector
// (paper §3.1: "it should be able to run on any subset of the original
// dataset"). Run must not retain or mutate the block; under subprocess
// isolation it physically cannot.
type Program interface {
	// Name identifies the program in logs and budget charges.
	Name() string
	// OutputDims is the (fixed, public) dimensionality of the output. GUPT
	// needs it up front to split the privacy budget across dimensions
	// (paper §8.1: output dimension must be known in advance).
	OutputDims() int
	// Run computes the program on one block of records.
	Run(block []mathutil.Vec) (mathutil.Vec, error)
}

// Func adapts a plain function to the Program interface.
type Func struct {
	ProgName string
	Dims     int
	F        func(block []mathutil.Vec) (mathutil.Vec, error)
}

// Name implements Program.
func (f Func) Name() string { return f.ProgName }

// OutputDims implements Program.
func (f Func) OutputDims() int { return f.Dims }

// Run implements Program.
func (f Func) Run(block []mathutil.Vec) (mathutil.Vec, error) { return f.F(block) }

func checkBlock(block []mathutil.Vec, col int) error {
	if len(block) == 0 {
		return ErrEmptyBlock
	}
	if col < 0 || col >= len(block[0]) {
		return fmt.Errorf("analytics: column %d out of range for %d-dim rows", col, len(block[0]))
	}
	return nil
}

func column(block []mathutil.Vec, col int) []float64 {
	out := make([]float64, len(block))
	for i, r := range block {
		out[i] = r[col]
	}
	return out
}

// Mean computes the mean of one column.
type Mean struct{ Col int }

// Name implements Program.
func (m Mean) Name() string { return fmt.Sprintf("mean(col=%d)", m.Col) }

// OutputDims implements Program.
func (Mean) OutputDims() int { return 1 }

// Run implements Program.
func (m Mean) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if err := checkBlock(block, m.Col); err != nil {
		return nil, err
	}
	return mathutil.Vec{mathutil.Mean(column(block, m.Col))}, nil
}

// Median computes the median of one column.
type Median struct{ Col int }

// Name implements Program.
func (m Median) Name() string { return fmt.Sprintf("median(col=%d)", m.Col) }

// OutputDims implements Program.
func (Median) OutputDims() int { return 1 }

// Run implements Program.
func (m Median) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if err := checkBlock(block, m.Col); err != nil {
		return nil, err
	}
	return mathutil.Vec{mathutil.Median(column(block, m.Col))}, nil
}

// Variance computes the population variance of one column (Example 4 in the
// paper).
type Variance struct{ Col int }

// Name implements Program.
func (v Variance) Name() string { return fmt.Sprintf("variance(col=%d)", v.Col) }

// OutputDims implements Program.
func (Variance) OutputDims() int { return 1 }

// Run implements Program.
func (v Variance) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if err := checkBlock(block, v.Col); err != nil {
		return nil, err
	}
	return mathutil.Vec{mathutil.Variance(column(block, v.Col))}, nil
}

// Percentile computes the p-quantile (P in [0,1]) of one column.
type Percentile struct {
	Col int
	P   float64
}

// Name implements Program.
func (p Percentile) Name() string { return fmt.Sprintf("percentile(col=%d,p=%g)", p.Col, p.P) }

// OutputDims implements Program.
func (Percentile) OutputDims() int { return 1 }

// Run implements Program.
func (p Percentile) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if err := checkBlock(block, p.Col); err != nil {
		return nil, err
	}
	return mathutil.Vec{mathutil.Quantile(column(block, p.Col), p.P)}, nil
}
