package analytics

import (
	"errors"
	"testing"

	"gupt/internal/mathutil"
)

// varying emits one value per distinct label it sees — a program whose raw
// output width is data-dependent, like the paper's SVM example.
var varying = Func{ProgName: "varying", Dims: -1, F: func(block []mathutil.Vec) (mathutil.Vec, error) {
	seen := map[float64]bool{}
	var out mathutil.Vec
	for _, r := range block {
		if !seen[r[0]] {
			seen[r[0]] = true
			out = append(out, r[0])
		}
	}
	return out, nil
}}

func TestPadTruncatesAndFills(t *testing.T) {
	p := Pad{Inner: varying, Dims: 3, Fill: -1}
	// Short raw output: padded.
	out, err := p.Run([]mathutil.Vec{{7}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(mathutil.Vec{7, -1, -1}, 0) {
		t.Errorf("padded = %v", out)
	}
	// Long raw output: truncated.
	out, err = p.Run([]mathutil.Vec{{1}, {2}, {3}, {4}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("truncated len = %d", len(out))
	}
	if p.OutputDims() != 3 {
		t.Errorf("OutputDims = %d", p.OutputDims())
	}
}

func TestPadValidation(t *testing.T) {
	if _, err := (Pad{Dims: 2}).Run(nil); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := (Pad{Inner: varying, Dims: 0}).Run(nil); err == nil {
		t.Error("zero dims accepted")
	}
	// Inner errors propagate.
	bomb := Func{ProgName: "err", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		return nil, errors.New("inner failure")
	}}
	if _, err := (Pad{Inner: bomb, Dims: 1}).Run(nil); err == nil {
		t.Error("inner error swallowed")
	}
}
