package analytics

import (
	"fmt"
	"math"

	"gupt/internal/mathutil"
)

// LogisticRegression trains an L2-regularized (optionally L1 via a proximal
// step) binary classifier with batch gradient descent. Records are the
// first FeatureDims columns; the label, in LabelCol, must be 0 or 1
// (values are thresholded at 0.5). The output is the weight vector followed
// by the bias: FeatureDims+1 values.
//
// It stands in for the paper's black-box MSR OWL-QN package: GUPT only ever
// calls Run on a block and averages the resulting parameter vectors.
type LogisticRegression struct {
	FeatureDims int
	LabelCol    int
	Iters       int
	LearnRate   float64
	L2          float64
	L1          float64 // 0 disables the proximal step
}

// Name implements Program.
func (l LogisticRegression) Name() string {
	return fmt.Sprintf("logreg(d=%d,iters=%d)", l.FeatureDims, l.Iters)
}

// OutputDims implements Program.
func (l LogisticRegression) OutputDims() int { return l.FeatureDims + 1 }

// Run implements Program.
func (l LogisticRegression) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if len(block) == 0 {
		return nil, ErrEmptyBlock
	}
	if l.FeatureDims <= 0 || l.Iters <= 0 || l.LearnRate <= 0 {
		return nil, fmt.Errorf("analytics: logreg needs positive FeatureDims, Iters, LearnRate; got %+v", l)
	}
	if len(block[0]) <= l.LabelCol || len(block[0]) < l.FeatureDims {
		return nil, fmt.Errorf("analytics: rows have %d dims, logreg needs features %d and label col %d",
			len(block[0]), l.FeatureDims, l.LabelCol)
	}

	w := make(mathutil.Vec, l.FeatureDims)
	var b float64
	n := float64(len(block))
	grad := make(mathutil.Vec, l.FeatureDims)

	for iter := 0; iter < l.Iters; iter++ {
		for j := range grad {
			grad[j] = 0
		}
		var gradB float64
		for _, row := range block {
			x := row[:l.FeatureDims]
			y := 0.0
			if row[l.LabelCol] >= 0.5 {
				y = 1
			}
			err := Sigmoid(w.Dot(x)+b) - y
			for j := range grad {
				grad[j] += err * x[j]
			}
			gradB += err
		}
		for j := range w {
			w[j] -= l.LearnRate * (grad[j]/n + l.L2*w[j])
			if l.L1 > 0 {
				w[j] = softThreshold(w[j], l.LearnRate*l.L1)
			}
		}
		b -= l.LearnRate * gradB / n
	}
	return append(w, b), nil
}

// Sigmoid is the logistic function 1/(1+e^-z), computed stably.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}

// PredictLogistic classifies a feature vector with a trained parameter
// vector (weights followed by bias), returning 0 or 1.
func PredictLogistic(params mathutil.Vec, x mathutil.Vec) float64 {
	w, b := params[:len(params)-1], params[len(params)-1]
	if Sigmoid(mathutil.Vec(w).Dot(x)+b) >= 0.5 {
		return 1
	}
	return 0
}

// ClassificationAccuracy evaluates a trained parameter vector on labeled
// rows (features in the first featureDims columns, label in labelCol),
// returning the fraction of correct predictions.
func ClassificationAccuracy(params mathutil.Vec, rows []mathutil.Vec, featureDims, labelCol int) float64 {
	if len(rows) == 0 {
		return 0
	}
	correct := 0
	for _, r := range rows {
		want := 0.0
		if r[labelCol] >= 0.5 {
			want = 1
		}
		if PredictLogistic(params, r[:featureDims]) == want {
			correct++
		}
	}
	return float64(correct) / float64(len(rows))
}
