package analytics

import (
	"fmt"
	"math"

	"gupt/internal/mathutil"
)

// NaiveBayes trains a Gaussian naive Bayes binary classifier: per class,
// a prior plus per-feature mean and variance. Features are the first
// FeatureDims columns; the {0,1} label is in LabelCol.
//
// The flattened output is [prior1, mean1..., var1..., mean0..., var0...]:
// 1 + 4·FeatureDims values, each averaging meaningfully across blocks —
// which is exactly what makes it a good citizen under sample-and-aggregate.
type NaiveBayes struct {
	FeatureDims int
	LabelCol    int
}

// Name implements Program.
func (nb NaiveBayes) Name() string { return fmt.Sprintf("naivebayes(d=%d)", nb.FeatureDims) }

// OutputDims implements Program.
func (nb NaiveBayes) OutputDims() int { return 1 + 4*nb.FeatureDims }

// Run implements Program.
func (nb NaiveBayes) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if len(block) == 0 {
		return nil, ErrEmptyBlock
	}
	if nb.FeatureDims <= 0 {
		return nil, fmt.Errorf("analytics: naive bayes needs positive FeatureDims, got %d", nb.FeatureDims)
	}
	if len(block[0]) <= nb.LabelCol || len(block[0]) < nb.FeatureDims {
		return nil, fmt.Errorf("analytics: rows have %d dims, naive bayes needs features %d and label col %d",
			len(block[0]), nb.FeatureDims, nb.LabelCol)
	}
	d := nb.FeatureDims
	var n1, n0 float64
	sum1 := make(mathutil.Vec, d)
	sum0 := make(mathutil.Vec, d)
	sq1 := make(mathutil.Vec, d)
	sq0 := make(mathutil.Vec, d)
	for _, row := range block {
		x := row[:d]
		if row[nb.LabelCol] >= 0.5 {
			n1++
			for j, v := range x {
				sum1[j] += v
				sq1[j] += v * v
			}
		} else {
			n0++
			for j, v := range x {
				sum0[j] += v
				sq0[j] += v * v
			}
		}
	}

	out := make(mathutil.Vec, nb.OutputDims())
	out[0] = n1 / float64(len(block))
	const varFloor = 1e-3 // keep class-conditional variances usable
	fill := func(offset int, n float64, sum, sq mathutil.Vec, fallback mathutil.Vec) {
		for j := 0; j < d; j++ {
			if n == 0 {
				// A block may miss one class entirely; fall back to the
				// pooled statistics so the averaged model stays sane.
				out[offset+j] = fallback[j]
				out[offset+d+j] = fallback[d+j]
				continue
			}
			mean := sum[j] / n
			variance := sq[j]/n - mean*mean
			if variance < varFloor {
				variance = varFloor
			}
			out[offset+j] = mean
			out[offset+d+j] = variance
		}
	}
	pooled := make(mathutil.Vec, 2*d)
	total := n1 + n0
	for j := 0; j < d; j++ {
		mean := (sum1[j] + sum0[j]) / total
		variance := (sq1[j]+sq0[j])/total - mean*mean
		if variance < varFloor {
			variance = varFloor
		}
		pooled[j] = mean
		pooled[d+j] = variance
	}
	fill(1, n1, sum1, sq1, pooled)
	fill(1+2*d, n0, sum0, sq0, pooled)
	return out, nil
}

// PredictNaiveBayes classifies a feature vector with a trained (possibly
// noisy) parameter vector produced by NaiveBayes.Run.
func PredictNaiveBayes(params mathutil.Vec, x mathutil.Vec) float64 {
	d := len(x)
	prior1 := mathutil.Clamp(params[0], 1e-6, 1-1e-6)
	score1 := math.Log(prior1)
	score0 := math.Log(1 - prior1)
	for j := 0; j < d; j++ {
		score1 += logGauss(x[j], params[1+j], params[1+d+j])
		score0 += logGauss(x[j], params[1+2*d+j], params[1+3*d+j])
	}
	if score1 >= score0 {
		return 1
	}
	return 0
}

func logGauss(x, mean, variance float64) float64 {
	if variance < 1e-6 {
		variance = 1e-6
	}
	diff := x - mean
	return -0.5*math.Log(2*math.Pi*variance) - diff*diff/(2*variance)
}

// NaiveBayesAccuracy evaluates a trained parameter vector on labeled rows.
func NaiveBayesAccuracy(params mathutil.Vec, rows []mathutil.Vec, featureDims, labelCol int) float64 {
	if len(rows) == 0 {
		return 0
	}
	correct := 0
	for _, r := range rows {
		want := 0.0
		if r[labelCol] >= 0.5 {
			want = 1
		}
		if PredictNaiveBayes(params, r[:featureDims]) == want {
			correct++
		}
	}
	return float64(correct) / float64(len(rows))
}
