package analytics

import (
	"errors"
	"math"
	"testing"

	"gupt/internal/mathutil"
)

func rowsOf(xs ...float64) []mathutil.Vec {
	out := make([]mathutil.Vec, len(xs))
	for i, x := range xs {
		out[i] = mathutil.Vec{x}
	}
	return out
}

func TestMeanProgram(t *testing.T) {
	p := Mean{Col: 0}
	out, err := p.Run(rowsOf(1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != p.OutputDims() || out[0] != 2.5 {
		t.Errorf("Mean.Run = %v", out)
	}
	if _, err := p.Run(nil); !errors.Is(err, ErrEmptyBlock) {
		t.Errorf("empty block err = %v", err)
	}
	if _, err := (Mean{Col: 5}).Run(rowsOf(1)); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestMedianProgram(t *testing.T) {
	out, err := Median{Col: 0}.Run(rowsOf(9, 1, 5))
	if err != nil || out[0] != 5 {
		t.Errorf("Median.Run = %v, %v", out, err)
	}
}

func TestVarianceProgram(t *testing.T) {
	out, err := Variance{Col: 0}.Run(rowsOf(2, 4, 4, 4, 5, 5, 7, 9))
	if err != nil || math.Abs(out[0]-4) > 1e-12 {
		t.Errorf("Variance.Run = %v, %v", out, err)
	}
}

func TestPercentileProgram(t *testing.T) {
	out, err := Percentile{Col: 0, P: 0.5}.Run(rowsOf(10, 20, 30))
	if err != nil || out[0] != 20 {
		t.Errorf("Percentile.Run = %v, %v", out, err)
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func{ProgName: "const", Dims: 2, F: func(block []mathutil.Vec) (mathutil.Vec, error) {
		return mathutil.Vec{1, 2}, nil
	}}
	if f.Name() != "const" || f.OutputDims() != 2 {
		t.Error("Func metadata wrong")
	}
	out, err := f.Run(nil)
	if err != nil || !out.Equal(mathutil.Vec{1, 2}, 0) {
		t.Errorf("Func.Run = %v, %v", out, err)
	}
}

func TestProgramsUseOnlyGivenColumn(t *testing.T) {
	// Two-column rows; programs on col 1 must ignore col 0.
	block := []mathutil.Vec{{100, 1}, {200, 2}, {300, 3}}
	out, err := Mean{Col: 1}.Run(block)
	if err != nil || out[0] != 2 {
		t.Errorf("Mean col=1 = %v, %v", out, err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s <= 0.999 || s > 1 {
		t.Errorf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s >= 0.001 || s < 0 {
		t.Errorf("Sigmoid(-100) = %v", s)
	}
	// Stability at extremes: no NaN.
	for _, z := range []float64{-1000, 1000} {
		if math.IsNaN(Sigmoid(z)) {
			t.Errorf("Sigmoid(%v) is NaN", z)
		}
	}
}

func TestLogisticRegressionLearnsSeparableData(t *testing.T) {
	// y = 1 iff x0 + x1 > 0, clearly separable.
	rng := mathutil.NewRNG(1)
	var block []mathutil.Vec
	for i := 0; i < 400; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		y := 0.0
		if x0+x1 > 0 {
			y = 1
		}
		block = append(block, mathutil.Vec{x0, x1, y})
	}
	lr := LogisticRegression{FeatureDims: 2, LabelCol: 2, Iters: 300, LearnRate: 0.5}
	params, err := lr.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != lr.OutputDims() {
		t.Fatalf("params len %d, want %d", len(params), lr.OutputDims())
	}
	if acc := ClassificationAccuracy(params, block, 2, 2); acc < 0.95 {
		t.Errorf("training accuracy %v, want >= 0.95", acc)
	}
}

func TestLogisticRegressionL1DrivesIrrelevantWeightToZero(t *testing.T) {
	rng := mathutil.NewRNG(2)
	var block []mathutil.Vec
	for i := 0; i < 500; i++ {
		x0 := rng.NormFloat64()
		noise := rng.NormFloat64() // irrelevant feature
		y := 0.0
		if x0 > 0 {
			y = 1
		}
		block = append(block, mathutil.Vec{x0, noise, y})
	}
	lr := LogisticRegression{FeatureDims: 2, LabelCol: 2, Iters: 400, LearnRate: 0.5, L1: 0.02}
	params, err := lr.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(params[1]) > 0.05 {
		t.Errorf("irrelevant weight %v not shrunk by L1", params[1])
	}
	if math.Abs(params[0]) < 0.5 {
		t.Errorf("relevant weight %v collapsed", params[0])
	}
}

func TestLogisticRegressionValidation(t *testing.T) {
	block := []mathutil.Vec{{1, 0}}
	cases := []LogisticRegression{
		{FeatureDims: 0, LabelCol: 1, Iters: 1, LearnRate: 0.1},
		{FeatureDims: 1, LabelCol: 1, Iters: 0, LearnRate: 0.1},
		{FeatureDims: 1, LabelCol: 1, Iters: 1, LearnRate: 0},
		{FeatureDims: 1, LabelCol: 9, Iters: 1, LearnRate: 0.1},
		{FeatureDims: 5, LabelCol: 1, Iters: 1, LearnRate: 0.1},
	}
	for i, c := range cases {
		if _, err := c.Run(block); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := (LogisticRegression{FeatureDims: 1, LabelCol: 1, Iters: 1, LearnRate: 0.1}).Run(nil); !errors.Is(err, ErrEmptyBlock) {
		t.Error("empty block accepted")
	}
}
