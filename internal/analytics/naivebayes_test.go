package analytics

import (
	"errors"
	"math"
	"testing"

	"gupt/internal/mathutil"
)

// nbData builds two Gaussian classes: class 1 around +2, class 0 around -2.
func nbData(seed int64, n int) []mathutil.Vec {
	rng := mathutil.NewRNG(seed)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		y := float64(i % 2)
		center := -2.0
		if y == 1 {
			center = 2
		}
		rows[i] = mathutil.Vec{center + rng.NormFloat64(), center + rng.NormFloat64(), y}
	}
	return rows
}

func TestNaiveBayesLearns(t *testing.T) {
	rows := nbData(1, 1000)
	nb := NaiveBayes{FeatureDims: 2, LabelCol: 2}
	params, err := nb.Run(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != nb.OutputDims() {
		t.Fatalf("params len %d, want %d", len(params), nb.OutputDims())
	}
	if math.Abs(params[0]-0.5) > 0.05 {
		t.Errorf("prior = %v, want ~0.5", params[0])
	}
	// Class-1 means near +2.
	if math.Abs(params[1]-2) > 0.2 || math.Abs(params[2]-2) > 0.2 {
		t.Errorf("class-1 means = %v, %v", params[1], params[2])
	}
	if acc := NaiveBayesAccuracy(params, rows, 2, 2); acc < 0.95 {
		t.Errorf("training accuracy %v", acc)
	}
}

func TestNaiveBayesSingleClassBlock(t *testing.T) {
	// A block containing only class 1 must still produce usable (pooled)
	// statistics for class 0, not NaN.
	rng := mathutil.NewRNG(2)
	rows := make([]mathutil.Vec, 50)
	for i := range rows {
		rows[i] = mathutil.Vec{2 + rng.NormFloat64(), 1}
	}
	params, err := (NaiveBayes{FeatureDims: 1, LabelCol: 1}).Run(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range params {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("param %d is %v", i, v)
		}
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	if _, err := (NaiveBayes{FeatureDims: 1, LabelCol: 1}).Run(nil); !errors.Is(err, ErrEmptyBlock) {
		t.Error("empty block accepted")
	}
	block := []mathutil.Vec{{1, 0}}
	if _, err := (NaiveBayes{FeatureDims: 0, LabelCol: 1}).Run(block); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := (NaiveBayes{FeatureDims: 1, LabelCol: 5}).Run(block); err == nil {
		t.Error("bad label col accepted")
	}
}

func TestPredictNaiveBayesDegenerate(t *testing.T) {
	// Extreme prior and tiny variance must not produce NaN decisions.
	params := mathutil.Vec{0, 0, 1e-12, 5, 1e-12}
	if got := PredictNaiveBayes(params, mathutil.Vec{0}); got != 0 && got != 1 {
		t.Errorf("prediction = %v", got)
	}
}

func TestNaiveBayesAccuracyEmpty(t *testing.T) {
	if got := NaiveBayesAccuracy(nil, nil, 1, 1); got != 0 {
		t.Errorf("empty accuracy = %v", got)
	}
}
