package analytics

import (
	"errors"
	"fmt"

	"gupt/internal/mathutil"
)

// LinearRegression fits ordinary least squares on the first FeatureDims
// columns against the target column, solving the normal equations with
// ridge damping for numerical safety. The output is the coefficient vector
// followed by the intercept: FeatureDims+1 values.
//
// Like every Program it is a black box to GUPT: the platform averages
// per-block parameter vectors and perturbs the average.
type LinearRegression struct {
	FeatureDims int
	TargetCol   int
	// Ridge is the L2 damping added to the normal equations' diagonal;
	// 0 selects a small default that keeps near-singular blocks solvable.
	Ridge float64
}

// Name implements Program.
func (l LinearRegression) Name() string {
	return fmt.Sprintf("linreg(d=%d,target=%d)", l.FeatureDims, l.TargetCol)
}

// OutputDims implements Program.
func (l LinearRegression) OutputDims() int { return l.FeatureDims + 1 }

// Run implements Program.
func (l LinearRegression) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if len(block) == 0 {
		return nil, ErrEmptyBlock
	}
	if l.FeatureDims <= 0 {
		return nil, fmt.Errorf("analytics: linreg needs positive FeatureDims, got %d", l.FeatureDims)
	}
	if len(block[0]) <= l.TargetCol || len(block[0]) < l.FeatureDims {
		return nil, fmt.Errorf("analytics: rows have %d dims, linreg needs features %d and target col %d",
			len(block[0]), l.FeatureDims, l.TargetCol)
	}
	ridge := l.Ridge
	if ridge == 0 {
		ridge = 1e-8
	}

	// Augmented design: d feature columns plus a constant-1 column for the
	// intercept. Accumulate X'X and X'y.
	d := l.FeatureDims + 1
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	xi := make([]float64, d)
	for _, row := range block {
		copy(xi, row[:l.FeatureDims])
		xi[d-1] = 1
		y := row[l.TargetCol]
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				xtx[i][j] += xi[i] * xi[j]
			}
			xty[i] += xi[i] * y
		}
	}
	for i := 0; i < d; i++ {
		xtx[i][i] += ridge
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	params, err := solveLinearSystem(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("analytics: linreg: %w", err)
	}
	return params, nil
}

// solveLinearSystem solves Ax = b by Gaussian elimination with partial
// pivoting. A and b are consumed.
func solveLinearSystem(a [][]float64, b []float64) (mathutil.Vec, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-15 {
			return nil, errors.New("singular system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make(mathutil.Vec, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PredictLinear evaluates a fitted parameter vector (coefficients followed
// by intercept) on a feature vector.
func PredictLinear(params, x mathutil.Vec) float64 {
	w, b := params[:len(params)-1], params[len(params)-1]
	return mathutil.Vec(w).Dot(x) + b
}

// Covariance computes the population covariance between two columns.
type Covariance struct {
	ColA, ColB int
}

// Name implements Program.
func (c Covariance) Name() string { return fmt.Sprintf("cov(%d,%d)", c.ColA, c.ColB) }

// OutputDims implements Program.
func (Covariance) OutputDims() int { return 1 }

// Run implements Program.
func (c Covariance) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if err := checkBlock(block, c.ColA); err != nil {
		return nil, err
	}
	if err := checkBlock(block, c.ColB); err != nil {
		return nil, err
	}
	n := float64(len(block))
	var ma, mb float64
	for _, r := range block {
		ma += r[c.ColA]
		mb += r[c.ColB]
	}
	ma /= n
	mb /= n
	var cov float64
	for _, r := range block {
		cov += (r[c.ColA] - ma) * (r[c.ColB] - mb)
	}
	return mathutil.Vec{cov / n}, nil
}

// Histogram computes the fraction of a column's values falling in each of
// Bins equal-width buckets over [Lo, Hi]; out-of-range values clamp to the
// edge buckets. Its output is a Bins-dimensional vector of fractions — run
// through GUPT this yields a differentially private histogram, each bucket
// naturally bounded in [0, 1].
type Histogram struct {
	Col    int
	Lo, Hi float64
	Bins   int
}

// Name implements Program.
func (h Histogram) Name() string {
	return fmt.Sprintf("histogram(col=%d,bins=%d)", h.Col, h.Bins)
}

// OutputDims implements Program.
func (h Histogram) OutputDims() int { return h.Bins }

// Run implements Program.
func (h Histogram) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if err := checkBlock(block, h.Col); err != nil {
		return nil, err
	}
	if h.Bins <= 0 {
		return nil, fmt.Errorf("analytics: histogram needs positive Bins, got %d", h.Bins)
	}
	if !(h.Hi > h.Lo) {
		return nil, fmt.Errorf("analytics: histogram range [%v, %v] is empty", h.Lo, h.Hi)
	}
	out := make(mathutil.Vec, h.Bins)
	width := (h.Hi - h.Lo) / float64(h.Bins)
	for _, r := range block {
		idx := int((r[h.Col] - h.Lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= h.Bins {
			idx = h.Bins - 1
		}
		out[idx]++
	}
	out.ScaleInPlace(1 / float64(len(block)))
	return out, nil
}
