package analytics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gupt/internal/mathutil"
)

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	rng := mathutil.NewRNG(1)
	// y = 3x0 - 2x1 + 5 + small noise
	var block []mathutil.Vec
	for i := 0; i < 500; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		y := 3*x0 - 2*x1 + 5 + 0.01*rng.NormFloat64()
		block = append(block, mathutil.Vec{x0, x1, y})
	}
	lr := LinearRegression{FeatureDims: 2, TargetCol: 2}
	params, err := lr.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != lr.OutputDims() {
		t.Fatalf("params len %d", len(params))
	}
	want := mathutil.Vec{3, -2, 5}
	if !params.Equal(want, 0.05) {
		t.Errorf("params = %v, want ~%v", params, want)
	}
	// PredictLinear agrees with the model.
	if got := PredictLinear(params, mathutil.Vec{1, 1}); math.Abs(got-6) > 0.1 {
		t.Errorf("PredictLinear = %v, want ~6", got)
	}
}

func TestLinearRegressionDegenerateData(t *testing.T) {
	// Constant feature: ridge damping keeps the system solvable.
	block := []mathutil.Vec{{1, 5}, {1, 5}, {1, 5}}
	lr := LinearRegression{FeatureDims: 1, TargetCol: 1}
	if _, err := lr.Run(block); err != nil {
		t.Errorf("degenerate block failed: %v", err)
	}
}

func TestLinearRegressionValidation(t *testing.T) {
	if _, err := (LinearRegression{FeatureDims: 1, TargetCol: 1}).Run(nil); !errors.Is(err, ErrEmptyBlock) {
		t.Error("empty block accepted")
	}
	block := []mathutil.Vec{{1, 2}}
	if _, err := (LinearRegression{FeatureDims: 0, TargetCol: 1}).Run(block); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := (LinearRegression{FeatureDims: 1, TargetCol: 9}).Run(block); err == nil {
		t.Error("bad target col accepted")
	}
	if _, err := (LinearRegression{FeatureDims: 5, TargetCol: 1}).Run(block); err == nil {
		t.Error("more features than columns accepted")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x=2, y=1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := solveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(mathutil.Vec{2, 1}, 1e-9) {
		t.Errorf("solution = %v", x)
	}
	// Singular system is rejected.
	if _, err := solveLinearSystem([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
	// Zero pivot needing a row swap.
	x, err = solveLinearSystem([][]float64{{0, 1}, {1, 0}}, []float64{3, 4})
	if err != nil || !x.Equal(mathutil.Vec{4, 3}, 1e-12) {
		t.Errorf("pivoting solution = %v, %v", x, err)
	}
}

func TestCovariance(t *testing.T) {
	block := []mathutil.Vec{{1, 2}, {2, 4}, {3, 6}} // y = 2x, perfectly correlated
	out, err := Covariance{ColA: 0, ColB: 1}.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	// Var(x) = 2/3, Cov = 2·Var(x) = 4/3.
	if math.Abs(out[0]-4.0/3.0) > 1e-12 {
		t.Errorf("Cov = %v, want 4/3", out[0])
	}
	// Cov(x, x) == Var(x).
	vv, _ := Variance{Col: 0}.Run(block)
	cc, _ := Covariance{ColA: 0, ColB: 0}.Run(block)
	if math.Abs(vv[0]-cc[0]) > 1e-12 {
		t.Errorf("Cov(x,x)=%v != Var(x)=%v", cc[0], vv[0])
	}
	if _, err := (Covariance{ColA: 0, ColB: 9}).Run(block); err == nil {
		t.Error("bad column accepted")
	}
}

func TestHistogram(t *testing.T) {
	block := rowsOf(0.5, 1.5, 1.6, 2.5, 99, -99)
	h := Histogram{Col: 0, Lo: 0, Hi: 3, Bins: 3}
	out, err := h.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets [0,1):{0.5, -99 clamped}, [1,2):{1.5,1.6}, [2,3]:{2.5, 99 clamped}.
	want := mathutil.Vec{2.0 / 6, 2.0 / 6, 2.0 / 6}
	if !out.Equal(want, 1e-12) {
		t.Errorf("Histogram = %v, want %v", out, want)
	}
}

func TestHistogramValidation(t *testing.T) {
	block := rowsOf(1)
	if _, err := (Histogram{Col: 0, Lo: 0, Hi: 1, Bins: 0}).Run(block); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := (Histogram{Col: 0, Lo: 1, Hi: 1, Bins: 2}).Run(block); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := (Histogram{Col: 0, Lo: 0, Hi: 1, Bins: 2}).Run(nil); !errors.Is(err, ErrEmptyBlock) {
		t.Error("empty block accepted")
	}
}

// Property: histogram fractions are non-negative and sum to 1.
func TestHistogramSumsToOneProperty(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		var block []mathutil.Vec
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			block = append(block, mathutil.Vec{x})
		}
		if len(block) == 0 {
			return true
		}
		bins := int(binsRaw%16) + 1
		out, err := (Histogram{Col: 0, Lo: -10, Hi: 10, Bins: bins}).Run(block)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
