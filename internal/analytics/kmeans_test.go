package analytics

import (
	"math"
	"testing"
	"testing/quick"

	"gupt/internal/mathutil"
)

// twoBlobs returns n points split between tight blobs at (0,0) and (10,10).
func twoBlobs(seed int64, n int) []mathutil.Vec {
	rng := mathutil.NewRNG(seed)
	out := make([]mathutil.Vec, n)
	for i := range out {
		cx, cy := 0.0, 0.0
		if i%2 == 1 {
			cx, cy = 10, 10
		}
		out[i] = mathutil.Vec{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}
	}
	return out
}

func TestKMeansRecoversBlobs(t *testing.T) {
	block := twoBlobs(1, 200)
	km := KMeans{K: 2, FeatureDims: 2, Iters: 20, Seed: 7}
	out, err := km.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	centers, err := UnflattenCenters(out, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical order sorts by first coordinate: centers[0] near (0,0).
	if centers[0].Dist(mathutil.Vec{0, 0}) > 0.5 {
		t.Errorf("center 0 = %v, want near (0,0)", centers[0])
	}
	if centers[1].Dist(mathutil.Vec{10, 10}) > 0.5 {
		t.Errorf("center 1 = %v, want near (10,10)", centers[1])
	}
}

func TestKMeansDeterministic(t *testing.T) {
	block := twoBlobs(3, 100)
	km := KMeans{K: 2, FeatureDims: 2, Iters: 10, Seed: 5}
	a, err := km.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	b, err := km.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 0) {
		t.Error("KMeans not deterministic for fixed seed")
	}
}

func TestKMeansIgnoresExtraColumns(t *testing.T) {
	block := twoBlobs(4, 100)
	for i := range block {
		block[i] = append(block[i], 999) // label column the program must ignore
	}
	km := KMeans{K: 2, FeatureDims: 2, Iters: 10, Seed: 1}
	out, err := km.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("output dims %d, want 4", len(out))
	}
	for _, v := range out {
		if math.Abs(v) > 15 {
			t.Errorf("center coordinate %v contaminated by label column", v)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	block := twoBlobs(1, 10)
	cases := []KMeans{
		{K: 0, FeatureDims: 2, Iters: 1},
		{K: 2, FeatureDims: 0, Iters: 1},
		{K: 2, FeatureDims: 2, Iters: 0},
		{K: 2, FeatureDims: 5, Iters: 1}, // more dims than data
	}
	for i, c := range cases {
		if _, err := c.Run(block); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := (KMeans{K: 2, FeatureDims: 2, Iters: 1}).Run(nil); err == nil {
		t.Error("empty block accepted")
	}
}

func TestKMeansMoreClustersThanPoints(t *testing.T) {
	// K > n must still return K centers (reseeded from data points).
	block := twoBlobs(1, 3)
	km := KMeans{K: 5, FeatureDims: 2, Iters: 3, Seed: 2}
	out, err := km.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Errorf("output dims %d, want 10", len(out))
	}
}

func TestSortCentersCanonical(t *testing.T) {
	centers := []mathutil.Vec{{5, 1}, {1, 9}, {1, 2}}
	SortCenters(centers)
	want := []mathutil.Vec{{1, 2}, {1, 9}, {5, 1}}
	for i := range want {
		if !centers[i].Equal(want[i], 0) {
			t.Fatalf("sorted = %v", centers)
		}
	}
	// Idempotent.
	before := append([]mathutil.Vec(nil), centers...)
	SortCenters(centers)
	for i := range before {
		if !centers[i].Equal(before[i], 0) {
			t.Fatal("SortCenters not idempotent")
		}
	}
}

// Property: SortCenters is a permutation (no centers lost or invented).
func TestSortCentersPermutationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var centers []mathutil.Vec
		for _, x := range raw {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				continue // sums of near-max floats overflow the checksum
			}
			centers = append(centers, mathutil.Vec{x})
		}
		sum := 0.0
		for _, c := range centers {
			sum += c[0]
		}
		SortCenters(centers)
		sum2 := 0.0
		sorted := true
		for i, c := range centers {
			sum2 += c[0]
			if i > 0 && centers[i-1][0] > c[0] {
				sorted = false
			}
		}
		return sorted && math.Abs(sum-sum2) < 1e-9*(1+math.Abs(sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnflattenCenters(t *testing.T) {
	cs, err := UnflattenCenters(mathutil.Vec{1, 2, 3, 4, 5, 6}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !cs[2].Equal(mathutil.Vec{5, 6}, 0) {
		t.Errorf("UnflattenCenters = %v", cs)
	}
	if _, err := UnflattenCenters(mathutil.Vec{1, 2, 3}, 2, 2); err == nil {
		t.Error("bad length accepted")
	}
}

func TestIntraClusterVariance(t *testing.T) {
	rows := []mathutil.Vec{{0, 0}, {2, 0}, {10, 10}}
	centers := []mathutil.Vec{{1, 0}, {10, 10}}
	// First two rows are distance 1 from (1,0); the last is 0 from (10,10).
	got := IntraClusterVariance(rows, centers)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("ICV = %v, want 2/3", got)
	}
	if IntraClusterVariance(nil, centers) != 0 {
		t.Error("empty rows should give 0")
	}
	// Perfect clustering gives zero.
	if v := IntraClusterVariance([]mathutil.Vec{{1, 0}}, centers); v != 0 {
		t.Errorf("exact point ICV = %v", v)
	}
}

func TestKMeansLowersICV(t *testing.T) {
	block := twoBlobs(8, 300)
	km := KMeans{K: 2, FeatureDims: 2, Iters: 15, Seed: 3}
	out, err := km.Run(block)
	if err != nil {
		t.Fatal(err)
	}
	centers, _ := UnflattenCenters(out, 2, 2)
	fitted := IntraClusterVariance(block, centers)
	random := IntraClusterVariance(block, []mathutil.Vec{{5, 5}, {6, 6}})
	if fitted >= random {
		t.Errorf("fitted ICV %v not better than arbitrary centers %v", fitted, random)
	}
}
