package analytics

import (
	"fmt"
	"math"
	"sort"

	"gupt/internal/mathutil"
)

// KMeans is Lloyd's algorithm with k-means++ seeding, run for a fixed
// number of iterations on the first FeatureDims columns of each record.
// Its output is the K cluster centers, flattened after sorting by first
// coordinate — the canonical ordering the paper applies so that centers
// from different blocks average meaningfully (§8, "Ordering of multiple
// outputs").
type KMeans struct {
	K           int
	FeatureDims int // number of leading columns to cluster on
	Iters       int
	Seed        int64
}

// Name implements Program.
func (k KMeans) Name() string {
	return fmt.Sprintf("kmeans(k=%d,iters=%d)", k.K, k.Iters)
}

// OutputDims implements Program.
func (k KMeans) OutputDims() int { return k.K * k.FeatureDims }

// Run implements Program.
func (k KMeans) Run(block []mathutil.Vec) (mathutil.Vec, error) {
	if len(block) == 0 {
		return nil, ErrEmptyBlock
	}
	if k.K <= 0 || k.Iters <= 0 || k.FeatureDims <= 0 {
		return nil, fmt.Errorf("analytics: kmeans needs positive K, Iters, FeatureDims; got %+v", k)
	}
	if len(block[0]) < k.FeatureDims {
		return nil, fmt.Errorf("analytics: rows have %d dims, kmeans needs %d", len(block[0]), k.FeatureDims)
	}
	pts := make([]mathutil.Vec, len(block))
	for i, r := range block {
		pts[i] = r[:k.FeatureDims].Clone()
	}
	rng := mathutil.NewRNG(k.Seed)
	centers := kmeansPlusPlus(rng, pts, k.K)
	assign := make([]int, len(pts))
	for iter := 0; iter < k.Iters; iter++ {
		// Assignment step.
		for i, p := range pts {
			assign[i] = nearest(centers, p)
		}
		// Update step.
		counts := make([]int, k.K)
		sums := make([]mathutil.Vec, k.K)
		for c := range sums {
			sums[c] = make(mathutil.Vec, k.FeatureDims)
		}
		for i, p := range pts {
			c := assign[i]
			counts[c]++
			sums[c].AddInPlace(p)
		}
		for c := range centers {
			if counts[c] == 0 {
				// Empty cluster: reseed to a random point so K is preserved.
				centers[c] = pts[rng.Intn(len(pts))].Clone()
				continue
			}
			centers[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
	SortCenters(centers)
	out := make(mathutil.Vec, 0, k.K*k.FeatureDims)
	for _, c := range centers {
		out = append(out, c...)
	}
	return out, nil
}

// kmeansPlusPlus seeds k centers: the first uniformly, each subsequent one
// with probability proportional to squared distance from the nearest chosen
// center.
func kmeansPlusPlus(rng *mathutil.RNG, pts []mathutil.Vec, k int) []mathutil.Vec {
	centers := make([]mathutil.Vec, 0, k)
	centers = append(centers, pts[rng.Intn(len(pts))].Clone())
	d2 := make([]float64, len(pts))
	for len(centers) < k {
		for i, p := range pts {
			d2[i] = p.Dist2(centers[nearest(centers, p)])
		}
		centers = append(centers, pts[rng.Categorical(d2)].Clone())
	}
	return centers
}

func nearest(centers []mathutil.Vec, p mathutil.Vec) int {
	best, bestIdx := math.Inf(1), 0
	for c, center := range centers {
		if d := p.Dist2(center); d < best {
			best, bestIdx = d, c
		}
	}
	return bestIdx
}

// SortCenters orders centers lexicographically (first coordinate, then
// subsequent ones), in place. Idempotent; used to canonicalize multi-output
// programs before cross-block averaging.
func SortCenters(centers []mathutil.Vec) {
	sort.Slice(centers, func(i, j int) bool {
		a, b := centers[i], centers[j]
		for d := range a {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
}

// UnflattenCenters splits a flattened center vector back into k centers of
// the given dimensionality.
func UnflattenCenters(flat mathutil.Vec, k, dims int) ([]mathutil.Vec, error) {
	if len(flat) != k*dims {
		return nil, fmt.Errorf("analytics: flat length %d != k*dims %d", len(flat), k*dims)
	}
	out := make([]mathutil.Vec, k)
	for c := 0; c < k; c++ {
		out[c] = flat[c*dims : (c+1)*dims].Clone()
	}
	return out, nil
}

// IntraClusterVariance is the paper's Fig. 4 metric:
// (1/n)·Σ_i Σ_{x∈C_i} |x − c_i|², assigning each point to its nearest
// center. Points use the first len(centers[0]) columns of each record.
func IntraClusterVariance(rows []mathutil.Vec, centers []mathutil.Vec) float64 {
	if len(rows) == 0 || len(centers) == 0 {
		return 0
	}
	dims := len(centers[0])
	var total float64
	for _, r := range rows {
		p := r[:dims]
		total += p.Dist2(centers[nearest(centers, p)])
	}
	return total / float64(len(rows))
}
