// Package workload generates the synthetic datasets used by the experiment
// harness. Each generator is a deterministic stand-in for one of the real
// datasets in the GUPT paper's evaluation, matched on the statistics the
// experiments actually exercise (see DESIGN.md §3 for the substitution
// rationale):
//
//   - LifeSci        → komarix ds1.10 life-sciences dataset (26,733 × 10 PCA
//     components + a binary reactivity label; Figs. 3–6)
//   - CensusIncome   → UCI Adult census ages (32,561 records, mean ≈ 38.58;
//     Figs. 7–8)
//   - InternetAds    → UCI Internet Ads aspect ratios (3,279 records,
//     right-skewed; Fig. 9)
//
// All generators are pure functions of their seed.
package workload

import (
	"math"

	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// LifeSciRows is the row count of the paper's ds1.10 dataset.
const LifeSciRows = 26733

// LifeSciDims is the feature dimensionality of ds1.10 (top 10 principal
// components).
const LifeSciDims = 10

// LifeSciClusters is the number of mixture components the synthetic
// generator plants; k-means experiments recover these.
const LifeSciClusters = 4

// lifeSciMixtureMeans are the component centers, fixed so cluster structure
// is stable across seeds. Spread ±4 with unit component covariance keeps
// the components distinct but overlapping, like PCA-projected compound data.
var lifeSciMixtureMeans = [LifeSciClusters][LifeSciDims]float64{
	{4, 0, -2, 1, 3, -1, 0, 2, -3, 1},
	{-4, 2, 3, -1, 0, 1, -2, 0, 2, -1},
	{0, -4, 1, 3, -2, 2, 1, -3, 0, 2},
	{2, 3, -4, -2, 1, -3, 3, 1, 1, -2},
}

// lifeSciWeights is the ground-truth linear model that labels a compound
// reactive; the logistic noise scale below calibrates Bayes accuracy ≈ 94%,
// matching the paper's non-private baseline.
var lifeSciWeights = [LifeSciDims]float64{1.2, -0.8, 0.5, 0.9, -1.1, 0.4, -0.6, 0.7, 0.3, -0.5}

const lifeSciBias = 0.2
const lifeSciNoiseScale = 0.5

// LifeSci generates the synthetic life-sciences dataset: n rows of
// LifeSciDims features followed by a {0,1} reactivity label in the last
// column. Use LifeSciRows for the paper's size.
func LifeSci(seed int64, n int) *dataset.Table {
	rng := mathutil.NewRNG(seed)
	cols := make([]string, LifeSciDims+1)
	for i := 0; i < LifeSciDims; i++ {
		cols[i] = "pc" + string(rune('0'+i))
	}
	cols[LifeSciDims] = "reactive"
	t := dataset.New(cols)
	for i := 0; i < n; i++ {
		comp := rng.Intn(LifeSciClusters)
		row := make(mathutil.Vec, LifeSciDims+1)
		margin := lifeSciBias
		for j := 0; j < LifeSciDims; j++ {
			row[j] = lifeSciMixtureMeans[comp][j] + rng.NormFloat64()
			margin += lifeSciWeights[j] * row[j]
		}
		if margin+logisticNoise(rng, lifeSciNoiseScale) > 0 {
			row[LifeSciDims] = 1
		}
		if err := t.Append(row); err != nil {
			panic(err) // rows are rectangular by construction
		}
	}
	return t
}

// LifeSciFeatureRange is a generous public bound on every ds1.10 feature
// column, used as the analyst's input range.
func LifeSciFeatureRange() dp.Range { return dp.Range{Lo: -10, Hi: 10} }

// LifeSciRanges returns the per-column public attribute ranges (features
// plus the {0,1} label).
func LifeSciRanges() []dp.Range {
	out := make([]dp.Range, LifeSciDims+1)
	for i := 0; i < LifeSciDims; i++ {
		out[i] = LifeSciFeatureRange()
	}
	out[LifeSciDims] = dp.Range{Lo: 0, Hi: 1}
	return out
}

// logisticNoise draws from the logistic distribution with the given scale
// via inverse CDF.
func logisticNoise(rng *mathutil.RNG, scale float64) float64 {
	u := rng.Float64()
	for u == 0 || u == 1 {
		u = rng.Float64()
	}
	return scale * logit(u)
}

func logit(u float64) float64 {
	return math.Log(u / (1 - u))
}

// CensusRows is the row count of the UCI Adult census dataset.
const CensusRows = 32561

// CensusTrueMean is the mean age of the real dataset, which the synthetic
// generator is calibrated to.
const CensusTrueMean = 38.5816

// CensusIncome generates n ages matching the UCI Adult age column: a
// right-skewed Gamma distribution shifted to start at 17, clipped to
// [17, 90], then linearly recentred so the sample mean is exactly
// CensusTrueMean. Single column "age".
func CensusIncome(seed int64, n int) *dataset.Table {
	rng := mathutil.NewRNG(seed)
	ages := make([]float64, n)
	for i := range ages {
		a := 17 + rng.Gamma(2.6, 8.3)
		ages[i] = mathutil.Clamp(a, 17, 90)
	}
	// Recentre so downstream experiments can compare against the paper's
	// exact true mean; the shift is < 1 year and preserves the shape.
	shift := CensusTrueMean - mathutil.Mean(ages)
	t := dataset.New([]string{"age"})
	for _, a := range ages {
		if err := t.Append(mathutil.Vec{mathutil.Clamp(a+shift, 0, 150)}); err != nil {
			panic(err)
		}
	}
	return t
}

// CensusLooseRange is the paper's "reasonably loose" public bound on age.
func CensusLooseRange() dp.Range { return dp.Range{Lo: 0, Hi: 150} }

// AdsRows is the row count of the UCI Internet Ads dataset.
const AdsRows = 3279

// InternetAds generates n advertisement aspect ratios (width/height):
// log-normal, median ≈ 4.5, long right tail, clipped to [0.1, 60]. Single
// column "aspect".
func InternetAds(seed int64, n int) *dataset.Table {
	rng := mathutil.NewRNG(seed)
	t := dataset.New([]string{"aspect"})
	for i := 0; i < n; i++ {
		r := rng.LogNormal(1.5, 0.8)
		if err := t.Append(mathutil.Vec{mathutil.Clamp(r, 0.1, 60)}); err != nil {
			panic(err)
		}
	}
	return t
}

// AdsRange is the public bound on aspect ratios.
func AdsRange() dp.Range { return dp.Range{Lo: 0, Hi: 60} }
