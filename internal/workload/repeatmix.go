package workload

import (
	"math"

	"gupt/internal/mathutil"
)

// RepeatMix generates a repeat-heavy query schedule: a deterministic
// sequence of n indices over distinct distinct queries, with popularity
// following a Zipf law (exponent ~1.1) so a handful of queries account for
// most of the traffic. This is the dashboard/monitoring access pattern the
// noisy-answer cache targets — the same released statistic polled over and
// over, with a long tail of one-off queries.
//
// Every index in [0, distinct) appears at least once (so a cache-enabled
// run pays for each distinct query exactly once), and the schedule is a
// pure function of seed.
func RepeatMix(seed int64, n, distinct int) []int {
	if distinct > n {
		distinct = n
	}
	rng := mathutil.NewRNG(seed)
	mix := make([]int, 0, n)
	// Coverage first: one slot per distinct query.
	for i := 0; i < distinct; i++ {
		mix = append(mix, i)
	}
	// The rest is Zipf-popular traffic over the same query set.
	weights := make([]float64, distinct)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.1)
	}
	for len(mix) < n {
		mix = append(mix, rng.Categorical(weights))
	}
	// Interleave the coverage slots with the repeats so misses and hits
	// arrive mixed, as they would from real analysts.
	rng.Shuffle(len(mix), func(i, j int) { mix[i], mix[j] = mix[j], mix[i] })
	return mix
}
