package workload

import (
	"math"
	"testing"

	"gupt/internal/mathutil"
)

func TestLifeSciShape(t *testing.T) {
	tbl := LifeSci(1, 500)
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Dims() != LifeSciDims+1 {
		t.Fatalf("dims = %d, want %d", tbl.Dims(), LifeSciDims+1)
	}
	labels := tbl.Column(LifeSciDims)
	for _, l := range labels {
		if l != 0 && l != 1 {
			t.Fatalf("non-binary label %v", l)
		}
	}
	// Classes must both be represented and not wildly imbalanced.
	pos := mathutil.Mean(labels)
	if pos < 0.2 || pos > 0.8 {
		t.Errorf("label balance %v, want within [0.2, 0.8]", pos)
	}
}

func TestLifeSciDeterministic(t *testing.T) {
	a := LifeSci(42, 50)
	b := LifeSci(42, 50)
	for i := 0; i < 50; i++ {
		if !a.Row(i).Equal(b.Row(i), 0) {
			t.Fatal("LifeSci not deterministic in seed")
		}
	}
	c := LifeSci(43, 50)
	same := true
	for i := 0; i < 50; i++ {
		if !a.Row(i).Equal(c.Row(i), 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestLifeSciFeaturesWithinPublicRange(t *testing.T) {
	tbl := LifeSci(7, 2000)
	r := LifeSciFeatureRange()
	outside := 0
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		for j := 0; j < LifeSciDims; j++ {
			if !r.Contains(row[j]) {
				outside++
			}
		}
	}
	// The range is a public loose bound: ±10 around means of magnitude ≤ 4
	// with unit noise, so essentially everything must fit.
	if outside > 0 {
		t.Errorf("%d feature values outside the public range", outside)
	}
}

func TestLifeSciClusterStructure(t *testing.T) {
	tbl := LifeSci(11, 4000)
	// Rows should sit near one of the planted means far more often than a
	// structureless cloud would.
	near := 0
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)[:LifeSciDims]
		best := math.Inf(1)
		for _, m := range lifeSciMixtureMeans {
			d := mathutil.Vec(m[:]).Dist(mathutil.Vec(row))
			if d < best {
				best = d
			}
		}
		// E[dist] for a 10-dim unit Gaussian is ~sqrt(10)≈3.16.
		if best < 5 {
			near++
		}
	}
	if frac := float64(near) / float64(tbl.NumRows()); frac < 0.95 {
		t.Errorf("only %.2f of rows near a planted center", frac)
	}
}

func TestLifeSciRanges(t *testing.T) {
	rs := LifeSciRanges()
	if len(rs) != LifeSciDims+1 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[LifeSciDims].Lo != 0 || rs[LifeSciDims].Hi != 1 {
		t.Errorf("label range = %+v", rs[LifeSciDims])
	}
}

func TestCensusIncomeStats(t *testing.T) {
	tbl := CensusIncome(3, CensusRows)
	if tbl.NumRows() != CensusRows {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	ages := tbl.Column(0)
	if m := mathutil.Mean(ages); math.Abs(m-CensusTrueMean) > 0.01 {
		t.Errorf("mean age = %v, want ~%v", m, CensusTrueMean)
	}
	lo, hi := mathutil.MinMax(ages)
	if lo < 0 || hi > 150 {
		t.Errorf("ages outside public range: [%v, %v]", lo, hi)
	}
	// Right-skewed: mean above median.
	if med := mathutil.Median(ages); med >= mathutil.Mean(ages) {
		t.Errorf("expected right skew, median %v >= mean %v", med, mathutil.Mean(ages))
	}
}

func TestCensusDeterministic(t *testing.T) {
	a := CensusIncome(5, 100)
	b := CensusIncome(5, 100)
	for i := 0; i < 100; i++ {
		if a.Row(i)[0] != b.Row(i)[0] {
			t.Fatal("CensusIncome not deterministic")
		}
	}
}

func TestInternetAdsStats(t *testing.T) {
	tbl := InternetAds(9, AdsRows)
	if tbl.NumRows() != AdsRows || tbl.Dims() != 1 {
		t.Fatalf("shape %dx%d", tbl.NumRows(), tbl.Dims())
	}
	xs := tbl.Column(0)
	r := AdsRange()
	for _, x := range xs {
		if !r.Contains(x) {
			t.Fatalf("aspect %v outside range", x)
		}
	}
	mean, med := mathutil.Mean(xs), mathutil.Median(xs)
	if mean <= med {
		t.Errorf("expected long right tail: mean %v <= median %v", mean, med)
	}
	if med < 3 || med > 6.5 {
		t.Errorf("median %v outside calibrated band [3, 6.5]", med)
	}
}

func TestGammaSampler(t *testing.T) {
	g := mathutil.NewRNG(1)
	const shape, scale = 2.6, 8.3
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Gamma(shape, scale)
	}
	wantMean := shape * scale
	if m := mathutil.Mean(xs); math.Abs(m-wantMean)/wantMean > 0.02 {
		t.Errorf("Gamma mean = %v, want ~%v", m, wantMean)
	}
	wantVar := shape * scale * scale
	if v := mathutil.Variance(xs); math.Abs(v-wantVar)/wantVar > 0.05 {
		t.Errorf("Gamma variance = %v, want ~%v", v, wantVar)
	}
	// Shape < 1 boost path.
	for i := 0; i < 1000; i++ {
		if x := g.Gamma(0.5, 1); x < 0 {
			t.Fatalf("negative Gamma draw %v", x)
		}
	}
}

func TestRepeatMix(t *testing.T) {
	const n, distinct = 400, 40
	mix := RepeatMix(7, n, distinct)
	if len(mix) != n {
		t.Fatalf("len = %d, want %d", len(mix), n)
	}
	counts := make([]int, distinct)
	for _, idx := range mix {
		if idx < 0 || idx >= distinct {
			t.Fatalf("index %d out of [0, %d)", idx, distinct)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("query %d never scheduled; coverage guarantee broken", i)
		}
	}
	// Zipf head-heaviness: the most popular query dominates the median one.
	if counts[0] < 4*counts[distinct/2] {
		t.Errorf("schedule not repeat-heavy: head %d vs median %d", counts[0], counts[distinct/2])
	}
	// Determinism and seed sensitivity.
	again := RepeatMix(7, n, distinct)
	for i := range mix {
		if mix[i] != again[i] {
			t.Fatal("RepeatMix is not a pure function of its seed")
		}
	}
	other := RepeatMix(8, n, distinct)
	same := 0
	for i := range mix {
		if mix[i] == other[i] {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced an identical schedule")
	}
	// n smaller than distinct clips rather than padding.
	if short := RepeatMix(7, 5, distinct); len(short) != 5 {
		t.Fatalf("short mix len = %d, want 5", len(short))
	}
}
