package telemetry

import (
	"crypto/subtle"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// DatasetStats is the per-dataset operator view served at /datasets. The
// epsilon figures are platform-side ledger state (the accountant), which
// the protocol already exposes to analysts via the budget op; the counters
// are coarse event counts. Nothing here derives from record values.
type DatasetStats struct {
	Name string `json:"name"`
	// TotalEpsilon / SpentEpsilon / RemainingEpsilon are the dataset's
	// lifetime budget ledger.
	TotalEpsilon     float64 `json:"totalEpsilon"`
	SpentEpsilon     float64 `json:"spentEpsilon"`
	RemainingEpsilon float64 `json:"remainingEpsilon"`
	// Queries counts settled charges (each successful charge is one query
	// or one session batch).
	Queries int `json:"queries"`
	// Refusals counts charges rejected for insufficient budget — the normal
	// end-of-life signal for a dataset.
	Refusals int64 `json:"refusals"`
}

// LedgerStatus is the durable-ledger operator view served at /ledger.
// Everything here is platform metadata — record counts, fsync and snapshot
// timestamps — never ε values per query or anything derived from records.
type LedgerStatus struct {
	// Enabled is false when the server runs without a durable ledger
	// (budget state is then lost on crash; see SECURITY.md).
	Enabled bool `json:"enabled"`
	// Dir is the ledger directory.
	Dir string `json:"dir,omitempty"`
	// SyncPolicy is the configured fsync policy ("every-record",
	// "batched").
	SyncPolicy string `json:"syncPolicy,omitempty"`
	// Records is the lifetime record count (highest sequence number).
	Records uint64 `json:"records"`
	// SyncedRecords is the durable watermark; Records - SyncedRecords is
	// the volatile tail a crash right now would replay provisionally.
	SyncedRecords uint64 `json:"syncedRecords"`
	// WALBytes is the current write-ahead log size.
	WALBytes int64 `json:"walBytes"`
	// Datasets counts datasets with ledger state.
	Datasets int `json:"datasets"`
	// LastFsync is the completion time of the most recent fsync.
	LastFsync time.Time `json:"lastFsync"`
	// SnapshotSeq and SnapshotAt describe the newest compaction snapshot;
	// SnapshotAgeSeconds is its age at serve time (-1 when none exists).
	SnapshotSeq        uint64    `json:"snapshotSeq"`
	SnapshotAt         time.Time `json:"snapshotAt"`
	SnapshotAgeSeconds float64   `json:"snapshotAgeSeconds"`
	// RecoveredTornTail reports that boot-time recovery truncated a torn
	// final record (expected after a crash mid-append, not during clean
	// operation).
	RecoveredTornTail bool `json:"recoveredTornTail"`
	// Poisoned, when non-empty, is the error that put the ledger into its
	// fail-closed state (a WAL swap whose rename could not be made
	// durable); all charges are being refused until the operator
	// intervenes.
	Poisoned string `json:"poisoned,omitempty"`
}

// CacheStatus is the noisy-answer-cache operator view served at /cache.
// It mirrors qcache.Stats (telemetry must not import qcache, which depends
// on this package for its counters): event counts and sizes only, never
// fingerprints or cached answers.
type CacheStatus struct {
	// Enabled is false when the server runs with the cache off
	// (-cache-entries 0); all other fields are then zero.
	Enabled       bool  `json:"enabled"`
	Entries       int   `json:"entries"`
	MaxEntries    int   `json:"maxEntries"`
	Bytes         int64 `json:"bytes"`
	TTLSeconds    int64 `json:"ttlSeconds"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Expirations   int64 `json:"expirations"`
	Invalidations int64 `json:"invalidations"`
}

// WorkerStatus is one worker's row in the fleet view served at /workers.
// It is defined here (not in compman, which depends on this package) so
// the pool can hand snapshots to the admin plane without an import cycle.
// Everything is platform-side accounting — addresses, counts, health —
// never record values or query parameters.
type WorkerStatus struct {
	// Addr is the worker daemon's dial address.
	Addr string `json:"addr"`
	// Conns is how many connections have been dialed to this worker;
	// MaxConns is its connection budget (the per-worker concurrency cap).
	Conns    int `json:"conns"`
	MaxConns int `json:"maxConns"`
	// Inflight is the number of blocks currently dispatched to this worker.
	Inflight int64 `json:"inflight"`
	// Done counts answered blocks (including application-level errors:
	// those replies prove the worker healthy). Failed counts
	// transport-level failures.
	Done   int64 `json:"done"`
	Failed int64 `json:"failed"`
	// Unhealthy reports that consecutive transport failures have demoted
	// this worker to last-resort in block assignment until it answers again.
	Unhealthy bool `json:"unhealthy"`
}

// TenantSpendRow is one dataset's row in the per-tenant /ledger?tenant=
// slice: how much ε the tenant has spent there and what its quota is.
type TenantSpendRow struct {
	Dataset      string  `json:"dataset"`
	SpentEpsilon float64 `json:"spentEpsilon"`
	// QuotaEpsilon is the tenant's ε quota on the dataset; Unlimited marks
	// a grant without a quota.
	QuotaEpsilon float64 `json:"quotaEpsilon,omitempty"`
	Unlimited    bool    `json:"unlimited,omitempty"`
}

// TenantLedgerSlice is the /ledger?tenant=<id> response: the tenant's
// per-dataset spend, recovered from the same WAL replay that seeds the
// quota keeper.
type TenantLedgerSlice struct {
	Tenant   string           `json:"tenant"`
	Datasets []TenantSpendRow `json:"datasets"`
}

// AdminConfig wires the admin HTTP handler to a live server.
type AdminConfig struct {
	// Registry is the metrics registry served at /metrics.
	Registry *Registry
	// Datasets supplies the per-dataset rows for /datasets; nil serves an
	// empty list.
	Datasets func() []DatasetStats
	// Ledger supplies the durable-ledger status for /ledger; nil serves
	// {"enabled": false}.
	Ledger func() LedgerStatus
	// Cache supplies the noisy-answer-cache status for /cache; nil serves
	// {"enabled": false}.
	Cache func() CacheStatus
	// Health reports serving health for /healthz; nil means always healthy.
	Health func() error
	// Traces supplies recently completed trace snapshots for /traces
	// (bucketed durations only); nil serves an empty list.
	Traces func() []TraceSnapshot
	// Queries supplies the in-flight query table for /queries; nil serves
	// an empty list.
	Queries func() []InflightSnapshot
	// Workers supplies the per-worker fleet rows for /workers; nil serves
	// an empty list (local execution, no fleet).
	Workers func() []WorkerStatus
	// Budget supplies the ε burn-down rows for /budget; nil serves an
	// empty list.
	Budget func() []BudgetRow
	// Flight supplies the flight-recorder ring for /flight, newest first;
	// nil serves an empty list.
	Flight func() []FlightRecord
	// TenantSpend supplies one tenant's per-dataset spend for
	// /ledger?tenant=<id>; nil means the tenant slice is unavailable and
	// /ledger always serves the global LedgerStatus.
	TenantSpend func(tenant string) []TenantSpendRow
	// SkipRuntimeMetrics disables sampling Go runtime health
	// (runtime.goroutines, runtime.heap_objects_bytes, runtime.gc_cycles,
	// runtime.gc_pause_millis) into the registry on each /metrics scrape.
	SkipRuntimeMetrics bool
	// Token, when non-empty, gates every route except /healthz behind a
	// shared admin secret: requests must carry it as `Authorization: Bearer
	// <token>` or `X-Admin-Token: <token>`. Comparison is constant-time.
	// /healthz stays open — load balancers probe it and it reveals nothing.
	Token string
	// Extra mounts additional operator routes (e.g. guptd's /tenants) on
	// the same mux, behind the same token gate.
	Extra map[string]http.Handler
}

// AdminHandler builds the guptd admin endpoint:
//
//	/metrics       registry snapshot: Prometheus text format when the
//	               Accept header asks for text/plain or openmetrics (or
//	               ?format=prometheus), the JSON Snapshot otherwise —
//	               bucketed timings only, in both formats
//	/healthz       200 "ok" or 503 with the health error
//	/datasets      JSON []DatasetStats, sorted by name
//	/ledger        JSON LedgerStatus for the durable budget ledger;
//	               ?tenant=<id> serves that tenant's per-dataset spend
//	/cache         JSON CacheStatus for the noisy-answer cache
//	/traces        JSON []TraceSnapshot, newest first (ring buffer of
//	               completed cross-process traces, durations bucketed);
//	               ?tenant=<id> narrows to one tenant's queries
//	/queries       JSON []InflightSnapshot (live queries: stage + elapsed
//	               bucket); ?tenant=<id> narrows
//	/workers       JSON []WorkerStatus (fleet skew: per-worker in-flight,
//	               answered/failed counts, health)
//	/budget        JSON []BudgetRow (ε burn-down: remaining budget, EWMA
//	               burn rate, time-to-exhaustion per tenant/dataset);
//	               ?tenant=<id> narrows
//	/flight        JSON []FlightRecord (the query flight recorder, newest
//	               first); ?tenant=<id> narrows
//	/debug/pprof/  the standard net/http/pprof profiling surface
//
// The handler is for the operator's loopback/ops network. It intentionally
// exports only what SECURITY.md classifies as safe for operators; see the
// "Telemetry and the observability side channel" section before exposing
// it any wider.
func AdminHandler(cfg AdminConfig) http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range adminRoutes(cfg) {
		mux.Handle(pattern, h)
	}
	if cfg.Token == "" {
		return mux
	}
	return tokenGate(cfg.Token, mux)
}

// AdminRoutePatterns lists every route pattern the handler serves for the
// given config, sorted — the source of truth for guptd's startup log and
// for the token-gating test that asserts no route ships ungated.
func AdminRoutePatterns(cfg AdminConfig) []string {
	routes := adminRoutes(cfg)
	patterns := make([]string, 0, len(routes))
	for p := range routes {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	return patterns
}

// adminRoutes builds the route table; AdminHandler registers it and
// AdminRoutePatterns enumerates it, so the two can never drift.
func adminRoutes(cfg AdminConfig) map[string]http.Handler {
	routes := map[string]http.Handler{}
	handle := func(pattern string, h http.HandlerFunc) { routes[pattern] = h }

	handle("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	var sampler *RuntimeSampler
	if !cfg.SkipRuntimeMetrics {
		sampler = NewRuntimeSampler(cfg.Registry)
	}
	handle("/metrics", func(w http.ResponseWriter, req *http.Request) {
		sampler.Sample()
		snap := cfg.Registry.Snapshot()
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = WritePrometheus(w, snap)
			return
		}
		writeJSON(w, snap)
	})

	handle("/traces", func(w http.ResponseWriter, req *http.Request) {
		var traces []TraceSnapshot
		if cfg.Traces != nil {
			traces = cfg.Traces()
		}
		traces = filterTenant(traces, tenantParam(req),
			func(t TraceSnapshot) string { return t.Tenant })
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		writeJSON(w, traces)
	})

	handle("/queries", func(w http.ResponseWriter, req *http.Request) {
		var queries []InflightSnapshot
		if cfg.Queries != nil {
			queries = cfg.Queries()
		}
		queries = filterTenant(queries, tenantParam(req),
			func(q InflightSnapshot) string { return q.Tenant })
		if queries == nil {
			queries = []InflightSnapshot{}
		}
		writeJSON(w, queries)
	})

	handle("/workers", func(w http.ResponseWriter, req *http.Request) {
		var workers []WorkerStatus
		if cfg.Workers != nil {
			workers = cfg.Workers()
		}
		if workers == nil {
			workers = []WorkerStatus{}
		}
		writeJSON(w, workers)
	})

	handle("/budget", func(w http.ResponseWriter, req *http.Request) {
		var rows []BudgetRow
		if cfg.Budget != nil {
			rows = cfg.Budget()
		}
		rows = filterTenant(rows, tenantParam(req),
			func(r BudgetRow) string { return r.Tenant })
		if rows == nil {
			rows = []BudgetRow{}
		}
		writeJSON(w, rows)
	})

	handle("/flight", func(w http.ResponseWriter, req *http.Request) {
		var flights []FlightRecord
		if cfg.Flight != nil {
			flights = cfg.Flight()
		}
		flights = filterTenant(flights, tenantParam(req),
			func(f FlightRecord) string { return f.Tenant })
		if flights == nil {
			flights = []FlightRecord{}
		}
		writeJSON(w, flights)
	})

	handle("/ledger", func(w http.ResponseWriter, req *http.Request) {
		if tenant := tenantParam(req); tenant != "" && cfg.TenantSpend != nil {
			rows := cfg.TenantSpend(tenant)
			if rows == nil {
				rows = []TenantSpendRow{}
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].Dataset < rows[j].Dataset })
			writeJSON(w, TenantLedgerSlice{Tenant: tenant, Datasets: rows})
			return
		}
		var st LedgerStatus
		if cfg.Ledger != nil {
			st = cfg.Ledger()
		}
		writeJSON(w, st)
	})

	handle("/cache", func(w http.ResponseWriter, req *http.Request) {
		var st CacheStatus
		if cfg.Cache != nil {
			st = cfg.Cache()
		}
		writeJSON(w, st)
	})

	handle("/datasets", func(w http.ResponseWriter, req *http.Request) {
		var stats []DatasetStats
		if cfg.Datasets != nil {
			stats = cfg.Datasets()
		}
		if stats == nil {
			stats = []DatasetStats{}
		}
		sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
		writeJSON(w, stats)
	})

	handle("/debug/pprof/", pprof.Index)
	handle("/debug/pprof/cmdline", pprof.Cmdline)
	handle("/debug/pprof/profile", pprof.Profile)
	handle("/debug/pprof/symbol", pprof.Symbol)
	handle("/debug/pprof/trace", pprof.Trace)

	for pattern, h := range cfg.Extra {
		routes[pattern] = h
	}
	return routes
}

// tenantParam extracts the shared ?tenant=<id> narrowing parameter.
func tenantParam(req *http.Request) string {
	return req.URL.Query().Get("tenant")
}

// filterTenant keeps the items belonging to tenant; an empty tenant keeps
// everything. The tenant id is operator-visible metadata the audit log and
// ledger already record per query, so narrowing by it reveals nothing new.
func filterTenant[T any](items []T, tenant string, of func(T) string) []T {
	if tenant == "" {
		return items
	}
	kept := make([]T, 0, len(items))
	for _, it := range items {
		if of(it) == tenant {
			kept = append(kept, it)
		}
	}
	return kept
}

// tokenGate requires the admin token on every route except /healthz. Both
// accepted carriers compare in constant time against the configured secret;
// the refusal is uniform (401, no detail) whether the token is absent or
// wrong.
func tokenGate(token string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/healthz" {
			next.ServeHTTP(w, req)
			return
		}
		presented := req.Header.Get("X-Admin-Token")
		if presented == "" {
			presented = strings.TrimPrefix(req.Header.Get("Authorization"), "Bearer ")
		}
		if subtle.ConstantTimeCompare([]byte(presented), []byte(token)) != 1 {
			http.Error(w, "admin token required", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, req)
	})
}

// wantsPrometheus decides the /metrics representation. The JSON snapshot
// stays the default (existing dashboards and the gupt-cli admin table
// parse it); Prometheus scrapers advertise text/plain or openmetrics in
// Accept, and ?format=prometheus / ?format=json force either one.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a Snapshot or []DatasetStats cannot fail; an Encode error
	// here means the client went away, which http handles.
	_ = enc.Encode(v)
}
