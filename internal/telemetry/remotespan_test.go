package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestAddRemoteSpansMerge(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace(reg, "q1", "census")
	tr.StartSpan(StageBlocks).End(StatusOK)
	tr.AddRemoteSpans("worker:127.0.0.1:9000", []RemoteSpan{
		{Stage: StageWorkerSetup, Status: StatusOK, Millis: 1.5},
		{Stage: StageWorkerExecute, Millis: 40}, // empty status defaults to ok
	})

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	ws := spans[1]
	if ws.Process != "worker:127.0.0.1:9000" || ws.Stage != StageWorkerSetup || ws.Status != StatusOK {
		t.Fatalf("merged span = %+v", ws)
	}
	if spans[2].Status != StatusOK {
		t.Fatalf("empty wire status should default to ok: %+v", spans[2])
	}

	// Merged spans feed the same bucketed stage histograms as local ones.
	snap := reg.Snapshot()
	if h := snap.Histograms["trace.stage."+StageWorkerExecute+".millis"]; h.Count != 1 {
		t.Fatalf("worker stage histogram count = %d", h.Count)
	}

	// And they render in the unsafe trace string with the process label.
	if s := tr.String(); !strings.Contains(s, StageWorkerSetup+"@worker:127.0.0.1:9000=ok/") {
		t.Fatalf("trace string missing labeled worker span: %q", s)
	}
}

func TestAddRemoteSpansSanitizes(t *testing.T) {
	tr := NewTrace(nil, "q1", "census")
	long := strings.Repeat("x", 500)
	tr.AddRemoteSpans(long, []RemoteSpan{
		{Stage: long, Status: long, Millis: 1},
		{Stage: "nan", Millis: math.NaN()},
		{Stage: "inf", Millis: math.Inf(1)},
		{Stage: "neg", Millis: -4},
	})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("non-finite/negative durations must be dropped; got %d spans", len(spans))
	}
	s := spans[0]
	if len(s.Stage) > maxWireStringLen || len(s.Status) > maxWireStringLen || len(s.Process) > maxWireStringLen {
		t.Fatalf("wire strings not capped: stage=%d status=%d process=%d", len(s.Stage), len(s.Status), len(s.Process))
	}
}

func TestAddRemoteSpansCap(t *testing.T) {
	tr := NewTrace(nil, "q1", "census")
	batch := make([]RemoteSpan, maxRemoteSpans+10)
	for i := range batch {
		batch[i] = RemoteSpan{Stage: StageWorkerExecute, Millis: 1}
	}
	tr.AddRemoteSpans("worker:a", batch)
	tr.AddRemoteSpans("worker:b", []RemoteSpan{{Stage: StageWorkerExecute, Millis: 1}})
	if got := len(tr.Spans()); got != maxRemoteSpans {
		t.Fatalf("retained %d remote spans, cap is %d", got, maxRemoteSpans)
	}
	snap := tr.snapshot("ok")
	if snap.RemoteSpansDropped != 11 {
		t.Fatalf("dropped = %d, want 11", snap.RemoteSpansDropped)
	}
}

func TestTraceOnStageHook(t *testing.T) {
	tr := NewTrace(nil, "q1", "census")
	var stages []string
	tr.OnStage = func(stage string) { stages = append(stages, stage) }
	tr.StartSpan(StageAdmission).End(StatusOK)
	tr.StartSpan(StageBudget).End(StatusOK)
	if len(stages) != 2 || stages[0] != StageAdmission || stages[1] != StageBudget {
		t.Fatalf("OnStage saw %v", stages)
	}
}

func TestBucketUpperMillis(t *testing.T) {
	bounds := []float64{1, 10, 100}
	cases := []struct{ ms, want float64 }{
		{0, 1}, {1, 1}, {1.01, 10}, {10, 10}, {99, 100}, {100, 100}, {101, -1},
	}
	for _, c := range cases {
		if got := BucketUpperMillis(c.ms, bounds); got != c.want {
			t.Errorf("BucketUpperMillis(%v) = %v, want %v", c.ms, got, c.want)
		}
	}
}
