// Package telemetry is GUPT's observability layer: a lock-free metrics
// registry (counters, gauges, fixed-bucket latency histograms), lightweight
// query-lifecycle tracing, and an admin HTTP handler that exposes the
// registry to operators.
//
// The paper's §6.3 timing-attack analysis constrains what this package may
// export. Nothing here ever holds record data or block contents, and every
// exported timing is a fixed-bucket count: /metrics can tell an operator
// "most queries land in the 50–100ms bucket", never "query 17 took
// 73.218ms". Raw per-span durations exist only inside Trace and leave the
// process solely through the explicitly opt-in slow-query trace log
// (compman.ServerConfig.TraceLogger), which SECURITY.md documents as unsafe
// to expose to adversarial analysts. See DESIGN.md §8 and SECURITY.md
// ("Telemetry and the observability side channel").
//
// All types are nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, *Trace or *Span are no-ops, so instrumented code paths need no
// "is telemetry on?" branches and cost one predictable branch when disabled.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (occupancy, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic instantaneous float64 value. It exists for
// quantities that are genuinely fractional — remaining privacy budget,
// burn rates in ε/minute — never for durations: timings must go through
// bucketed histograms (§6.3), and the Prometheus lint test enforces that
// no float gauge carries a duration-shaped name.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named metrics. Lookup takes a short read-locked map access;
// the metrics themselves are updated lock-free, so hot paths hoist the
// lookup (instrumented components resolve their counters once at
// construction) and pay only an atomic add per event.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.floatGauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.floatGauges[name]; g == nil {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (milliseconds) on first use. Later calls with a different
// bounds slice return the existing histogram unchanged: bucket layouts are
// fixed for the life of the registry, which is what keeps exports
// side-channel-coarse and snapshots comparable over time.
func (r *Registry) Histogram(name string, boundsMillis []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram(boundsMillis)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-serializable view of a registry. Map
// keys marshal in sorted order, so identical registry states produce
// byte-identical JSON.
type Snapshot struct {
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
	// FloatGauges holds fractional instantaneous values (remaining ε,
	// burn rates); omitted when no float gauge is registered so older
	// snapshot consumers see unchanged JSON.
	FloatGauges map[string]float64           `json:"floatGauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. The counters are read individually with
// atomic loads, so the snapshot is per-metric consistent (each value is a
// real value that metric held), not a global atomic cut — fine for
// operator dashboards, and the only option without a stop-the-world lock.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	if len(r.floatGauges) > 0 {
		snap.FloatGauges = make(map[string]float64, len(r.floatGauges))
		for name, g := range r.floatGauges {
			snap.FloatGauges[name] = g.Value()
		}
	}
	for name, h := range r.histograms {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// MetricNames returns the sorted names of all registered metrics, mostly
// for tests and debugging.
func (r *Registry) MetricNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.floatGauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.floatGauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
