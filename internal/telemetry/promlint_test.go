package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fullRegistry builds a registry carrying one of every metric family the
// platform exports, including the PR 10 additions (float gauges from the
// burn-down plane, scheduler/fan-out stage histograms).
func fullRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("compman.queries_ok").Add(3)
	reg.Counter("compman.pool.demotions").Inc()
	reg.Gauge("compman.pool.inflight").Set(2)
	reg.Histogram("compman.query_latency_millis", DefaultLatencyBuckets).Observe(12 * time.Millisecond)
	reg.Histogram("trace.stage."+StageSchedQueue+".millis", DefaultLatencyBuckets).Observe(time.Millisecond)
	reg.Histogram("trace.stage."+StageFanoutDispatch+".millis", DefaultLatencyBuckets).Observe(3 * time.Millisecond)
	reg.Histogram("compman.sched.deadline_slack.millis", DefaultLatencyBuckets).Observe(40 * time.Millisecond)

	p := NewBudgetPlane(reg)
	p.Seed("", "census", 0.5, 2)
	p.Observe("acme", "census", 0.25, 0.25, 1)
	return reg
}

// The no-raw-durations invariant over every metric family: duration-named
// metrics may only exist as bucketed histograms. This is the regression
// gate for every future metric addition — a raw duration gauge anywhere in
// the registry fails it.
func TestLintNoRawDurationsOverFullRegistry(t *testing.T) {
	reg := fullRegistry(t)
	if err := LintNoRawDurations(reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestLintNoRawDurationsCatchesViolations(t *testing.T) {
	cases := []func(*Registry){
		func(r *Registry) { r.Counter("compman.total_query_millis").Add(100) },
		func(r *Registry) { r.Gauge("sched.queue_wait_seconds").Set(3) },
		func(r *Registry) { r.FloatGauge("worker.mean_latency").Set(1.5) },
		func(r *Registry) { r.Gauge("block.elapsed_ms").Set(9) },
	}
	for i, plant := range cases {
		r := NewRegistry()
		plant(r)
		if err := LintNoRawDurations(r.Snapshot()); err == nil {
			t.Errorf("case %d: raw-duration metric passed the lint", i)
		}
	}
}

// The full-registry exposition must be valid 0.0.4 text: typed, grammatical
// names, numeric values, histogram series only via _bucket/_count, and no
// _sum anywhere.
func TestLintPrometheusOverFullRegistry(t *testing.T) {
	reg := fullRegistry(t)
	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(sb.String()); err != nil {
		t.Fatalf("%v\nexposition:\n%s", err, sb.String())
	}
	// The new float gauges must actually appear in the exposition.
	out := sb.String()
	for _, want := range []string{
		"budget_remaining_epsilon_census ",
		"budget_burn_epsilon_per_minute_census_tenant_acme ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestLintPrometheusCatchesMalformedText(t *testing.T) {
	cases := map[string]string{
		"untyped sample":    "foo 1\n",
		"bad type":          "# TYPE foo summary\nfoo 1\n",
		"bad name":          "# TYPE 9foo counter\n9foo 1\n",
		"bad value":         "# TYPE foo counter\nfoo one\n",
		"histogram bare":    "# TYPE h histogram\nh 3\n",
		"sum series":        "# TYPE h histogram\nh_sum 12\n",
		"stray label":       "# TYPE g gauge\ng{job=\"x\"} 1\n",
		"three-field line":  "# TYPE g gauge\ng 1 2\n",
		"malformed comment": "# HELP g something\ng 1\n",
	}
	for name, text := range cases {
		if err := LintPrometheus(text); err == nil {
			t.Errorf("%s: lint accepted %q", name, text)
		}
	}
}

func TestLintPrometheusAcceptsRealExposition(t *testing.T) {
	// A histogram's own series must pass: buckets, +Inf, count.
	reg := NewRegistry()
	reg.Histogram("lat.millis", []float64{1, 10}).ObserveMillis(4)
	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(sb.String()); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
}
