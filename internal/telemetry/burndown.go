package telemetry

import (
	"sort"
	"sync"
	"time"
)

// The ε burn-down plane: a live view of how fast each principal is
// consuming privacy budget, per dataset. Every successful charge feeds a
// row keyed by (tenant, dataset) — tenant "" is the dataset's global
// accountant — and each row tracks the remaining budget, an EWMA burn
// rate, the ε burned inside a sliding window, and a time-to-exhaustion
// forecast. Crossing a remaining-budget threshold fires a one-shot event
// the server turns into an audit record.
//
// Everything here is ε arithmetic, not timing: remaining budget and burn
// rates are exact values the analyst already learns through budget
// refusals and /datasets, so exporting them raw does not widen the §6.3
// side channel (timings stay bucketed elsewhere).

// DefaultBurnWindow is the sliding window over which WindowEpsilon is
// summed and the window burn rate computed.
const DefaultBurnWindow = 5 * time.Minute

// burnThresholds are the remaining-budget fractions that fire a one-shot
// BudgetEvent as a row's remaining/total crosses below them, in firing
// order.
var burnThresholds = []float64{0.5, 0.25, 0.10, 0.05, 0.01}

// ewmaBurnAlpha weights the newest per-charge burn-rate observation; the
// same smoothing constant the scheduler uses for service times.
const ewmaBurnAlpha = 0.2

// BudgetEvent is a threshold crossing: the row's remaining budget dropped
// below Fraction of its total for the first time.
type BudgetEvent struct {
	// Tenant is empty for the dataset's global accountant row.
	Tenant  string
	Dataset string
	// Fraction is the remaining-budget threshold crossed (0.25 = "less
	// than a quarter of the budget is left").
	Fraction         float64
	EpsilonRemaining float64
	EpsilonTotal     float64
}

// BudgetRow is the exported view of one burn-down row, served at /budget.
type BudgetRow struct {
	// Tenant is empty for the dataset's global accountant.
	Tenant  string `json:"tenant,omitempty"`
	Dataset string `json:"dataset"`
	// Unlimited marks a row with no finite budget (a tenant with no quota
	// on this dataset); the ε fields then carry only Spent.
	Unlimited        bool    `json:"unlimited,omitempty"`
	EpsilonTotal     float64 `json:"epsilonTotal,omitempty"`
	EpsilonSpent     float64 `json:"epsilonSpent"`
	EpsilonRemaining float64 `json:"epsilonRemaining,omitempty"`
	// Charges counts the successful charges observed by the plane.
	Charges int64 `json:"charges"`
	// BurnPerMinute is the EWMA burn rate in ε per minute.
	BurnPerMinute float64 `json:"burnPerMinute"`
	// WindowEpsilon is the ε burned inside the sliding window ending now;
	// WindowSeconds is that window's length.
	WindowEpsilon float64 `json:"windowEpsilon"`
	WindowSeconds int64   `json:"windowSeconds"`
	// SecondsToExhaustion forecasts when the remaining budget runs out at
	// the current EWMA burn rate; 0 means no forecast (no finite budget,
	// or no burn observed yet).
	SecondsToExhaustion int64 `json:"secondsToExhaustion,omitempty"`
	// ThresholdsCrossed lists the remaining-budget fractions already
	// crossed, largest first.
	ThresholdsCrossed []float64 `json:"thresholdsCrossed,omitempty"`
}

type burnKey struct{ tenant, dataset string }

type burnRow struct {
	unlimited bool
	total     float64
	spent     float64
	charges   int64
	// ratePerSec is the EWMA burn rate in ε/second.
	ratePerSec float64
	// window holds the charges inside the sliding window, oldest first;
	// windowSum is their ε total, maintained incrementally.
	window    []burnSample
	windowSum float64
	// crossed[i] is true once burnThresholds[i] has fired.
	crossed [5]bool

	remainingGauge *FloatGauge
	burnGauge      *FloatGauge
}

type burnSample struct {
	at  time.Time
	eps float64
}

// BudgetPlane aggregates burn-down rows. The zero value is unusable; use
// NewBudgetPlane. All methods are nil-safe so the plane can be absent
// (single-tenant guptd without an admin plane, library embedders).
type BudgetPlane struct {
	mu      sync.Mutex
	reg     *Registry
	window  time.Duration
	now     func() time.Time
	onEvent func(BudgetEvent)
	rows    map[burnKey]*burnRow
}

// NewBudgetPlane builds a plane that publishes per-row float gauges into
// reg (which may be nil). The sliding window is DefaultBurnWindow.
func NewBudgetPlane(reg *Registry) *BudgetPlane {
	return &BudgetPlane{
		reg:    reg,
		window: DefaultBurnWindow,
		now:    time.Now,
		rows:   make(map[burnKey]*burnRow),
	}
}

// SetOnEvent registers the threshold-crossing callback. It is invoked
// synchronously from Observe with the plane's lock released, so it may
// append audit records. Nil-safe.
func (p *BudgetPlane) SetOnEvent(fn func(BudgetEvent)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.onEvent = fn
	p.mu.Unlock()
}

// metricSuffix names a row's gauges: "<dataset>" for the global row,
// "<dataset>.tenant.<tenant>" for a tenant row.
func metricSuffix(k burnKey) string {
	if k.tenant == "" {
		return k.dataset
	}
	return k.dataset + ".tenant." + k.tenant
}

func (p *BudgetPlane) rowLocked(tenant, dataset string) *burnRow {
	k := burnKey{tenant, dataset}
	r := p.rows[k]
	if r == nil {
		r = &burnRow{
			remainingGauge: p.reg.FloatGauge("budget.remaining_epsilon." + metricSuffix(k)),
			burnGauge:      p.reg.FloatGauge("budget.burn_epsilon_per_minute." + metricSuffix(k)),
		}
		p.rows[k] = r
	}
	return r
}

// Seed creates or refreshes a row from authoritative accountant state
// without counting a charge: the server seeds global rows at dataset
// registration and tenant rows at grant time, so /budget is populated
// before the first query. total <= 0 marks the row unlimited. Nil-safe.
func (p *BudgetPlane) Seed(tenant, dataset string, spent, total float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.rowLocked(tenant, dataset)
	r.spent = spent
	r.total = total
	r.unlimited = total <= 0
	p.publishLocked(r)
}

// Observe records one successful charge of eps against the row, with the
// authoritative post-charge spent/total taken from the accountant (so
// refunds and concurrent charges can never drift the plane). Fires
// threshold events after releasing the lock. Nil-safe.
func (p *BudgetPlane) Observe(tenant, dataset string, eps, spent, total float64) {
	if p == nil || eps < 0 {
		return
	}
	p.mu.Lock()
	now := p.now()
	r := p.rowLocked(tenant, dataset)
	r.spent = spent
	r.total = total
	r.unlimited = total <= 0
	r.charges++

	// Sliding window: append, then drop samples at or past window age.
	r.window = append(r.window, burnSample{at: now, eps: eps})
	r.windowSum += eps
	cutoff := now.Add(-p.window)
	trim := 0
	for trim < len(r.window) && !r.window[trim].at.After(cutoff) {
		r.windowSum -= r.window[trim].eps
		trim++
	}
	r.window = r.window[trim:]

	// The burn-rate observation is the window-average rate, EWMA-smoothed
	// across charges. Averaging over the window (rather than eps over the
	// gap since the previous charge) keeps a burst of back-to-back charges
	// from spiking the rate by orders of magnitude: four charges 2ms apart
	// read as ε-per-window, not ε-per-2ms. The first charge seeds the EWMA
	// directly.
	inst := r.windowSum / p.window.Seconds()
	if r.charges == 1 {
		r.ratePerSec = inst
	} else {
		r.ratePerSec = ewmaBurnAlpha*inst + (1-ewmaBurnAlpha)*r.ratePerSec
	}

	p.publishLocked(r)

	// Threshold crossings fire once each, outside the lock.
	var events []BudgetEvent
	if !r.unlimited && r.total > 0 {
		frac := (r.total - r.spent) / r.total
		for i, th := range burnThresholds {
			if !r.crossed[i] && frac < th {
				r.crossed[i] = true
				events = append(events, BudgetEvent{
					Tenant:           tenant,
					Dataset:          dataset,
					Fraction:         th,
					EpsilonRemaining: r.total - r.spent,
					EpsilonTotal:     r.total,
				})
			}
		}
	}
	fn := p.onEvent
	p.mu.Unlock()
	if fn != nil {
		for _, ev := range events {
			fn(ev)
		}
	}
}

func (p *BudgetPlane) publishLocked(r *burnRow) {
	if r.unlimited {
		r.remainingGauge.Set(0)
	} else {
		r.remainingGauge.Set(r.total - r.spent)
	}
	r.burnGauge.Set(r.ratePerSec * 60)
}

// Rows returns the exported burn-down rows, sorted by dataset then tenant
// (the global row sorts before its tenants). Nil-safe.
func (p *BudgetPlane) Rows() []BudgetRow {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	cutoff := now.Add(-p.window)
	out := make([]BudgetRow, 0, len(p.rows))
	for k, r := range p.rows {
		row := BudgetRow{
			Tenant:        k.tenant,
			Dataset:       k.dataset,
			Unlimited:     r.unlimited,
			EpsilonSpent:  r.spent,
			Charges:       r.charges,
			BurnPerMinute: r.ratePerSec * 60,
			WindowSeconds: int64(p.window.Seconds()),
		}
		if !r.unlimited {
			row.EpsilonTotal = r.total
			row.EpsilonRemaining = r.total - r.spent
			if r.ratePerSec > 0 && row.EpsilonRemaining > 0 {
				row.SecondsToExhaustion = int64(row.EpsilonRemaining / r.ratePerSec)
				if row.SecondsToExhaustion == 0 {
					row.SecondsToExhaustion = 1
				}
			}
		}
		for _, s := range r.window {
			if !s.at.Before(cutoff) {
				row.WindowEpsilon += s.eps
			}
		}
		for i, th := range burnThresholds {
			if r.crossed[i] {
				row.ThresholdsCrossed = append(row.ThresholdsCrossed, th)
			}
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}
