package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func adminGet(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("compman.queries_ok").Add(2)
	reg.Gauge("engine.blocks_inflight").Set(1)
	reg.Histogram("compman.query_latency_millis", DefaultLatencyBuckets).ObserveMillis(42)

	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Registry: reg,
		Datasets: func() []DatasetStats {
			return []DatasetStats{
				{Name: "zeta", TotalEpsilon: 5, SpentEpsilon: 1, RemainingEpsilon: 4, Queries: 1},
				{Name: "census", TotalEpsilon: 10, SpentEpsilon: 2.5, RemainingEpsilon: 7.5, Queries: 3, Refusals: 1},
			}
		},
	}))
	defer srv.Close()

	code, body := adminGet(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = adminGet(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v", err)
	}
	if snap.Counters["compman.queries_ok"] != 2 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Histograms["compman.query_latency_millis"].Count != 1 {
		t.Fatalf("histograms = %v", snap.Histograms)
	}

	code, body = adminGet(t, srv, "/datasets")
	if code != http.StatusOK {
		t.Fatalf("/datasets = %d", code)
	}
	var stats []DatasetStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Name != "census" || stats[1].Name != "zeta" {
		t.Fatalf("datasets not sorted by name: %+v", stats)
	}
	if stats[0].RemainingEpsilon != 7.5 || stats[0].Refusals != 1 {
		t.Fatalf("census stats = %+v", stats[0])
	}

	code, body = adminGet(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// No Ledger func configured: /ledger still serves, reporting disabled.
	code, body = adminGet(t, srv, "/ledger")
	if code != http.StatusOK {
		t.Fatalf("/ledger = %d", code)
	}
	var ls LedgerStatus
	if err := json.Unmarshal(body, &ls); err != nil {
		t.Fatal(err)
	}
	if ls.Enabled {
		t.Fatalf("/ledger without a ledger = %+v, want Enabled false", ls)
	}
}

func TestAdminLedgerStatus(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Registry: NewRegistry(),
		Ledger: func() LedgerStatus {
			return LedgerStatus{
				Enabled:            true,
				Dir:                "/var/lib/gupt/ledger",
				SyncPolicy:         "batched",
				Records:            120,
				SyncedRecords:      120,
				WALBytes:           4096,
				Datasets:           2,
				SnapshotSeq:        100,
				SnapshotAgeSeconds: 12.5,
			}
		},
	}))
	defer srv.Close()

	code, body := adminGet(t, srv, "/ledger")
	if code != http.StatusOK {
		t.Fatalf("/ledger = %d", code)
	}
	var ls LedgerStatus
	if err := json.Unmarshal(body, &ls); err != nil {
		t.Fatal(err)
	}
	if !ls.Enabled || ls.Records != 120 || ls.SyncedRecords != 120 || ls.Datasets != 2 || ls.SnapshotSeq != 100 {
		t.Fatalf("/ledger = %+v", ls)
	}
	if ls.SyncPolicy != "batched" || ls.WALBytes != 4096 {
		t.Fatalf("/ledger = %+v", ls)
	}
}

func TestAdminHealthError(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Health: func() error { return errors.New("worker pool down") },
	}))
	defer srv.Close()
	code, body := adminGet(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "worker pool down") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// With no Datasets func the endpoint serves an empty list, not an error.
	code, body = adminGet(t, srv, "/datasets")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("/datasets = %d %q", code, body)
	}
}

// Acceptance guard: no metric export may carry a raw duration. Counters and
// gauges are integers by construction; histograms must expose bucket counts
// only. This walks the full /metrics document rather than one histogram so
// a future metric cannot quietly add a raw-timing field.
func TestMetricsExportHasNoRawDurations(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat", []float64{1, 10}).ObserveMillis(7.777)
	reg.Counter("ok").Inc()
	srv := httptest.NewServer(AdminHandler(AdminConfig{Registry: reg}))
	defer srv.Close()

	_, body := adminGet(t, srv, "/metrics")
	var doc struct {
		Counters   map[string]int64                      `json:"counters"`
		Gauges     map[string]int64                      `json:"gauges"`
		Histograms map[string]map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("counters/gauges must be integers: %v", err)
	}
	allowed := map[string]bool{"boundsMillis": true, "counts": true, "count": true}
	for name, fields := range doc.Histograms {
		for k := range fields {
			if !allowed[k] {
				t.Fatalf("histogram %q exports non-bucket field %q", name, k)
			}
		}
		var counts []uint64
		if err := json.Unmarshal(fields["counts"], &counts); err != nil {
			t.Fatalf("histogram %q counts are not integers: %v", name, err)
		}
	}
	if strings.Contains(string(body), "7.777") {
		t.Fatalf("raw observation leaked into export: %s", body)
	}
}
