package telemetry

import "sync"

// TraceBuffer is a fixed-size ring of recently completed traces, the
// storage behind the /traces admin endpoint. It stores TraceSnapshots —
// the already-bucketed export form — not live traces, so nothing an
// operator can read out of the buffer carries a raw duration, and a trace
// added to the buffer holds no reference back into the query path.
type TraceBuffer struct {
	mu   sync.Mutex
	buf  []TraceSnapshot
	next int // next write position
	n    int // number of valid entries (≤ len(buf))
}

// DefaultTraceBufferSize is the ring capacity when none is configured.
const DefaultTraceBufferSize = 256

// NewTraceBuffer creates a ring holding the last size completed traces;
// size <= 0 selects DefaultTraceBufferSize.
func NewTraceBuffer(size int) *TraceBuffer {
	if size <= 0 {
		size = DefaultTraceBufferSize
	}
	return &TraceBuffer{buf: make([]TraceSnapshot, size)}
}

// Add records a completed trace with its terminal outcome, evicting the
// oldest entry when full. Nil-safe on both receiver and trace.
func (b *TraceBuffer) Add(tr *Trace, outcome string) {
	if b == nil || tr == nil {
		return
	}
	snap := tr.snapshot(outcome)
	b.mu.Lock()
	b.buf[b.next] = snap
	b.next = (b.next + 1) % len(b.buf)
	if b.n < len(b.buf) {
		b.n++
	}
	b.mu.Unlock()
}

// Snapshots returns the buffered traces, newest first. Nil-safe.
func (b *TraceBuffer) Snapshots() []TraceSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TraceSnapshot, 0, b.n)
	for i := 0; i < b.n; i++ {
		// Walk backwards from the most recent write.
		idx := (b.next - 1 - i + len(b.buf)*2) % len(b.buf)
		out = append(out, b.buf[idx])
	}
	return out
}
