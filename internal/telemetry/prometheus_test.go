package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

func TestPrometheusNameSanitization(t *testing.T) {
	cases := map[string]string{
		"compman.queries_ok":           "compman_queries_ok",
		"trace.stage.blocks.millis":    "trace_stage_blocks_millis",
		"budget.refusals.census":       "budget_refusals_census",
		"1weird":                       "_1weird",
		"a-b c":                        "a_b_c",
		"":                             "_",
		"already_fine:with_colons_9":   "already_fine:with_colons_9",
		"runtime.gc_pause_millis":      "runtime_gc_pause_millis",
		"über.metric":                  "_ber_metric",
		"compman.pool.inflight":        "compman_pool_inflight",
		"engine.blocks_ok":             "engine_blocks_ok",
		"sandbox.subprocess.spawns":    "sandbox_subprocess_spawns",
		"ledger.group_commit.batch_sz": "ledger_group_commit_batch_sz",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("compman.queries_ok").Add(3)
	reg.Gauge("engine.blocks_inflight").Set(2)
	h := reg.Histogram("compman.query_latency_millis", []float64{1, 10, 100})
	h.ObserveMillis(0.5) // bucket le=1
	h.ObserveMillis(7)   // bucket le=10
	h.ObserveMillis(999) // overflow

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE compman_queries_ok counter\ncompman_queries_ok 3\n",
		"# TYPE engine_blocks_inflight gauge\nengine_blocks_inflight 2\n",
		"# TYPE compman_query_latency_millis histogram\n",
		`compman_query_latency_millis_bucket{le="1"} 1`,
		`compman_query_latency_millis_bucket{le="10"} 2`,
		`compman_query_latency_millis_bucket{le="100"} 2`,
		`compman_query_latency_millis_bucket{le="+Inf"} 3`,
		"compman_query_latency_millis_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The deliberate deviation: no _sum series, ever (§6.3 — a sum would
	// let consecutive scrapes be differenced into one query's duration).
	if strings.Contains(out, "_sum") {
		t.Fatalf("exposition contains a _sum series:\n%s", out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 20; i++ {
		reg.Counter(fmt.Sprintf("c.%d", i)).Inc()
		reg.Gauge(fmt.Sprintf("g.%d", i)).Set(int64(i))
	}
	var a, b strings.Builder
	if err := WritePrometheus(&a, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("identical registry states produced different expositions")
	}
}

// Every line of the exposition must parse as a comment or a
// name[{labels}] value sample — a cheap structural lint that catches
// malformed escaping without a real Prometheus parser.
func TestWritePrometheusLineGrammar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Inc()
	reg.Histogram("lat.millis", DefaultLatencyBuckets).ObserveMillis(3)
	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			continue
		}
		// sample: name or name{le="x"} then one value
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad sample line %q", line)
		}
	}
}
