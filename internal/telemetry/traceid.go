package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Trace ids are random 128-bit values, hex-encoded (32 characters). Random
// ids — rather than the per-process sequence numbers earlier versions used —
// stay unique across server restarts and across instances of a horizontally
// scaled deployment, so an operator joining the audit log, the trace buffer
// and the worker-side spans of several guptd processes never sees two
// different queries share an id. They carry no analyst input and no
// timestamp structure: nothing about a query can be inferred from its id.

// idFallbackCtr makes the degraded-entropy path (crypto/rand unreadable,
// which on any supported OS effectively never happens) still produce
// process-unique ids.
var idFallbackCtr atomic.Uint64

// NewTraceID returns a random 128-bit correlation id as 32 hex characters.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded fallback: monotonic time + counter. Not unpredictable,
		// but ids are operator-side correlation handles, not secrets; the
		// only property we must keep is uniqueness within the deployment.
		binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(b[8:], idFallbackCtr.Add(1))
	}
	return hex.EncodeToString(b[:])
}
