package telemetry

import (
	"runtime"
	"testing"
)

func TestRuntimeSamplerGauges(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample()
	snap := reg.Snapshot()
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("goroutines = %d", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap_objects_bytes"] <= 0 {
		t.Fatalf("heap bytes = %d", snap.Gauges["runtime.heap_objects_bytes"])
	}
	if _, ok := snap.Histograms["runtime.gc_pause_millis"]; !ok {
		t.Fatal("gc pause histogram not registered")
	}
}

func TestRuntimeSamplerPauseDeltas(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	// First sample baselines: process-lifetime GC history must not replay
	// into the histogram.
	s.Sample()
	if c := reg.Snapshot().Histograms["runtime.gc_pause_millis"].Count; c != 0 {
		t.Fatalf("first sample replayed %d historical pauses", c)
	}
	// Force GC cycles, then resample: only the new pauses land.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	s.Sample()
	if c := reg.Snapshot().Histograms["runtime.gc_pause_millis"].Count; c == 0 {
		t.Fatal("no pause deltas recorded after forced GC")
	}
	// A third sample with no GC in between adds nothing.
	before := reg.Snapshot().Histograms["runtime.gc_pause_millis"].Count
	s.Sample()
	after := reg.Snapshot().Histograms["runtime.gc_pause_millis"].Count
	if after < before {
		t.Fatalf("pause count went backwards: %d -> %d", before, after)
	}
}

func TestRuntimeSamplerNil(t *testing.T) {
	var s *RuntimeSampler
	s.Sample() // must not panic
	if got := NewRuntimeSampler(nil); got != nil {
		t.Fatalf("sampler over nil registry = %v", got)
	}
}
