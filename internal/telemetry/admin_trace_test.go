package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func adminGetAccept(t *testing.T, srv *httptest.Server, path, accept string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("compman.queries_ok").Inc()
	srv := httptest.NewServer(AdminHandler(AdminConfig{Registry: reg, SkipRuntimeMetrics: true}))
	defer srv.Close()

	// Default (no Accept preference): JSON, for existing dashboards/CLI.
	resp, body := adminGetAccept(t, srv, "/metrics", "")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("default body is not a Snapshot: %v", err)
	}

	// A Prometheus scraper's Accept header gets the text exposition.
	resp, body = adminGetAccept(t, srv, "/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	if !strings.Contains(body, "compman_queries_ok 1") {
		t.Fatalf("prometheus body missing counter:\n%s", body)
	}

	// Explicit overrides win over Accept.
	resp, _ = adminGetAccept(t, srv, "/metrics?format=prometheus", "application/json")
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("?format=prometheus Content-Type = %q", ct)
	}
	resp, _ = adminGetAccept(t, srv, "/metrics?format=json", "text/plain")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("?format=json Content-Type = %q", ct)
	}
}

// Prometheus-side mirror of TestMetricsExportHasNoRawDurations: the text
// exposition may carry bucket counts and bucket bounds only — no _sum
// series, and no raw observed values.
func TestPrometheusMetricsExportHasNoRawDurations(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat", []float64{1, 10}).ObserveMillis(7.777)
	reg.Counter("ok").Inc()
	srv := httptest.NewServer(AdminHandler(AdminConfig{Registry: reg})) // runtime metrics on, like production
	defer srv.Close()

	_, body := adminGetAccept(t, srv, "/metrics?format=prometheus", "")
	if strings.Contains(body, "_sum") {
		t.Fatalf("prometheus exposition contains a _sum series:\n%s", body)
	}
	if strings.Contains(body, "7.777") {
		t.Fatalf("raw observation leaked into prometheus export:\n%s", body)
	}
	// Histogram samples must be bucket series or the count, nothing else.
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.Fields(line)[0]
		if strings.HasPrefix(name, "lat") {
			if !strings.HasPrefix(name, "lat_bucket{") && name != "lat_count" {
				t.Fatalf("histogram exports unexpected series %q", name)
			}
		}
	}
}

func TestAdminTracesEndpoint(t *testing.T) {
	buf := NewTraceBuffer(8)
	tr := NewTrace(nil, "abc123", "census")
	tr.StartSpan(StageAdmission).End(StatusOK)
	tr.AddRemoteSpans("worker:w1", []RemoteSpan{{Stage: StageWorkerExecute, Millis: 3}})
	buf.Add(tr, "ok")

	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Registry:           NewRegistry(),
		SkipRuntimeMetrics: true,
		Traces:             buf.Snapshots,
	}))
	defer srv.Close()

	code, body := adminGet(t, srv, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var traces []TraceSnapshot
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].ID != "abc123" || traces[0].Outcome != "ok" {
		t.Fatalf("/traces = %+v", traces)
	}
	var worker *SpanSnapshot
	for i := range traces[0].Spans {
		if traces[0].Spans[i].Process == "worker:w1" {
			worker = &traces[0].Spans[i]
		}
	}
	if worker == nil || worker.Stage != StageWorkerExecute {
		t.Fatalf("worker span missing from /traces: %+v", traces[0].Spans)
	}
}

func TestAdminQueriesEndpoint(t *testing.T) {
	in := NewInflight(nil)
	defer in.Stop()
	q := in.Begin("q1", "census")
	defer q.End()
	q.SetStage(StageNoising)

	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Registry:           NewRegistry(),
		SkipRuntimeMetrics: true,
		Queries:            in.Snapshots,
	}))
	defer srv.Close()

	code, body := adminGet(t, srv, "/queries")
	if code != http.StatusOK {
		t.Fatalf("/queries = %d", code)
	}
	var live []InflightSnapshot
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0].ID != "q1" || live[0].Stage != StageNoising {
		t.Fatalf("/queries = %+v", live)
	}
}

func TestAdminTracesQueriesEmpty(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(AdminConfig{Registry: NewRegistry(), SkipRuntimeMetrics: true}))
	defer srv.Close()
	for _, path := range []string{"/traces", "/queries", "/workers"} {
		code, body := adminGet(t, srv, path)
		if code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
			t.Fatalf("%s = %d %q, want empty JSON array", path, code, body)
		}
	}
}

func TestAdminTracesTenantFilter(t *testing.T) {
	buf := NewTraceBuffer(8)
	for _, c := range []struct{ id, tenant string }{
		{"t-acme-1", "acme"}, {"t-globex", "globex"}, {"t-acme-2", "acme"}, {"t-solo", ""},
	} {
		tr := NewTrace(nil, c.id, "census")
		tr.Tenant = c.tenant
		buf.Add(tr, "ok")
	}
	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Registry:           NewRegistry(),
		SkipRuntimeMetrics: true,
		Traces:             buf.Snapshots,
	}))
	defer srv.Close()

	code, body := adminGet(t, srv, "/traces?tenant=acme")
	if code != http.StatusOK {
		t.Fatalf("/traces?tenant=acme = %d", code)
	}
	var traces []TraceSnapshot
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("tenant filter kept %d traces, want 2: %+v", len(traces), traces)
	}
	for _, tr := range traces {
		if tr.Tenant != "acme" {
			t.Fatalf("tenant filter leaked trace %+v", tr)
		}
	}

	// Unknown tenant: empty array, not an error — the filter must not
	// confirm which tenants exist by responding differently.
	code, body = adminGet(t, srv, "/traces?tenant=nosuch")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("/traces?tenant=nosuch = %d %q", code, body)
	}

	// No filter still serves everything.
	code, body = adminGet(t, srv, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	traces = nil
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Fatalf("unfiltered /traces kept %d traces, want 4", len(traces))
	}
}

func TestAdminWorkersEndpoint(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(AdminConfig{
		Registry:           NewRegistry(),
		SkipRuntimeMetrics: true,
		Workers: func() []WorkerStatus {
			return []WorkerStatus{
				{Addr: "10.0.0.1:7200", Conns: 2, MaxConns: 4, Inflight: 1, Done: 17, Failed: 0},
				{Addr: "10.0.0.2:7200", Conns: 1, MaxConns: 4, Inflight: 0, Done: 9, Failed: 3, Unhealthy: true},
			}
		},
	}))
	defer srv.Close()

	code, body := adminGet(t, srv, "/workers")
	if code != http.StatusOK {
		t.Fatalf("/workers = %d", code)
	}
	var workers []WorkerStatus
	if err := json.Unmarshal(body, &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 {
		t.Fatalf("/workers = %+v", workers)
	}
	if workers[0].Addr != "10.0.0.1:7200" || workers[0].Inflight != 1 || workers[0].Done != 17 {
		t.Fatalf("worker row 0 = %+v", workers[0])
	}
	if !workers[1].Unhealthy || workers[1].Failed != 3 {
		t.Fatalf("worker row 1 = %+v", workers[1])
	}
}
