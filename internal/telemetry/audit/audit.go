// Package audit implements guptd's tamper-evident audit log: an
// append-only, size-rotated JSONL stream of query-lifecycle events in
// which every record carries the SHA-256 hash of its predecessor. Editing
// a byte, removing a record, or truncating the tail breaks the chain (or
// contradicts the head sidecar) in a way `gupt-cli audit verify` detects.
//
// The log records platform events only: dataset names, epsilon charged and
// refunded, block counts, outcomes, trace ids and BUCKETED latencies.
// Query outputs and raw durations never appear — with one explicit,
// opt-in exception: when the operator enables the unsafe trace sink,
// its raw-duration trace lines are folded in as records with Type
// "unsafe_trace" and UnsafeRaw set, so their presence is itself on the
// audit record (see SECURITY.md on the §6.3 timing side channel).
//
// Threat model: the chain makes the log tamper-EVIDENT, not tamper-proof.
// An attacker with write access to the directory can rewrite the whole
// chain and the head sidecar consistently; detecting that requires
// mirroring the head (seq + hash) off the box, which the small size of the
// head file is designed to make cheap.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record types.
const (
	// TypeQuery is one settled query: admission through release (or the
	// failure that ended it).
	TypeQuery = "query"
	// TypeUnsafeTrace is a raw-duration trace line from the opt-in unsafe
	// trace sink. Records of this type always have UnsafeRaw true; their
	// Detail carries the §6.3-sensitive payload.
	TypeUnsafeTrace = "unsafe_trace"
	// TypeBudgetThreshold is a burn-down threshold crossing: a tenant's or
	// dataset's remaining ε dropped below a fraction of its total for the
	// first time. Detail carries the fraction; the ε fields carry the
	// remaining/total pair.
	TypeBudgetThreshold = "budget_threshold"
)

// Crash points for fault-injection tests (same idiom as the ledger).
const (
	CrashAfterAppend = "after-append" // record written, head sidecar not yet updated
	CrashAfterHead   = "after-head"   // head sidecar updated
)

// Record is one audit event. Prev and Hash implement the chain: Hash is
// the SHA-256 of the record's canonical JSON with Hash itself empty, and
// Prev is the predecessor's Hash ("" for the first record).
type Record struct {
	Seq uint64 `json:"seq"`
	// Time is the event time in whole unix seconds — deliberately coarse;
	// the audit log must not become a precision timing side channel.
	Time int64  `json:"time"`
	Type string `json:"type"`

	TraceID string `json:"traceId,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	// Tenant is the authenticated principal the event ran as; empty in
	// single-tenant deployments. Tenant ids only — never key material.
	Tenant string `json:"tenant,omitempty"`
	// Outcome is the query's terminal state: ok, degraded, error, aborted,
	// budget_refused, or cache_hit (an already-released answer re-served at
	// zero ε).
	Outcome string `json:"outcome,omitempty"`
	// EpsilonCharged / EpsilonRefunded are the privacy-budget movements the
	// query settled with (§6.2: aborts keep their charge).
	EpsilonCharged  float64 `json:"epsilonCharged,omitempty"`
	EpsilonRefunded float64 `json:"epsilonRefunded,omitempty"`
	Blocks          int     `json:"blocks,omitempty"`
	// LatencyBucketMillis is the query's latency bucket upper bound; -1
	// means beyond the coarsest bucket. Never a raw duration.
	LatencyBucketMillis float64 `json:"latencyBucketMillis,omitempty"`
	// Reason classifies refusals ("queue_full", "deadline_unmeetable",
	// "rate_limited") and budget-threshold crossings; empty elsewhere.
	Reason string `json:"reason,omitempty"`
	// RetryAfterMillis is the retry hint the refusal carried back to the
	// client — a scheduler estimate, not a measured duration.
	RetryAfterMillis int64 `json:"retryAfterMillis,omitempty"`
	// UnsafeRaw marks records whose Detail carries raw timing data from the
	// opt-in unsafe trace sink.
	UnsafeRaw bool   `json:"unsafe_raw,omitempty"`
	Detail    string `json:"detail,omitempty"`

	Prev string `json:"prev"`
	Hash string `json:"hash"`
}

// head is the sidecar: the chain tip after the most recent append,
// rewritten atomically (temp + rename) after every record. Verify uses it
// to detect tail truncation, which the intra-record chain alone cannot see.
type head struct {
	Seq  uint64 `json:"seq"`
	Hash string `json:"hash"`
	File string `json:"file"`
}

const (
	headFile   = "HEAD"
	filePrefix = "audit-"
	fileSuffix = ".log"
	// maxDetailLen bounds the Detail field (unsafe trace strings are
	// already bounded by the remote-span cap, but the log enforces its own
	// ceiling).
	maxDetailLen = 8 << 10
)

// DefaultMaxBytes is the rotation threshold when Options.MaxBytes is zero.
const DefaultMaxBytes = 4 << 20

// Options configures Open.
type Options struct {
	// MaxBytes rotates the current segment when an append would push it
	// past this size. Zero means DefaultMaxBytes.
	MaxBytes int64
	// Fsync syncs the segment after every append (before the head sidecar
	// is updated, so the head never refers to a record the disk might not
	// have). Off by default: the audit log is tamper-evidence, not the
	// budget ledger, and a crash losing the last instants of audit is
	// recorded as a lagging head, not silent corruption.
	Fsync bool
	// CrashPoint, when set, is invoked at named durability boundaries —
	// fault-injection hook for the SIGKILL tests.
	CrashPoint func(point string)
}

// Log is the append handle. A nil *Log is a valid disabled log: Append
// and Close are no-ops.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	fileName string // base name of the current segment
	fileIdx  int
	size     int64
	lastSeq  uint64
	lastHash string
	closed   bool

	// RecoveredTornTail reports that Open truncated a partial final line
	// (expected after a crash mid-append).
	RecoveredTornTail bool
}

// Open opens (or creates) the audit log in dir and positions it at the
// chain tip. A partial final line — the signature of a crash mid-append —
// is truncated away; any earlier malformed record refuses to open, because
// appending onto a corrupt chain would destroy the evidence Verify needs.
func Open(dir string, opts Options) (*Log, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	l := &Log{dir: dir, opts: opts, fileIdx: 1}

	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		l.fileIdx = segIndex(last)
		torn, err := l.recoverTip(filepath.Join(dir, last))
		if err != nil {
			return nil, err
		}
		l.RecoveredTornTail = torn
		// The tip may live in an earlier segment when the newest one is
		// empty (crash between rotation and first append).
		if l.lastSeq == 0 && len(segs) > 1 {
			for i := len(segs) - 2; i >= 0 && l.lastSeq == 0; i-- {
				if _, err := l.recoverTip(filepath.Join(dir, segs[i])); err != nil {
					return nil, err
				}
			}
		}
		l.fileName = last
	} else {
		l.fileName = segName(l.fileIdx)
	}

	path := filepath.Join(dir, l.fileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: %w", err)
	}
	l.f, l.size = f, st.Size()
	return l, nil
}

// recoverTip scans one segment for the last intact record, truncating a
// torn final line. It updates lastSeq/lastHash when the segment has any
// intact record and reports whether a torn tail was cut.
func (l *Log) recoverTip(path string) (torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("audit: %w", err)
	}
	valid := int64(0) // byte offset past the last intact record
	rest := data
	for len(rest) > 0 {
		nl := -1
		for i, b := range rest {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// Unterminated final fragment: torn append.
			break
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		var rec Record
		if err := decodeStrict(line, &rec); err != nil || recordHash(rec) != rec.Hash {
			// A malformed or hash-broken line mid-file is not a crash
			// artifact — refuse rather than append over evidence. Only an
			// unterminated fragment is crash-shaped, handled above.
			return false, fmt.Errorf("audit: %s: corrupt record after seq %d — run `gupt-cli audit verify` (refusing to append onto a broken chain)", filepath.Base(path), l.lastSeq)
		}
		l.lastSeq, l.lastHash = rec.Seq, rec.Hash
		valid += int64(nl + 1)
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return false, fmt.Errorf("audit: truncating torn tail: %w", err)
		}
		return true, nil
	}
	return false, nil
}

// Append completes rec (Seq, Time if unset, Prev, Hash) and writes it.
// Safe for concurrent use; a nil log discards the record.
func (l *Log) Append(rec Record) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("audit: log closed")
	}
	if len(rec.Detail) > maxDetailLen {
		rec.Detail = rec.Detail[:maxDetailLen]
	}
	rec.Seq = l.lastSeq + 1
	if rec.Time == 0 {
		rec.Time = time.Now().Unix()
	}
	rec.Prev = l.lastHash
	rec.Hash = recordHash(rec)

	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	line = append(line, '\n')

	if l.size > 0 && l.size+int64(len(line)) > l.opts.MaxBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	l.size += int64(len(line))
	if l.opts.Fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("audit: %w", err)
		}
	}
	l.lastSeq, l.lastHash = rec.Seq, rec.Hash
	l.crash(CrashAfterAppend)
	if err := l.writeHead(); err != nil {
		return err
	}
	l.crash(CrashAfterHead)
	return nil
}

// rotate closes the current segment and starts the next one.
func (l *Log) rotate() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	l.fileIdx++
	l.fileName = segName(l.fileIdx)
	f, err := os.OpenFile(filepath.Join(l.dir, l.fileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	l.f, l.size = f, 0
	return nil
}

// writeHead atomically replaces the head sidecar with the current tip.
func (l *Log) writeHead() error {
	b, err := json.Marshal(head{Seq: l.lastSeq, Hash: l.lastHash, File: l.fileName})
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	tmp := filepath.Join(l.dir, headFile+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, headFile)); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	return nil
}

// LastSeq returns the sequence number of the most recent record (0 when
// empty). Nil-safe.
func (l *Log) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Close flushes and closes the log. Nil-safe, idempotent.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.opts.Fsync {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return fmt.Errorf("audit: %w", err)
		}
	}
	return l.f.Close()
}

func (l *Log) crash(point string) {
	if l.opts.CrashPoint != nil {
		l.opts.CrashPoint(point)
	}
}

// recordHash is the chain hash: SHA-256 over the record's canonical JSON
// with the Hash field empty. Canonical means Go's deterministic
// struct-field marshal order; Verify re-derives it the same way and
// rejects unknown fields, so no byte of a record can change its meaning
// without changing the hash or failing to decode.
func recordHash(rec Record) string {
	rec.Hash = ""
	b, err := json.Marshal(rec)
	if err != nil {
		// A Record of plain scalars cannot fail to marshal.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// decodeStrict unmarshals one record line, rejecting unknown fields —
// without this, a tamperer could splice extra JSON fields into a line that
// re-marshaling would silently drop, leaving the hash intact.
func decodeStrict(line []byte, rec *Record) error {
	dec := json.NewDecoder(strings.NewReader(string(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(rec); err != nil {
		return err
	}
	// Trailing garbage after the JSON object is tampering too.
	if dec.More() {
		return fmt.Errorf("trailing data after record")
	}
	return nil
}

// segments lists the log's segment files in chain order.
func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, filePrefix) && strings.HasSuffix(name, fileSuffix) {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segName(idx int) string { return fmt.Sprintf("%s%06d%s", filePrefix, idx, fileSuffix) }

func segIndex(name string) int {
	var idx int
	fmt.Sscanf(name, filePrefix+"%06d"+fileSuffix, &idx)
	if idx < 1 {
		idx = 1
	}
	return idx
}
