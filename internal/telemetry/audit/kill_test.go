package audit

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// SIGKILL crash-safety: a child process appends audit records in a tight
// loop and is killed — by a named durability boundary or at a random
// instant — and the invariant is that what remains on disk always
// VERIFIES: the surviving prefix is an intact chain, with at most the
// benign crash artifacts (torn tail, head lagging one record). A crash
// must never leave something Verify reports as tampering, or operators
// would learn to ignore the one signal the audit log exists to give.

const (
	envChild = "AUDIT_KILL_CHILD"
	envDir   = "AUDIT_KILL_DIR"
	envPoint = "AUDIT_KILL_POINT"
	envAfter = "AUDIT_KILL_AFTER"
	envFsync = "AUDIT_KILL_FSYNC"
	envN     = "AUDIT_KILL_N"
)

func TestMain(m *testing.M) {
	if os.Getenv(envChild) == "1" {
		runKillChild()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runKillChild() {
	dir := os.Getenv(envDir)
	point := os.Getenv(envPoint)
	after, _ := strconv.Atoi(os.Getenv(envAfter))
	n, _ := strconv.Atoi(os.Getenv(envN))

	seen := 0
	opts := Options{
		MaxBytes: 8 << 10, // rotate often so kills land near segment seams
		Fsync:    os.Getenv(envFsync) == "1",
	}
	if point != "" {
		opts.CrashPoint = func(p string) {
			if p != point {
				return
			}
			seen++
			if seen >= after {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // unreachable; SIGKILL cannot be handled
			}
		}
	}
	l, err := Open(dir, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: open: %v\n", err)
		os.Exit(3)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(Record{
			Type:                TypeQuery,
			TraceID:             "0123456789abcdef0123456789abcdef",
			Dataset:             "kill-ds",
			Outcome:             "ok",
			EpsilonCharged:      0.01,
			Blocks:              10,
			LatencyBucketMillis: 25,
		}); err == nil {
			fmt.Printf("ack %d\n", i)
		}
	}
	l.Close()
}

func runKill(t *testing.T, scenario map[string]string, killAfter time.Duration) (acks int, signaled bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0])
	cmd.Env = append(os.Environ(), envChild+"=1")
	for k, v := range scenario {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	if killAfter > 0 {
		go func() {
			time.Sleep(killAfter)
			cmd.Process.Signal(syscall.SIGKILL)
		}()
	}
	err := cmd.Wait()
	if ctx.Err() != nil {
		t.Fatalf("child timed out; stderr: %s", errb.String())
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == 3 {
		t.Fatalf("child setup failed: %s", errb.String())
	}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		if bytes.HasPrefix(sc.Bytes(), []byte("ack ")) {
			acks++
		}
	}
	signaled = err != nil && cmd.ProcessState.ExitCode() == -1
	return acks, signaled
}

// verifyAfterKill asserts the crash invariant and that the directory is
// still appendable (restart path).
func verifyAfterKill(t *testing.T, dir string, acks int) {
	t.Helper()
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("crash left a log Verify rejects: %v\nreport: %+v", err, rep)
	}
	// Every acknowledged append is a fully written record (the ack prints
	// only after Append returned), so the surviving chain cannot be
	// shorter than the acks — page cache survives SIGKILL.
	if rep.Records < uint64(acks) {
		t.Fatalf("chain has %d records but %d appends were acknowledged", rep.Records, acks)
	}

	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	if err := l.Append(Record{Type: TypeQuery, Dataset: "post-restart", Outcome: "ok"}); err != nil {
		t.Fatalf("append after kill: %v", err)
	}
	l.Close()
	rep2, err := Verify(dir)
	if err != nil {
		t.Fatalf("verify after restart append: %v", err)
	}
	if rep2.Records != rep.Records+1 || rep2.TornTail || rep2.HeadLagged {
		t.Fatalf("restart did not heal the crash artifacts: %+v", rep2)
	}
}

// TestKillAtBoundaries SIGKILLs between the record append and the head
// sidecar update (the window that must verify as HeadLagged, not tamper)
// and right after the head write.
func TestKillAtBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	boundaries := []struct {
		point string
		after int
	}{
		{CrashAfterAppend, 1},
		{CrashAfterAppend, 37},
		{CrashAfterHead, 1},
		{CrashAfterHead, 53},
	}
	for _, fsync := range []string{"0", "1"} {
		for _, bd := range boundaries {
			bd, fsync := bd, fsync
			t.Run(fmt.Sprintf("fsync%s/%s@%d", fsync, bd.point, bd.after), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				acks, signaled := runKill(t, map[string]string{
					envDir:   dir,
					envPoint: bd.point,
					envAfter: strconv.Itoa(bd.after),
					envFsync: fsync,
					envN:     "500",
				}, 0)
				if !signaled {
					t.Fatal("crash point never fired")
				}
				verifyAfterKill(t, dir, acks)
			})
		}
	}
}

// TestKillRandomTiming kills at arbitrary instants — including mid-write,
// which no named boundary hits.
func TestKillRandomTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	delays := []time.Duration{3 * time.Millisecond, 11 * time.Millisecond, 29 * time.Millisecond}
	for i, d := range delays {
		d := d
		t.Run(fmt.Sprintf("delay%d", i), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			acks, _ := runKill(t, map[string]string{
				envDir: dir,
				envN:   "200000",
			}, d)
			verifyAfterKill(t, dir, acks)
		})
	}
}
