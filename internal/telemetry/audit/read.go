package audit

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// Read walks every segment in dir in chain order and returns the records
// that pass the filter (nil keeps everything). It is a viewer, not a
// verifier: hashes are not rechecked (use Verify for that), but records are
// still decoded strictly, and a torn final fragment — the crash-mid-append
// artifact Verify tolerates — is skipped rather than reported as an error.
// Callers slicing per tenant pass a filter on Record.Tenant; the audit log
// is operator-private, so the slice inherits its access control.
func Read(dir string, filter func(Record) bool) ([]Record, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for si, seg := range segs {
		path := filepath.Join(dir, seg)
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("audit: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		lastSegment := si == len(segs)-1
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec Record
			if err := decodeStrict(line, &rec); err != nil {
				if lastSegment && !sc.Scan() && tailUnterminated(path) {
					break // torn tail: crash mid-append, chain before it intact
				}
				f.Close()
				return nil, fmt.Errorf("audit: %s: malformed record: %v", seg, err)
			}
			if filter == nil || filter(rec) {
				out = append(out, rec)
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("audit: %s: %w", seg, err)
		}
	}
	return out, nil
}
