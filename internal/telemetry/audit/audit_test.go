package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.Append(Record{
			Type:                TypeQuery,
			TraceID:             "0123456789abcdef0123456789abcdef",
			Dataset:             "census",
			Outcome:             "ok",
			EpsilonCharged:      0.1,
			Blocks:              20,
			LatencyBucketMillis: 50,
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAppendVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10)
	if err := l.Append(Record{Type: TypeUnsafeTrace, UnsafeRaw: true, Detail: "trace q dataset=census blocks=ok/1.25ms"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("verify clean log: %v\nreport: %+v", err, rep)
	}
	if rep.Records != 11 || rep.LastSeq != 11 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TornTail || rep.HeadLagged || rep.HeadMissing {
		t.Fatalf("clean log flagged crash artifacts: %+v", rep)
	}
	if rep.UnsafeRecords != 1 {
		t.Fatalf("unsafe records = %d, want 1", rep.UnsafeRecords)
	}
}

func TestReopenContinuesChain(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.LastSeq() != 3 {
		t.Fatalf("reopened at seq %d, want 3", l2.LastSeq())
	}
	appendN(t, l2, 2)
	l2.Close()

	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("verify after reopen: %v", err)
	}
	if rep.Records != 5 {
		t.Fatalf("records = %d, want 5", rep.Records)
	}
}

func TestVerifyDetectsOneByteEdit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()

	// Flip one byte inside a value of a middle record: "census" -> "densus".
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("census"))
	for j := 0; j < 2; j++ { // edit the third occurrence (record 3)
		i = i + 1 + bytes.Index(data[i+1:], []byte("census"))
	}
	data[i] = 'd'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Verify(dir); err == nil {
		t.Fatal("one-byte edit went undetected")
	} else if !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("edit reported as %v, want hash mismatch", err)
	}
}

func TestVerifyDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()

	// Remove the final record cleanly (whole line, newline-terminated) —
	// the chain itself stays valid, only the head sidecar can tell.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := data[:len(data)-1] // drop final newline
	cut := bytes.LastIndexByte(trimmed, '\n') + 1
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Verify(dir); err == nil {
		t.Fatal("tail truncation went undetected")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation reported as %v", err)
	}
}

func TestVerifyDetectsRemovedMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	spliced := append(append([]byte{}, lines[0]...), bytes.Join(lines[2:], nil)...)
	if err := os.WriteFile(path, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("removed middle record went undetected")
	}
}

func TestVerifyDetectsAddedField(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	l.Close()

	// Splice an unknown field into the first record: re-marshaling would
	// drop it silently, so strict decoding must reject it instead.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = bytes.Replace(data, []byte(`{"seq":1`), []byte(`{"note":"x","seq":1`), 1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("added field went undetected")
	}
}

func TestVerifyToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()

	// Simulate a crash mid-append: a partial, unterminated record fragment.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":4,"time":17`)
	f.Close()

	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("torn tail must verify as crash artifact, got %v", err)
	}
	if !rep.TornTail || rep.Records != 3 {
		t.Fatalf("report = %+v", rep)
	}

	// Open recovers by truncating the fragment and appending continues.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if !l2.RecoveredTornTail {
		t.Fatal("torn tail not reported by Open")
	}
	appendN(t, l2, 1)
	l2.Close()
	rep, err = Verify(dir)
	if err != nil || rep.Records != 4 || rep.TornTail {
		t.Fatalf("after recovery: %+v, %v", rep, err)
	}
}

func TestVerifyHeadLagIsCrashWindow(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	// Save the head as of seq 2, append seq 3, then put the stale head
	// back — exactly what a crash between append and head write leaves.
	stale, err := os.ReadFile(filepath.Join(dir, headFile))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1)
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, headFile), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("one-record head lag must verify: %v", err)
	}
	if !rep.HeadLagged || rep.Records != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestVerifyDetectsDeletedHead(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()
	if err := os.Remove(filepath.Join(dir, headFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("deleted head sidecar went undetected")
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxBytes: 600}) // a few records per segment
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20)
	l.Close()

	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got segments %v", segs)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("verify across segments: %v", err)
	}
	if rep.Records != 20 || len(rep.Files) != len(segs) {
		t.Fatalf("report = %+v", rep)
	}

	// The chain spans segments: edit a byte in the FIRST segment and the
	// verifier still catches it.
	path := filepath.Join(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[bytes.Index(data, []byte("census"))] = 'x'
	os.WriteFile(path, data, 0o644)
	if _, err := Verify(dir); err == nil {
		t.Fatal("edit in rotated segment went undetected")
	}
}

func TestVerifyEmptyDir(t *testing.T) {
	rep, err := Verify(t.TempDir())
	if err != nil {
		t.Fatalf("empty dir: %v", err)
	}
	if rep.Records != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestNilLog(t *testing.T) {
	var l *Log
	if err := l.Append(Record{Type: TypeQuery}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 0 {
		t.Fatal("nil log has a seq")
	}
}

func TestDetailCapped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeUnsafeTrace, UnsafeRaw: true, Detail: strings.Repeat("x", maxDetailLen*2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	rep, err := Verify(dir)
	if err != nil || rep.Records != 1 {
		t.Fatalf("capped detail broke the chain: %+v, %v", rep, err)
	}
}

func TestOpenRefusesInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()

	path := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(path)
	data[bytes.Index(data, []byte("census"))] = '#'
	os.WriteFile(path, data, 0o644)

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open appended onto a corrupt chain")
	}
}
