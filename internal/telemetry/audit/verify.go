package audit

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Report is the result of a Verify walk. A nil error from Verify means the
// chain is intact; the report's crash-window flags (TornTail, HeadLagged,
// HeadMissing on a near-empty log) describe benign artifacts of an unclean
// shutdown, not tampering.
type Report struct {
	// Files are the segment files examined, in chain order.
	Files []string `json:"files"`
	// Records is the number of intact records on the chain.
	Records uint64 `json:"records"`
	// LastSeq / LastHash are the chain tip. Mirror these off the box to
	// detect whole-log rewrites (see the package comment's threat model).
	LastSeq  uint64 `json:"lastSeq"`
	LastHash string `json:"lastHash,omitempty"`
	// TornTail reports an unterminated final fragment — a crash mid-append.
	TornTail bool `json:"tornTail,omitempty"`
	// HeadLagged reports a head sidecar exactly one record behind the log —
	// a crash between an append and its head update.
	HeadLagged bool `json:"headLagged,omitempty"`
	// HeadMissing reports no head sidecar. Benign only when the log has at
	// most one record (a crash before the first head write); Verify errors
	// otherwise.
	HeadMissing bool `json:"headMissing,omitempty"`
	// UnsafeRecords counts records carrying raw timing data (the opt-in
	// unsafe trace sink) — surfaced so an auditor notices the side-channel
	// exposure window.
	UnsafeRecords uint64 `json:"unsafeRecords,omitempty"`
}

// Verify walks every segment in dir, recomputes the hash chain, and checks
// the head sidecar against the chain tip. It returns a non-nil error for
// anything tamper-shaped: an edited byte (hash mismatch), a removed or
// reordered record (sequence/chain break), added fields (strict decode), a
// truncated tail (head ahead of the log), or a deleted head.
func Verify(dir string) (Report, error) {
	var rep Report
	segs, err := segments(dir)
	if err != nil {
		return rep, err
	}
	rep.Files = segs

	var (
		prevHash     string // hash of the last verified record
		prevPrevHash string // hash of the record before it (for head lag)
	)
	for si, seg := range segs {
		path := filepath.Join(dir, seg)
		f, err := os.Open(path)
		if err != nil {
			return rep, fmt.Errorf("audit: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		lastSegment := si == len(segs)-1
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec Record
			if err := decodeStrict(line, &rec); err != nil {
				// A malformed FINAL line of the FINAL segment is the crash
				// window — but only if the file ends without a newline,
				// which we detect by whether the scanner has more input.
				if lastSegment && !sc.Scan() && tailUnterminated(path) {
					rep.TornTail = true
					break
				}
				f.Close()
				return rep, fmt.Errorf("audit: %s: malformed record after seq %d: %v", seg, rep.LastSeq, err)
			}
			if rec.Seq != rep.LastSeq+1 {
				f.Close()
				return rep, fmt.Errorf("audit: %s: sequence break: record %d follows %d (records removed or reordered)", seg, rec.Seq, rep.LastSeq)
			}
			if rec.Prev != prevHash {
				f.Close()
				return rep, fmt.Errorf("audit: %s: chain break at seq %d: prev hash does not match record %d", seg, rec.Seq, rec.Seq-1)
			}
			if recordHash(rec) != rec.Hash {
				f.Close()
				return rep, fmt.Errorf("audit: %s: hash mismatch at seq %d: record was edited", seg, rec.Seq)
			}
			if rec.UnsafeRaw {
				rep.UnsafeRecords++
			}
			prevPrevHash, prevHash = prevHash, rec.Hash
			rep.LastSeq, rep.LastHash = rec.Seq, rec.Hash
			rep.Records++
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return rep, fmt.Errorf("audit: %s: %w", seg, err)
		}
	}

	// Head sidecar vs chain tip.
	var h head
	hb, err := os.ReadFile(filepath.Join(dir, headFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
		rep.HeadMissing = true
		if rep.LastSeq > 1 {
			return rep, fmt.Errorf("audit: head sidecar missing with %d records on the chain (deleted?)", rep.Records)
		}
		return rep, nil
	case err != nil:
		return rep, fmt.Errorf("audit: %w", err)
	}
	if err := json.Unmarshal(hb, &h); err != nil {
		return rep, fmt.Errorf("audit: head sidecar unreadable: %v", err)
	}
	switch {
	case h.Seq == rep.LastSeq && h.Hash == rep.LastHash:
		// In sync.
	case h.Seq == rep.LastSeq && h.Hash != rep.LastHash:
		return rep, fmt.Errorf("audit: head hash does not match record %d (tail record edited or replaced)", h.Seq)
	case h.Seq > rep.LastSeq:
		return rep, fmt.Errorf("audit: log truncated: head records seq %d but the log ends at seq %d", h.Seq, rep.LastSeq)
	case h.Seq == rep.LastSeq-1 && h.Hash == prevPrevHash:
		// Crash between append and head write: the head lags by exactly
		// one record and matches the penultimate hash.
		rep.HeadLagged = true
	default:
		return rep, fmt.Errorf("audit: head sidecar inconsistent: head seq %d/hash %.8s vs log tip %d/%.8s", h.Seq, h.Hash, rep.LastSeq, rep.LastHash)
	}
	return rep, nil
}

// tailUnterminated reports whether the file's final byte is not a newline
// — the signature of a torn append, as opposed to an edited line.
func tailUnterminated(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return false
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, st.Size()-1); err != nil {
		return false
	}
	return buf[0] != '\n'
}
