package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// The canonical query-lifecycle stages, in pipeline order. Every query
// produces at most one span per stage (a retried engine run re-enters the
// engine stages; the spans append in order, so a retry is visible as a
// repeated stage sequence in the trace).
const (
	StageAdmission   = "admission"   // decode, program/range resolution, chamber setup
	StageBudget      = "budget"      // privacy charge against the dataset accountant
	StagePartition   = "partition"   // partitioning, resampling, budget split, range prep
	StageBlocks      = "blocks"      // block executions across chambers
	StageAggregation = "aggregation" // range tightening, clamping, block averaging
	StageNoising     = "noising"     // Laplace noise
	StageRelease     = "release"     // response assembly
)

// Span statuses.
const (
	StatusOK      = "ok"
	StatusError   = "error"
	StatusTimeout = "timeout"
)

// Span is one stage of a query's lifecycle. Its raw duration stays inside
// the process: the registry sees only the bucketed histogram observation,
// and the duration is printed only by Trace.String for the opt-in trace
// log.
type Span struct {
	Stage    string
	Status   string
	Duration time.Duration

	tr    *Trace
	start time.Time
	done  bool
}

// End closes the span with the given status. Safe to call on a nil span;
// calling End twice keeps the first result.
func (s *Span) End(status string) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.Status = status
	s.Duration = time.Since(s.start)
	if s.tr != nil && s.tr.reg != nil {
		s.tr.reg.Histogram("trace.stage."+s.Stage+".millis", DefaultLatencyBuckets).Observe(s.Duration)
	}
}

// Trace records the lifecycle of one query as a sequence of stage spans.
// A trace never holds record data, block contents, query parameters or
// outputs — only stage names, statuses and durations.
type Trace struct {
	// ID is an operator-side correlation id (a server sequence number, never
	// anything analyst-supplied).
	ID string
	// Dataset names the dataset the query targeted.
	Dataset string

	mu    sync.Mutex
	reg   *Registry
	start time.Time
	spans []*Span
}

// NewTrace starts a trace. reg may be nil; span durations then feed no
// histograms but the trace still records. A nil return never happens — the
// nil-safety lives on the methods so callers can hold a nil *Trace when
// tracing is off entirely.
func NewTrace(reg *Registry, id, dataset string) *Trace {
	return &Trace{ID: id, Dataset: dataset, reg: reg, start: time.Now()}
}

// StartSpan opens a span for the given stage. On a nil trace it returns a
// nil span, whose End is a no-op.
func (t *Trace) StartSpan(stage string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Stage: stage, tr: t, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Spans returns the spans recorded so far, in start order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Elapsed is the wall-clock time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// String renders the trace with raw per-span durations. This is the ONLY
// place raw durations leave the telemetry layer, and it must only ever be
// written to the opt-in slow-query trace log (see SECURITY.md): handing
// this string to an analyst reopens the §6.3 timing side channel.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s dataset=%s", t.ID, t.Dataset)
	for _, s := range t.spans {
		status := s.Status
		if !s.done {
			status = "open"
		}
		fmt.Fprintf(&sb, " %s=%s/%s", s.Stage, status, s.Duration.Round(time.Microsecond))
	}
	return sb.String()
}
