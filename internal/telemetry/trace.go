package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// The canonical query-lifecycle stages, in pipeline order. Every query
// produces at most one span per stage (a retried engine run re-enters the
// engine stages; the spans append in order, so a retry is visible as a
// repeated stage sequence in the trace).
const (
	StageAdmission   = "admission"   // decode, program/range resolution, chamber setup
	StageBudget      = "budget"      // privacy charge against the dataset accountant
	StagePartition   = "partition"   // partitioning, resampling, budget split, range prep
	StageBlocks      = "blocks"      // block executions across chambers
	StageAggregation = "aggregation" // range tightening, clamping, block averaging
	StageNoising     = "noising"     // Laplace noise
	StageRelease     = "release"     // response assembly
)

// Worker-side stages, recorded inside gupt-worker and shipped back to the
// server over the compman wire (see RemoteSpan).
const (
	StageWorkerSetup   = "worker.setup"   // program resolution + chamber construction
	StageWorkerExecute = "worker.execute" // one block execution inside the chamber
)

// Scheduler and fan-out stages, recorded server-side around admission and
// block dispatch. A refused query's trace ends after StageSchedDecision; an
// admitted query that waited carries a StageSchedQueue span covering the
// time it sat in the EDF queue.
const (
	StageSchedQueue    = "sched.queue"    // wait in the admission queue (absent if admitted immediately)
	StageSchedDecision = "sched.decision" // the admit/refuse verdict itself
	// StageFanoutDispatch is one block's dispatch to one worker; the span's
	// Process carries the worker attribution ("worker:<addr>").
	StageFanoutDispatch = "fanout.dispatch"
	// StageFanoutStraggler is a duplicate dispatch fired by the straggler
	// timer; StageFanoutFailover is a retry after a transport failure.
	StageFanoutStraggler = "fanout.straggler"
	StageFanoutFailover  = "fanout.failover"
)

// Span statuses.
const (
	StatusOK      = "ok"
	StatusError   = "error"
	StatusTimeout = "timeout"
	// Scheduler-decision statuses: the refusal reason rides on the
	// StageSchedDecision span so a refused query's trace is
	// self-explanatory.
	StatusRefusedBusy    = "refused_busy"    // admission queue full
	StatusRefusedExpired = "refused_expired" // deadline unmeetable given queue state
	StatusCancelled      = "cancelled"       // caller went away while queued
)

// Span is one stage of a query's lifecycle. Its raw duration stays inside
// the process: the registry sees only the bucketed histogram observation,
// and the duration is printed only by Trace.String for the opt-in trace
// log (or the unsafe_trace audit record).
type Span struct {
	Stage  string
	Status string
	// Process names the process that recorded the span; empty means this
	// process (the server). Spans merged from workers carry
	// "worker:<addr>".
	Process  string
	Duration time.Duration

	tr    *Trace
	start time.Time
	done  bool
}

// End closes the span with the given status. Safe to call on a nil span;
// calling End twice keeps the first result.
func (s *Span) End(status string) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.Status = status
	s.Duration = time.Since(s.start)
	if s.tr != nil && s.tr.reg != nil {
		s.tr.reg.Histogram("trace.stage."+s.Stage+".millis", DefaultLatencyBuckets).Observe(s.Duration)
	}
}

// RemoteSpan is the wire form of a span recorded in another process of the
// platform (a gupt-worker) and shipped back to the server for merging.
// Millis is a raw duration — acceptable on the platform-internal
// server↔worker wire (both ends are trusted components), but it must never
// be exported as-is: merged spans leave the server only through the
// bucketed histograms, the bucketed /traces snapshots, or the opt-in
// unsafe trace sink.
type RemoteSpan struct {
	Stage  string  `json:"stage"`
	Status string  `json:"status,omitempty"`
	Millis float64 `json:"millis"`
}

// maxRemoteSpans caps how many worker spans one trace retains: a query over
// thousands of blocks would otherwise balloon every trace with two spans
// per block. Overflow is counted, not silently dropped.
const maxRemoteSpans = 128

// maxWireStringLen bounds stage/status strings accepted off the wire; the
// worker is trusted, but a corrupted frame must not grow unbounded labels.
const maxWireStringLen = 64

// Trace records the lifecycle of one query as a sequence of stage spans.
// A trace never holds record data, block contents, query parameters or
// outputs — only stage names, statuses and durations.
type Trace struct {
	// ID is an operator-side correlation id: a random 128-bit hex string
	// (NewTraceID), never anything analyst-supplied, unique across
	// restarts and across instances.
	ID string
	// Dataset names the dataset the query targeted.
	Dataset string
	// Tenant is the authenticated principal the query ran as; empty in
	// single-tenant deployments. Set before the first span starts. It is an
	// id only — key material never reaches the telemetry layer.
	Tenant string
	// OnStage, when set before the first span starts, is invoked with each
	// stage name as its span opens — the hook the in-flight query table
	// uses to show where a query currently is. It must be fast and must
	// not call back into the trace.
	OnStage func(stage string)

	mu            sync.Mutex
	reg           *Registry
	start         time.Time
	spans         []*Span
	remoteCount   int
	remoteDropped int
}

// NewTrace starts a trace. reg may be nil; span durations then feed no
// histograms but the trace still records. A nil return never happens — the
// nil-safety lives on the methods so callers can hold a nil *Trace when
// tracing is off entirely.
func NewTrace(reg *Registry, id, dataset string) *Trace {
	return &Trace{ID: id, Dataset: dataset, reg: reg, start: time.Now()}
}

// StartSpan opens a span for the given stage. On a nil trace it returns a
// nil span, whose End is a no-op.
func (t *Trace) StartSpan(stage string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Stage: stage, tr: t, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	if t.OnStage != nil {
		t.OnStage(stage)
	}
	return s
}

// AddRemoteSpans merges spans recorded by another process (a worker) into
// the trace, labeled with that process's name. The spans arrive complete —
// they are appended as already-ended spans — and their durations feed the
// same bucketed trace.stage.* histograms as local spans. Wire-origin
// strings are length-capped and non-finite or negative durations dropped,
// so a corrupted reply cannot poison the trace. At most maxRemoteSpans
// remote spans are retained per trace; the overflow is counted and
// reported in the snapshot. Nil-safe.
func (t *Trace) AddRemoteSpans(process string, spans []RemoteSpan) {
	if t == nil || len(spans) == 0 {
		return
	}
	process = capString(process)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rs := range spans {
		if math.IsNaN(rs.Millis) || math.IsInf(rs.Millis, 0) || rs.Millis < 0 {
			continue
		}
		if t.remoteCount >= maxRemoteSpans {
			t.remoteDropped++
			continue
		}
		t.remoteCount++
		stage := capString(rs.Stage)
		status := capString(rs.Status)
		if status == "" {
			status = StatusOK
		}
		s := &Span{
			Stage:    stage,
			Status:   status,
			Process:  process,
			Duration: time.Duration(rs.Millis * float64(time.Millisecond)),
			done:     true,
		}
		t.spans = append(t.spans, s)
		if t.reg != nil {
			t.reg.Histogram("trace.stage."+stage+".millis", DefaultLatencyBuckets).Observe(s.Duration)
		}
	}
}

func capString(s string) string {
	if len(s) > maxWireStringLen {
		return s[:maxWireStringLen]
	}
	return s
}

// Spans returns the spans recorded so far, in start order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Elapsed is the wall-clock time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// String renders the trace with raw per-span durations. This is the ONLY
// place raw durations leave the telemetry layer, and it must only ever be
// written to the opt-in slow-query trace sink (the -unsafe-trace-log
// logger, or the unsafe_trace audit record — see SECURITY.md): handing
// this string to an analyst reopens the §6.3 timing side channel.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s dataset=%s", t.ID, t.Dataset)
	if t.Tenant != "" {
		fmt.Fprintf(&sb, " tenant=%s", t.Tenant)
	}
	for _, s := range t.spans {
		status := s.Status
		if !s.done {
			status = "open"
		}
		if s.Process != "" {
			fmt.Fprintf(&sb, " %s@%s=%s/%s", s.Stage, s.Process, status, s.Duration.Round(time.Microsecond))
		} else {
			fmt.Fprintf(&sb, " %s=%s/%s", s.Stage, status, s.Duration.Round(time.Microsecond))
		}
	}
	return sb.String()
}

// BucketUpperMillis maps a raw duration in milliseconds onto the upper
// bound of the latency bucket it falls in — the only resolution at which
// timings may leave the process (§6.3). Overflow (above the largest bound)
// returns -1, meaning "beyond the coarsest bucket".
func BucketUpperMillis(ms float64, boundsMillis []float64) float64 {
	for _, b := range boundsMillis {
		if ms <= b {
			return b
		}
	}
	return -1
}

// SpanSnapshot is the exported view of one span: stage, status, process,
// and the span's latency bucket — never its raw duration.
type SpanSnapshot struct {
	// Process is empty for server-side spans, "worker:<addr>" for merged
	// worker spans.
	Process string `json:"process,omitempty"`
	Stage   string `json:"stage"`
	Status  string `json:"status"`
	// BucketMillis is the upper bound of the DefaultLatencyBuckets bucket
	// the span's duration fell in; -1 means above the largest bound.
	BucketMillis float64 `json:"bucketMillis"`
}

// TraceSnapshot is the exported view of one completed trace, served at
// /traces. All durations are bucketed; the start time is truncated to
// whole seconds so consecutive snapshots cannot be differenced into a
// sub-second timing channel.
type TraceSnapshot struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	// Tenant is the authenticated principal; empty in single-tenant mode.
	Tenant string `json:"tenant,omitempty"`
	// Outcome is the query's terminal state: ok, degraded, error, aborted
	// or budget_refused.
	Outcome string `json:"outcome"`
	// StartUnix is the trace start, whole seconds.
	StartUnix int64 `json:"startUnix"`
	// ElapsedBucketMillis is the whole query's latency bucket (-1 =
	// above the largest bound).
	ElapsedBucketMillis float64 `json:"elapsedBucketMillis"`
	// RemoteSpansDropped counts worker spans beyond the per-trace cap.
	RemoteSpansDropped int            `json:"remoteSpansDropped,omitempty"`
	Spans              []SpanSnapshot `json:"spans"`
}

// snapshot captures the trace's exported form; outcome is supplied by the
// caller (the server knows how the query ended, the trace does not).
func (t *Trace) snapshot(outcome string) TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	elapsed := t.Elapsed()
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		ID:                  t.ID,
		Dataset:             t.Dataset,
		Tenant:              t.Tenant,
		Outcome:             outcome,
		StartUnix:           t.start.Unix(),
		ElapsedBucketMillis: BucketUpperMillis(float64(elapsed)/float64(time.Millisecond), DefaultLatencyBuckets),
		RemoteSpansDropped:  t.remoteDropped,
		Spans:               make([]SpanSnapshot, 0, len(t.spans)),
	}
	for _, s := range t.spans {
		status := s.Status
		if !s.done {
			status = "open"
		}
		snap.Spans = append(snap.Spans, SpanSnapshot{
			Process:      s.Process,
			Stage:        s.Stage,
			Status:       status,
			BucketMillis: BucketUpperMillis(float64(s.Duration)/float64(time.Millisecond), DefaultLatencyBuckets),
		})
	}
	return snap
}
