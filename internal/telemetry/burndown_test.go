package telemetry

import (
	"math"
	"testing"
	"time"
)

// planeClock gives tests a deterministic clock for the plane's EWMA and
// sliding-window arithmetic.
func planeClock(p *BudgetPlane) *time.Time {
	now := time.Unix(1_700_000_000, 0)
	p.now = func() time.Time { return now }
	return &now
}

func TestBudgetPlaneSeedAndRows(t *testing.T) {
	reg := NewRegistry()
	p := NewBudgetPlane(reg)
	planeClock(p)
	p.Seed("", "census", 0.5, 2.0)
	p.Seed("acme", "census", 0.1, 1.0)
	p.Seed("acme", "wages", 0, 0) // unlimited

	rows := p.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Sorted dataset then tenant, global row first.
	if rows[0].Dataset != "census" || rows[0].Tenant != "" {
		t.Fatalf("row 0 = %+v, want census global", rows[0])
	}
	if rows[0].EpsilonRemaining != 1.5 || rows[0].EpsilonTotal != 2.0 {
		t.Fatalf("row 0 budget = %+v", rows[0])
	}
	if rows[1].Tenant != "acme" || rows[1].EpsilonRemaining != 0.9 {
		t.Fatalf("row 1 = %+v", rows[1])
	}
	if !rows[2].Unlimited || rows[2].SecondsToExhaustion != 0 {
		t.Fatalf("row 2 = %+v, want unlimited / no forecast", rows[2])
	}
	// Seeding must not count charges.
	if rows[0].Charges != 0 {
		t.Fatalf("seed counted a charge: %+v", rows[0])
	}
	// Gauges published.
	if got := reg.FloatGauge("budget.remaining_epsilon.census").Value(); got != 1.5 {
		t.Fatalf("remaining gauge = %v, want 1.5", got)
	}
	if got := reg.FloatGauge("budget.remaining_epsilon.census.tenant.acme").Value(); got != 0.9 {
		t.Fatalf("tenant remaining gauge = %v, want 0.9", got)
	}
}

func TestBudgetPlaneBurnRateEWMA(t *testing.T) {
	p := NewBudgetPlane(nil)
	now := planeClock(p)

	// First charge: rate initialized pessimistically against the window.
	p.Observe("", "d", 0.1, 0.1, 10)
	rows := p.Rows()
	wantInit := 0.1 / DefaultBurnWindow.Seconds() * 60
	if math.Abs(rows[0].BurnPerMinute-wantInit) > 1e-12 {
		t.Fatalf("initial burn = %v, want %v", rows[0].BurnPerMinute, wantInit)
	}

	// Steady burning: 0.1ε every 10s → instantaneous 0.6 ε/min; the EWMA
	// must converge toward it from the pessimistic start.
	for i := 0; i < 60; i++ {
		*now = now.Add(10 * time.Second)
		p.Observe("", "d", 0.1, 0.1*float64(i+2), 10)
	}
	rows = p.Rows()
	if math.Abs(rows[0].BurnPerMinute-0.6) > 0.01 {
		t.Fatalf("steady-state burn = %v, want ~0.6 ε/min", rows[0].BurnPerMinute)
	}
	// Forecast: remaining ≈ 10-6.2=3.8ε at 0.01 ε/s → ~380s.
	sec := rows[0].SecondsToExhaustion
	if sec < 300 || sec > 450 {
		t.Fatalf("forecast = %ds, want ≈380s", sec)
	}
	if rows[0].Charges != 61 {
		t.Fatalf("charges = %d, want 61", rows[0].Charges)
	}
}

// A burst of back-to-back charges must read as ε-over-the-window, not
// ε-over-the-microsecond-gap: the burn rate is an EWMA of the
// window-average rate, so four charges 2ms apart cannot spike it by
// orders of magnitude (the regression that motivated this: a 4-query
// burst of 0.2ε reported ~731 ε/min against a true window rate of ~0.4).
func TestBudgetPlaneBurstDoesNotSpikeBurnRate(t *testing.T) {
	p := NewBudgetPlane(nil)
	now := planeClock(p)
	for i := 0; i < 4; i++ {
		*now = now.Add(2 * time.Millisecond)
		p.Observe("", "d", 0.2, 0.2*float64(i+1), 10)
	}
	rows := p.Rows()
	// Window holds all 0.8ε → the window-average ceiling is
	// 0.8/300s = 0.16 ε/min; the EWMA can only be at or below it.
	ceiling := 0.8 / DefaultBurnWindow.Seconds() * 60
	if rows[0].BurnPerMinute > ceiling+1e-12 {
		t.Fatalf("burst burn = %v ε/min, want <= window-average %v", rows[0].BurnPerMinute, ceiling)
	}
	if rows[0].BurnPerMinute <= 0 {
		t.Fatalf("burst burn = %v, want positive", rows[0].BurnPerMinute)
	}
}

func TestBudgetPlaneSlidingWindow(t *testing.T) {
	p := NewBudgetPlane(nil)
	now := planeClock(p)
	p.Observe("", "d", 0.3, 0.3, 10) // will age out
	*now = now.Add(DefaultBurnWindow + time.Second)
	p.Observe("", "d", 0.1, 0.4, 10)
	*now = now.Add(time.Minute)
	p.Observe("", "d", 0.2, 0.6, 10)

	rows := p.Rows()
	if math.Abs(rows[0].WindowEpsilon-0.3) > 1e-12 {
		t.Fatalf("window ε = %v, want 0.3 (first charge aged out)", rows[0].WindowEpsilon)
	}
	if rows[0].WindowSeconds != int64(DefaultBurnWindow.Seconds()) {
		t.Fatalf("window seconds = %d", rows[0].WindowSeconds)
	}
	if rows[0].EpsilonSpent != 0.6 {
		t.Fatalf("spent = %v, want authoritative 0.6", rows[0].EpsilonSpent)
	}
}

func TestBudgetPlaneThresholdEvents(t *testing.T) {
	p := NewBudgetPlane(nil)
	planeClock(p)
	var events []BudgetEvent
	p.SetOnEvent(func(ev BudgetEvent) { events = append(events, ev) })

	// 10ε total. Spend to 5.2 remaining 4.8 → crosses 0.5 only.
	p.Observe("t1", "d", 5.2, 5.2, 10)
	if len(events) != 1 || events[0].Fraction != 0.5 {
		t.Fatalf("events = %+v, want one 0.5 crossing", events)
	}
	if events[0].Tenant != "t1" || events[0].EpsilonRemaining != 4.8 {
		t.Fatalf("event = %+v", events[0])
	}
	// Spend to 0.05 remaining → crosses 0.25, 0.10 in one charge; 0.5 does
	// not re-fire.
	events = nil
	p.Observe("t1", "d", 4.0, 9.2, 10)
	if len(events) != 2 || events[0].Fraction != 0.25 || events[1].Fraction != 0.10 {
		t.Fatalf("events = %+v, want 0.25 then 0.10", events)
	}
	// Exhaust: the remaining two thresholds fire, each exactly once.
	events = nil
	p.Observe("t1", "d", 0.8, 10, 10)
	if len(events) != 2 || events[0].Fraction != 0.05 || events[1].Fraction != 0.01 {
		t.Fatalf("events = %+v, want 0.05 then 0.01", events)
	}
	events = nil
	p.Observe("t1", "d", 0, 10, 10)
	if len(events) != 0 {
		t.Fatalf("thresholds re-fired: %+v", events)
	}
	rows := p.Rows()
	if len(rows[0].ThresholdsCrossed) != 5 {
		t.Fatalf("crossed = %v, want all five", rows[0].ThresholdsCrossed)
	}
}

func TestBudgetPlaneNilSafe(t *testing.T) {
	var p *BudgetPlane
	p.Seed("", "d", 0, 1)
	p.Observe("", "d", 0.1, 0.1, 1)
	p.SetOnEvent(func(BudgetEvent) {})
	if rows := p.Rows(); rows != nil {
		t.Fatalf("nil plane rows = %v", rows)
	}
}

func TestBudgetPlaneGaugesAreSafeForExport(t *testing.T) {
	// The plane's gauges carry ε values, never durations; their names must
	// not look duration-shaped or the no-raw-durations lint would (rightly)
	// reject the whole registry.
	reg := NewRegistry()
	p := NewBudgetPlane(reg)
	planeClock(p)
	p.Observe("acme", "census", 0.5, 0.5, 2)
	for _, name := range reg.MetricNames() {
		if looksDurationNamed(name) {
			t.Fatalf("burn-down gauge %q is duration-named", name)
		}
	}
}
