package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// snapshot. The renderer enforces the same §6.3 export discipline as the
// JSON snapshot, with one deliberate deviation from Prometheus convention:
// histograms are emitted WITHOUT a <name>_sum series. A cumulative
// millisecond sum next to a count lets anyone who scrapes twice around a
// single query recover that query's exact duration by differencing — the
// precise measurement the timing side channel needs — so only the
// cumulative bucket counts and <name>_count are exposed. PromQL's
// histogram_quantile needs only the buckets; rate(..._sum) simply isn't
// available, by design (see SECURITY.md).

// PrometheusContentType is the Content-Type for the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders snap in Prometheus text format. Metric names are
// sanitized (dots and other invalid runes become underscores) and emitted
// in sorted order, so identical registry states produce byte-identical
// documents.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Prometheus buckets are cumulative; ours are per-bucket counts.
		var cum uint64
		for i, bound := range h.BoundsMillis {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatBound(bound), cum); err != nil {
				return err
			}
		}
		// The overflow bucket closes the cumulative series at +Inf.
		if len(h.Counts) > len(h.BoundsMillis) {
			cum += h.Counts[len(h.BoundsMillis)]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_count %d\n", pn, cum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus clients expect:
// shortest decimal form, no exponent for the magnitudes bucket layouts use.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}

// PrometheusName maps a registry metric name onto the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune (the registry's
// dots, most notably) becomes an underscore, and a leading digit gets an
// underscore prefix.
func PrometheusName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				sb.WriteByte('_')
				sb.WriteRune(r)
				continue
			}
			sb.WriteByte('_')
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}
