package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// snapshot. The renderer enforces the same §6.3 export discipline as the
// JSON snapshot, with one deliberate deviation from Prometheus convention:
// histograms are emitted WITHOUT a <name>_sum series. A cumulative
// millisecond sum next to a count lets anyone who scrapes twice around a
// single query recover that query's exact duration by differencing — the
// precise measurement the timing side channel needs — so only the
// cumulative bucket counts and <name>_count are exposed. PromQL's
// histogram_quantile needs only the buckets; rate(..._sum) simply isn't
// available, by design (see SECURITY.md).

// PrometheusContentType is the Content-Type for the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders snap in Prometheus text format. Metric names are
// sanitized (dots and other invalid runes become underscores) and emitted
// in sorted order, so identical registry states produce byte-identical
// documents.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.FloatGauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn,
			strconv.FormatFloat(snap.FloatGauges[n], 'g', -1, 64)); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		pn := PrometheusName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Prometheus buckets are cumulative; ours are per-bucket counts.
		var cum uint64
		for i, bound := range h.BoundsMillis {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatBound(bound), cum); err != nil {
				return err
			}
		}
		// The overflow bucket closes the cumulative series at +Inf.
		if len(h.Counts) > len(h.BoundsMillis) {
			cum += h.Counts[len(h.BoundsMillis)]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_count %d\n", pn, cum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus clients expect:
// shortest decimal form, no exponent for the magnitudes bucket layouts use.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}

// looksDurationNamed reports whether a metric name claims to carry timing
// data. The §6.3 export discipline keys off the name: anything
// duration-named must be a bucketed histogram, never a raw counter or
// gauge value.
func looksDurationNamed(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "millis") || strings.Contains(l, "seconds") ||
		strings.Contains(l, "duration") || strings.Contains(l, "_ms") ||
		strings.Contains(l, "latency") || strings.Contains(l, "elapsed")
}

// LintNoRawDurations checks the §6.3 export invariant over a snapshot:
// every duration-named metric must be a histogram (bucket counts only);
// a duration-named counter, gauge, or float gauge would export a raw
// timing value and widen the side channel. Run it over the full registry
// in tests whenever a subsystem adds metrics.
func LintNoRawDurations(snap Snapshot) error {
	for n := range snap.Counters {
		if looksDurationNamed(n) {
			return fmt.Errorf("telemetry: counter %q is duration-named; durations must be bucketed histograms (§6.3)", n)
		}
	}
	for n := range snap.Gauges {
		if looksDurationNamed(n) {
			return fmt.Errorf("telemetry: gauge %q is duration-named; durations must be bucketed histograms (§6.3)", n)
		}
	}
	for n := range snap.FloatGauges {
		if looksDurationNamed(n) {
			return fmt.Errorf("telemetry: float gauge %q is duration-named; durations must be bucketed histograms (§6.3)", n)
		}
	}
	return nil
}

// LintPrometheus structurally validates a text exposition against the
// 0.0.4 grammar the renderer targets: TYPE comments with a known metric
// type, each sample line a bare name or name{le="..."} followed by exactly
// one numeric value, every sample preceded by its TYPE comment, and — the
// platform's own invariant — no _sum series anywhere (§6.3: a cumulative
// duration sum can be differenced across scrapes into one query's exact
// latency).
func LintPrometheus(text string) error {
	typed := make(map[string]string) // base name -> declared type
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				return fmt.Errorf("telemetry: line %d: bad comment %q (only TYPE comments are emitted)", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("telemetry: line %d: unknown metric type %q", ln+1, parts[3])
			}
			if prev, ok := typed[parts[2]]; ok && prev != parts[3] {
				return fmt.Errorf("telemetry: line %d: %s re-declared as %s (was %s)", ln+1, parts[2], parts[3], prev)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("telemetry: line %d: sample %q is not 'name value'", ln+1, line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels := name[i:]
			name = name[:i]
			if !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
				return fmt.Errorf("telemetry: line %d: unexpected label set %q (only le is emitted)", ln+1, labels)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
				break
			}
		}
		if strings.HasSuffix(name, "_sum") {
			if _, ok := typed[strings.TrimSuffix(name, "_sum")]; ok {
				return fmt.Errorf("telemetry: line %d: %q is a _sum series (§6.3 forbids cumulative duration sums)", ln+1, name)
			}
		}
		t, ok := typed[base]
		if !ok {
			return fmt.Errorf("telemetry: line %d: sample %q has no preceding TYPE comment", ln+1, name)
		}
		if t == "histogram" && base == name {
			return fmt.Errorf("telemetry: line %d: histogram %q emitted a bare sample (want _bucket/_count only)", ln+1, name)
		}
		if !validPrometheusName(name) {
			return fmt.Errorf("telemetry: line %d: %q violates the metric name grammar", ln+1, name)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("telemetry: line %d: value %q is not a number", ln+1, fields[1])
		}
	}
	return nil
}

// validPrometheusName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPrometheusName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// PrometheusName maps a registry metric name onto the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune (the registry's
// dots, most notably) becomes an underscore, and a leading digit gets an
// underscore prefix.
func PrometheusName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				sb.WriteByte('_')
				sb.WriteRune(r)
				continue
			}
			sb.WriteByte('_')
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}
