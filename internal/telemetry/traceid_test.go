package telemetry

import "testing"

func TestNewTraceIDFormat(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 {
		t.Fatalf("trace id %q has length %d, want 32", id, len(id))
	}
	for _, r := range id {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			t.Fatalf("trace id %q is not lowercase hex", id)
		}
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	const n = 10000
	seen := make(map[string]struct{}, n)
	for i := 0; i < n; i++ {
		id := NewTraceID()
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate trace id %q after %d draws", id, i)
		}
		seen[id] = struct{}{}
	}
}
