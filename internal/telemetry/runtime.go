package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Runtime self-metrics: Go scheduler, heap and GC health sampled from
// runtime/metrics into the registry, so the process serving privacy
// budgets is itself observable (goroutine leaks, heap growth, GC pause
// outliers) without importing any non-stdlib collector. Everything
// exported is process-global state with no per-query structure; GC pauses
// go through the usual fixed-bucket histogram discipline.
//
// The sampler is pull-driven: the admin handler samples on each /metrics
// scrape, so an idle process does no background work and the exported
// values are as fresh as the scrape.

const (
	metricGoroutines = "/sched/goroutines:goroutines"
	metricHeapBytes  = "/memory/classes/heap/objects:bytes"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
	metricGCPauses   = "/sched/pauses/total/gc:seconds"
)

// RuntimeSampler copies Go runtime health metrics into a registry. Use one
// sampler per registry: it tracks the cumulative GC pause histogram
// between samples and feeds only the deltas forward.
type RuntimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample

	goroutines *Gauge
	heapBytes  *Gauge
	gcCycles   *Gauge
	gcPauses   *Histogram

	// prevPauseCounts is the last-seen cumulative runtime pause histogram,
	// used to compute per-sample deltas.
	prevPauseCounts []uint64
}

// NewRuntimeSampler builds a sampler feeding reg. Returns nil (whose
// Sample is a no-op) when reg is nil.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	return &RuntimeSampler{
		samples: []metrics.Sample{
			{Name: metricGoroutines},
			{Name: metricHeapBytes},
			{Name: metricGCCycles},
			{Name: metricGCPauses},
		},
		goroutines: reg.Gauge("runtime.goroutines"),
		heapBytes:  reg.Gauge("runtime.heap_objects_bytes"),
		gcCycles:   reg.Gauge("runtime.gc_cycles"),
		gcPauses:   reg.Histogram("runtime.gc_pause_millis", GCPauseBuckets),
	}
}

// Sample reads the runtime metrics once and updates the registry. Safe for
// concurrent use; no-op on a nil receiver.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	for _, sm := range s.samples {
		switch sm.Name {
		case metricGoroutines:
			if sm.Value.Kind() == metrics.KindUint64 {
				s.goroutines.Set(int64(sm.Value.Uint64()))
			}
		case metricHeapBytes:
			if sm.Value.Kind() == metrics.KindUint64 {
				s.heapBytes.Set(int64(sm.Value.Uint64()))
			}
		case metricGCCycles:
			if sm.Value.Kind() == metrics.KindUint64 {
				s.gcCycles.Set(int64(sm.Value.Uint64()))
			}
		case metricGCPauses:
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				s.feedPauseDeltas(sm.Value.Float64Histogram())
			}
		}
	}
}

// feedPauseDeltas forwards the growth of the runtime's cumulative pause
// histogram into the registry histogram. Each runtime bucket's new
// observations are recorded at the bucket's upper edge (its lower edge for
// the final +Inf bucket) — within one bucket width of the truth, which is
// all the bucketed export resolves anyway.
func (s *RuntimeSampler) feedPauseDeltas(h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	if len(s.prevPauseCounts) != len(h.Counts) {
		// First sample (or a runtime layout change): baseline without
		// replaying history, so restart-time noise doesn't flood the
		// histogram.
		s.prevPauseCounts = append([]uint64(nil), h.Counts...)
		return
	}
	for i, c := range h.Counts {
		prev := s.prevPauseCounts[i]
		s.prevPauseCounts[i] = c
		if c <= prev {
			continue
		}
		// Buckets[i] / Buckets[i+1] bound counts[i]; prefer the upper edge.
		edgeSec := 0.0
		switch {
		case i+1 < len(h.Buckets) && !math.IsInf(h.Buckets[i+1], 1):
			edgeSec = h.Buckets[i+1]
		case i < len(h.Buckets) && !math.IsInf(h.Buckets[i], -1):
			edgeSec = h.Buckets[i]
		}
		s.gcPauses.ObserveMillisN(edgeSec*1000, c-prev)
	}
}
