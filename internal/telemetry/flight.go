package telemetry

import (
	"strings"
	"sync"
)

// The query flight recorder: a bounded ring of recent query timelines,
// one FlightRecord per settled (or refused) query. Where /traces answers
// "what stages did this query pass through", the flight recorder answers
// the operator's triage questions directly: which workers ran its blocks,
// whether stragglers or failovers fired, what the query cost in ε, and —
// for refusals — why it was turned away and when to retry. Served at
// /flight and rendered live by `gupt-cli top`.
//
// Export discipline matches /traces: every timing inside a FlightRecord
// is already bucketed by the TraceSnapshot it embeds, and the extra
// fields (ε, block counts, worker attribution, retry hints) are values
// the analyst already receives in their response. See DESIGN.md §14.

// DefaultFlightRecorderSize is the ring capacity guptd uses.
const DefaultFlightRecorderSize = 128

// FlightWorker summarizes one process's contribution to a query's
// fan-out: how many block dispatches it won, how many duplicates the
// straggler timer fired at it, how many failover retries landed on it,
// and how many of its spans ended in error.
type FlightWorker struct {
	// Process is the span attribution ("worker:<addr>"; empty never
	// appears — local spans are not per-worker).
	Process string `json:"process"`
	// Dispatches counts fanout.dispatch spans attributed to the worker;
	// Executed counts worker.execute spans it shipped back.
	Dispatches int `json:"dispatches,omitempty"`
	Executed   int `json:"executed,omitempty"`
	Stragglers int `json:"stragglers,omitempty"`
	Failovers  int `json:"failovers,omitempty"`
	Errors     int `json:"errors,omitempty"`
}

// FlightExtra carries the per-query facts the trace itself does not hold;
// the server fills it when it records the flight.
type FlightExtra struct {
	// EpsilonCharged is the privacy budget the query consumed (0 for
	// cache hits and refusals).
	EpsilonCharged float64
	// Blocks is the block count the query executed over.
	Blocks int
	// Reason is the refusal reason for queries the scheduler or rate
	// limiter turned away ("queue_full", "deadline_unmeetable",
	// "rate_limited"); empty for served queries.
	Reason string
	// RetryAfterMillis is the retry hint returned with a refusal.
	RetryAfterMillis int64
}

// FlightRecord is one query's flight: its bucketed stage timeline plus
// cost, fan-out attribution, and (for refusals) the refusal reason.
type FlightRecord struct {
	TraceSnapshot
	EpsilonCharged   float64        `json:"epsilonCharged,omitempty"`
	Blocks           int            `json:"blocks,omitempty"`
	Reason           string         `json:"reason,omitempty"`
	RetryAfterMillis int64          `json:"retryAfterMillis,omitempty"`
	Workers          []FlightWorker `json:"workers,omitempty"`
}

// FlightRecorder is a fixed-size ring of FlightRecords. Nil-safe like
// every telemetry type: a nil recorder records nothing.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []FlightRecord
	next int
	n    int
}

// NewFlightRecorder builds a ring holding the last size flights;
// size <= 0 falls back to DefaultFlightRecorderSize.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &FlightRecorder{buf: make([]FlightRecord, size)}
}

// Record captures the trace's exported snapshot plus the extra facts and
// pushes the flight into the ring. Nil-safe on both the recorder and the
// trace.
func (f *FlightRecorder) Record(tr *Trace, outcome string, extra FlightExtra) {
	if f == nil || tr == nil {
		return
	}
	snap := tr.snapshot(outcome)
	rec := FlightRecord{
		TraceSnapshot:    snap,
		EpsilonCharged:   extra.EpsilonCharged,
		Blocks:           extra.Blocks,
		Reason:           extra.Reason,
		RetryAfterMillis: extra.RetryAfterMillis,
		Workers:          flightWorkers(snap.Spans),
	}
	f.mu.Lock()
	f.buf[f.next] = rec
	f.next = (f.next + 1) % len(f.buf)
	if f.n < len(f.buf) {
		f.n++
	}
	f.mu.Unlock()
}

// flightWorkers folds the per-process spans into per-worker summaries,
// in first-appearance order.
func flightWorkers(spans []SpanSnapshot) []FlightWorker {
	var workers []FlightWorker
	idx := map[string]int{}
	get := func(process string) *FlightWorker {
		if i, ok := idx[process]; ok {
			return &workers[i]
		}
		idx[process] = len(workers)
		workers = append(workers, FlightWorker{Process: process})
		return &workers[len(workers)-1]
	}
	for _, s := range spans {
		if s.Process == "" {
			continue
		}
		w := get(s.Process)
		switch s.Stage {
		case StageFanoutDispatch:
			w.Dispatches++
		case StageFanoutStraggler:
			w.Stragglers++
		case StageFanoutFailover:
			w.Failovers++
		case StageWorkerExecute:
			w.Executed++
		}
		if s.Status == StatusError || s.Status == StatusTimeout ||
			strings.HasPrefix(s.Status, "refused") {
			w.Errors++
		}
	}
	return workers
}

// Snapshots returns the recorded flights, newest first. Nil-safe.
func (f *FlightRecorder) Snapshots() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, f.n)
	for i := 0; i < f.n; i++ {
		idx := (f.next - 1 - i + len(f.buf)*2) % len(f.buf)
		out = append(out, f.buf[idx])
	}
	return out
}
