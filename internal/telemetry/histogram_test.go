package telemetry

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// Bucket edges are inclusive upper bounds: an observation equal to a bound
// lands in that bucket, one just above lands in the next.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	cases := []struct {
		ms     float64
		bucket int
	}{
		{0, 0},      // below the first bound
		{1, 0},      // exactly on the first bound: inclusive
		{1.0001, 1}, // just above: next bucket
		{10, 1},
		{10.5, 2},
		{100, 2},
		{100.0001, 3}, // overflow bucket
		{1e9, 3},
	}
	for _, c := range cases {
		h.ObserveMillis(c.ms)
	}
	snap := h.Snapshot()
	want := make([]uint64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != uint64(len(cases)) {
		t.Fatalf("total = %d, want %d", snap.Count, len(cases))
	}
	if len(snap.Counts) != len(snap.BoundsMillis)+1 {
		t.Fatalf("%d counts for %d bounds: want bounds+1 (overflow)", len(snap.Counts), len(snap.BoundsMillis))
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(500 * time.Microsecond) // 0.5ms → bucket 0
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow
	if got := h.Snapshot().Counts; !reflect.DeepEqual(got, []uint64{1, 1, 1}) {
		t.Fatalf("counts = %v, want [1 1 1]", got)
	}
}

// Unsorted or duplicated bounds must normalize, and empty bounds must fall
// back to the default layout.
func TestHistogramBoundsNormalization(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10, 10, 1})
	if got := h.Snapshot().BoundsMillis; !reflect.DeepEqual(got, []float64{1, 10, 100}) {
		t.Fatalf("bounds = %v, want [1 10 100]", got)
	}
	d := NewHistogram(nil)
	if got := d.Snapshot().BoundsMillis; !reflect.DeepEqual(got, DefaultLatencyBuckets) {
		t.Fatalf("default bounds = %v, want %v", got, DefaultLatencyBuckets)
	}
}

func TestHistogramConcurrency(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.ObserveMillis(float64((w*perWorker + i) % 40000))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}

// The §6.3 side-channel contract: a serialized histogram carries bucket
// bounds and integer counts, and nothing else — no sum, no min/max, no raw
// observations a snapshot-differ could use to recover one query's exact
// duration.
func TestHistogramExportIsBucketCountsOnly(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.ObserveMillis(3.14159) // a raw value that must never reappear
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{"boundsMillis": true, "counts": true, "count": true}
	for k := range fields {
		if !allowed[k] {
			t.Fatalf("histogram export leaks field %q: %s", k, raw)
		}
	}
	var counts []uint64
	if err := json.Unmarshal(fields["counts"], &counts); err != nil {
		t.Fatalf("counts are not integer bucket counts: %v (%s)", err, fields["counts"])
	}
}
