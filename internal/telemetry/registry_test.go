package telemetry

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("a") != c {
		t.Fatal("same name must return the same counter")
	}

	g := reg.Gauge("g")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if reg.Gauge("g") != g {
		t.Fatal("same name must return the same gauge")
	}
}

// Every method must be a no-op on nil receivers: instrumented code paths
// hold nil metrics when telemetry is disabled.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := reg.Gauge("x")
	g.Set(1)
	g.Inc()
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := reg.Histogram("x", nil)
	h.Observe(0)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram must be empty")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var tr *Trace
	sp := tr.StartSpan(StageBlocks)
	sp.End(StatusOK)
	if tr.String() != "" || tr.Spans() != nil || tr.Elapsed() != 0 {
		t.Fatal("nil trace must be inert")
	}
}

// Hammer one counter, one gauge and one registry from many goroutines;
// run under -race this is the concurrency contract.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("shared").Inc()
				reg.Gauge("depth").Inc()
				reg.Gauge("depth").Dec()
				reg.Histogram("lat", DefaultLatencyBuckets).ObserveMillis(float64(i % 40))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := reg.Histogram("lat", nil).Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// Identical registry states must serialize identically: operators diff
// consecutive snapshots, and tests compare them structurally.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("z.last").Add(3)
		reg.Counter("a.first").Add(1)
		reg.Gauge("m.depth").Set(2)
		h := reg.Histogram("lat", []float64{10, 100})
		h.ObserveMillis(5)
		h.ObserveMillis(50)
		h.ObserveMillis(5000)
		return reg
	}
	r1, r2 := build(), build()
	j1, err := json.Marshal(r1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	if !reflect.DeepEqual(r1.Snapshot(), r1.Snapshot()) {
		t.Fatal("repeated snapshots of an idle registry must be equal")
	}

	var round Snapshot
	if err := json.Unmarshal(j1, &round); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(round, r1.Snapshot()) {
		t.Fatal("snapshot must round-trip through JSON")
	}
}

func TestMetricNamesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c.b")
	reg.Gauge("a.g")
	reg.Histogram("z.h", nil)
	got := reg.MetricNames()
	want := []string{"a.g", "c.b", "z.h"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
}
