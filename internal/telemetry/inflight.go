package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Inflight tracks queries currently executing: which dataset, which
// lifecycle stage, and how long they have been running — the live
// counterpart of the completed-trace ring buffer, served at /queries. A
// watchdog sweeps the table and counts queries stuck past the
// deployment's deadline, which is how an operator notices a wedged worker
// or chamber before the query-timeout abort fires (or when no timeout is
// configured at all).
//
// Elapsed times are exported bucketed, like every other timing (§6.3).
type Inflight struct {
	slow *Counter // queries seen stuck past the watchdog deadline

	mu sync.Mutex
	m  map[*InflightQuery]struct{}

	stopOnce sync.Once
	stop     chan struct{}
}

// InflightQuery is one live query's entry in the table.
type InflightQuery struct {
	in      *Inflight
	id      string
	dataset string
	tenant  string
	start   time.Time

	mu      sync.Mutex
	stage   string
	flagged bool // already counted by the watchdog
}

// NewInflight builds an empty table. slow receives the watchdog's
// stuck-query count; it may be nil.
func NewInflight(slow *Counter) *Inflight {
	return &Inflight{slow: slow, m: make(map[*InflightQuery]struct{}), stop: make(chan struct{})}
}

// Begin registers a query. Nil-safe: a nil table returns a nil entry whose
// methods are no-ops.
func (in *Inflight) Begin(id, dataset string) *InflightQuery {
	return in.BeginTenant(id, dataset, "")
}

// BeginTenant is Begin with tenant attribution: the live-query table shows
// which principal each in-flight query runs as (id only, never key
// material). Empty tenant is exactly Begin.
func (in *Inflight) BeginTenant(id, dataset, tenant string) *InflightQuery {
	if in == nil {
		return nil
	}
	q := &InflightQuery{in: in, id: id, dataset: dataset, tenant: tenant, start: time.Now(), stage: StageAdmission}
	in.mu.Lock()
	in.m[q] = struct{}{}
	in.mu.Unlock()
	return q
}

// SetStage updates the query's current lifecycle stage (wired to
// Trace.OnStage). Nil-safe.
func (q *InflightQuery) SetStage(stage string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.stage = stage
	q.mu.Unlock()
}

// End removes the query from the table. Nil-safe; End twice is harmless.
func (q *InflightQuery) End() {
	if q == nil {
		return
	}
	q.in.mu.Lock()
	delete(q.in.m, q)
	q.in.mu.Unlock()
}

// StartWatchdog launches the stuck-query sweep: every interval, queries
// running longer than deadline are counted (once each) into the slow
// counter. Returns immediately when deadline or interval is zero; stop it
// via Stop. Nil-safe.
func (in *Inflight) StartWatchdog(deadline, interval time.Duration) {
	if in == nil || deadline <= 0 || interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-in.stop:
				return
			case <-t.C:
				in.sweep(deadline)
			}
		}
	}()
}

// Stop terminates the watchdog goroutine (if any). Nil-safe, idempotent.
func (in *Inflight) Stop() {
	if in == nil {
		return
	}
	in.stopOnce.Do(func() { close(in.stop) })
}

// sweep flags queries older than deadline that have not been counted yet.
func (in *Inflight) sweep(deadline time.Duration) {
	now := time.Now()
	in.mu.Lock()
	stale := make([]*InflightQuery, 0, 4)
	for q := range in.m {
		if now.Sub(q.start) > deadline {
			stale = append(stale, q)
		}
	}
	in.mu.Unlock()
	for _, q := range stale {
		q.mu.Lock()
		first := !q.flagged
		q.flagged = true
		q.mu.Unlock()
		if first {
			in.slow.Inc()
		}
	}
}

// InflightSnapshot is the exported view of one live query: its stage and
// its elapsed-time bucket, never a raw elapsed duration.
type InflightSnapshot struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	// Tenant is the authenticated principal; empty in single-tenant mode.
	Tenant string `json:"tenant,omitempty"`
	Stage  string `json:"stage"`
	// ElapsedBucketMillis is the upper bound of the DefaultLatencyBuckets
	// bucket the query's current age falls in; -1 means beyond the largest
	// bound.
	ElapsedBucketMillis float64 `json:"elapsedBucketMillis"`
	// Stuck reports that the watchdog has flagged this query as past the
	// deployment deadline.
	Stuck bool `json:"stuck,omitempty"`
}

// Snapshots returns the live queries, oldest first. Nil-safe.
func (in *Inflight) Snapshots() []InflightSnapshot {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	qs := make([]*InflightQuery, 0, len(in.m))
	for q := range in.m {
		qs = append(qs, q)
	}
	in.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].start.Before(qs[j].start) })
	now := time.Now()
	out := make([]InflightSnapshot, 0, len(qs))
	for _, q := range qs {
		q.mu.Lock()
		stage, stuck := q.stage, q.flagged
		q.mu.Unlock()
		out = append(out, InflightSnapshot{
			ID:                  q.id,
			Dataset:             q.dataset,
			Tenant:              q.tenant,
			Stage:               stage,
			ElapsedBucketMillis: BucketUpperMillis(float64(now.Sub(q.start))/float64(time.Millisecond), DefaultLatencyBuckets),
			Stuck:               stuck,
		})
	}
	return out
}
