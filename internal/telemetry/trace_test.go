package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace(reg, "q1", "census")

	sp := tr.StartSpan(StageAdmission)
	sp.End(StatusOK)
	sp2 := tr.StartSpan(StageBudget)
	sp2.End(StatusError)
	sp2.End(StatusOK) // second End must not overwrite

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Stage != StageAdmission || spans[0].Status != StatusOK {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Status != StatusError {
		t.Fatalf("double End overwrote status: %+v", spans[1])
	}
	if spans[0].Duration < 0 {
		t.Fatalf("negative duration: %v", spans[0].Duration)
	}

	// Ending a span feeds the per-stage bucketed histogram.
	snap := reg.Snapshot()
	h, ok := snap.Histograms["trace.stage."+StageAdmission+".millis"]
	if !ok {
		t.Fatalf("no stage histogram; metrics: %v", reg.MetricNames())
	}
	if h.Count != 1 {
		t.Fatalf("stage histogram count = %d, want 1", h.Count)
	}
}

func TestTraceWithoutRegistry(t *testing.T) {
	tr := NewTrace(nil, "q2", "ads")
	sp := tr.StartSpan(StageBlocks)
	time.Sleep(time.Millisecond)
	sp.End(StatusTimeout)
	if got := tr.Spans()[0]; got.Status != StatusTimeout || got.Duration <= 0 {
		t.Fatalf("span = %+v", got)
	}
	if tr.Elapsed() <= 0 {
		t.Fatal("elapsed must advance")
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTrace(nil, "q3", "census")
	tr.StartSpan(StageAdmission).End(StatusOK)
	open := tr.StartSpan(StageBlocks)
	s := tr.String()
	for _, want := range []string{"trace q3", "dataset=census", StageAdmission + "=ok/", StageBlocks + "=open/"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace string %q missing %q", s, want)
		}
	}
	open.End(StatusOK)
}
