package telemetry

import (
	"testing"
	"time"
)

func TestInflightLifecycle(t *testing.T) {
	in := NewInflight(nil)
	q1 := in.Begin("q1", "census")
	time.Sleep(2 * time.Millisecond) // distinct start times for ordering
	q2 := in.Begin("q2", "ads")
	q2.SetStage(StageBlocks)

	snaps := in.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d live queries, want 2", len(snaps))
	}
	if snaps[0].ID != "q1" || snaps[1].ID != "q2" {
		t.Fatalf("not oldest-first: %+v", snaps)
	}
	if snaps[0].Stage != StageAdmission {
		t.Fatalf("new query stage = %q, want admission", snaps[0].Stage)
	}
	if snaps[1].Stage != StageBlocks || snaps[1].Dataset != "ads" {
		t.Fatalf("q2 = %+v", snaps[1])
	}
	// Elapsed is exported as a bucket bound, never raw.
	for _, s := range snaps {
		ok := s.ElapsedBucketMillis == -1
		for _, b := range DefaultLatencyBuckets {
			if s.ElapsedBucketMillis == b {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("elapsed %v is not a bucket bound", s.ElapsedBucketMillis)
		}
	}

	q1.End()
	q1.End() // double End is harmless
	if snaps = in.Snapshots(); len(snaps) != 1 || snaps[0].ID != "q2" {
		t.Fatalf("after End: %+v", snaps)
	}
	q2.End()
	in.Stop()
}

func TestInflightWatchdog(t *testing.T) {
	reg := NewRegistry()
	slow := reg.Counter("compman.queries_slow")
	in := NewInflight(slow)
	defer in.Stop()

	q := in.Begin("q1", "census")
	defer q.End()
	in.StartWatchdog(time.Millisecond, 5*time.Millisecond)

	deadline := time.Now().Add(2 * time.Second)
	for slow.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the stuck query")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The query is counted once, not once per sweep.
	time.Sleep(25 * time.Millisecond)
	if got := slow.Value(); got != 1 {
		t.Fatalf("stuck query counted %d times", got)
	}
	if snaps := in.Snapshots(); len(snaps) != 1 || !snaps[0].Stuck {
		t.Fatalf("snapshot not marked stuck: %+v", snaps)
	}
}

func TestInflightNilSafe(t *testing.T) {
	var in *Inflight
	q := in.Begin("q", "d")
	q.SetStage(StageBlocks)
	q.End()
	in.StartWatchdog(time.Second, time.Second)
	in.Stop()
	if got := in.Snapshots(); got != nil {
		t.Fatalf("nil table snapshots = %v", got)
	}
}
