package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets is the standard bucket layout for query and stage
// latencies: upper bounds in milliseconds, roughly logarithmic from 1ms to
// 30s. The layout is deliberately coarse — per §6.3, exported timings must
// not resolve individual executions, and ~2.5× spacing means even an
// analyst who can isolate their own query learns only an order of
// magnitude.
var DefaultLatencyBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// GCPauseBuckets is the bucket layout for Go runtime GC pause times, which
// live well below the query-latency range: upper bounds in milliseconds
// from 10µs to 250ms. These are process health metrics with no per-query
// structure, but they go through the same bucketed export discipline as
// everything else.
var GCPauseBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// Histogram counts observations into fixed buckets. It exports bucket
// counts only: no sum, no min/max, no raw observations. An exported sum
// would let an observer who isolates one query recover its exact duration
// by differencing consecutive snapshots — precisely the side channel §6.3
// warns about — so the type does not record one.
type Histogram struct {
	// bounds are the inclusive upper bounds, strictly increasing.
	bounds []float64
	// counts[i] counts observations v with bounds[i-1] < v <= bounds[i];
	// counts[len(bounds)] is the overflow bucket.
	counts []atomic.Uint64
}

// NewHistogram builds a histogram from bucket upper bounds in milliseconds.
// The bounds are copied, sorted, and deduplicated; an empty or nil slice
// falls back to DefaultLatencyBuckets.
func NewHistogram(boundsMillis []float64) *Histogram {
	if len(boundsMillis) == 0 {
		boundsMillis = DefaultLatencyBuckets
	}
	bounds := append([]float64(nil), boundsMillis...)
	sort.Float64s(bounds)
	dedup := bounds[:1]
	for _, b := range bounds[1:] {
		if b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{
		bounds: dedup,
		counts: make([]atomic.Uint64, len(dedup)+1),
	}
}

// Observe records one duration. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveMillis(float64(d) / float64(time.Millisecond))
}

// ObserveMillis records one observation in milliseconds.
func (h *Histogram) ObserveMillis(ms float64) { h.ObserveMillisN(ms, 1) }

// ObserveMillisN records n observations of the same value in one atomic
// add — the bulk path for resampling pre-bucketed sources (the runtime's
// GC pause histogram) into a registry histogram.
func (h *Histogram) ObserveMillisN(ms float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	// Smallest bucket whose upper bound covers the value; equality lands in
	// the bucket (inclusive upper bounds).
	i := sort.SearchFloat64s(h.bounds, ms)
	h.counts[i].Add(n)
}

// HistogramSnapshot is the exported form: bucket bounds and counts only.
// Counts[i] pairs with BoundsMillis[i]; the final extra element of Counts
// is the overflow bucket (observations above the largest bound).
type HistogramSnapshot struct {
	BoundsMillis []float64 `json:"boundsMillis"`
	Counts       []uint64  `json:"counts"`
	Count        uint64    `json:"count"`
}

// Snapshot returns the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		BoundsMillis: append([]float64(nil), h.bounds...),
		Counts:       make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		snap.Counts[i] = c
		snap.Count += c
	}
	return snap
}
