package telemetry

import (
	"fmt"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(nil, fmt.Sprintf("t%d", i), "d")
		f.Record(tr, StatusOK, FlightExtra{})
	}
	got := f.Snapshots()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	// Newest first: t4, t3, t2.
	for i, want := range []string{"t4", "t3", "t2"} {
		if got[i].ID != want {
			t.Fatalf("snapshot %d = %s, want %s", i, got[i].ID, want)
		}
	}
}

func TestFlightRecordWorkersAndExtras(t *testing.T) {
	f := NewFlightRecorder(0) // default size
	tr := NewTrace(nil, "q1", "census")
	tr.Tenant = "acme"
	tr.StartSpan(StageSchedQueue).End(StatusOK)
	tr.StartSpan(StageSchedDecision).End(StatusOK)
	tr.AddRemoteSpans("worker:a", []RemoteSpan{
		{Stage: StageFanoutDispatch, Status: StatusOK, Millis: 2},
		{Stage: StageWorkerExecute, Status: StatusOK, Millis: 1.5},
	})
	tr.AddRemoteSpans("worker:b", []RemoteSpan{
		{Stage: StageFanoutDispatch, Status: StatusError, Millis: 9},
		{Stage: StageFanoutStraggler, Status: StatusOK, Millis: 3},
		{Stage: StageFanoutFailover, Status: StatusOK, Millis: 1},
	})
	f.Record(tr, "ok", FlightExtra{EpsilonCharged: 0.25, Blocks: 4})

	recs := f.Snapshots()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.ID != "q1" || r.Tenant != "acme" || r.EpsilonCharged != 0.25 || r.Blocks != 4 {
		t.Fatalf("record = %+v", r)
	}
	if len(r.Workers) != 2 {
		t.Fatalf("workers = %+v, want 2", r.Workers)
	}
	a, b := r.Workers[0], r.Workers[1]
	if a.Process != "worker:a" || a.Dispatches != 1 || a.Executed != 1 || a.Errors != 0 {
		t.Fatalf("worker a = %+v", a)
	}
	if b.Process != "worker:b" || b.Dispatches != 1 || b.Stragglers != 1 || b.Failovers != 1 || b.Errors != 1 {
		t.Fatalf("worker b = %+v", b)
	}
}

func TestFlightRecordRefusal(t *testing.T) {
	f := NewFlightRecorder(4)
	tr := NewTrace(nil, "ref1", "census")
	tr.StartSpan(StageSchedDecision).End(StatusRefusedBusy)
	f.Record(tr, "overloaded", FlightExtra{Reason: "queue_full", RetryAfterMillis: 40})

	r := f.Snapshots()[0]
	if r.Outcome != "overloaded" || r.Reason != "queue_full" || r.RetryAfterMillis != 40 {
		t.Fatalf("refusal record = %+v", r)
	}
	if r.EpsilonCharged != 0 {
		t.Fatalf("refusal charged ε: %+v", r)
	}
	if len(r.Spans) != 1 || r.Spans[0].Status != StatusRefusedBusy {
		t.Fatalf("refusal spans = %+v", r.Spans)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(NewTrace(nil, "x", "d"), "ok", FlightExtra{})
	if got := f.Snapshots(); got != nil {
		t.Fatalf("nil recorder snapshots = %v", got)
	}
	// A nil trace records nothing rather than a zero record.
	f2 := NewFlightRecorder(2)
	f2.Record(nil, "ok", FlightExtra{})
	if got := f2.Snapshots(); len(got) != 0 {
		t.Fatalf("nil trace recorded: %v", got)
	}
}
