package telemetry

import (
	"fmt"
	"testing"
)

func addTrace(buf *TraceBuffer, id string) {
	tr := NewTrace(nil, id, "census")
	tr.StartSpan(StageAdmission).End(StatusOK)
	buf.Add(tr, "ok")
}

func TestTraceBufferNewestFirst(t *testing.T) {
	buf := NewTraceBuffer(8)
	for i := 0; i < 3; i++ {
		addTrace(buf, fmt.Sprintf("t%d", i))
	}
	snaps := buf.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, want := range []string{"t2", "t1", "t0"} {
		if snaps[i].ID != want {
			t.Fatalf("snapshot order %v, want newest first", []string{snaps[0].ID, snaps[1].ID, snaps[2].ID})
		}
		_ = i
	}
	if snaps[0].Outcome != "ok" || snaps[0].Dataset != "census" {
		t.Fatalf("snapshot = %+v", snaps[0])
	}
	if len(snaps[0].Spans) != 1 || snaps[0].Spans[0].Stage != StageAdmission {
		t.Fatalf("spans = %+v", snaps[0].Spans)
	}
}

func TestTraceBufferEviction(t *testing.T) {
	buf := NewTraceBuffer(4)
	for i := 0; i < 10; i++ {
		addTrace(buf, fmt.Sprintf("t%d", i))
	}
	snaps := buf.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("ring of 4 holds %d", len(snaps))
	}
	for i, want := range []string{"t9", "t8", "t7", "t6"} {
		if snaps[i].ID != want {
			t.Fatalf("snapshots = %+v, want t9..t6", snaps)
		}
	}
}

func TestTraceBufferNilSafe(t *testing.T) {
	var buf *TraceBuffer
	buf.Add(NewTrace(nil, "x", "d"), "ok") // must not panic
	if got := buf.Snapshots(); got != nil {
		t.Fatalf("nil buffer snapshots = %v", got)
	}
	// A real buffer ignores nil traces.
	b := NewTraceBuffer(2)
	b.Add(nil, "ok")
	if got := b.Snapshots(); len(got) != 0 {
		t.Fatalf("nil trace was buffered: %v", got)
	}
}

func TestTraceSnapshotBucketsDurations(t *testing.T) {
	tr := NewTrace(nil, "tid", "census")
	tr.StartSpan(StageBlocks).End(StatusOK)
	tr.AddRemoteSpans("worker:1.2.3.4:9", []RemoteSpan{{Stage: StageWorkerExecute, Millis: 7.777}})
	buf := NewTraceBuffer(1)
	buf.Add(tr, "ok")
	snap := buf.Snapshots()[0]
	for _, s := range snap.Spans {
		valid := s.BucketMillis == -1
		for _, b := range DefaultLatencyBuckets {
			if s.BucketMillis == b {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("span %+v exports %v, not a bucket bound", s, s.BucketMillis)
		}
	}
	// The worker span must be present, labeled, and bucketed (7.777 → 10).
	last := snap.Spans[len(snap.Spans)-1]
	if last.Process != "worker:1.2.3.4:9" || last.Stage != StageWorkerExecute {
		t.Fatalf("worker span = %+v", last)
	}
	if last.BucketMillis != 10 {
		t.Fatalf("7.777ms bucketed to %v, want 10", last.BucketMillis)
	}
}
