// Package mathutil provides the small numeric substrate shared by the rest
// of GUPT: dense vector arithmetic, summary statistics, quantiles and a
// deterministic, splittable random number source.
//
// Everything here is ordinary floating-point math; nothing in this package
// is privacy-aware. The differential-privacy mechanisms built on top of it
// live in internal/dp.
package mathutil

import (
	"fmt"
	"math"
)

// Vec is a dense vector of float64 values.
type Vec []float64

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add returns v + w. It panics if the lengths differ; mismatched dimensions
// are a programming error, not a data error.
func (v Vec) Add(w Vec) Vec {
	mustSameLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// AddInPlace adds w into v element-wise.
func (v Vec) AddInPlace(w Vec) {
	mustSameLen(len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	mustSameLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns v multiplied by the scalar c.
func (v Vec) Scale(c float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] * c
	}
	return out
}

// ScaleInPlace multiplies v by the scalar c.
func (v Vec) ScaleInPlace(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	mustSameLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 {
	return math.Sqrt(v.Dot(v))
}

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec) Dist2(w Vec) float64 {
	mustSameLen(len(v), len(w))
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 {
	return math.Sqrt(v.Dist2(w))
}

// Equal reports whether v and w have the same length and every component
// differs by at most tol.
func (v Vec) Equal(w Vec, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Clamp returns a copy of v with every component restricted to [lo, hi].
func (v Vec) Clamp(lo, hi float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = Clamp(v[i], lo, hi)
	}
	return out
}

// SumClamped returns the sum of Clamp(x, lo, hi) over xs, accumulating in
// index order so the result is bit-identical to the scalar clamp-then-add
// loop it replaces. One pass over a contiguous slice with no allocation:
// this is the engine's hot clamp+accumulate over a block-output column.
func SumClamped(xs []float64, lo, hi float64) float64 {
	var sum float64
	for _, x := range xs {
		// Inlined Clamp, branch order identical to Clamp below.
		switch {
		case math.IsNaN(x):
			x = lo
		case x < lo:
			x = lo
		case x > hi:
			x = hi
		}
		sum += x
	}
	return sum
}

// Clamp restricts x to the closed interval [lo, hi]. NaN inputs are mapped
// to lo so that a misbehaving computation can never smuggle NaN through an
// aggregation.
func Clamp(x, lo, hi float64) float64 {
	if math.IsNaN(x) {
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MeanVecs returns the element-wise mean of the given vectors, which must
// all share one length. It panics on an empty input.
func MeanVecs(vs []Vec) Vec {
	if len(vs) == 0 {
		panic("mathutil: MeanVecs of empty slice")
	}
	out := make(Vec, len(vs[0]))
	for _, v := range vs {
		out.AddInPlace(v)
	}
	out.ScaleInPlace(1 / float64(len(vs)))
	return out
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("mathutil: dimension mismatch %d != %d", a, b))
	}
}
