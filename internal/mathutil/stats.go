package mathutil

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, matching
// the estimator in the paper's Example 4), or 0 for fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs without mutating it, or 0 for an empty
// slice. For even lengths it returns the mean of the two central order
// statistics.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between order statistics, without mutating xs. It returns 0
// for an empty slice and clamps p to [0,1].
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

// QuantileSorted is Quantile for an already-sorted slice; it does not copy.
func QuantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, p)
}

func quantileSorted(s []float64, p float64) float64 {
	p = Clamp(p, 0, 1)
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// RMSE returns the root mean squared error between predictions and truth.
// The slices must have the same nonzero length.
func RMSE(pred, truth []float64) float64 {
	mustSameLen(len(pred), len(truth))
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("mathutil: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// AbsErr returns |a - b|.
func AbsErr(a, b float64) float64 { return math.Abs(a - b) }

// RelErr returns |a-b| / max(|b|, eps): the relative error of a against the
// reference b, guarded against division by values near zero.
func RelErr(a, b float64) float64 {
	denom := math.Abs(b)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(a-b) / denom
}

// CDF computes the empirical CDF of xs evaluated at each of the (sorted)
// probe points, returning P[X <= probe]. xs is not mutated.
func CDF(xs, probes []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(probes))
	for i, p := range probes {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(p, math.Inf(1)))) / float64(len(s))
	}
	return out
}
