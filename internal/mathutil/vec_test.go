package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecClone(t *testing.T) {
	v := Vec{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliases original: v = %v", v)
	}
}

func TestVecAddSub(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Add(w); !got.Equal(Vec{5, 7, 9}, 0) {
		t.Errorf("Add = %v, want [5 7 9]", got)
	}
	if got := w.Sub(v); !got.Equal(Vec{3, 3, 3}, 0) {
		t.Errorf("Sub = %v, want [3 3 3]", got)
	}
}

func TestVecAddInPlace(t *testing.T) {
	v := Vec{1, 2}
	v.AddInPlace(Vec{10, 20})
	if !v.Equal(Vec{11, 22}, 0) {
		t.Errorf("AddInPlace = %v", v)
	}
}

func TestVecDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestVecScaleDotNorm(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Scale(2); !got.Equal(Vec{6, 8}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vec{1, 1}); got != 7 {
		t.Errorf("Dot = %v, want 7", got)
	}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestVecDist(t *testing.T) {
	v, w := Vec{0, 0}, Vec{3, 4}
	if got := v.Dist(w); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := v.Dist2(w); math.Abs(got-25) > 1e-12 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestClampScalar(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{math.NaN(), 0, 10, 0},
		{math.Inf(1), 0, 10, 10},
		{math.Inf(-1), 0, 10, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestVecClamp(t *testing.T) {
	v := Vec{-5, 0.5, 99, math.NaN()}
	got := v.Clamp(0, 1)
	want := Vec{0, 0.5, 1, 0}
	if !got.Equal(want, 0) {
		t.Errorf("Clamp = %v, want %v", got, want)
	}
}

func TestMeanVecs(t *testing.T) {
	got := MeanVecs([]Vec{{0, 2}, {2, 4}})
	if !got.Equal(Vec{1, 3}, 1e-12) {
		t.Errorf("MeanVecs = %v, want [1 3]", got)
	}
}

func TestMeanVecsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty MeanVecs")
		}
	}()
	MeanVecs(nil)
}

// Property: clamping is idempotent and always lands inside the interval.
func TestClampPropertyIdempotent(t *testing.T) {
	f := func(x, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(x, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: v + w - w == v for finite vectors.
func TestVecAddSubProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		v := Vec{a, b}
		w := Vec{c, d}
		if anyNaNInf(v) || anyNaNInf(w) {
			return true
		}
		got := v.Add(w).Sub(w)
		return got.Equal(v, 1e-6*(1+math.Abs(a)+math.Abs(b)+math.Abs(c)+math.Abs(d)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(v Vec) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
			return true
		}
	}
	return false
}
