package mathutil

import (
	"math"
	"testing"
)

func TestInt63NonNegative(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if g.Int63() < 0 {
			t.Fatal("negative Int63")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	g := NewRNG(2)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate after shuffle: %v", xs)
		}
		seen[x] = true
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(3)
	const mean = 4.0
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = g.Exponential(mean)
		if xs[i] < 0 {
			t.Fatal("negative exponential draw")
		}
	}
	if m := Mean(xs); math.Abs(m-mean) > 0.1 {
		t.Errorf("Exponential mean = %v, want ~%v", m, mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	g := NewRNG(4)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = g.LogNormal(1.5, 0.8)
		if xs[i] <= 0 {
			t.Fatal("non-positive log-normal draw")
		}
	}
	// Median of LogNormal(mu, sigma) is e^mu.
	if med := Median(xs); math.Abs(med-math.Exp(1.5)) > 0.2 {
		t.Errorf("LogNormal median = %v, want ~%v", med, math.Exp(1.5))
	}
}

func TestNormFloat64Moments(t *testing.T) {
	g := NewRNG(5)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = g.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-1) > 0.03 {
		t.Errorf("normal variance = %v", v)
	}
}

func TestGammaInvalidParamsPanic(t *testing.T) {
	g := NewRNG(6)
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v, %v) did not panic", bad[0], bad[1])
				}
			}()
			g.Gamma(bad[0], bad[1])
		}()
	}
}

func TestSumAndAbsErr(t *testing.T) {
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum = %v", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
	if got := AbsErr(3, 5); got != 2 {
		t.Errorf("AbsErr = %v", got)
	}
	if got := AbsErr(5, 3); got != 2 {
		t.Errorf("AbsErr = %v", got)
	}
}

func TestQuantileSortedEmpty(t *testing.T) {
	if got := QuantileSorted(nil, 0.5); got != 0 {
		t.Errorf("QuantileSorted(nil) = %v", got)
	}
}

func TestVecEqualLengthMismatch(t *testing.T) {
	if (Vec{1}).Equal(Vec{1, 2}, 1) {
		t.Error("length mismatch reported equal")
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestRMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RMSE length mismatch did not panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}
