package mathutil

import (
	"math"
	"testing"
)

// The batched hot-path kernels must be bit-identical to their scalar
// references: the engine's determinism fixtures (and the DP argument made
// for the scalar path) transfer to the batched path only if the same
// inputs produce the same bits and the same RNG stream consumption.

func TestSumClampedMatchesScalar(t *testing.T) {
	rng := NewRNG(31)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 200 * (rng.Float64() - 0.5)
	}
	// Splice in the adversarial values a chamber can emit: NaN (clamps to
	// lo), ±Inf (clamp to the bounds), signed zero.
	xs[17] = math.NaN()
	xs[83] = math.Inf(1)
	xs[84] = math.Inf(-1)
	xs[85] = math.Copysign(0, -1)

	cases := []struct{ lo, hi float64 }{
		{-50, 50},
		{0, 1},
		{-1e300, 1e300},
		{3, 3}, // degenerate range: everything clamps to the point
	}
	for _, c := range cases {
		var want float64
		for _, x := range xs {
			want += Clamp(x, c.lo, c.hi)
		}
		got := SumClamped(xs, c.lo, c.hi)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("SumClamped(lo=%v,hi=%v) = %x, scalar reference %x", c.lo, c.hi, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if got := SumClamped(nil, 0, 1); got != 0 {
		t.Errorf("SumClamped(nil) = %v, want 0", got)
	}
}

func TestLaplaceFillMatchesScalar(t *testing.T) {
	scales := []float64{1, 0.5, 0, 2.25, -1, 1e-3, 7}
	batched := NewRNG(97)
	scalar := NewRNG(97)

	dst := make([]float64, len(scales))
	batched.LaplaceFill(dst, scales)
	for i, s := range scales {
		want := scalar.Laplace(s)
		if math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Errorf("draw %d (scale %v): batched %x, scalar %x", i, s, math.Float64bits(dst[i]), math.Float64bits(want))
		}
	}
	// Both generators must have consumed the identical stream: their next
	// draws agree. This is what lets LaplaceFill replace per-dimension
	// Laplace calls without perturbing any downstream randomness.
	if a, b := batched.Float64(), scalar.Float64(); a != b {
		t.Errorf("RNG streams diverged after batch: %v vs %v", a, b)
	}
}

func TestLaplaceFillZeroScaleConsumesNothing(t *testing.T) {
	a := NewRNG(5)
	b := NewRNG(5)
	dst := make([]float64, 3)
	a.LaplaceFill(dst, []float64{0, -2, 0})
	for i, v := range dst {
		if v != 0 {
			t.Errorf("dst[%d] = %v, want 0 for non-positive scale", i, v)
		}
	}
	if x, y := a.Float64(), b.Float64(); x != y {
		t.Errorf("non-positive scales consumed randomness: %v vs %v", x, y)
	}
}
