package mathutil

import "math"

// Gamma returns a draw from the Gamma distribution with the given shape and
// scale (mean shape·scale), using the Marsaglia–Tsang squeeze method. It
// panics on non-positive parameters; callers choose distribution parameters
// statically.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("mathutil: Gamma parameters must be positive")
	}
	// For shape < 1, boost using Gamma(shape+1) · U^{1/shape}.
	if shape < 1 {
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = g.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := g.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
