package mathutil

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance single = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	// Median must not mutate its input.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {-1, 10}, {2, 50},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated Quantile = %v, want 5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Quantile singleton = %v, want 7", got)
	}
}

func TestQuantileSortedAgrees(t *testing.T) {
	xs := []float64{5, 3, 9, 1, 7, 2}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for _, p := range []float64{0, 0.1, 0.33, 0.5, 0.9, 1} {
		if a, b := Quantile(xs, p), QuantileSorted(s, p); a != b {
			t.Errorf("Quantile(%v)=%v != QuantileSorted=%v", p, a, b)
		}
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("RMSE identical = %v, want 0", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", lo, hi)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v, want 0.1", got)
	}
	// Guarded against zero reference.
	if got := RelErr(1, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("RelErr near-zero ref = %v, want finite", got)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := CDF(xs, []float64{0, 1, 2.5, 4, 10})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: the p-quantile is within [min, max] and monotone in p.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Abs(math.Mod(p1, 1))
		p2 = math.Abs(math.Mod(p2, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := MinMax(xs)
		q1, q2 := Quantile(xs, p1), Quantile(xs, p2)
		return q1 >= lo && q2 <= hi && q1 <= q2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and zero for constant data.
func TestVarianceProperty(t *testing.T) {
	f := func(c float64, n uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e100 {
			// Summing ~32 copies of a near-max float overflows; skip.
			return true
		}
		xs := make([]float64, int(n%32)+1)
		for i := range xs {
			xs[i] = c
		}
		v := Variance(xs)
		return v >= 0 && v < 1e-6*(1+c*c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if NewRNG(1).Float64() == NewRNG(2).Float64() {
		t.Error("different seeds produced identical first draw (suspicious)")
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	g := NewRNG(11)
	c1 := g.Split()
	c2 := g.Split()
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("split children look correlated: %d/50 identical draws", same)
	}
}

func TestLaplaceMoments(t *testing.T) {
	g := NewRNG(42)
	const n = 200000
	const scale = 3.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Laplace(scale)
	}
	if m := Mean(xs); math.Abs(m) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", m)
	}
	// Var(Lap(b)) = 2b^2 = 18.
	if v := Variance(xs); math.Abs(v-18) > 1 {
		t.Errorf("Laplace variance = %v, want ~18", v)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	g := NewRNG(1)
	if got := g.Laplace(0); got != 0 {
		t.Errorf("Laplace(0) = %v, want 0", got)
	}
	if got := g.Laplace(-1); got != 0 {
		t.Errorf("Laplace(-1) = %v, want 0", got)
	}
}

func TestCategorical(t *testing.T) {
	g := NewRNG(5)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.Categorical([]float64{1, 2, 7})]++
	}
	total := 30000.0
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Categorical freq[%d] = %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	g := NewRNG(5)
	// All-zero weights fall back to uniform and must not panic.
	for i := 0; i < 10; i++ {
		idx := g.Categorical([]float64{0, 0, 0})
		if idx < 0 || idx > 2 {
			t.Fatalf("Categorical out of range: %d", idx)
		}
	}
	// Negative weights are ignored.
	for i := 0; i < 100; i++ {
		if got := g.Categorical([]float64{-5, 1, -2}); got != 1 {
			t.Fatalf("Categorical with negatives picked %d, want 1", got)
		}
	}
}

func TestGumbelCategoricalPrefersLargeLogit(t *testing.T) {
	g := NewRNG(9)
	wins := 0
	for i := 0; i < 1000; i++ {
		if g.GumbelCategorical([]float64{0, 0, 10}) == 2 {
			wins++
		}
	}
	if wins < 990 {
		t.Errorf("logit 10 won only %d/1000 times", wins)
	}
	// Extreme logits must not overflow.
	if idx := g.GumbelCategorical([]float64{-1e308, 1e300}); idx != 1 {
		t.Errorf("extreme logits picked %d, want 1", idx)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(3)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, i := range p {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[i] = true
	}
}
