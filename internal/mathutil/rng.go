package mathutil

import (
	"math"
	"math/rand"
	"sync"
)

// RNG is a deterministic, splittable source of randomness. Every stochastic
// component in GUPT draws from an RNG handed to it explicitly, so whole-system
// experiments are reproducible from a single seed.
//
// RNG is safe for concurrent use; the underlying generator is guarded by a
// mutex. For hot loops, Split off a child per goroutine instead of sharing.
type RNG struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new, independently seeded RNG from r. The child's stream
// is a deterministic function of r's state, so splitting is reproducible.
func (g *RNG) Split() *RNG {
	g.mu.Lock()
	defer g.mu.Unlock()
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Int63()
}

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.NormFloat64()
}

// Perm returns a uniform random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Perm(n)
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.r.Shuffle(n, swap)
}

// Laplace returns a draw from the Laplace distribution with mean 0 and the
// given scale b (standard deviation b·√2), via inverse-CDF sampling.
func (g *RNG) Laplace(scale float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.laplaceLocked(scale)
}

// laplaceLocked draws one Laplace variate from the underlying generator;
// the caller holds g.mu. A non-positive scale returns 0 without consuming
// randomness, matching the historical scalar behavior so batched and
// scalar callers stay on the same stream.
func (g *RNG) laplaceLocked(scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	// u is uniform in (-1/2, 1/2); the inverse CDF of Lap(0, b) maps it to
	// -b·sign(u)·ln(1-2|u|).
	u := g.r.Float64() - 0.5
	for u == -0.5 { // avoid log(0)
		u = g.r.Float64() - 0.5
	}
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// LaplaceFill fills dst[i] with an independent Laplace(0, scales[i]) draw,
// taking the generator lock once for the whole batch instead of once per
// variate. The variate stream is bit-identical to calling Laplace(scales[i])
// sequentially in index order, so DP mechanisms can switch between the
// scalar and batched paths without changing released outputs. It panics on
// mismatched lengths; that is a programming error, not a data error.
func (g *RNG) LaplaceFill(dst, scales []float64) {
	mustSameLen(len(dst), len(scales))
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, s := range scales {
		dst[i] = g.laplaceLocked(s)
	}
}

// Exponential returns a draw from the exponential distribution with the
// given mean.
func (g *RNG) Exponential(mean float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.ExpFloat64() * mean
}

// LogNormal returns exp(N(mu, sigma^2)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.NormFloat64())
}

// Categorical samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. If all
// weights are zero it returns a uniform index.
func (g *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("mathutil: Categorical with no weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return g.Intn(len(weights))
	}
	x := g.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// GumbelCategorical samples an index with probability proportional to
// exp(logits[i]) using the Gumbel-max trick, which is numerically stable for
// large-magnitude logits (as produced by the exponential mechanism).
func (g *RNG) GumbelCategorical(logits []float64) int {
	if len(logits) == 0 {
		panic("mathutil: GumbelCategorical with no logits")
	}
	best, bestIdx := math.Inf(-1), 0
	for i, l := range logits {
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		v := l - math.Log(-math.Log(u))
		if v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}
