package compman

// Binary wire protocol. The original compman wire was newline-delimited
// JSON; encode/decode dominated small queries and capped block fan-out
// (every one of a query's ℓ blocks crosses the manager↔worker path). This
// file replaces it with a length-prefixed binary framing reusing the
// ledger's CRC32C frame idiom — and its fuzz-everything discipline. The
// JSON wire shipped for one release as a negotiated fallback and has now
// been retired: version 0 is rejected at the handshake with ErrPeerTooOld,
// and there is no negotiate-down path. (The JSON *line* codecs in
// protocol.go remain — they serve the admin HTTP surface, not the wire.)
//
// Negotiation. A client opens with a 5-byte hello line
//
//	| 0xB1 | 'G' | 'W' | version | '\n' |
//
// The magic byte 0xB1 can never begin a JSON value, so a peer that opens
// with anything else is identified as a pre-binary (JSON-only) release and
// refused with ErrPeerTooOld. The server answers the hello with its own
// hello carrying min(client version, server version); both sides then
// speak frames. Anything else — a truncated hello, a garbled echo, an
// upward version, a version-0 hello — fails closed: the connection is
// dropped rather than risking frame misparses.
//
// Framing (after negotiation), little-endian, as in internal/ledger:
//
//	| length uint32 | crc32c(payload) uint32 | payload (length bytes) |
//
// payload:
//
//	| kind uint8 | message body |
//
// Body grammar: strings are uint32 length + bytes (bounded); float64s are
// IEEE bits; ints are two's-complement int64; optional sub-messages carry
// a presence byte; float64 slices and row matrices are encoded
// contiguously (count + packed 8-byte values) so a WorkSpec/WorkResponse
// round-trip costs O(1) allocations instead of one per element. Decoders
// bound every allocation by the bytes actually present in the frame and
// never panic on arbitrary input (see FuzzWireEquivalence).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"unicode/utf8"

	"gupt/internal/telemetry"
)

// Wire versions. Version 0 was the newline-delimited JSON wire, retired
// after its one-release fallback window. Version 1 was the first CRC32C
// binary framing; it was retired in the same release that retired version
// 0, when the Response body grew the cache-hit flag (a version-1 decoder
// would misparse the new frames). Peers offering either retired version
// are refused with ErrPeerTooOld.
//
// Version 3 (PR 8, multi-tenancy) extends version 2 with OPTIONAL TAILS
// rather than a breaking relayout: a request may end with the API key
// string, a response with the resolved tenant id + retry-after hint.
// Decoders read the tail only when payload bytes remain past the version-2
// grammar, so a version-2 frame decodes unchanged under a version-3
// decoder and version 2 stays a live negotiation target — old clients keep
// working against single-tenant (tenancy-off) servers with no flag day. A
// tenancy-ON server rejects version-2 clients at admission (they cannot
// present a key), not at the handshake.
//
// Version 4 (PR 9, deadline-aware scheduling) appends the client's query
// deadline budget (DeadlineMillis) to the request tail, after the API key.
// It cannot ride the version-3 tail in place — decodePayload rejects
// trailing bytes, so a version-3 server would refuse extended frames —
// hence the bump. The response grammar is unchanged; versions 2 and 3
// remain live negotiation targets and their frames decode unchanged under
// a version-4 decoder (each tail field is read only when bytes remain).
const (
	WireVersionJSON    uint8 = 0 // retired; named only to reject it by name
	WireVersionBinary1 uint8 = 1 // retired: pre-cache-hit binary framing
	WireVersionBinary  uint8 = 2 // still negotiable: pre-tenancy framing
	WireVersionBinary3 uint8 = 3 // still negotiable: tenant tails on request/response
	WireVersionBinary4 uint8 = 4 // current: request tail gains the deadline budget
	// LatestWireVersion is what Dial and NewWorkerPool negotiate for.
	LatestWireVersion = WireVersionBinary4
)

// WireMagic is the first byte of a binary-wire hello. It is outside every
// byte a JSON text can start with, which is what makes connect-time
// sniffing unambiguous. internal/faultinject's chaos proxy sniffs it too.
const WireMagic byte = 0xB1

// WireHelloLen is the exact length of a hello line.
const WireHelloLen = 5

// WireFrameHeaderLen is the length of a frame header (uint32 payload
// length + uint32 CRC32C), exported for frame-aware intermediaries like
// internal/faultinject's chaos proxy.
const WireFrameHeaderLen = wireFrameHeaderLen

const (
	wireMark0 byte = 'G'
	wireMark1 byte = 'W'

	wireFrameHeaderLen = 8
	// MaxWireFrame bounds one frame's payload — the binary analogue of the
	// JSON scanner's line cap, and the bound on decode allocation.
	MaxWireFrame = 64 << 20
	// maxWireString bounds any single string field.
	maxWireString = 1 << 20
	// maxNegotiationLine bounds the hello-reply line a client will buffer
	// before declaring the negotiation garbled.
	maxNegotiationLine = 1 << 16
)

// Message kinds (the payload's first byte).
const (
	wireMsgRequest      byte = 1
	wireMsgResponse     byte = 2
	wireMsgWorkRequest  byte = 3
	wireMsgWorkResponse byte = 4
)

var wireCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWireNegotiation reports a connect-time handshake that could not be
// completed safely. Negotiation failures are terminal for the connection:
// proceeding after a garbled hello risks misparsing frames as JSON or vice
// versa, so both ends fail closed.
var ErrWireNegotiation = errors.New("compman: wire negotiation failed")

// ErrWireFrame reports a frame whose length, checksum or grammar is
// invalid. Like a corrupted JSON worker reply, it means the stream can no
// longer be trusted to be in sync.
var ErrWireFrame = errors.New("compman: invalid wire frame")

// ErrPeerTooOld reports a handshake with a peer that only speaks a retired
// wire — the version-0 JSON wire or the version-1 pre-cache-hit binary
// framing. It is deliberately a distinct error from ErrWireNegotiation (a
// garbled or tampered handshake): the operator's fix for a too-old peer is
// an upgrade, not a network investigation, and pool construction surfaces
// it by name so a stale worker build is diagnosed from the error alone.
var ErrPeerTooOld = errors.New("compman: peer speaks only a retired wire version; upgrade the peer to this release")

// wireBufPool recycles encode/decode scratch across connections. Each
// connection checks a buffer out once and reuses it for every message, so
// the steady-state hot path allocates nothing for framing.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getWireBuf() *[]byte  { return wireBufPool.Get().(*[]byte) }
func putWireBuf(b *[]byte) { wireBufPool.Put(b) }

// wireHello returns the 5-byte hello line for a version.
func wireHello(version uint8) []byte {
	return []byte{WireMagic, wireMark0, wireMark1, version, '\n'}
}

// parseWireHello validates a hello (or hello echo) line. A structurally
// valid hello offering a retired version (0 or 1) is distinguished from
// garbage: it is a well-built peer that is merely too old, not a corrupted
// stream.
func parseWireHello(line []byte) (uint8, error) {
	if len(line) != WireHelloLen || line[0] != WireMagic ||
		line[1] != wireMark0 || line[2] != wireMark1 || line[4] != '\n' {
		return 0, fmt.Errorf("%w: garbled hello %q", ErrWireNegotiation, clipForError(line))
	}
	if line[3] < WireVersionBinary {
		return 0, ErrPeerTooOld
	}
	return line[3], nil
}

// clipForError bounds raw wire bytes quoted into an error message.
func clipForError(b []byte) []byte {
	if len(b) > 64 {
		return b[:64]
	}
	return b
}

// readLineBounded reads one newline-terminated line of at most max bytes.
// Unlike bufio.Reader.ReadBytes it refuses to buffer unbounded garbage
// from a peer that never sends the delimiter.
func readLineBounded(r *bufio.Reader, max int) ([]byte, error) {
	line := make([]byte, 0, 64)
	for {
		b, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		line = append(line, b)
		if b == '\n' {
			return line, nil
		}
		if len(line) >= max {
			return nil, fmt.Errorf("line exceeds %d bytes without terminator", max)
		}
	}
}

// negotiateWire performs the client side of the handshake on a fresh
// connection. want is the highest version the caller speaks; the result is
// the negotiated version. A reply that is not a valid hello echo fails
// closed: ErrPeerTooOld when the peer is recognizably a pre-binary JSON
// release (it echoed our hello as a malformed-JSON error line, or offered
// version 0), ErrWireNegotiation for anything garbled.
func negotiateWire(conn net.Conn, r *bufio.Reader, want uint8) (uint8, error) {
	if want < WireVersionBinary {
		return 0, fmt.Errorf("%w: wire version %d is retired", ErrWireNegotiation, want)
	}
	if want > LatestWireVersion {
		want = LatestWireVersion
	}
	if _, err := conn.Write(wireHello(want)); err != nil {
		return 0, fmt.Errorf("%w: sending hello: %v", ErrWireNegotiation, err)
	}
	line, err := readLineBounded(r, maxNegotiationLine)
	if err != nil {
		return 0, fmt.Errorf("%w: reading hello reply: %v", ErrWireNegotiation, err)
	}
	switch line[0] {
	case WireMagic:
		v, err := parseWireHello(line)
		if err != nil {
			return 0, err
		}
		if v > want {
			// A server must negotiate down, never up; an upward echo means
			// the bytes were tampered with or desynchronized.
			return 0, fmt.Errorf("%w: server echoed version %d above offered %d", ErrWireNegotiation, v, want)
		}
		return v, nil
	case '{':
		// A pre-binary JSON server read the hello as a malformed JSON line
		// and answered with an error response. The fallback window is over:
		// identify the peer by name and refuse the connection.
		return 0, ErrPeerTooOld
	default:
		return 0, fmt.Errorf("%w: unrecognized hello reply %q", ErrWireNegotiation, clipForError(line))
	}
}

// sniffWire performs the server side of the handshake on a just-accepted
// connection: read the hello, echo the negotiated-down version. A first
// byte that is not the wire magic means a pre-binary JSON client —
// ErrPeerTooOld, which the server answers with one terminal JSON error
// line so the legacy client sees the reason instead of a silent hangup.
// A magic byte followed by a garbled hello is a terminal error.
func sniffWire(conn net.Conn, r *bufio.Reader, maxVersion uint8) (uint8, error) {
	first, err := r.Peek(1)
	if err != nil {
		return 0, err
	}
	if first[0] != WireMagic {
		return 0, ErrPeerTooOld
	}
	hello := make([]byte, WireHelloLen)
	if _, err := io.ReadFull(r, hello); err != nil {
		return 0, fmt.Errorf("%w: reading hello: %v", ErrWireNegotiation, err)
	}
	v, err := parseWireHello(hello)
	if err != nil {
		return 0, err
	}
	if v > maxVersion {
		v = maxVersion
	}
	if _, err := conn.Write(wireHello(v)); err != nil {
		return 0, fmt.Errorf("%w: sending hello echo: %v", ErrWireNegotiation, err)
	}
	return v, nil
}

// readWireFrame reads one frame's payload into *buf (grown as needed and
// reused across calls) and returns it. io.EOF surfaces untouched only at a
// clean frame boundary; a stream ending mid-frame is ErrUnexpectedEOF.
func readWireFrame(r *bufio.Reader, buf *[]byte) ([]byte, error) {
	var hdr [wireFrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxWireFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrWireFrame, n)
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if got := crc32.Checksum(payload, wireCRCTable); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrWireFrame, got, want)
	}
	return payload, nil
}

// --- encoder ---

// wireEncoder builds one frame in place: the header is reserved up front
// and back-filled by finishFrame, so a message is encoded with zero copies
// into a caller-owned (usually pooled) buffer.
type wireEncoder struct {
	b   []byte
	err error
}

func newFrameEncoder(buf []byte) *wireEncoder {
	buf = append(buf[:0], make([]byte, wireFrameHeaderLen)...)
	return &wireEncoder{b: buf}
}

func (e *wireEncoder) failf(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf(format, args...)
	}
}

// finishFrame back-fills the length and CRC header and returns the
// complete frame.
func (e *wireEncoder) finishFrame() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	payload := e.b[wireFrameHeaderLen:]
	if len(payload) > MaxWireFrame {
		return nil, fmt.Errorf("%w: encoded payload %d exceeds frame limit", ErrWireFrame, len(payload))
	}
	binary.LittleEndian.PutUint32(e.b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.b[4:8], crc32.Checksum(payload, wireCRCTable))
	return e.b, nil
}

func (e *wireEncoder) u8(v byte)     { e.b = append(e.b, v) }
func (e *wireEncoder) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *wireEncoder) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *wireEncoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *wireEncoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *wireEncoder) boolb(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *wireEncoder) str(s string) {
	if len(s) > maxWireString {
		e.failf("%w: string field is %d bytes, exceeds the %d-byte limit", ErrWireFrame, len(s), maxWireString)
		return
	}
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *wireEncoder) strs(ss []string) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// f64s encodes a float64 slice contiguously: count, then packed IEEE bits.
func (e *wireEncoder) f64s(xs []float64) {
	e.u32(uint32(len(xs)))
	off := len(e.b)
	e.b = append(e.b, make([]byte, 8*len(xs))...)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(e.b[off+8*i:], math.Float64bits(x))
	}
}

func (e *wireEncoder) ints(xs []int) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.i64(int64(x))
	}
}

func (e *wireEncoder) ranges(rs []RangeSpec) {
	e.u32(uint32(len(rs)))
	for _, r := range rs {
		e.f64(r.Lo)
		e.f64(r.Hi)
	}
}

// matrix encodes [][]float64. The uniform case — every row the same width,
// which is every engine block and every registered table — is laid out as
// one contiguous run of rows*cols values so the decoder can rebuild it
// with two allocations total. Ragged inputs fall back to per-row encoding.
func (e *wireEncoder) matrix(rows [][]float64) {
	uniform := true
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
		for _, r := range rows[1:] {
			if len(r) != cols {
				uniform = false
				break
			}
		}
	}
	if uniform {
		e.u8(1)
		e.u32(uint32(len(rows)))
		e.u32(uint32(cols))
		off := len(e.b)
		e.b = append(e.b, make([]byte, 8*len(rows)*cols)...)
		for i, r := range rows {
			base := off + 8*i*cols
			for j, x := range r {
				binary.LittleEndian.PutUint64(e.b[base+8*j:], math.Float64bits(x))
			}
		}
		return
	}
	e.u8(0)
	e.u32(uint32(len(rows)))
	for _, r := range rows {
		e.f64s(r)
	}
}

// --- decoder ---

// wireDecoder consumes little-endian fields from a frame payload, latching
// the first error instead of panicking on short or hostile input. Every
// count is validated against the bytes actually remaining before any
// allocation, so a forged header cannot force a large allocation.
type wireDecoder struct {
	b   []byte
	err error
}

func (d *wireDecoder) failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *wireDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b) < n {
		d.failf("%w: truncated payload", ErrWireFrame)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *wireDecoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wireDecoder) i64() int64   { return int64(d.u64()) }
func (d *wireDecoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *wireDecoder) intf() int    { return int(d.i64()) }

func (d *wireDecoder) boolb() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.failf("%w: boolean byte out of range", ErrWireFrame)
		return false
	}
}

// count reads a collection count and rejects any value the remaining bytes
// cannot possibly satisfy, given each element needs at least min bytes.
func (d *wireDecoder) count(min int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if min > 0 && uint64(n)*uint64(min) > uint64(len(d.b)) {
		d.failf("%w: count %d exceeds payload", ErrWireFrame, n)
		return 0
	}
	return int(n)
}

func (d *wireDecoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxWireString {
		d.failf("%w: string length %d exceeds limit", ErrWireFrame, n)
		return ""
	}
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	if !utf8.Valid(b) {
		// The JSON wire can never deliver invalid UTF-8 (encoding/json
		// coerces it); rejecting it here keeps the two wires semantically
		// identical — see FuzzWireEquivalence.
		d.failf("%w: string field is not valid UTF-8", ErrWireFrame)
		return ""
	}
	return string(b)
}

func (d *wireDecoder) strs() []string {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

// f64s decodes a contiguous float64 slice in one allocation.
func (d *wireDecoder) f64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	raw := d.take(8 * n)
	if raw == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func (d *wireDecoder) ints() []int {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.intf()
	}
	return out
}

func (d *wireDecoder) rangesf() []RangeSpec {
	n := d.count(16)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]RangeSpec, n)
	for i := range out {
		out[i].Lo = d.f64()
		out[i].Hi = d.f64()
	}
	return out
}

// matrix decodes [][]float64. Uniform matrices share one contiguous
// backing array; all size arithmetic is done in uint64 and bounded by the
// payload before allocating.
func (d *wireDecoder) matrix() [][]float64 {
	switch d.u8() {
	case 1:
		rows := uint64(d.u32())
		cols := uint64(d.u32())
		if d.err != nil {
			return nil
		}
		if rows*cols*8 > uint64(len(d.b)) {
			d.failf("%w: matrix %dx%d exceeds payload", ErrWireFrame, rows, cols)
			return nil
		}
		if rows == 0 {
			return nil
		}
		out := make([][]float64, rows)
		if cols == 0 {
			return out
		}
		raw := d.take(int(8 * rows * cols))
		if raw == nil {
			return nil
		}
		backing := make([]float64, rows*cols)
		for i := range backing {
			backing[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		for i := range out {
			out[i] = backing[uint64(i)*cols : uint64(i+1)*cols]
		}
		return out
	case 0:
		n := d.count(4)
		if d.err != nil || n == 0 {
			return nil
		}
		out := make([][]float64, n)
		for i := range out {
			out[i] = d.f64s()
		}
		return out
	default:
		d.failf("%w: matrix layout byte out of range", ErrWireFrame)
		return nil
	}
}

// --- message bodies ---

func encodeProgramSpec(e *wireEncoder, ps *ProgramSpec) {
	e.str(ps.Type)
	e.i64(int64(ps.Col))
	e.i64(int64(ps.ColB))
	e.f64(ps.P)
	e.f64(ps.Lo)
	e.f64(ps.Hi)
	e.i64(int64(ps.Bins))
	e.i64(int64(ps.K))
	e.i64(int64(ps.FeatureDims))
	e.i64(int64(ps.LabelCol))
	e.i64(int64(ps.Iters))
	e.f64(ps.LearnRate)
	e.i64(ps.Seed)
	e.str(ps.Path)
	e.strs(ps.Args)
	e.i64(int64(ps.OutputDims))
}

func decodeProgramSpec(d *wireDecoder) ProgramSpec {
	return ProgramSpec{
		Type:        d.str(),
		Col:         d.intf(),
		ColB:        d.intf(),
		P:           d.f64(),
		Lo:          d.f64(),
		Hi:          d.f64(),
		Bins:        d.intf(),
		K:           d.intf(),
		FeatureDims: d.intf(),
		LabelCol:    d.intf(),
		Iters:       d.intf(),
		LearnRate:   d.f64(),
		Seed:        d.i64(),
		Path:        d.str(),
		Args:        d.strs(),
		OutputDims:  d.intf(),
	}
}

func encodeRequestBody(e *wireEncoder, req *Request, version uint8) {
	e.str(string(req.Op))
	e.str(req.Dataset)
	e.boolb(req.Program != nil)
	if req.Program != nil {
		encodeProgramSpec(e, req.Program)
	}
	e.str(req.Mode)
	e.ranges(req.OutputRanges)
	e.ranges(req.InputRanges)
	e.boolb(req.Translate != nil)
	if req.Translate != nil {
		e.ints(req.Translate.InputDim)
		e.f64s(req.Translate.Scale)
		e.f64s(req.Translate.Offset)
	}
	e.f64(req.Epsilon)
	e.boolb(req.Accuracy != nil)
	if req.Accuracy != nil {
		e.f64(req.Accuracy.Rho)
		e.f64(req.Accuracy.Confidence)
	}
	e.boolb(req.Register != nil)
	if req.Register != nil {
		e.str(req.Register.Name)
		e.matrix(req.Register.Rows)
		e.strs(req.Register.Columns)
		e.f64(req.Register.TotalBudget)
		e.ranges(req.Register.Ranges)
		e.f64(req.Register.AgedFraction)
		e.i64(req.Register.Seed)
	}
	e.boolb(req.Session != nil)
	if req.Session != nil {
		e.f64(req.Session.TotalEpsilon)
		e.u32(uint32(len(req.Session.Queries)))
		for i := range req.Session.Queries {
			q := &req.Session.Queries[i]
			encodeProgramSpec(e, &q.Program)
			e.ranges(q.OutputRanges)
			e.i64(int64(q.BlockSize))
			e.i64(int64(q.Gamma))
			e.i64(q.Seed)
		}
	}
	e.i64(int64(req.BlockSize))
	e.i64(int64(req.Gamma))
	e.boolb(req.AutoBlockSize)
	e.i64(req.Seed)
	e.i64(req.QuantumMillis)
	e.boolb(req.UserLevel)
	e.i64(int64(req.UserColumn))
	e.f64(req.PercentileLow)
	e.f64(req.PercentileHigh)
	if version >= WireVersionBinary3 {
		// Version-3 tail. On a version-2 connection the key is simply not
		// sent — the tenancy-off server never asks for it.
		e.str(req.APIKey)
	}
	if version >= WireVersionBinary4 {
		// Version-4 tail: the client's deadline budget for the scheduler.
		// On an older connection it is simply not sent — the query runs
		// without a client deadline, exactly the pre-scheduler behavior.
		e.i64(req.DeadlineMillis)
	}
}

func decodeRequestBody(d *wireDecoder) *Request {
	req := &Request{
		Op:      Op(d.str()),
		Dataset: d.str(),
	}
	if d.boolb() {
		ps := decodeProgramSpec(d)
		req.Program = &ps
	}
	req.Mode = d.str()
	req.OutputRanges = d.rangesf()
	req.InputRanges = d.rangesf()
	if d.boolb() {
		req.Translate = &TranslateSpec{
			InputDim: d.ints(),
			Scale:    d.f64s(),
			Offset:   d.f64s(),
		}
	}
	req.Epsilon = d.f64()
	if d.boolb() {
		req.Accuracy = &AccuracySpec{Rho: d.f64(), Confidence: d.f64()}
	}
	if d.boolb() {
		req.Register = &RegisterSpec{
			Name:         d.str(),
			Rows:         d.matrix(),
			Columns:      d.strs(),
			TotalBudget:  d.f64(),
			Ranges:       d.rangesf(),
			AgedFraction: d.f64(),
			Seed:         d.i64(),
		}
	}
	if d.boolb() {
		s := &SessionSpec{TotalEpsilon: d.f64()}
		// A SessionQuery encodes to well over 100 bytes; 32 is a safe
		// floor that still rejects forged counts before allocation.
		n := d.count(32)
		if d.err == nil && n > 0 {
			s.Queries = make([]SessionQuery, n)
			for i := range s.Queries {
				s.Queries[i] = SessionQuery{
					Program:      decodeProgramSpec(d),
					OutputRanges: d.rangesf(),
					BlockSize:    d.intf(),
					Gamma:        d.intf(),
					Seed:         d.i64(),
				}
			}
		}
		req.Session = s
	}
	req.BlockSize = d.intf()
	req.Gamma = d.intf()
	req.AutoBlockSize = d.boolb()
	req.Seed = d.i64()
	req.QuantumMillis = d.i64()
	req.UserLevel = d.boolb()
	req.UserColumn = d.intf()
	req.PercentileLow = d.f64()
	req.PercentileHigh = d.f64()
	if d.err == nil && len(d.b) > 0 {
		// Version-3 optional tail; absent on version-2 frames. A PARTIAL
		// tail still latches a decode error through str(), so truncation
		// inside the tail is a frame error, not a silent downgrade.
		req.APIKey = d.str()
	}
	if d.err == nil && len(d.b) > 0 {
		// Version-4 optional tail; absent on version-2/3 frames.
		req.DeadlineMillis = d.i64()
	}
	return req
}

func encodeResponseBody(e *wireEncoder, resp *Response, version uint8) {
	e.boolb(resp.OK)
	e.str(resp.Error)
	e.str(resp.TraceID)
	e.f64s(resp.Output)
	e.f64(resp.EpsilonSpent)
	e.ranges(resp.EffectiveRanges)
	e.i64(int64(resp.NumBlocks))
	e.i64(int64(resp.BlockSize))
	e.i64(int64(resp.FailedBlocks))
	e.f64(resp.EpsilonCharged)
	e.boolb(resp.CacheHit)
	e.f64(resp.Remaining)
	e.strs(resp.Datasets)
	e.boolb(resp.Stats != nil)
	if resp.Stats != nil {
		s := resp.Stats
		e.i64(s.QueriesOK)
		e.i64(s.QueriesFailed)
		e.i64(s.BudgetRefusals)
		e.i64(s.QueriesAborted)
		e.i64(s.QueriesDegraded)
		e.i64(s.BlocksSubstituted)
		e.i64(s.QueryRetries)
		e.i64(s.TotalQueryMillis)
	}
	e.u32(uint32(len(resp.Session)))
	for i := range resp.Session {
		r := &resp.Session[i]
		e.f64s(r.Output)
		e.f64(r.EpsilonSpent)
		e.str(r.Error)
		e.i64(int64(r.FailedBlocks))
	}
	if version >= WireVersionBinary3 {
		// Version-3 tail: the resolved tenant id (echoed so clients can
		// confirm which principal was billed) and the retry-after hint for
		// rate-limit rejections. A version-2 client never sees either.
		e.str(resp.Tenant)
		e.i64(resp.RetryAfterMillis)
	}
}

func decodeResponseBody(d *wireDecoder) *Response {
	resp := &Response{
		OK:              d.boolb(),
		Error:           d.str(),
		TraceID:         d.str(),
		Output:          d.f64s(),
		EpsilonSpent:    d.f64(),
		EffectiveRanges: d.rangesf(),
		NumBlocks:       d.intf(),
		BlockSize:       d.intf(),
		FailedBlocks:    d.intf(),
		EpsilonCharged:  d.f64(),
		CacheHit:        d.boolb(),
		Remaining:       d.f64(),
		Datasets:        d.strs(),
	}
	if d.boolb() {
		resp.Stats = &ServerStats{
			QueriesOK:         d.i64(),
			QueriesFailed:     d.i64(),
			BudgetRefusals:    d.i64(),
			QueriesAborted:    d.i64(),
			QueriesDegraded:   d.i64(),
			BlocksSubstituted: d.i64(),
			QueryRetries:      d.i64(),
			TotalQueryMillis:  d.i64(),
		}
	}
	// A SessionResult is at least 24 bytes on the wire.
	if n := d.count(24); d.err == nil && n > 0 {
		resp.Session = make([]SessionResult, n)
		for i := range resp.Session {
			resp.Session[i] = SessionResult{
				Output:       d.f64s(),
				EpsilonSpent: d.f64(),
				Error:        d.str(),
				FailedBlocks: d.intf(),
			}
		}
	}
	if d.err == nil && len(d.b) > 0 {
		// Version-3 optional tail; absent on version-2 frames.
		resp.Tenant = d.str()
		resp.RetryAfterMillis = d.i64()
	}
	return resp
}

func encodeWorkRequestBody(e *wireEncoder, req *WorkRequest) {
	encodeProgramSpec(e, &req.Spec.Program)
	e.i64(req.Spec.QuantumMillis)
	e.str(req.Spec.TraceID)
	e.matrix(req.Block)
}

func decodeWorkRequestBody(d *wireDecoder) *WorkRequest {
	return &WorkRequest{
		Spec: WorkSpec{
			Program:       decodeProgramSpec(d),
			QuantumMillis: d.i64(),
			TraceID:       d.str(),
		},
		Block: d.matrix(),
	}
}

func encodeWorkResponseBody(e *wireEncoder, resp *WorkResponse) {
	e.f64s(resp.Output)
	e.str(resp.Error)
	e.str(resp.TraceID)
	e.u32(uint32(len(resp.Spans)))
	for i := range resp.Spans {
		s := &resp.Spans[i]
		e.str(s.Stage)
		e.str(s.Status)
		e.f64(s.Millis)
	}
}

func decodeWorkResponseBody(d *wireDecoder) *WorkResponse {
	resp := &WorkResponse{
		Output:  d.f64s(),
		Error:   d.str(),
		TraceID: d.str(),
	}
	// A RemoteSpan is at least 16 bytes on the wire.
	if n := d.count(16); d.err == nil && n > 0 {
		resp.Spans = make([]telemetry.RemoteSpan, n)
		for i := range resp.Spans {
			resp.Spans[i] = telemetry.RemoteSpan{
				Stage:  d.str(),
				Status: d.str(),
				Millis: d.f64(),
			}
		}
	}
	return resp
}

// --- framed message entry points ---

// AppendRequestFrame appends the framed binary encoding of req to dst and
// returns the extended slice, at the latest wire version. dst[:0] of a
// pooled buffer makes this allocation-free in steady state.
func AppendRequestFrame(dst []byte, req *Request) ([]byte, error) {
	return AppendRequestFrameV(dst, req, LatestWireVersion)
}

// AppendRequestFrameV encodes at an explicitly negotiated wire version:
// version 2 omits the tenant tail (for pre-tenancy servers), version 3
// carries it. Versions below 2 are retired and refused.
func AppendRequestFrameV(dst []byte, req *Request, version uint8) ([]byte, error) {
	if version < WireVersionBinary {
		return nil, fmt.Errorf("%w: cannot encode retired wire version %d", ErrWireFrame, version)
	}
	e := newFrameEncoder(dst)
	e.u8(wireMsgRequest)
	encodeRequestBody(e, req, version)
	return e.finishFrame()
}

// AppendResponseFrame appends the framed binary encoding of resp to dst,
// at the latest wire version.
func AppendResponseFrame(dst []byte, resp *Response) ([]byte, error) {
	return AppendResponseFrameV(dst, resp, LatestWireVersion)
}

// AppendResponseFrameV encodes at an explicitly negotiated wire version;
// see AppendRequestFrameV.
func AppendResponseFrameV(dst []byte, resp *Response, version uint8) ([]byte, error) {
	if version < WireVersionBinary {
		return nil, fmt.Errorf("%w: cannot encode retired wire version %d", ErrWireFrame, version)
	}
	e := newFrameEncoder(dst)
	e.u8(wireMsgResponse)
	encodeResponseBody(e, resp, version)
	return e.finishFrame()
}

// AppendWorkRequestFrame appends the framed binary encoding of req to dst.
func AppendWorkRequestFrame(dst []byte, req *WorkRequest) ([]byte, error) {
	e := newFrameEncoder(dst)
	e.u8(wireMsgWorkRequest)
	encodeWorkRequestBody(e, req)
	return e.finishFrame()
}

// AppendWorkResponseFrame appends the framed binary encoding of resp to dst.
func AppendWorkResponseFrame(dst []byte, resp *WorkResponse) ([]byte, error) {
	e := newFrameEncoder(dst)
	e.u8(wireMsgWorkResponse)
	encodeWorkResponseBody(e, resp)
	return e.finishFrame()
}

// decodePayload runs one body decoder over a frame payload, enforcing the
// expected message kind and rejecting trailing bytes (a CRC-valid payload
// with slack is forged, not torn — same stance as the ledger).
func decodePayload[T any](p []byte, kind byte, what string, body func(*wireDecoder) *T) (*T, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("malformed %s: %w: empty payload", what, ErrWireFrame)
	}
	if p[0] != kind {
		return nil, fmt.Errorf("malformed %s: %w: unexpected message kind %d", what, ErrWireFrame, p[0])
	}
	d := wireDecoder{b: p[1:]}
	msg := body(&d)
	if d.err != nil {
		return nil, fmt.Errorf("malformed %s: %w", what, d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("malformed %s: %w: %d trailing payload bytes", what, ErrWireFrame, len(d.b))
	}
	return msg, nil
}

// DecodeFrame splits one frame off the front of b, verifying length and
// checksum, and returns its payload and the bytes consumed. A stream
// ending mid-frame returns io.ErrUnexpectedEOF.
func DecodeFrame(b []byte) (payload []byte, consumed int, err error) {
	if len(b) < wireFrameHeaderLen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > MaxWireFrame {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrWireFrame, n)
	}
	end := wireFrameHeaderLen + int(n)
	if len(b) < end {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload = b[wireFrameHeaderLen:end]
	want := binary.LittleEndian.Uint32(b[4:8])
	if got := crc32.Checksum(payload, wireCRCTable); got != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrWireFrame, got, want)
	}
	return payload, end, nil
}

// DecodeRequestFrame decodes one framed binary request from the front of b.
func DecodeRequestFrame(b []byte) (*Request, int, error) {
	payload, n, err := DecodeFrame(b)
	if err != nil {
		return nil, 0, err
	}
	req, err := decodePayload(payload, wireMsgRequest, "request", decodeRequestBody)
	if err != nil {
		return nil, 0, err
	}
	return req, n, nil
}

// DecodeResponseFrame decodes one framed binary response from the front of b.
func DecodeResponseFrame(b []byte) (*Response, int, error) {
	payload, n, err := DecodeFrame(b)
	if err != nil {
		return nil, 0, err
	}
	resp, err := decodePayload(payload, wireMsgResponse, "response", decodeResponseBody)
	if err != nil {
		return nil, 0, err
	}
	return resp, n, nil
}

// DecodeWorkRequestFrame decodes one framed binary work request.
func DecodeWorkRequestFrame(b []byte) (*WorkRequest, int, error) {
	payload, n, err := DecodeFrame(b)
	if err != nil {
		return nil, 0, err
	}
	req, err := decodePayload(payload, wireMsgWorkRequest, "work request", decodeWorkRequestBody)
	if err != nil {
		return nil, 0, err
	}
	return req, n, nil
}

// DecodeWorkResponseFrame decodes one framed binary work response.
func DecodeWorkResponseFrame(b []byte) (*WorkResponse, int, error) {
	payload, n, err := DecodeFrame(b)
	if err != nil {
		return nil, 0, err
	}
	resp, err := decodePayload(payload, wireMsgWorkResponse, "work response", decodeWorkResponseBody)
	if err != nil {
		return nil, 0, err
	}
	return resp, n, nil
}
