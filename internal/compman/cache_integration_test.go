package compman

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/ledger"
	"gupt/internal/mathutil"
	"gupt/internal/telemetry/audit"
)

// startCachedServer builds a server with the noisy-answer cache on, over a
// caller-supplied registry (so tests can attach a ledger or mutate
// datasets underneath the server).
func startCachedServer(t *testing.T, reg *dataset.Registry, cfg ServerConfig) (*Client, *Server) {
	t.Helper()
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 64
	}
	srv := NewServer(reg, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, srv
}

func censusRegistry(t *testing.T, totalBudget float64) *dataset.Registry {
	t.Helper()
	reg := dataset.NewRegistry()
	rng := mathutil.NewRNG(1)
	tbl := dataset.New([]string{"age"})
	for i := 0; i < 5000; i++ {
		if err := tbl.Append(mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Register("census", tbl, dataset.RegisterOptions{
		TotalBudget:  totalBudget,
		Ranges:       []dp.Range{{Lo: 0, Hi: 150}},
		AgedFraction: 0.1,
		Seed:         2,
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestCacheHitEndToEnd is the tentpole's acceptance check over the hosted
// protocol: a repeated byte-identical query is served from the cache with
// zero ε charged, the durable ledger shows a cache_hit record and an
// unchanged balance, and the tamper-evident audit chain verifies with a
// cache_hit outcome.
func TestCacheHitEndToEnd(t *testing.T) {
	reg := censusRegistry(t, 100)
	ldir, adir := t.TempDir(), t.TempDir()
	led, err := ledger.Open(ldir, ledger.Options{Sync: ledger.SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Attach(led, reg); err != nil {
		t.Fatal(err)
	}
	alog, err := audit.Open(adir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer alog.Close()
	client, srv := startCachedServer(t, reg, ServerConfig{Audit: alog, CacheTTL: time.Minute})

	first, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("cold query flagged as cache hit")
	}
	if first.EpsilonCharged != 0.5 {
		t.Fatalf("cold charge = %v, want 0.5", first.EpsilonCharged)
	}
	remAfterFirst, err := client.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}

	second, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repeat query missed the cache")
	}
	if second.EpsilonCharged != 0 {
		t.Errorf("cache hit charged ε=%v, want 0", second.EpsilonCharged)
	}
	if second.EpsilonSpent != first.EpsilonSpent {
		t.Errorf("hit reports EpsilonSpent %v, original %v", second.EpsilonSpent, first.EpsilonSpent)
	}
	if len(second.Output) != 1 || second.Output[0] != first.Output[0] {
		t.Errorf("cache re-released a different answer: %v vs %v", second.Output, first.Output)
	}
	if second.TraceID == "" || second.TraceID == first.TraceID {
		t.Errorf("hit must carry its own trace id: first %q second %q", first.TraceID, second.TraceID)
	}
	rem, err := client.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if rem != remAfterFirst {
		t.Errorf("cache hit moved the balance: %v -> %v", remAfterFirst, rem)
	}

	// A near-identical query — ε differs — must NOT hit.
	third, err := client.Query(meanQuery(0.25, 250))
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("different ε hit the cache")
	}
	rem2, _ := client.RemainingBudget("census")
	if math.Abs(rem2-(rem-0.25)) > 1e-9 {
		t.Errorf("fresh query charged %v, want 0.25", rem-rem2)
	}

	if st := srv.CacheStats(); st.Hits != 1 || st.Entries != 2 {
		t.Errorf("server cache stats = %+v", st)
	}

	// Ledger: replay must show the original charges, an unchanged balance,
	// and the hit as a count — never a spend.
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := ledger.Recover(ldir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := rec.Datasets["census"]
	if !ok {
		t.Fatal("census missing from ledger recovery")
	}
	if ds.CacheHits != 1 {
		t.Errorf("recovered CacheHits = %d, want 1", ds.CacheHits)
	}
	if math.Abs(ds.Spent-0.75) > 1e-9 {
		t.Errorf("recovered spent = %v, want 0.75 (two real charges only)", ds.Spent)
	}

	// Audit: the chain verifies and the re-release is on the record with a
	// cache_hit outcome and zero ε.
	if _, err := audit.Verify(adir); err != nil {
		t.Fatalf("audit verify: %v", err)
	}
	var hits int
	for _, r := range readAuditRecords(t, adir) {
		if r.Outcome == "cache_hit" {
			hits++
			if r.EpsilonCharged != 0 {
				t.Errorf("cache_hit audit record charged ε=%v", r.EpsilonCharged)
			}
		}
	}
	if hits != 1 {
		t.Errorf("audit chain has %d cache_hit records, want 1", hits)
	}
}

// TestCacheInvalidatedByReRegister: replacing a dataset's rows must make a
// repeat query a fresh draw — the content version inside the fingerprint
// guarantees it even before the eager invalidation reclaims memory.
func TestCacheInvalidatedByReRegister(t *testing.T) {
	reg := censusRegistry(t, 100)
	client, srv := startCachedServer(t, reg, ServerConfig{})

	first, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	hit, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("repeat query missed the cache")
	}

	// Mutate underneath the server: same name, different rows.
	if err := reg.Unregister("census"); err != nil {
		t.Fatal(err)
	}
	tbl := dataset.New([]string{"age"})
	for i := 0; i < 4000; i++ {
		if err := tbl.Append(mathutil.Vec{float64(20 + i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Register("census", tbl, dataset.RegisterOptions{
		TotalBudget: 100,
		Ranges:      []dp.Range{{Lo: 0, Hi: 150}},
	}); err != nil {
		t.Fatal(err)
	}

	after, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("post-mutation repeat served the pre-mutation answer")
	}
	// ~21 vs ~40: the answer must track the new data, not the cache.
	if math.Abs(after.Output[0]-first.Output[0]) < 5 {
		t.Errorf("post-mutation answer %v suspiciously close to pre-mutation %v", after.Output[0], first.Output[0])
	}
	_ = srv
}

// TestCacheDisabledServer: CacheEntries 0 keeps the old behavior —
// repeats are fresh draws, every query charges.
func TestCacheDisabledServer(t *testing.T) {
	client, _ := startServer(t, 100)
	if _, err := client.Query(meanQuery(0.5, 250)); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("cache hit on a cache-disabled server")
	}
	rem, _ := client.RemainingBudget("census")
	if math.Abs(rem-99) > 1e-9 {
		t.Errorf("remaining = %v, want 99", rem)
	}
}

// TestCacheSessionEndToEnd: a repeated session batch is one cache unit —
// the repeat re-serves every member and charges nothing.
func TestCacheSessionEndToEnd(t *testing.T) {
	reg := censusRegistry(t, 100)
	client, _ := startCachedServer(t, reg, ServerConfig{})

	sessionReq := func() *Request {
		return &Request{
			Op:      OpSession,
			Dataset: "census",
			Session: &SessionSpec{
				TotalEpsilon: 2,
				Queries: []SessionQuery{
					{Program: ProgramSpec{Type: "mean", Col: 0}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}}, Seed: 5},
					{Program: ProgramSpec{Type: "variance", Col: 0}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 5000}}, Seed: 6},
				},
			},
		}
	}
	// roundTrip (in-package) rather than Client.Session: the test needs the
	// whole Response — CacheHit and EpsilonCharged — not just the members.
	first, err := client.roundTrip(sessionReq())
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || len(first.Session) != 2 {
		t.Fatalf("cold session: hit=%v members=%d", first.CacheHit, len(first.Session))
	}
	remAfterFirst, _ := client.RemainingBudget("census")

	second, err := client.roundTrip(sessionReq())
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repeat session missed the cache")
	}
	if second.EpsilonCharged != 0 {
		t.Errorf("session hit charged ε=%v", second.EpsilonCharged)
	}
	for i := range second.Session {
		if second.Session[i].Output[0] != first.Session[i].Output[0] {
			t.Errorf("member %d re-released a different answer", i)
		}
	}
	rem, _ := client.RemainingBudget("census")
	if rem != remAfterFirst {
		t.Errorf("session hit moved the balance: %v -> %v", remAfterFirst, rem)
	}
}
