package compman

// Query fingerprinting for the noisy-answer cache (internal/qcache). The
// fingerprint is the canonical identity of a released answer: every request
// field that can change the released distribution is hashed in a fixed
// order through qcache.Hasher, together with the dataset's content version.
// Two requests that differ only in representation — JSON field ordering,
// float formatting, the presence of zero-valued optional fields — must
// fingerprint identically, because the binary codec and this hasher both
// see the decoded struct, not the bytes. Two requests that differ in any
// distribution-relevant field (ε, clamp ranges, program parameters, block
// geometry, seed, privacy unit, mode) must fingerprint apart, as must the
// same request over mutated data (the content version).
//
// Serving a cached release on a fingerprint match is safe by
// post-processing regardless of the cache policy; distinctness is what
// keeps the cache *useful* rather than what keeps it private. See
// SECURITY.md ("The noisy-answer cache as a side channel").

import "gupt/internal/qcache"

// fingerprintScheme versions the hash layout. Bump it whenever a field is
// added or reordered below so entries written by an older layout (none can
// exist in-process, but belt and braces for future persistence) can never
// alias. Scheme 2 added the tenant id: the noisy-answer cache is
// partitioned per tenant, so one tenant's query history is never observable
// through another tenant's hit/miss timing (see SECURITY.md).
const fingerprintScheme = 2

// hashProgramSpec writes every ProgramSpec field, fixed order.
func hashProgramSpec(h *qcache.Hasher, ps *ProgramSpec) {
	h.Str(ps.Type)
	h.Int(ps.Col)
	h.Int(ps.ColB)
	h.F64(ps.P)
	h.F64(ps.Lo)
	h.F64(ps.Hi)
	h.Int(ps.Bins)
	h.Int(ps.K)
	h.Int(ps.FeatureDims)
	h.Int(ps.LabelCol)
	h.Int(ps.Iters)
	h.F64(ps.LearnRate)
	h.I64(ps.Seed)
	h.Str(ps.Path)
	h.Strs(ps.Args)
	h.Int(ps.OutputDims)
}

// hashRanges writes a count-prefixed range list.
func hashRanges(h *qcache.Hasher, rs []RangeSpec) {
	h.Int(len(rs))
	for _, r := range rs {
		h.F64(r.Lo)
		h.F64(r.Hi)
	}
}

// queryFingerprint computes the cache key for an OpQuery request against
// the given dataset content version. contentVersion pins the key to the
// exact data the original answer was computed over: a mutated or
// re-registered dataset gets a new version, so a stale entry is
// unreachable by construction — no invalidation ordering to get right.
// tenant partitions the cache per principal ("" = the single-tenant
// partition): cross-tenant reuse would be safe by post-processing, but it
// would let tenant B probe whether tenant A already asked a question.
func queryFingerprint(req *Request, tenant string, contentVersion uint64) qcache.Fingerprint {
	h := qcache.NewHasher()
	h.Int(fingerprintScheme)
	h.Str(tenant)
	h.Str(string(OpQuery))
	h.Str(req.Dataset)
	h.U64(contentVersion)
	hashProgramSpec(h, req.Program)
	h.Str(req.Mode)
	hashRanges(h, req.OutputRanges)
	hashRanges(h, req.InputRanges)
	if req.Translate != nil {
		h.Bool(true)
		h.Ints(req.Translate.InputDim)
		h.F64s(req.Translate.Scale)
		h.F64s(req.Translate.Offset)
	} else {
		h.Bool(false)
	}
	h.F64(req.Epsilon)
	if req.Accuracy != nil {
		h.Bool(true)
		h.F64(req.Accuracy.Rho)
		h.F64(req.Accuracy.Confidence)
	} else {
		h.Bool(false)
	}
	h.Int(req.BlockSize)
	h.Int(req.Gamma)
	h.Bool(req.AutoBlockSize)
	h.I64(req.Seed)
	h.I64(req.QuantumMillis)
	h.Bool(req.UserLevel)
	h.Int(req.UserColumn)
	h.F64(req.PercentileLow)
	h.F64(req.PercentileHigh)
	return h.Sum()
}

// sessionFingerprint computes the cache key for an OpSession request: the
// whole batch is one cache unit, because its ε is distributed and charged
// atomically across the members.
func sessionFingerprint(req *Request, tenant string, contentVersion uint64) qcache.Fingerprint {
	h := qcache.NewHasher()
	h.Int(fingerprintScheme)
	h.Str(tenant)
	h.Str(string(OpSession))
	h.Str(req.Dataset)
	h.U64(contentVersion)
	spec := req.Session
	h.F64(spec.TotalEpsilon)
	h.Int(len(spec.Queries))
	for i := range spec.Queries {
		q := &spec.Queries[i]
		hashProgramSpec(h, &q.Program)
		hashRanges(h, q.OutputRanges)
		h.Int(q.BlockSize)
		h.Int(q.Gamma)
		h.I64(q.Seed)
	}
	return h.Sum()
}
