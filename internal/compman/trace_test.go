package compman

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"gupt/internal/dp"
	"gupt/internal/telemetry"
	"gupt/internal/telemetry/audit"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// lockedBuf makes a bytes.Buffer safe to share between the server's
// connection goroutine (which writes trace-log lines) and the test.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func meanRequest() *Request {
	return &Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		Mode:         "tight",
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      5,
		Seed:         3,
	}
}

// readAuditRecords decodes every record in every segment under dir,
// oldest first. The chain itself is checked by audit.Verify; this is the
// test's raw view of what got written.
func readAuditRecords(t *testing.T, dir string) []audit.Record {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "audit-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []audit.Record
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var rec audit.Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("decode audit record: %v", err)
			}
			recs = append(recs, rec)
		}
		f.Close()
	}
	return recs
}

// TestQueryTraceCrossProcess is the tentpole's end-to-end check at the
// package level: one query through a server backed by an out-of-process
// worker must yield ONE trace whose span tree includes the worker's own
// setup and execute spans, an audit record carrying the same trace id,
// and — because the unsafe trace log is on — an explicit unsafe_raw
// record folding the raw-duration line into the tamper-evident chain.
func TestQueryTraceCrossProcess(t *testing.T) {
	addr := startWorker(t)
	dir := t.TempDir()
	alog, err := audit.Open(dir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer alog.Close()
	var traceLog lockedBuf
	client, srv := startServerCfg(t, 100, ServerConfig{
		WorkerAddrs: []string{addr},
		Audit:       alog,
		TraceLogger: log.New(&traceLog, "", 0),
	})

	resp, err := client.Query(meanRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !traceIDRe.MatchString(resp.TraceID) {
		t.Fatalf("Response.TraceID = %q, want 32 lowercase hex", resp.TraceID)
	}

	snaps := srv.Traces()
	if len(snaps) != 1 {
		t.Fatalf("Traces() returned %d traces, want 1", len(snaps))
	}
	tr := snaps[0]
	if tr.ID != resp.TraceID {
		t.Errorf("trace id %q does not match response trace id %q", tr.ID, resp.TraceID)
	}
	if tr.Outcome != "ok" {
		t.Errorf("outcome = %q, want ok", tr.Outcome)
	}
	wantProcess := "worker:" + addr
	stages := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Process == wantProcess {
			stages[sp.Stage] = true
			if sp.Status != telemetry.StatusOK {
				t.Errorf("worker span %s status = %q, want ok", sp.Stage, sp.Status)
			}
		}
	}
	if !stages[telemetry.StageWorkerSetup] || !stages[telemetry.StageWorkerExecute] {
		t.Errorf("worker spans missing from merged trace: got stages %v, want %s and %s",
			stages, telemetry.StageWorkerSetup, telemetry.StageWorkerExecute)
	}

	// The query must have settled into the audit chain before the response
	// reached the client: a query record with the same trace id, plus the
	// unsafe_raw record for the trace-log line. The chain must verify.
	rep, err := audit.Verify(dir)
	if err != nil {
		t.Fatalf("audit verify: %v", err)
	}
	if rep.Records < 2 {
		t.Fatalf("audit chain has %d records, want >= 2 (query + unsafe trace)", rep.Records)
	}
	if rep.UnsafeRecords != 1 {
		t.Errorf("UnsafeRecords = %d, want 1", rep.UnsafeRecords)
	}
	var query, unsafe *audit.Record
	for i, rec := range readAuditRecords(t, dir) {
		rec := rec
		switch rec.Type {
		case audit.TypeQuery:
			query = &rec
		case audit.TypeUnsafeTrace:
			unsafe = &rec
		default:
			t.Errorf("record %d has unexpected type %q", i, rec.Type)
		}
	}
	if query == nil {
		t.Fatal("no query record in audit log")
	}
	if query.TraceID != resp.TraceID {
		t.Errorf("audit record trace id = %q, want %q", query.TraceID, resp.TraceID)
	}
	if query.Dataset != "census" || query.Outcome != "ok" {
		t.Errorf("audit record = %+v, want dataset census outcome ok", query)
	}
	if query.EpsilonCharged != 5 {
		t.Errorf("audit EpsilonCharged = %v, want 5", query.EpsilonCharged)
	}
	if query.Blocks <= 0 {
		t.Errorf("audit Blocks = %d, want > 0", query.Blocks)
	}
	if query.LatencyBucketMillis == 0 {
		t.Errorf("audit LatencyBucketMillis = 0, want a bucket bound or -1")
	}
	if unsafe == nil {
		t.Fatal("no unsafe_raw record in audit log despite TraceLogger being set")
	}
	if !unsafe.UnsafeRaw {
		t.Error("unsafe trace record does not set unsafe_raw")
	}
	if unsafe.TraceID != resp.TraceID {
		t.Errorf("unsafe record trace id = %q, want %q", unsafe.TraceID, resp.TraceID)
	}
	if unsafe.Detail == "" || !regexp.MustCompile(`worker\.execute@worker:`).MatchString(unsafe.Detail) {
		t.Errorf("unsafe record detail %q does not carry the worker span line", unsafe.Detail)
	}
	// And the raw line itself went to the operator's trace log.
	if got := traceLog.String(); !regexp.MustCompile(`trace [0-9a-f]{32}`).MatchString(got) {
		t.Errorf("trace log %q does not reference the trace id", got)
	}

	// The inflight table must be empty once the query settled.
	if live := srv.LiveQueries(); len(live) != 0 {
		t.Errorf("LiveQueries() = %v after query settled, want empty", live)
	}
}

// TestQueryTraceLocalChamber checks the single-node path: no workers, but
// every response still carries a fresh random trace id and the trace ring
// still records the query.
func TestQueryTraceLocalChamber(t *testing.T) {
	client, srv := startServer(t, 100)
	first, err := client.Query(meanRequest())
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Query(meanRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !traceIDRe.MatchString(first.TraceID) || !traceIDRe.MatchString(second.TraceID) {
		t.Fatalf("trace ids %q / %q, want 32 lowercase hex", first.TraceID, second.TraceID)
	}
	if first.TraceID == second.TraceID {
		t.Fatalf("two queries share trace id %q", first.TraceID)
	}
	snaps := srv.Traces()
	if len(snaps) != 2 {
		t.Fatalf("Traces() returned %d traces, want 2", len(snaps))
	}
	// Newest first: the second query's trace leads.
	if snaps[0].ID != second.TraceID || snaps[1].ID != first.TraceID {
		t.Errorf("trace ring order = [%s %s], want [%s %s]",
			snaps[0].ID, snaps[1].ID, second.TraceID, first.TraceID)
	}
	for _, sn := range snaps {
		for _, sp := range sn.Spans {
			if sp.Process != "" {
				t.Errorf("local-chamber trace has remote span %+v", sp)
			}
		}
	}
}

// TestBudgetRefusedTraceOutcome pins the outcome vocabulary end to end: a
// query refused for budget shows up in the trace ring as budget_refused.
func TestBudgetRefusedTraceOutcome(t *testing.T) {
	client, srv := startServer(t, 1)
	req := meanRequest()
	req.Epsilon = 5 // over the total budget of 1
	if _, err := client.Query(req); err == nil {
		t.Fatal("query over budget succeeded")
	}
	snaps := srv.Traces()
	if len(snaps) != 1 {
		t.Fatalf("Traces() returned %d traces, want 1", len(snaps))
	}
	if snaps[0].Outcome != "budget_refused" {
		t.Errorf("outcome = %q, want budget_refused", snaps[0].Outcome)
	}
}

func TestQueryOutcomeClassification(t *testing.T) {
	cases := []struct {
		name string
		resp Response
		want string
	}{
		{"ok", Response{OK: true}, "ok"},
		{"degraded", Response{OK: true, FailedBlocks: 2}, "degraded"},
		{"budget refused", Response{Error: dp.ErrBudgetExhausted.Error() + ": census"}, "budget_refused"},
		{"aborted with charge", Response{Error: "deadline exceeded", EpsilonCharged: 1}, "aborted"},
		{"plain error", Response{Error: "no such dataset"}, "error"},
	}
	for _, tc := range cases {
		if got := queryOutcome(&tc.resp); got != tc.want {
			t.Errorf("%s: queryOutcome = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestSessionOutcomeClassification(t *testing.T) {
	cases := []struct {
		name string
		resp Response
		want string
	}{
		{"ok", Response{OK: true, Session: []SessionResult{{}, {}}}, "ok"},
		{"member failure", Response{OK: true, Session: []SessionResult{{}, {Error: "boom"}}}, "degraded"},
		{"member degraded", Response{OK: true, Session: []SessionResult{{FailedBlocks: 1}}}, "degraded"},
		{"budget refused", Response{Error: dp.ErrBudgetExhausted.Error() + ": census"}, "budget_refused"},
		{"error", Response{Error: "bad batch"}, "error"},
	}
	for _, tc := range cases {
		if got := sessionOutcome(&tc.resp); got != tc.want {
			t.Errorf("%s: sessionOutcome = %q, want %q", tc.name, got, tc.want)
		}
	}
}
