package compman

import (
	"context"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

func startWorker(t *testing.T) string {
	t.Helper()
	w := NewWorker(WorkerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Serve(l)
	}()
	t.Cleanup(func() {
		w.Close()
		wg.Wait()
	})
	return l.Addr().String()
}

func workerBlock(n int) []mathutil.Vec {
	out := make([]mathutil.Vec, n)
	for i := range out {
		out[i] = mathutil.Vec{float64(i)}
	}
	return out
}

func TestWorkerExecutesBlock(t *testing.T) {
	addr := startWorker(t)
	pool, err := NewWorkerPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	chamber := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "mean", Col: 0}}, nil)
	out, err := chamber.Execute(context.Background(), workerBlock(5))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Errorf("remote mean = %v, want 2", out[0])
	}
}

func TestWorkerPoolRoundRobin(t *testing.T) {
	addrs := []string{startWorker(t), startWorker(t), startWorker(t)}
	pool, err := NewWorkerPool(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Size() != 3 {
		t.Fatalf("Size = %d", pool.Size())
	}
	chamber := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "mean", Col: 0}}, nil)
	// Concurrent executions across the pool all succeed.
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := chamber.Execute(context.Background(), workerBlock(5))
			if err == nil && out[0] != 2 {
				err = context.DeadlineExceeded // any sentinel; value was wrong
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestWorkerBadProgram(t *testing.T) {
	addr := startWorker(t)
	pool, err := NewWorkerPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	chamber := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "sorcery"}}, nil)
	if _, err := chamber.Execute(context.Background(), workerBlock(3)); err == nil || !strings.Contains(err.Error(), "sorcery") {
		t.Errorf("bad program err = %v", err)
	}
	// The connection survives an application-level error.
	good := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "mean", Col: 0}}, nil)
	if _, err := good.Execute(context.Background(), workerBlock(3)); err != nil {
		t.Errorf("pool connection broken after app error: %v", err)
	}
}

func TestWorkerQuantumEnforced(t *testing.T) {
	addr := startWorker(t)
	pool, err := NewWorkerPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Timing normalization happens on the worker: a fast program is held to
	// the quantum remotely.
	chamber := pool.Chamber(WorkSpec{
		Program:       ProgramSpec{Type: "mean", Col: 0},
		QuantumMillis: 200,
	}, nil)
	start := time.Now()
	if _, err := chamber.Execute(context.Background(), workerBlock(3)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("remote quantum not enforced: %v", elapsed)
	}
}

func TestWorkerPoolValidation(t *testing.T) {
	if _, err := NewWorkerPool(nil); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewWorkerPool([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable worker accepted")
	}
}

func TestWorkerPoolClosedPick(t *testing.T) {
	addr := startWorker(t)
	pool, err := NewWorkerPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	chamber := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "mean", Col: 0}}, nil)
	if _, err := chamber.Execute(context.Background(), workerBlock(1)); err == nil {
		t.Error("closed pool executed")
	}
}

// End-to-end: a server configured with workers answers queries whose blocks
// ran on the worker daemons.
func TestServerWithWorkerPool(t *testing.T) {
	addrs := []string{startWorker(t), startWorker(t)}
	reg := buildCensusRegistry(t, 100)
	srv := NewServer(reg, ServerConfig{WorkerAddrs: addrs})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Query(&Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      20,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Output[0]-40) > 5 {
		t.Errorf("distributed mean = %v, want ~40", resp.Output[0])
	}
}

func TestServerWithUnreachableWorkers(t *testing.T) {
	reg := buildCensusRegistry(t, 100)
	srv := NewServer(reg, ServerConfig{WorkerAddrs: []string{"127.0.0.1:1"}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Query(&Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      1,
	})
	if err == nil || !strings.Contains(err.Error(), "worker pool unavailable") {
		t.Errorf("err = %v, want worker pool unavailable", err)
	}
}

// A worker restart mid-session: the pool redials transparently and the
// next block succeeds.
func TestWorkerPoolRecoversFromWorkerRestart(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Serve(l)
	}()

	pool, err := NewWorkerPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	chamber := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "mean", Col: 0}}, nil)
	if _, err := chamber.Execute(context.Background(), workerBlock(3)); err != nil {
		t.Fatal(err)
	}

	// Kill the worker and restart a new one on the same address.
	w.Close()
	wg.Wait()
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	w2 := NewWorker(WorkerConfig{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w2.Serve(l2)
	}()
	t.Cleanup(func() {
		w2.Close()
		wg.Wait()
	})

	// The pooled connection is dead; Execute must redial and succeed.
	out, err := chamber.Execute(context.Background(), workerBlock(5))
	if err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
	if out[0] != 2 {
		t.Errorf("post-restart mean = %v", out[0])
	}
}

// The worker chamber satisfies the sandbox.Chamber contract used by the
// engine.
var _ sandbox.Chamber = (*poolChamber)(nil)
