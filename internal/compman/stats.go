package compman

import (
	"sync/atomic"
	"time"

	"gupt/internal/telemetry"
)

// ServerStats is an operator-facing snapshot of a server's activity since
// start. All fields are monotonic counters except the latency aggregate.
type ServerStats struct {
	// QueriesOK counts successfully answered queries.
	QueriesOK int64 `json:"queriesOK"`
	// QueriesFailed counts queries refused for any reason other than
	// budget (validation errors, engine failures).
	QueriesFailed int64 `json:"queriesFailed"`
	// BudgetRefusals counts queries refused because a dataset's budget
	// could not cover them. Broken out because a spike here is the normal
	// end-of-life signal for a dataset, not an error.
	BudgetRefusals int64 `json:"budgetRefusals"`
	// QueriesAborted counts queries that failed *after* their privacy
	// charge settled: their ε is consumed (the §6.2 privacy-budget-attack
	// defense). Every aborted query is also counted in QueriesFailed.
	QueriesAborted int64 `json:"queriesAborted"`
	// QueriesDegraded counts successful queries in which at least one
	// block was substituted — answers released at reduced fidelity.
	QueriesDegraded int64 `json:"queriesDegraded"`
	// BlocksSubstituted accumulates substituted block executions across
	// all successful queries; the engine replaced these with the
	// data-independent range midpoint.
	BlocksSubstituted int64 `json:"blocksSubstituted"`
	// QueryRetries counts engine re-runs after a post-charge failure
	// (bounded by ServerConfig.MaxQueryRetries). Retries never re-charge.
	QueryRetries int64 `json:"queryRetries"`
	// TotalQueryMillis accumulates wall-clock time spent answering
	// successful queries; divide by QueriesOK for the mean latency.
	TotalQueryMillis int64 `json:"totalQueryMillis"`
}

// statsCollector is the server's activity ledger, rebased onto the
// telemetry registry: every counter is a lock-free registry counter, so the
// wire-protocol ServerStats snapshot (OpStats) and the admin /metrics
// endpoint are two views of the same atomics and can never disagree.
//
// TotalQueryMillis is the one deliberate exception: it stays a private
// atomic instead of a registry counter. Exporting a cumulative millisecond
// total next to a query count would let anyone diffing consecutive
// /metrics snapshots recover one query's exact duration — the §6.3 timing
// side channel. The wire snapshot keeps the field for client compatibility;
// /metrics exposes latency only as the bucketed
// compman.query_latency_millis histogram.
type statsCollector struct {
	queriesOK         *telemetry.Counter
	queriesFailed     *telemetry.Counter
	budgetRefusals    *telemetry.Counter
	queriesAborted    *telemetry.Counter
	queriesDegraded   *telemetry.Counter
	blocksSubstituted *telemetry.Counter
	queryRetries      *telemetry.Counter
	queriesOverloaded *telemetry.Counter
	latency           *telemetry.Histogram
	totalQueryMillis  atomic.Int64
}

// newStatsCollector resolves the collector's counters in tel once, so the
// hot path pays one atomic add per event. tel must be non-nil (the server
// always owns a registry).
func newStatsCollector(tel *telemetry.Registry) *statsCollector {
	return &statsCollector{
		queriesOK:         tel.Counter("compman.queries_ok"),
		queriesFailed:     tel.Counter("compman.queries_failed"),
		budgetRefusals:    tel.Counter("compman.budget_refusals"),
		queriesAborted:    tel.Counter("compman.queries_aborted"),
		queriesDegraded:   tel.Counter("compman.queries_degraded"),
		blocksSubstituted: tel.Counter("compman.blocks_substituted"),
		queryRetries:      tel.Counter("compman.query_retries"),
		queriesOverloaded: tel.Counter("compman.queries_overloaded"),
		latency:           tel.Histogram("compman.query_latency_millis", telemetry.DefaultLatencyBuckets),
	}
}

func (c *statsCollector) recordOK(d time.Duration) {
	c.queriesOK.Inc()
	c.totalQueryMillis.Add(d.Milliseconds())
	c.latency.Observe(d)
}

// recordFailure tallies a refused query; budget refusals and post-charge
// aborts get their own counters on top of the general one.
func (c *statsCollector) recordFailure(budget, charged bool) {
	if budget {
		c.budgetRefusals.Inc()
		return
	}
	c.queriesFailed.Inc()
	if charged {
		c.queriesAborted.Inc()
	}
}

// recordDegraded tallies a successful query that substituted blocks.
func (c *statsCollector) recordDegraded(blocks int) {
	c.queriesDegraded.Inc()
	c.blocksSubstituted.Add(int64(blocks))
}

func (c *statsCollector) recordRetry() {
	c.queryRetries.Inc()
}

// recordOverloaded tallies a zero-ε scheduler refusal (queue full or
// deadline unmeetable). Deliberately not a ServerStats field: the wire
// stats grammar stays version-stable; operators watch
// compman.queries_overloaded on /metrics instead.
func (c *statsCollector) recordOverloaded() {
	c.queriesOverloaded.Inc()
}

// snapshot assembles the wire-compatible ServerStats view. Each field is an
// atomic load; the snapshot is per-counter consistent (see
// telemetry.Registry.Snapshot for the same caveat).
func (c *statsCollector) snapshot() ServerStats {
	return ServerStats{
		QueriesOK:         c.queriesOK.Value(),
		QueriesFailed:     c.queriesFailed.Value(),
		BudgetRefusals:    c.budgetRefusals.Value(),
		QueriesAborted:    c.queriesAborted.Value(),
		QueriesDegraded:   c.queriesDegraded.Value(),
		BlocksSubstituted: c.blocksSubstituted.Value(),
		QueryRetries:      c.queryRetries.Value(),
		TotalQueryMillis:  c.totalQueryMillis.Load(),
	}
}
