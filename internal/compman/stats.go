package compman

import (
	"sync"
	"time"
)

// ServerStats is an operator-facing snapshot of a server's activity since
// start. All fields are monotonic counters except the latency aggregate.
type ServerStats struct {
	// QueriesOK counts successfully answered queries.
	QueriesOK int64 `json:"queriesOK"`
	// QueriesFailed counts queries refused for any reason other than
	// budget (validation errors, engine failures).
	QueriesFailed int64 `json:"queriesFailed"`
	// BudgetRefusals counts queries refused because a dataset's budget
	// could not cover them. Broken out because a spike here is the normal
	// end-of-life signal for a dataset, not an error.
	BudgetRefusals int64 `json:"budgetRefusals"`
	// TotalQueryMillis accumulates wall-clock time spent answering
	// successful queries; divide by QueriesOK for the mean latency.
	TotalQueryMillis int64 `json:"totalQueryMillis"`
}

// statsCollector guards the counters.
type statsCollector struct {
	mu    sync.Mutex
	stats ServerStats
}

func (c *statsCollector) recordOK(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.QueriesOK++
	c.stats.TotalQueryMillis += d.Milliseconds()
}

func (c *statsCollector) recordFailure(budget bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if budget {
		c.stats.BudgetRefusals++
	} else {
		c.stats.QueriesFailed++
	}
}

func (c *statsCollector) snapshot() ServerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
