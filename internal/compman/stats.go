package compman

import (
	"sync"
	"time"
)

// ServerStats is an operator-facing snapshot of a server's activity since
// start. All fields are monotonic counters except the latency aggregate.
type ServerStats struct {
	// QueriesOK counts successfully answered queries.
	QueriesOK int64 `json:"queriesOK"`
	// QueriesFailed counts queries refused for any reason other than
	// budget (validation errors, engine failures).
	QueriesFailed int64 `json:"queriesFailed"`
	// BudgetRefusals counts queries refused because a dataset's budget
	// could not cover them. Broken out because a spike here is the normal
	// end-of-life signal for a dataset, not an error.
	BudgetRefusals int64 `json:"budgetRefusals"`
	// QueriesAborted counts queries that failed *after* their privacy
	// charge settled: their ε is consumed (the §6.2 privacy-budget-attack
	// defense). Every aborted query is also counted in QueriesFailed.
	QueriesAborted int64 `json:"queriesAborted"`
	// QueriesDegraded counts successful queries in which at least one
	// block was substituted — answers released at reduced fidelity.
	QueriesDegraded int64 `json:"queriesDegraded"`
	// BlocksSubstituted accumulates substituted block executions across
	// all successful queries; the engine replaced these with the
	// data-independent range midpoint.
	BlocksSubstituted int64 `json:"blocksSubstituted"`
	// QueryRetries counts engine re-runs after a post-charge failure
	// (bounded by ServerConfig.MaxQueryRetries). Retries never re-charge.
	QueryRetries int64 `json:"queryRetries"`
	// TotalQueryMillis accumulates wall-clock time spent answering
	// successful queries; divide by QueriesOK for the mean latency.
	TotalQueryMillis int64 `json:"totalQueryMillis"`
}

// statsCollector guards the counters.
type statsCollector struct {
	mu    sync.Mutex
	stats ServerStats
}

func (c *statsCollector) recordOK(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.QueriesOK++
	c.stats.TotalQueryMillis += d.Milliseconds()
}

// recordFailure tallies a refused query; budget refusals and post-charge
// aborts get their own counters on top of the general one.
func (c *statsCollector) recordFailure(budget, charged bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if budget {
		c.stats.BudgetRefusals++
		return
	}
	c.stats.QueriesFailed++
	if charged {
		c.stats.QueriesAborted++
	}
}

// recordDegraded tallies a successful query that substituted blocks.
func (c *statsCollector) recordDegraded(blocks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.QueriesDegraded++
	c.stats.BlocksSubstituted += int64(blocks)
}

func (c *statsCollector) recordRetry() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.QueryRetries++
}

func (c *statsCollector) snapshot() ServerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
