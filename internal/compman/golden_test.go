package compman

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// -update regenerates the golden wire fixtures under testdata/wire. Run it
// ONLY for a deliberate, versioned wire change: the whole point of the
// fixtures is that accidental byte drift — a reordered field, a changed
// width, a different CRC polynomial — fails loudly instead of silently
// breaking cross-release interop.
var updateGolden = flag.Bool("update", false, "rewrite golden wire fixtures")

// goldenMessages enumerates the pinned fixture set: one request per Op
// plus representative responses and the worker exchange, named by message
// kind and variant.
func goldenMessages() []struct {
	name  string
	frame func() ([]byte, error)
} {
	var out []struct {
		name  string
		frame func() ([]byte, error)
	}
	reqs := sampleRequests()
	reqNames := make([]string, 0, len(reqs))
	for name := range reqs {
		reqNames = append(reqNames, name)
	}
	sort.Strings(reqNames)
	for _, name := range reqNames {
		req := reqs[name]
		out = append(out, struct {
			name  string
			frame func() ([]byte, error)
		}{"request-" + name, func() ([]byte, error) { return AppendRequestFrame(nil, req) }})
		// The v2 framing (no tenant tails) stays negotiable for pre-tenancy
		// clients, so its bytes stay pinned alongside the current version's.
		out = append(out, struct {
			name  string
			frame func() ([]byte, error)
		}{"request-" + name + "-v2", func() ([]byte, error) { return AppendRequestFrameV(nil, req, WireVersionBinary) }})
		// The v3 framing (tenant tail, no deadline tail) likewise stays
		// negotiable for pre-scheduler clients. Responses need no v3 pins:
		// the response grammar did not change between v3 and v4, so v3
		// response bytes are exactly the unversioned pins above.
		out = append(out, struct {
			name  string
			frame func() ([]byte, error)
		}{"request-" + name + "-v3", func() ([]byte, error) { return AppendRequestFrameV(nil, req, WireVersionBinary3) }})
	}
	resps := sampleResponses()
	respNames := make([]string, 0, len(resps))
	for name := range resps {
		respNames = append(respNames, name)
	}
	sort.Strings(respNames)
	for _, name := range respNames {
		resp := resps[name]
		out = append(out, struct {
			name  string
			frame func() ([]byte, error)
		}{"response-" + name, func() ([]byte, error) { return AppendResponseFrame(nil, resp) }})
		out = append(out, struct {
			name  string
			frame func() ([]byte, error)
		}{"response-" + name + "-v2", func() ([]byte, error) { return AppendResponseFrameV(nil, resp, WireVersionBinary) }})
	}
	out = append(out, struct {
		name  string
		frame func() ([]byte, error)
	}{"work-request", func() ([]byte, error) { return AppendWorkRequestFrame(nil, sampleWorkRequest()) }})
	out = append(out, struct {
		name  string
		frame func() ([]byte, error)
	}{"work-response", func() ([]byte, error) { return AppendWorkResponseFrame(nil, sampleWorkResponse()) }})
	return out
}

// TestGoldenWireFixtures pins the binary encoding of every message kind,
// byte for byte, against checked-in fixtures. A mismatch means the wire
// format changed: if that is intentional, bump the wire version and
// regenerate with `go test ./internal/compman -run TestGoldenWireFixtures
// -update`.
func TestGoldenWireFixtures(t *testing.T) {
	dir := filepath.Join("testdata", "wire")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, m := range goldenMessages() {
		frame, err := m.frame()
		if err != nil {
			t.Fatalf("%s: encode: %v", m.name, err)
		}
		path := filepath.Join(dir, m.name+".bin")
		seen[m.name+".bin"] = true
		if *updateGolden {
			if err := os.WriteFile(path, frame, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing fixture (regenerate with -update): %v", m.name, err)
		}
		if !bytes.Equal(frame, want) {
			t.Errorf("%s: wire bytes drifted from fixture:\n got %x\nwant %x\n"+
				"an intentional format change needs a wire version bump and -update", m.name, frame, want)
		}
		// Fixtures must stay decodable by the current release: golden
		// bytes from version N are exactly what a peer still running N
		// will put on the wire.
		if _, _, err := DecodeFrame(want); err != nil {
			t.Errorf("%s: fixture no longer decodes: %v", m.name, err)
		}
	}
	// Orphaned fixtures mean a message kind disappeared without the
	// format-change ritual.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir (regenerate with -update): %v", err)
	}
	for _, e := range entries {
		if !seen[e.Name()] {
			t.Errorf("orphaned fixture %s: no message in the golden set produces it", e.Name())
		}
	}
	if len(entries) != len(seen) && !*updateGolden {
		t.Errorf("fixture count %d != golden set %d", len(entries), len(seen))
	}
}

// TestGoldenFixtureDeterminism double-encodes the golden set to prove the
// encoder has no hidden nondeterminism (map iteration, pooled-buffer
// residue) that would make the byte-drift test flaky.
func TestGoldenFixtureDeterminism(t *testing.T) {
	for _, m := range goldenMessages() {
		a, err := m.frame()
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.frame()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: nondeterministic encoding", m.name)
		}
	}
}
