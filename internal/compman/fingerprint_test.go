package compman

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

// reorderJSONObject rewrites a JSON object with its top-level keys in
// sorted order, values byte-identical. Go marshals struct fields in
// declaration order, so this produces a different field ordering for any
// message with two or more out-of-order fields without touching a single
// value's representation.
func reorderJSONObject(t *testing.T, line []byte) []byte {
	t.Helper()
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(line, &fields); err != nil {
		t.Fatalf("unmarshal for reorder: %v", err)
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, _ := json.Marshal(k)
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(fields[k])
	}
	buf.WriteByte('}')
	return buf.Bytes()
}

// TestFingerprintRepresentationStable feeds the same query through three
// textual representations — Go-struct field order, sorted field order, and
// hand-written JSON with eccentric float formatting — and requires one
// fingerprint. The hasher sees the decoded struct, never the bytes.
func TestFingerprintRepresentationStable(t *testing.T) {
	structOrder := `{"op":"query","dataset":"census","program":{"type":"percentile","col":1,"p":0.5},` +
		`"outputRanges":[{"lo":0,"hi":150}],"epsilon":0.5,"blockSize":250,"seed":42}`
	reordered := `{"seed":42,"program":{"p":0.5,"col":1,"type":"percentile"},"outputRanges":[{"hi":150,"lo":0}],` +
		`"op":"query","epsilon":0.5,"dataset":"census","blockSize":250}`
	reformatted := `{"op":"query","dataset":"census","program":{"type":"percentile","col":1,"p":5e-1},` +
		`"outputRanges":[{"lo":0e0,"hi":1.5e2}],"epsilon":0.50,"blockSize":250,"seed":42}`

	var want qcacheFingerprint
	for i, line := range []string{structOrder, reordered, reformatted} {
		req, err := DecodeRequest([]byte(line))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		fp := queryFingerprint(req, "", 7)
		if i == 0 {
			want = fp
			continue
		}
		if fp != want {
			t.Errorf("variant %d fingerprints %s, variant 0 %s; representation leaked into the key", i, fp, want)
		}
	}
}

// qcacheFingerprint aliases the fingerprint type locally so the test above
// can hold one without importing qcache under a second name.
type qcacheFingerprint = [32]byte

// TestFingerprintDistinct mutates every distribution-relevant field of a
// base query one at a time and requires every mutant (plus a content
// version bump) to fingerprint apart from the base and from each other.
func TestFingerprintDistinct(t *testing.T) {
	base := func() *Request {
		return &Request{
			Op:           OpQuery,
			Dataset:      "census",
			Program:      &ProgramSpec{Type: "mean", Col: 2},
			Mode:         "tight",
			OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
			Epsilon:      0.5,
			BlockSize:    250,
			Gamma:        3,
			Seed:         42,
		}
	}
	mutants := map[string]func(*Request){
		"epsilon":        func(r *Request) { r.Epsilon = 0.6 },
		"clamp-hi":       func(r *Request) { r.OutputRanges[0].Hi = 151 },
		"clamp-lo":       func(r *Request) { r.OutputRanges[0].Lo = -1 },
		"program-type":   func(r *Request) { r.Program.Type = "median" },
		"program-col":    func(r *Request) { r.Program.Col = 3 },
		"block-size":     func(r *Request) { r.BlockSize = 251 },
		"gamma":          func(r *Request) { r.Gamma = 4 },
		"auto-block":     func(r *Request) { r.AutoBlockSize = true },
		"seed":           func(r *Request) { r.Seed = 43 },
		"mode":           func(r *Request) { r.Mode = "loose" },
		"dataset":        func(r *Request) { r.Dataset = "census2" },
		"user-level":     func(r *Request) { r.UserLevel = true },
		"accuracy":       func(r *Request) { r.Epsilon = 0; r.Accuracy = &AccuracySpec{Rho: 0.9, Confidence: 0.9} },
		"quantum":        func(r *Request) { r.QuantumMillis = 100 },
		"percentile-win": func(r *Request) { r.PercentileLow = 0.1; r.PercentileHigh = 0.9 },
	}
	seen := map[qcacheFingerprint]string{queryFingerprint(base(), "", 7): "base"}
	if fp := queryFingerprint(base(), "", 8); seen[fp] != "" {
		t.Error("content version bump did not change the fingerprint")
	} else {
		seen[fp] = "content-version"
	}
	// The cache is partitioned per tenant: the same query under different
	// principals (and under the default principal) must key apart.
	for _, tid := range []string{"alice", "bob"} {
		if fp := queryFingerprint(base(), tid, 7); seen[fp] != "" {
			t.Errorf("tenant %q shares a fingerprint with %s", tid, seen[fp])
		} else {
			seen[fp] = "tenant-" + tid
		}
	}
	for name, mutate := range mutants {
		req := base()
		mutate(req)
		fp := queryFingerprint(req, "", 7)
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

// FuzzFingerprint holds the fingerprint to its two contracts on arbitrary
// decodable requests: byte-stability under JSON field reordering (the
// values' bytes are preserved verbatim, only the ordering changes), and
// distinctness under mutation of ε, clamp range, program parameters, block
// geometry, and dataset content version.
func FuzzFingerprint(f *testing.F) {
	for _, req := range sampleRequests() {
		if line, err := json.Marshal(req); err == nil {
			f.Add(line)
		}
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeRequest(line)
		if err != nil || req.Op != OpQuery || req.Program == nil {
			return
		}
		fp := queryFingerprint(req, "", 1)

		// Determinism: hashing the same decoded request twice is identical.
		if again := queryFingerprint(req, "", 1); again != fp {
			t.Fatalf("fingerprint not deterministic: %s then %s", fp, again)
		}

		// Representation stability: re-encode, reorder the top-level fields
		// byte-preservingly, decode again — the key must not move.
		canon, err := json.Marshal(req)
		if err == nil {
			reordered := reorderJSONObject(t, canon)
			req2, err := DecodeRequest(reordered)
			if err != nil {
				t.Fatalf("reordered request rejected: %v\n%s", err, reordered)
			}
			if fp2 := queryFingerprint(req2, "", 1); fp2 != fp {
				t.Fatalf("field ordering changed the fingerprint:\n%s\n%s", canon, reordered)
			}
		}

		// Distinctness: each mutation must move the key.
		if queryFingerprint(req, "", 2) == fp {
			t.Fatal("content version bump did not change the fingerprint")
		}
		if queryFingerprint(req, "alice", 1) == fp {
			t.Fatal("tenant id did not partition the fingerprint")
		}
		mutants := []func(*Request){
			func(r *Request) { r.Epsilon++ },
			func(r *Request) { r.BlockSize++ },
			func(r *Request) { r.Seed++ },
			func(r *Request) { r.Program.Col++ },
			func(r *Request) { r.OutputRanges = append(r.OutputRanges, RangeSpec{Lo: 0, Hi: 1}) },
		}
		for i, mutate := range mutants {
			clone, err := DecodeRequest(mustJSON(t, req))
			if err != nil {
				return // request not JSON-representable (non-finite floats)
			}
			mutate(clone)
			if queryFingerprint(clone, "", 1) == fp {
				t.Fatalf("mutation %d did not change the fingerprint", i)
			}
		}
	})
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	line, err := json.Marshal(v)
	if err != nil {
		t.Skip("not JSON-representable")
	}
	return line
}
