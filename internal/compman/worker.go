package compman

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
	"gupt/internal/telemetry"
)

// Distributed execution. The paper's computation manager is split into a
// server component and a client component that runs on every node of the
// cluster, instantiating isolated execution chambers locally (§6). This
// file implements that split: a Worker daemon executes single blocks on its
// node, and a WorkerPool on the server side satisfies sandbox.Chamber by
// fanning block executions out across the registered workers. The engine
// is oblivious — it sees one Chamber and its usual parallelism knob.

// WorkSpec tells a worker what computation a block belongs to.
type WorkSpec struct {
	// Program selects the computation; binary specs are executed under the
	// worker's local subprocess chambers.
	Program ProgramSpec `json:"program"`
	// QuantumMillis arms the timing-attack defense on the worker.
	QuantumMillis int64 `json:"quantumMillis,omitempty"`
	// TraceID propagates the server's trace context: the worker labels its
	// spans with it and echoes it in the response, so one query yields one
	// cross-process span tree. Always server-generated (telemetry.NewTraceID),
	// never analyst input.
	TraceID string `json:"traceId,omitempty"`
}

// WorkRequest is one block execution.
type WorkRequest struct {
	Spec  WorkSpec    `json:"spec"`
	Block [][]float64 `json:"block"`
}

// WorkResponse is the execution result. Spans carry the worker's own trace
// spans (chamber setup, block execution) back for merging into the
// server-side trace; their raw durations are acceptable on this
// platform-internal wire but are bucketed before any export (see
// telemetry.RemoteSpan).
type WorkResponse struct {
	Output []float64 `json:"output,omitempty"`
	Error  string    `json:"error,omitempty"`
	// TraceID echoes the request's trace context; the pool treats a
	// mismatched echo as a desynchronized stream.
	TraceID string                 `json:"traceId,omitempty"`
	Spans   []telemetry.RemoteSpan `json:"spans,omitempty"`
}

// WorkerConfig tunes a worker daemon.
type WorkerConfig struct {
	// ScratchRoot hosts subprocess chamber scratch dirs.
	ScratchRoot string
	// ChamberWrapper, when set, wraps every chamber the worker builds —
	// the fault-injection surface (internal/faultinject) on the worker
	// node; production deployments normally leave it nil.
	ChamberWrapper func(sandbox.Chamber) sandbox.Chamber
	// Logger receives diagnostics; nil silences them.
	Logger *log.Logger
	// Telemetry, when set, receives the worker's own metrics: per-stage
	// bucketed latency histograms and execution counters, served by the
	// worker's admin endpoint (cmd/gupt-worker -admin-addr). Nil disables.
	Telemetry *telemetry.Registry
}

// Worker is the per-node client component of the computation manager: it
// accepts block-execution requests and runs them in local chambers.
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewWorker creates a worker daemon.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until Close. It blocks.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("compman: worker closed")
	}
	w.listener = l
	w.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("compman: worker accept: %w", err)
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
		}()
	}
}

// Close stops the worker: the listener and every live connection are
// closed, then in-flight executions are waited for.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	l := w.listener
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	w.wg.Wait()
	return err
}

func (w *Worker) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	version, err := sniffWire(conn, br, LatestWireVersion)
	if err != nil {
		if errors.Is(err, ErrPeerTooOld) {
			// A pre-binary server dialed in speaking raw JSON lines. Answer
			// with one terminal JSON error line — the only thing that peer
			// can parse — so its operator sees the reason, then hang up.
			_ = json.NewEncoder(conn).Encode(WorkResponse{Error: ErrPeerTooOld.Error()})
		}
		if err != io.EOF {
			w.logf("compman: worker wire sniff: %v", err)
		}
		return
	}
	_ = version // sniffWire only succeeds at WireVersionBinary or newer
	w.serveBinary(conn, br)
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}

// serveBinary is the worker's framed-wire loop: one WorkRequest frame in,
// one WorkResponse frame out, pooled buffers reused across blocks — the
// path every block of a cluster query crosses, so it must not allocate
// per message.
func (w *Worker) serveBinary(conn net.Conn, br *bufio.Reader) {
	rbuf, wbuf := getWireBuf(), getWireBuf()
	defer putWireBuf(rbuf)
	defer putWireBuf(wbuf)
	for {
		payload, err := readWireFrame(br, rbuf)
		if err != nil {
			if err != io.EOF {
				w.logf("compman: worker read frame: %v", err)
			}
			return
		}
		var resp WorkResponse
		if req, derr := decodePayload(payload, wireMsgWorkRequest, "work request", decodeWorkRequestBody); derr != nil {
			resp.Error = derr.Error()
		} else {
			resp = w.execute(req)
		}
		frame, err := AppendWorkResponseFrame((*wbuf)[:0], &resp)
		if err != nil {
			w.logf("compman: worker encode response: %v", err)
			return
		}
		if _, err := conn.Write(frame); err != nil {
			w.logf("compman: worker write: %v", err)
			return
		}
		*wbuf = frame[:0]
	}
}

func (w *Worker) execute(req *WorkRequest) WorkResponse {
	resp := WorkResponse{TraceID: req.Spec.TraceID}

	// The worker records its own spans — chamber setup and block execution —
	// and ships them back for merging into the server-side trace. Durations
	// also feed the worker's local bucketed histograms so a worker node is
	// observable on its own admin endpoint.
	setupStart := time.Now()
	program, isBinary, err := req.Spec.Program.resolve()
	if err != nil {
		resp.Error = err.Error()
		resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerSetup, telemetry.StatusError, setupStart))
		return resp
	}
	pol := sandbox.Policy{Metrics: w.cfg.Telemetry}
	if req.Spec.QuantumMillis > 0 {
		pol.Quantum = time.Duration(req.Spec.QuantumMillis) * time.Millisecond
	}
	var chamber sandbox.Chamber
	if isBinary {
		chamber = &sandbox.Subprocess{
			Path:        req.Spec.Program.Path,
			Args:        req.Spec.Program.Args,
			Policy:      pol,
			ScratchRoot: w.cfg.ScratchRoot,
		}
	} else {
		chamber = &sandbox.InProcess{Program: program, Policy: pol}
	}
	if w.cfg.ChamberWrapper != nil {
		chamber = w.cfg.ChamberWrapper(chamber)
	}
	block := make([]mathutil.Vec, len(req.Block))
	for i, r := range req.Block {
		block[i] = mathutil.Vec(r)
	}
	resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerSetup, telemetry.StatusOK, setupStart))

	execStart := time.Now()
	out, err := chamber.Execute(context.Background(), block)
	if err != nil {
		resp.Error = err.Error()
		resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerExecute, telemetry.StatusError, execStart))
		return resp
	}
	resp.Output = out
	resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerExecute, telemetry.StatusOK, execStart))
	return resp
}

// span closes one worker-side stage: it feeds the local bucketed histogram
// and returns the wire form for the server-side merge.
func (w *Worker) span(stage, status string, start time.Time) telemetry.RemoteSpan {
	d := time.Since(start)
	if w.cfg.Telemetry != nil {
		w.cfg.Telemetry.Histogram("trace.stage."+stage+".millis", telemetry.DefaultLatencyBuckets).Observe(d)
	}
	return telemetry.RemoteSpan{Stage: stage, Status: status, Millis: float64(d) / float64(time.Millisecond)}
}

// WorkerPool fans block executions out over a set of worker daemons. It is
// created once per server and handed to the engine as a chamber factory.
type WorkerPool struct {
	mu    sync.Mutex
	conns []*workerConn
	next  int
	tel   *telemetry.Registry
}

// Instrument routes pool health counters into a telemetry registry:
// compman.pool.redials (transport-level reconnects), compman.pool.failovers
// (blocks retried on a different worker) and the compman.pool.inflight
// depth gauge. Nil-safe throughout; call before serving.
func (p *WorkerPool) Instrument(tel *telemetry.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tel = tel
	for _, wc := range p.conns {
		wc.mu.Lock()
		wc.redials = tel.Counter("compman.pool.redials")
		wc.mu.Unlock()
	}
}

type workerConn struct {
	mu      sync.Mutex
	addr    string
	want    uint8 // wire version to offer on every (re)dial
	version uint8 // wire version this connection negotiated
	conn    net.Conn
	r       *bufio.Reader
	wbuf    []byte // reused binary encode buffer
	rbuf    []byte // reused binary frame read buffer
	broken  bool   // transport failed; redial before reuse
	redials *telemetry.Counter
}

// NewWorkerPool dials every worker address, negotiating the newest wire
// version each worker speaks. All must be reachable; a worker still on the
// retired JSON wire fails pool construction with an error naming the
// worker and wrapping ErrPeerTooOld.
func NewWorkerPool(addrs []string) (*WorkerPool, error) {
	return NewWorkerPoolVersion(addrs, LatestWireVersion)
}

// NewWorkerPoolVersion dials every worker address offering at most the
// given wire version. WireVersionJSON (0) is retired and fails closed.
func NewWorkerPoolVersion(addrs []string, version uint8) (*WorkerPool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("compman: worker pool needs at least one address")
	}
	p := &WorkerPool{}
	for _, addr := range addrs {
		wc, err := dialWorker(addr, version)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.conns = append(p.conns, wc)
	}
	return p, nil
}

func dialWorker(addr string, version uint8) (*workerConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("compman: dial worker %s: %w", addr, err)
	}
	wc := &workerConn{
		addr: addr,
		want: version,
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<20),
	}
	// Negotiation re-runs on every redial: a worker restarted on a
	// different release renegotiates instead of desynchronizing.
	v, err := negotiateWire(conn, wc.r, version)
	if err != nil {
		conn.Close()
		if errors.Is(err, ErrPeerTooOld) {
			// Name the stale worker explicitly: "dial failed" would send the
			// operator hunting the network when the fix is a worker upgrade.
			return nil, fmt.Errorf("compman: worker %s is too old for this server: %w", addr, err)
		}
		return nil, fmt.Errorf("compman: worker %s: %w", addr, err)
	}
	wc.version = v
	return wc, nil
}

// Close releases all worker connections.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, wc := range p.conns {
		wc.conn.Close()
	}
	p.conns = nil
}

// Size returns the number of pooled workers.
func (p *WorkerPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Chamber returns a sandbox.Chamber that executes blocks on the pool's
// workers, round-robin. Safe for concurrent use up to one in-flight block
// per worker; the engine's parallelism should be set to Size(). tr, when
// non-nil, receives the worker-side spans each reply ships back (labeled
// "worker:<addr>"); its id should already be on spec.TraceID.
func (p *WorkerPool) Chamber(spec WorkSpec, tr *telemetry.Trace) sandbox.Chamber {
	return &poolChamber{pool: p, spec: spec, tr: tr}
}

type poolChamber struct {
	pool *WorkerPool
	spec WorkSpec
	tr   *telemetry.Trace
}

// Execute implements sandbox.Chamber. Transport-level failures (worker
// restart, network blip, corrupted reply) are retried — first by redialing
// the same worker, then by failing over to each remaining worker in the
// pool once — so a flaky or dead worker degrades accuracy (the engine
// substitutes blocks only when the whole pool is unusable) rather than
// aborting the query. Application-level errors come back as resp.Error and
// are never retried: the worker is healthy, the computation itself failed.
func (c *poolChamber) Execute(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
	req := WorkRequest{Spec: c.spec, Block: make([][]float64, len(block))}
	for i, r := range block {
		req.Block[i] = r
	}

	inflight := c.pool.gauge("compman.pool.inflight")
	inflight.Inc()
	defer inflight.Dec()

	tries := c.pool.Size()
	if tries < 1 {
		tries = 1
	}
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.pool.counter("compman.pool.failovers").Inc()
		}
		wc, err := c.pool.pick()
		if err != nil {
			return nil, err
		}
		resp, err := wc.execute(ctx, &req)
		if err != nil {
			lastErr = err // transport-level: retryable on another worker
			continue
		}
		// The reply's spans merge into the query trace whether the block
		// succeeded or failed — a failing chamber is exactly what the
		// operator wants visible in the span tree.
		c.tr.AddRemoteSpans("worker:"+wc.addr, resp.Spans)
		if resp.Error != "" {
			// Application-level: the worker is healthy, the computation
			// itself failed. Never retried.
			return nil, fmt.Errorf("compman: worker %s: %s", wc.addr, resp.Error)
		}
		return mathutil.Vec(resp.Output), nil
	}
	return nil, lastErr
}

// execute runs one exchange on this worker, redialing a broken connection
// before and once after a transport failure. A non-nil error is always
// transport-level (retryable on another worker); application failures come
// back inside the response.
func (wc *workerConn) execute(ctx context.Context, req *WorkRequest) (*WorkResponse, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.broken {
		if dialErr := wc.redialLocked(); dialErr != nil {
			return nil, dialErr
		}
	}
	resp, err := wc.roundTrip(ctx, req)
	if err == nil {
		return resp, nil
	}
	// Transient blip: one immediate redial + retry on the same worker.
	if dialErr := wc.redialLocked(); dialErr != nil {
		return nil, fmt.Errorf("compman: worker %s unreachable after %v", wc.addr, err)
	}
	return wc.roundTrip(ctx, req)
}

// redialLocked replaces a broken connection; the caller holds wc.mu.
func (wc *workerConn) redialLocked() error {
	wc.redials.Inc()
	fresh, err := dialWorker(wc.addr, wc.want)
	if err != nil {
		return err
	}
	wc.conn.Close()
	wc.conn, wc.r, wc.broken = fresh.conn, fresh.r, false
	wc.version = fresh.version
	return nil
}

// roundTrip performs one request/response exchange; the caller holds wc.mu.
// On transport failure it marks the connection broken. Errors are
// transport-level only; an application failure arrives in resp.Error.
func (wc *workerConn) roundTrip(ctx context.Context, req *WorkRequest) (*WorkResponse, error) {
	if deadline, ok := ctx.Deadline(); ok {
		_ = wc.conn.SetDeadline(deadline)
	} else {
		_ = wc.conn.SetDeadline(time.Time{})
	}
	resp, err := wc.exchangeBinary(req)
	if err != nil {
		// Send/receive failures and corrupted replies all leave the stream
		// unsynchronized; drop the connection rather than risk pairing
		// future replies wrongly.
		wc.broken = true
		return nil, err
	}
	if req.Spec.TraceID != "" && resp.TraceID != "" && resp.TraceID != req.Spec.TraceID {
		// A reply for a different request means request/response pairing
		// slipped — same treatment as a corrupted stream.
		wc.broken = true
		return nil, fmt.Errorf("compman: worker %s: trace echo %q for request %q (stream desynchronized)", wc.addr, resp.TraceID, req.Spec.TraceID)
	}
	return resp, nil
}

// exchangeBinary runs one exchange on the framed wire; wc.mu held. The
// connection-owned buffers persist across blocks, so the per-block framing
// cost is the contiguous float64 copy and nothing else.
func (wc *workerConn) exchangeBinary(req *WorkRequest) (*WorkResponse, error) {
	frame, err := AppendWorkRequestFrame(wc.wbuf[:0], req)
	if err != nil {
		return nil, fmt.Errorf("compman: worker %s encode: %w", wc.addr, err)
	}
	if _, err := wc.conn.Write(frame); err != nil {
		return nil, fmt.Errorf("compman: worker %s send: %w", wc.addr, err)
	}
	wc.wbuf = frame[:0]
	payload, err := readWireFrame(wc.r, &wc.rbuf)
	if err != nil {
		return nil, fmt.Errorf("compman: worker %s receive: %w", wc.addr, err)
	}
	resp, err := decodePayload(payload, wireMsgWorkResponse, "work response", decodeWorkResponseBody)
	if err != nil {
		return nil, fmt.Errorf("compman: worker %s: %w", wc.addr, err)
	}
	return resp, nil
}

// counter and gauge resolve pool metrics through the (possibly nil)
// telemetry registry.
func (p *WorkerPool) counter(name string) *telemetry.Counter {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tel.Counter(name)
}

func (p *WorkerPool) gauge(name string) *telemetry.Gauge {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tel.Gauge(name)
}

func (p *WorkerPool) pick() (*workerConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.conns) == 0 {
		return nil, errors.New("compman: worker pool is closed")
	}
	wc := p.conns[p.next%len(p.conns)]
	p.next++
	return wc, nil
}
