package compman

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
	"gupt/internal/telemetry"
)

// Distributed execution. The paper's computation manager is split into a
// server component and a client component that runs on every node of the
// cluster, instantiating isolated execution chambers locally (§6). This
// file implements that split: a Worker daemon executes single blocks on its
// node, and a WorkerPool on the server side satisfies sandbox.Chamber by
// fanning block executions out across the registered workers. The engine
// is oblivious — it sees one Chamber and its usual parallelism knob.

// WorkSpec tells a worker what computation a block belongs to.
type WorkSpec struct {
	// Program selects the computation; binary specs are executed under the
	// worker's local subprocess chambers.
	Program ProgramSpec `json:"program"`
	// QuantumMillis arms the timing-attack defense on the worker.
	QuantumMillis int64 `json:"quantumMillis,omitempty"`
	// TraceID propagates the server's trace context: the worker labels its
	// spans with it and echoes it in the response, so one query yields one
	// cross-process span tree. Always server-generated (telemetry.NewTraceID),
	// never analyst input.
	TraceID string `json:"traceId,omitempty"`
}

// WorkRequest is one block execution.
type WorkRequest struct {
	Spec  WorkSpec    `json:"spec"`
	Block [][]float64 `json:"block"`
}

// WorkResponse is the execution result. Spans carry the worker's own trace
// spans (chamber setup, block execution) back for merging into the
// server-side trace; their raw durations are acceptable on this
// platform-internal wire but are bucketed before any export (see
// telemetry.RemoteSpan).
type WorkResponse struct {
	Output []float64 `json:"output,omitempty"`
	Error  string    `json:"error,omitempty"`
	// TraceID echoes the request's trace context; the pool treats a
	// mismatched echo as a desynchronized stream.
	TraceID string                 `json:"traceId,omitempty"`
	Spans   []telemetry.RemoteSpan `json:"spans,omitempty"`
}

// WorkerConfig tunes a worker daemon.
type WorkerConfig struct {
	// ScratchRoot hosts subprocess chamber scratch dirs.
	ScratchRoot string
	// ChamberWrapper, when set, wraps every chamber the worker builds —
	// the fault-injection surface (internal/faultinject) on the worker
	// node; production deployments normally leave it nil.
	ChamberWrapper func(sandbox.Chamber) sandbox.Chamber
	// Logger receives diagnostics; nil silences them.
	Logger *log.Logger
	// Telemetry, when set, receives the worker's own metrics: per-stage
	// bucketed latency histograms and execution counters, served by the
	// worker's admin endpoint (cmd/gupt-worker -admin-addr). Nil disables.
	Telemetry *telemetry.Registry
}

// Worker is the per-node client component of the computation manager: it
// accepts block-execution requests and runs them in local chambers.
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewWorker creates a worker daemon.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until Close. It blocks.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("compman: worker closed")
	}
	w.listener = l
	w.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("compman: worker accept: %w", err)
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
		}()
	}
}

// Close stops the worker: the listener and every live connection are
// closed, then in-flight executions are waited for.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	l := w.listener
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	w.wg.Wait()
	return err
}

func (w *Worker) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	version, err := sniffWire(conn, br, LatestWireVersion)
	if err != nil {
		if errors.Is(err, ErrPeerTooOld) {
			// A pre-binary server dialed in speaking raw JSON lines. Answer
			// with one terminal JSON error line — the only thing that peer
			// can parse — so its operator sees the reason, then hang up.
			_ = json.NewEncoder(conn).Encode(WorkResponse{Error: ErrPeerTooOld.Error()})
		}
		if err != io.EOF {
			w.logf("compman: worker wire sniff: %v", err)
		}
		return
	}
	_ = version // sniffWire only succeeds at WireVersionBinary or newer
	w.serveBinary(conn, br)
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}

// serveBinary is the worker's framed-wire loop: one WorkRequest frame in,
// one WorkResponse frame out, pooled buffers reused across blocks — the
// path every block of a cluster query crosses, so it must not allocate
// per message.
func (w *Worker) serveBinary(conn net.Conn, br *bufio.Reader) {
	rbuf, wbuf := getWireBuf(), getWireBuf()
	defer putWireBuf(rbuf)
	defer putWireBuf(wbuf)
	for {
		payload, err := readWireFrame(br, rbuf)
		if err != nil {
			if err != io.EOF {
				w.logf("compman: worker read frame: %v", err)
			}
			return
		}
		var resp WorkResponse
		if req, derr := decodePayload(payload, wireMsgWorkRequest, "work request", decodeWorkRequestBody); derr != nil {
			resp.Error = derr.Error()
		} else {
			resp = w.execute(req)
		}
		frame, err := AppendWorkResponseFrame((*wbuf)[:0], &resp)
		if err != nil {
			w.logf("compman: worker encode response: %v", err)
			return
		}
		if _, err := conn.Write(frame); err != nil {
			w.logf("compman: worker write: %v", err)
			return
		}
		*wbuf = frame[:0]
	}
}

func (w *Worker) execute(req *WorkRequest) WorkResponse {
	resp := WorkResponse{TraceID: req.Spec.TraceID}

	// The worker records its own spans — chamber setup and block execution —
	// and ships them back for merging into the server-side trace. Durations
	// also feed the worker's local bucketed histograms so a worker node is
	// observable on its own admin endpoint.
	setupStart := time.Now()
	program, isBinary, err := req.Spec.Program.resolve()
	if err != nil {
		resp.Error = err.Error()
		resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerSetup, telemetry.StatusError, setupStart))
		return resp
	}
	pol := sandbox.Policy{Metrics: w.cfg.Telemetry}
	if req.Spec.QuantumMillis > 0 {
		pol.Quantum = time.Duration(req.Spec.QuantumMillis) * time.Millisecond
	}
	var chamber sandbox.Chamber
	if isBinary {
		chamber = &sandbox.Subprocess{
			Path:        req.Spec.Program.Path,
			Args:        req.Spec.Program.Args,
			Policy:      pol,
			ScratchRoot: w.cfg.ScratchRoot,
		}
	} else {
		chamber = &sandbox.InProcess{Program: program, Policy: pol}
	}
	if w.cfg.ChamberWrapper != nil {
		chamber = w.cfg.ChamberWrapper(chamber)
	}
	block := make([]mathutil.Vec, len(req.Block))
	for i, r := range req.Block {
		block[i] = mathutil.Vec(r)
	}
	resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerSetup, telemetry.StatusOK, setupStart))

	execStart := time.Now()
	out, err := chamber.Execute(context.Background(), block)
	if err != nil {
		resp.Error = err.Error()
		resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerExecute, telemetry.StatusError, execStart))
		return resp
	}
	resp.Output = out
	resp.Spans = append(resp.Spans, w.span(telemetry.StageWorkerExecute, telemetry.StatusOK, execStart))
	return resp
}

// span closes one worker-side stage: it feeds the local bucketed histogram
// and returns the wire form for the server-side merge.
func (w *Worker) span(stage, status string, start time.Time) telemetry.RemoteSpan {
	d := time.Since(start)
	if w.cfg.Telemetry != nil {
		w.cfg.Telemetry.Histogram("trace.stage."+stage+".millis", telemetry.DefaultLatencyBuckets).Observe(d)
	}
	return telemetry.RemoteSpan{Stage: stage, Status: status, Millis: float64(d) / float64(time.Millisecond)}
}

// WorkerPool fans block executions out over a set of worker daemons. It is
// created once per server and handed to the engine as a chamber factory.
//
// Each worker address becomes a workerHost holding up to ConnsPerWorker
// connections, so one query's blocks shard across the whole fleet instead
// of serializing on one connection per worker. Block→worker assignment is
// rendezvous-hashed on the block index: adding or removing a worker only
// moves the blocks whose home that worker was, and — because block outputs
// are keyed by index and all RNG streams are server-side — any assignment
// produces bit-identical query results.
type WorkerPool struct {
	mu       sync.Mutex
	hosts    []*workerHost
	tel      *telemetry.Registry
	closed   bool
	closedCh chan struct{}

	connsPer       int
	stragglerAfter time.Duration
}

// PoolConfig tunes a worker pool beyond the address list.
type PoolConfig struct {
	// Addrs lists the worker daemons; all must be reachable at construction.
	Addrs []string
	// Version caps the wire version offered on every (re)dial; 0 means
	// LatestWireVersion.
	Version uint8
	// ConnsPerWorker bounds concurrent block exchanges per worker host;
	// 0 means 1 (one in-flight block per worker, the historical behavior).
	ConnsPerWorker int
	// StragglerAfter, when positive, duplicates a block to the next-ranked
	// worker if its home has not answered within this duration. The first
	// result wins; the loser's exchange completes in the background so its
	// connection stays synchronized. 0 disables re-dispatch.
	StragglerAfter time.Duration
}

// Instrument routes pool health counters into a telemetry registry:
// compman.pool.redials (transport-level reconnects), compman.pool.failovers
// (blocks retried on a different worker), compman.pool.straggler_redispatch
// (duplicate dispatches racing a slow home worker), compman.pool.demotions
// (workers demoted to last-resort after consecutive transport failures), the
// compman.pool.inflight
// depth gauge, and the per-worker compman.pool.worker.inflight.<addr> /
// compman.pool.worker.unhealthy.<addr> gauges. Nil-safe throughout; call
// before serving.
func (p *WorkerPool) Instrument(tel *telemetry.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tel = tel
	for _, h := range p.hosts {
		h.mu.Lock()
		for _, wc := range h.all {
			wc.mu.Lock()
			wc.redials = tel.Counter("compman.pool.redials")
			wc.mu.Unlock()
		}
		h.mu.Unlock()
	}
}

type workerConn struct {
	mu      sync.Mutex
	addr    string
	want    uint8 // wire version to offer on every (re)dial
	version uint8 // wire version this connection negotiated
	conn    net.Conn
	r       *bufio.Reader
	wbuf    []byte // reused binary encode buffer
	rbuf    []byte // reused binary frame read buffer
	broken  bool   // transport failed; redial before reuse
	redials *telemetry.Counter
}

// NewWorkerPool dials every worker address, negotiating the newest wire
// version each worker speaks. All must be reachable; a worker still on the
// retired JSON wire fails pool construction with an error naming the
// worker and wrapping ErrPeerTooOld.
func NewWorkerPool(addrs []string) (*WorkerPool, error) {
	return NewWorkerPoolConfig(PoolConfig{Addrs: addrs})
}

// NewWorkerPoolVersion dials every worker address offering at most the
// given wire version. WireVersionJSON (0) is retired and fails closed.
func NewWorkerPoolVersion(addrs []string, version uint8) (*WorkerPool, error) {
	if version == 0 {
		// PoolConfig treats 0 as "latest", so the retired-JSON refusal the
		// negotiator would produce is issued here instead.
		return nil, fmt.Errorf("%w: wire version %d is retired", ErrWireNegotiation, version)
	}
	return NewWorkerPoolConfig(PoolConfig{Addrs: addrs, Version: version})
}

// NewWorkerPoolConfig dials every configured worker address. One connection
// per worker is established eagerly (so a dead or too-old worker fails pool
// construction loudly); the rest of each host's connection budget is dialed
// lazily as block concurrency demands it.
func NewWorkerPoolConfig(cfg PoolConfig) (*WorkerPool, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("compman: worker pool needs at least one address")
	}
	version := cfg.Version
	if version == 0 {
		version = LatestWireVersion
	}
	connsPer := cfg.ConnsPerWorker
	if connsPer < 1 {
		connsPer = 1
	}
	p := &WorkerPool{
		closedCh:       make(chan struct{}),
		connsPer:       connsPer,
		stragglerAfter: cfg.StragglerAfter,
	}
	for _, addr := range cfg.Addrs {
		wc, err := dialWorker(addr, version)
		if err != nil {
			p.Close()
			return nil, err
		}
		h := &workerHost{
			addr:  addr,
			want:  version,
			pool:  p,
			slots: make(chan *workerConn, connsPer),
		}
		h.gaugeSuffix = metricLabel(addr)
		h.all = append(h.all, wc)
		h.slots <- wc
		for i := 1; i < connsPer; i++ {
			h.slots <- nil // dialed on demand
		}
		p.hosts = append(p.hosts, h)
	}
	return p, nil
}

// metricLabel turns a worker address into a metric-name-safe suffix.
func metricLabel(addr string) string {
	b := []byte(addr)
	for i, c := range b {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			b[i] = '_'
		}
	}
	return string(b)
}

// workerHost is one worker daemon's seat in the pool: a bounded set of
// connections plus the in-flight and health accounting that drives
// least-loaded selection and straggler re-dispatch.
type workerHost struct {
	addr        string
	want        uint8
	pool        *WorkerPool
	gaugeSuffix string

	// slots is the connection budget: a *workerConn ready for use, or nil
	// meaning "a connection may be dialed". Taking a slot bounds this
	// host's concurrent exchanges.
	slots chan *workerConn

	mu  sync.Mutex
	all []*workerConn // every dialed conn, for Close

	inflight atomic.Int64 // blocks currently dispatched here
	done     atomic.Int64 // blocks answered (including app-level errors)
	failed   atomic.Int64 // transport-level failures
	streak   atomic.Int64 // consecutive transport failures
	sick     atomic.Bool  // streak crossed unhealthyAfter; cleared on success
}

// unhealthyAfter is how many consecutive transport failures mark a worker
// unhealthy, demoting it to last-resort in candidate ranking until a
// successful exchange clears it.
const unhealthyAfter = 2

func (h *workerHost) inflightGauge() *telemetry.Gauge {
	return h.pool.gauge("compman.pool.worker.inflight." + h.gaugeSuffix)
}

func (h *workerHost) unhealthyGauge() *telemetry.Gauge {
	return h.pool.gauge("compman.pool.worker.unhealthy." + h.gaugeSuffix)
}

// saturated reports whether every connection slot is busy.
func (h *workerHost) saturated() bool {
	return h.inflight.Load() >= int64(cap(h.slots))
}

func (h *workerHost) noteFailure() {
	h.failed.Add(1)
	if h.streak.Add(1) >= unhealthyAfter && !h.sick.Swap(true) {
		h.unhealthyGauge().Set(1)
		h.pool.counter("compman.pool.demotions").Inc()
	}
}

func (h *workerHost) noteSuccess() {
	h.done.Add(1)
	h.streak.Store(0)
	if h.sick.Swap(false) {
		h.unhealthyGauge().Set(0)
	}
}

// acquire takes a connection slot, dialing lazily when the slot is still
// unused. Blocks when every slot is busy — the engine's parallelism is
// normally sized to the pool so this only gates bursts.
func (h *workerHost) acquire(ctx context.Context) (*workerConn, error) {
	select {
	case wc := <-h.slots:
		if wc != nil {
			return wc, nil
		}
		fresh, err := dialWorker(h.addr, h.want)
		if err != nil {
			h.slots <- nil // hand the slot back undialed
			return nil, err
		}
		fresh.redials = h.pool.counter("compman.pool.redials")
		h.mu.Lock()
		h.all = append(h.all, fresh)
		h.mu.Unlock()
		return fresh, nil
	case <-h.pool.closedCh:
		return nil, errPoolClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (h *workerHost) release(wc *workerConn) {
	if h.pool.isClosed() {
		wc.conn.Close()
		return
	}
	h.slots <- wc // never blocks: one slot was taken per acquire
}

// do runs one block exchange on this host, maintaining its in-flight and
// health accounting. Errors are transport-level (retryable elsewhere);
// application failures arrive inside the response.
func (h *workerHost) do(ctx context.Context, req *WorkRequest) (*WorkResponse, error) {
	h.inflight.Add(1)
	g := h.inflightGauge()
	g.Inc()
	defer func() {
		h.inflight.Add(-1)
		g.Dec()
	}()
	wc, err := h.acquire(ctx)
	if err != nil {
		if ctx.Err() == nil && !h.pool.isClosed() {
			h.noteFailure() // dial failure, not caller cancellation
		}
		return nil, err
	}
	resp, err := wc.execute(ctx, req)
	h.release(wc)
	if err != nil {
		h.noteFailure()
	} else {
		h.noteSuccess()
	}
	return resp, err
}

var errPoolClosed = errors.New("compman: worker pool is closed")

func dialWorker(addr string, version uint8) (*workerConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("compman: dial worker %s: %w", addr, err)
	}
	wc := &workerConn{
		addr: addr,
		want: version,
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<20),
	}
	// Negotiation re-runs on every redial: a worker restarted on a
	// different release renegotiates instead of desynchronizing.
	v, err := negotiateWire(conn, wc.r, version)
	if err != nil {
		conn.Close()
		if errors.Is(err, ErrPeerTooOld) {
			// Name the stale worker explicitly: "dial failed" would send the
			// operator hunting the network when the fix is a worker upgrade.
			return nil, fmt.Errorf("compman: worker %s is too old for this server: %w", addr, err)
		}
		return nil, fmt.Errorf("compman: worker %s: %w", addr, err)
	}
	wc.version = v
	return wc, nil
}

// Close releases all worker connections. In-flight exchanges fail with
// transport errors and are not retried anywhere.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.closedCh)
	hosts := p.hosts
	p.hosts = nil
	p.mu.Unlock()
	for _, h := range hosts {
		h.mu.Lock()
		for _, wc := range h.all {
			wc.conn.Close()
		}
		h.mu.Unlock()
	}
}

func (p *WorkerPool) isClosed() bool {
	select {
	case <-p.closedCh:
		return true
	default:
		return false
	}
}

// Size returns the number of pooled workers.
func (p *WorkerPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.hosts)
}

// Parallelism returns how many blocks the fleet can hold in flight at
// once — workers × connections per worker. The engine's parallelism knob
// should be set to this.
func (p *WorkerPool) Parallelism() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.hosts) * p.connsPer
}

// WorkerStats snapshots per-worker fleet accounting for the admin plane.
func (p *WorkerPool) WorkerStats() []telemetry.WorkerStatus {
	p.mu.Lock()
	hosts := append([]*workerHost(nil), p.hosts...)
	p.mu.Unlock()
	out := make([]telemetry.WorkerStatus, 0, len(hosts))
	for _, h := range hosts {
		h.mu.Lock()
		conns := len(h.all)
		h.mu.Unlock()
		out = append(out, telemetry.WorkerStatus{
			Addr:      h.addr,
			Conns:     conns,
			MaxConns:  cap(h.slots),
			Inflight:  h.inflight.Load(),
			Done:      h.done.Load(),
			Failed:    h.failed.Load(),
			Unhealthy: h.sick.Load(),
		})
	}
	return out
}

// Chamber returns a sandbox.Chamber that executes blocks on the pool's
// workers. Blocks carrying an index (the engine's sandbox.BlockChamber
// path) are rendezvous-assigned a home worker; index-less Execute calls
// pick the least-loaded worker. Safe for concurrent use up to
// Parallelism() in-flight blocks. tr, when non-nil, receives the
// worker-side spans each reply ships back (labeled "worker:<addr>"); its
// id should already be on spec.TraceID.
func (p *WorkerPool) Chamber(spec WorkSpec, tr *telemetry.Trace) sandbox.Chamber {
	return &poolChamber{pool: p, spec: spec, tr: tr}
}

type poolChamber struct {
	pool *WorkerPool
	spec WorkSpec
	tr   *telemetry.Trace
}

// ReadOnlyBlocks declares the zero-copy contract: the pool chamber only
// reads block rows (straight into the wire encoder's contiguous float
// path), so the engine may hand it partition views without cloning.
func (c *poolChamber) ReadOnlyBlocks() bool { return true }

// Execute implements sandbox.Chamber for callers without a block index:
// the block goes to the least-loaded healthy worker.
func (c *poolChamber) Execute(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
	return c.run(ctx, -1, block)
}

// ExecuteBlock implements sandbox.BlockChamber: block idx is
// rendezvous-assigned its home worker so assignment is stable under fleet
// membership changes (only blocks homed on a removed worker move).
func (c *poolChamber) ExecuteBlock(ctx context.Context, idx int, block []mathutil.Vec) (mathutil.Vec, error) {
	return c.run(ctx, idx, block)
}

// run dispatches one block. Transport-level failures (worker restart,
// network blip, corrupted reply) are retried — first by the connection's
// own redial, then by failing over down the candidate ranking, each
// remaining worker once — so a flaky or dead worker degrades accuracy (the
// engine substitutes blocks only when the whole fleet is unusable) rather
// than aborting the query. When StragglerAfter is set and the first worker
// has not answered in time, the block is duplicated to the next-ranked
// worker and the first result wins; the loser's exchange completes in the
// background, keeping its connection synchronized. Application-level
// errors come back as resp.Error and are never retried: the worker is
// healthy, the computation itself failed.
func (c *poolChamber) run(ctx context.Context, idx int, block []mathutil.Vec) (mathutil.Vec, error) {
	req := WorkRequest{Spec: c.spec, Block: make([][]float64, len(block))}
	for i, r := range block {
		req.Block[i] = r
	}

	inflight := c.pool.gauge("compman.pool.inflight")
	inflight.Inc()
	defer inflight.Dec()

	cands := c.pool.candidates(idx)
	if len(cands) == 0 {
		return nil, errPoolClosed
	}

	type result struct {
		host  *workerHost
		resp  *WorkResponse
		err   error
		stage string    // which dispatch kind launched this exchange
		start time.Time // when it was dispatched
	}
	results := make(chan result, len(cands))
	next := 0
	// launch dispatches the block to the next-ranked candidate, tagging the
	// exchange with its dispatch kind (first try, straggler duplicate, or
	// failover) so the observed outcome becomes a per-worker fan-out span in
	// the query trace.
	launch := func(stage string) bool {
		if next >= len(cands) {
			return false
		}
		h := cands[next]
		next++
		start := time.Now()
		go func() {
			resp, err := h.do(ctx, &req)
			results <- result{h, resp, err, stage, start}
		}()
		return true
	}
	launch(telemetry.StageFanoutDispatch)
	var straggler <-chan time.Time
	if d := c.pool.stragglerAfter; d > 0 && len(cands) > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		straggler = t.C
	}
	pending := 1
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			// Outstanding exchanges run to completion in the background
			// (bounded by the connection deadline) so their streams stay
			// request/response synchronized.
			return nil, ctx.Err()
		case <-straggler:
			straggler = nil
			if launch(telemetry.StageFanoutStraggler) {
				pending++
				c.pool.counter("compman.pool.straggler_redispatch").Inc()
			}
		case r := <-results:
			pending--
			c.noteDispatch(r.host, r.stage, r.start, r.err == nil && r.resp.Error == "")
			if r.err != nil {
				lastErr = r.err // transport-level: retryable on another worker
				if launch(telemetry.StageFanoutFailover) {
					pending++
					c.pool.counter("compman.pool.failovers").Inc()
				} else if pending == 0 {
					return nil, lastErr
				}
				continue
			}
			// The reply's spans merge into the query trace whether the block
			// succeeded or failed — a failing chamber is exactly what the
			// operator wants visible in the span tree.
			c.tr.AddRemoteSpans("worker:"+r.host.addr, r.resp.Spans)
			if r.resp.Error != "" {
				// Application-level: the worker is healthy, the computation
				// itself failed. Never retried.
				return nil, fmt.Errorf("compman: worker %s: %s", r.host.addr, r.resp.Error)
			}
			return mathutil.Vec(r.resp.Output), nil
		}
	}
}

// noteDispatch closes one fan-out dispatch as a worker-attributed span in
// the query trace: the stage says how the exchange was launched (first
// dispatch, straggler duplicate, failover), the process label names the
// worker, and the duration covers dispatch to observed outcome. Dispatches
// that lose the first-result-wins race finish in the background unobserved
// and record no span. Nil-trace safe.
func (c *poolChamber) noteDispatch(h *workerHost, stage string, start time.Time, ok bool) {
	status := telemetry.StatusOK
	if !ok {
		status = telemetry.StatusError
	}
	c.tr.AddRemoteSpans("worker:"+h.addr, []telemetry.RemoteSpan{{
		Stage:  stage,
		Status: status,
		Millis: float64(time.Since(start)) / float64(time.Millisecond),
	}})
}

// candidates returns the hosts to try for a block, in dispatch order. For
// an indexed block the order is the rendezvous (highest-random-weight)
// ranking of hash(worker, idx) — a deterministic per-block permutation, so
// the home assignment is stable under membership changes and failover
// walks a fixed secondary ranking. Index-less blocks rank by current load.
// Unhealthy hosts are demoted to the end (kept as last resorts: the redial
// machinery may still revive them), and a saturated or unhealthy home is
// spilled to the least-loaded healthy host with free capacity.
func (p *WorkerPool) candidates(idx int) []*workerHost {
	p.mu.Lock()
	hosts := append([]*workerHost(nil), p.hosts...)
	p.mu.Unlock()
	if len(hosts) == 0 {
		return nil
	}
	if idx >= 0 {
		sort.SliceStable(hosts, func(a, b int) bool {
			return rendezvousScore(hosts[a].addr, idx) > rendezvousScore(hosts[b].addr, idx)
		})
	} else {
		sort.SliceStable(hosts, func(a, b int) bool {
			return hosts[a].inflight.Load() < hosts[b].inflight.Load()
		})
	}
	// Demote unhealthy hosts, preserving relative order within each class.
	cands := make([]*workerHost, 0, len(hosts))
	var sick []*workerHost
	for _, h := range hosts {
		if h.sick.Load() {
			sick = append(sick, h)
		} else {
			cands = append(cands, h)
		}
	}
	cands = append(cands, sick...)
	// Least-loaded spill: a busy home must not queue a block while another
	// healthy worker sits idle.
	if len(cands) > 1 && (cands[0].saturated() || cands[0].sick.Load()) {
		best := -1
		for i := 1; i < len(cands); i++ {
			h := cands[i]
			if h.sick.Load() || h.saturated() {
				continue
			}
			if best < 0 || h.inflight.Load() < cands[best].inflight.Load() {
				best = i
			}
		}
		if best > 0 {
			promoted := cands[best]
			copy(cands[1:best+1], cands[:best])
			cands[0] = promoted
		}
	}
	return cands
}

// rendezvousScore is the highest-random-weight hash for block→worker
// assignment: FNV-1a over the worker address, mixed with the block index
// by a splitmix64 finalizer. Deterministic across processes and runs.
func rendezvousScore(addr string, idx int) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	h += uint64(idx)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// execute runs one exchange on this worker, redialing a broken connection
// before and once after a transport failure. A non-nil error is always
// transport-level (retryable on another worker); application failures come
// back inside the response.
func (wc *workerConn) execute(ctx context.Context, req *WorkRequest) (*WorkResponse, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.broken {
		if dialErr := wc.redialLocked(); dialErr != nil {
			return nil, dialErr
		}
	}
	resp, err := wc.roundTrip(ctx, req)
	if err == nil {
		return resp, nil
	}
	// Transient blip: one immediate redial + retry on the same worker.
	if dialErr := wc.redialLocked(); dialErr != nil {
		return nil, fmt.Errorf("compman: worker %s unreachable after %v", wc.addr, err)
	}
	return wc.roundTrip(ctx, req)
}

// redialLocked replaces a broken connection; the caller holds wc.mu.
func (wc *workerConn) redialLocked() error {
	wc.redials.Inc()
	fresh, err := dialWorker(wc.addr, wc.want)
	if err != nil {
		return err
	}
	wc.conn.Close()
	wc.conn, wc.r, wc.broken = fresh.conn, fresh.r, false
	wc.version = fresh.version
	return nil
}

// roundTrip performs one request/response exchange; the caller holds wc.mu.
// On transport failure it marks the connection broken. Errors are
// transport-level only; an application failure arrives in resp.Error.
func (wc *workerConn) roundTrip(ctx context.Context, req *WorkRequest) (*WorkResponse, error) {
	if deadline, ok := ctx.Deadline(); ok {
		_ = wc.conn.SetDeadline(deadline)
	} else {
		_ = wc.conn.SetDeadline(time.Time{})
	}
	resp, err := wc.exchangeBinary(req)
	if err != nil {
		// Send/receive failures and corrupted replies all leave the stream
		// unsynchronized; drop the connection rather than risk pairing
		// future replies wrongly.
		wc.broken = true
		return nil, err
	}
	if req.Spec.TraceID != "" && resp.TraceID != "" && resp.TraceID != req.Spec.TraceID {
		// A reply for a different request means request/response pairing
		// slipped — same treatment as a corrupted stream.
		wc.broken = true
		return nil, fmt.Errorf("compman: worker %s: trace echo %q for request %q (stream desynchronized)", wc.addr, resp.TraceID, req.Spec.TraceID)
	}
	return resp, nil
}

// exchangeBinary runs one exchange on the framed wire; wc.mu held. The
// connection-owned buffers persist across blocks, so the per-block framing
// cost is the contiguous float64 copy and nothing else.
func (wc *workerConn) exchangeBinary(req *WorkRequest) (*WorkResponse, error) {
	frame, err := AppendWorkRequestFrame(wc.wbuf[:0], req)
	if err != nil {
		return nil, fmt.Errorf("compman: worker %s encode: %w", wc.addr, err)
	}
	if _, err := wc.conn.Write(frame); err != nil {
		return nil, fmt.Errorf("compman: worker %s send: %w", wc.addr, err)
	}
	wc.wbuf = frame[:0]
	payload, err := readWireFrame(wc.r, &wc.rbuf)
	if err != nil {
		return nil, fmt.Errorf("compman: worker %s receive: %w", wc.addr, err)
	}
	resp, err := decodePayload(payload, wireMsgWorkResponse, "work response", decodeWorkResponseBody)
	if err != nil {
		return nil, fmt.Errorf("compman: worker %s: %w", wc.addr, err)
	}
	return resp, nil
}

// counter and gauge resolve pool metrics through the (possibly nil)
// telemetry registry.
func (p *WorkerPool) counter(name string) *telemetry.Counter {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tel.Counter(name)
}

func (p *WorkerPool) gauge(name string) *telemetry.Gauge {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tel.Gauge(name)
}
