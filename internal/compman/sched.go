package compman

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"gupt/internal/telemetry"
)

// Deadline-aware query admission (ROADMAP item 1, scheduler half).
//
// Without a scheduler the server runs every admitted query immediately:
// under overload they all contend for the worker fleet, every query slows
// down, and clients with deadlines see violations instead of backpressure.
// The scheduler bounds concurrency, queues the overflow in
// earliest-deadline-first order, and sheds load the moment it can prove a
// query cannot be served in time — always BEFORE any ε is charged, so a
// rejection costs the analyst nothing and the refusal carries a
// RetryAfterMillis hint derived from observed service times.
//
// The scheduler sits after tenant authentication/rate limiting (cheap
// refusals first) and before the cache lookup and budget charge.

// SchedConfig configures the deadline-aware admission scheduler. The zero
// value disables scheduling entirely: every query runs immediately, the
// pre-scheduler behavior.
type SchedConfig struct {
	// MaxConcurrent bounds queries executing at once across the server.
	// Zero or negative disables the scheduler.
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a slot; an arrival past the
	// bound is refused with a RetryAfterMillis hint. Zero selects
	// 4×MaxConcurrent.
	MaxQueue int
	// MaxPerDataset bounds concurrent queries per dataset (a hot dataset
	// cannot starve the rest). Zero means no per-dataset cap.
	MaxPerDataset int
	// MaxPerTenant bounds concurrent queries per tenant id. Zero means no
	// per-tenant cap. With tenancy off every query shares the default
	// principal, so this cap then equals MaxConcurrent semantics.
	MaxPerTenant int
}

func (c SchedConfig) enabled() bool { return c.MaxConcurrent > 0 }

func (c SchedConfig) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 4 * c.MaxConcurrent
}

// schedVerdict is the admission outcome for a query that was not admitted.
type schedVerdict int

const (
	schedAdmitted schedVerdict = iota
	// schedBusy: the wait queue is full — classic backpressure.
	schedBusy
	// schedExpired: the query's deadline passed (or provably will pass)
	// before a slot frees up; running it would only produce a deadline
	// violation after spending resources.
	schedExpired
	// schedCancelled: the caller's context ended while queued.
	schedCancelled
)

// waiter is one queued query.
type waiter struct {
	dataset  string
	tenant   string
	deadline time.Time // zero: no client deadline (sorts after all deadlines)
	seq      uint64    // FIFO tiebreak
	ready    chan struct{}
	index    int // heap position; -1 once popped
	expired  bool
	admitted bool
}

// schedHeap orders waiters earliest-deadline-first; deadline-less waiters
// come last, FIFO among themselves.
type schedHeap []*waiter

func (h schedHeap) Len() int { return len(h) }
func (h schedHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	switch {
	case a.deadline.IsZero() && b.deadline.IsZero():
		return a.seq < b.seq
	case a.deadline.IsZero():
		return false
	case b.deadline.IsZero():
		return true
	case a.deadline.Equal(b.deadline):
		return a.seq < b.seq
	default:
		return a.deadline.Before(b.deadline)
	}
}
func (h schedHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *schedHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *schedHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

type scheduler struct {
	cfg SchedConfig

	mu         sync.Mutex
	running    int
	perDataset map[string]int
	perTenant  map[string]int
	queue      schedHeap
	seq        uint64
	ewmaMillis float64 // smoothed query service time, for retry hints

	gDepth    *telemetry.Gauge
	gRunning  *telemetry.Gauge
	cAdmitted *telemetry.Counter
	cQueued   *telemetry.Counter
	cBusy     *telemetry.Counter
	cExpired  *telemetry.Counter
}

func newScheduler(cfg SchedConfig, tel *telemetry.Registry) *scheduler {
	if !cfg.enabled() {
		return nil
	}
	return &scheduler{
		cfg:        cfg,
		perDataset: make(map[string]int),
		perTenant:  make(map[string]int),
		gDepth:     tel.Gauge("compman.sched.queue_depth"),
		gRunning:   tel.Gauge("compman.sched.running"),
		cAdmitted:  tel.Counter("compman.sched.admitted"),
		cQueued:    tel.Counter("compman.sched.queued"),
		cBusy:      tel.Counter("compman.sched.rejected_busy"),
		cExpired:   tel.Counter("compman.sched.rejected_expired"),
	}
}

// canRunLocked reports whether a query on (dataset, tenant) fits every
// concurrency cap right now. s.mu held.
func (s *scheduler) canRunLocked(dataset, tenant string) bool {
	if s.running >= s.cfg.MaxConcurrent {
		return false
	}
	if s.cfg.MaxPerDataset > 0 && s.perDataset[dataset] >= s.cfg.MaxPerDataset {
		return false
	}
	if s.cfg.MaxPerTenant > 0 && s.perTenant[tenant] >= s.cfg.MaxPerTenant {
		return false
	}
	return true
}

func (s *scheduler) startLocked(dataset, tenant string) {
	s.running++
	s.perDataset[dataset]++
	s.perTenant[tenant]++
	s.gRunning.Set(int64(s.running))
	s.cAdmitted.Inc()
}

// retryHintLocked estimates when retrying is worthwhile: the smoothed
// service time scaled by how many queries are ahead per execution slot.
// s.mu held.
func (s *scheduler) retryHintLocked() time.Duration {
	ewma := s.ewmaMillis
	if ewma < 1 {
		ewma = 50 // no history yet: a modest default beats hint 0
	}
	waves := float64(s.running+len(s.queue))/float64(s.cfg.MaxConcurrent) + 1
	d := time.Duration(ewma*waves) * time.Millisecond
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// admit asks for an execution slot. It returns schedAdmitted with a
// release func (call exactly once, when the query settles), or a rejection
// verdict with a retry hint. deadline zero means no client deadline; a
// deadline that expires while queued converts to schedExpired without the
// query ever charging ε.
func (s *scheduler) admit(ctx context.Context, dataset, tenant string, deadline time.Time) (release func(), retryAfter time.Duration, verdict schedVerdict) {
	if s == nil {
		return func() {}, 0, schedAdmitted
	}
	s.mu.Lock()
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		hint := s.retryHintLocked()
		s.cExpired.Inc()
		s.mu.Unlock()
		return nil, hint, schedExpired
	}
	if s.canRunLocked(dataset, tenant) {
		s.startLocked(dataset, tenant)
		s.mu.Unlock()
		return s.releaseFunc(dataset, tenant, time.Now()), 0, schedAdmitted
	}
	if len(s.queue) >= s.cfg.maxQueue() {
		hint := s.retryHintLocked()
		s.cBusy.Inc()
		s.mu.Unlock()
		return nil, hint, schedBusy
	}
	w := &waiter{
		dataset:  dataset,
		tenant:   tenant,
		deadline: deadline,
		seq:      s.seq,
		ready:    make(chan struct{}),
	}
	s.seq++
	heap.Push(&s.queue, w)
	s.gDepth.Set(int64(len(s.queue)))
	s.cQueued.Inc()
	s.mu.Unlock()

	// A queued waiter with a deadline also arms a timer: expiry must not
	// wait for the next release to be noticed.
	var expiry <-chan time.Time
	if !w.deadline.IsZero() {
		t := time.NewTimer(time.Until(w.deadline))
		defer t.Stop()
		expiry = t.C
	}
	select {
	case <-w.ready:
		s.mu.Lock()
		admitted := w.admitted
		hint := s.retryHintLocked()
		s.mu.Unlock()
		if admitted {
			return s.releaseFunc(dataset, tenant, time.Now()), 0, schedAdmitted
		}
		return nil, hint, schedExpired
	case <-expiry:
		if s.abandon(w) {
			s.mu.Lock()
			hint := s.retryHintLocked()
			s.cExpired.Inc()
			s.mu.Unlock()
			return nil, hint, schedExpired
		}
		// Lost the race: a release admitted (or expired) us first.
		<-w.ready
		s.mu.Lock()
		admitted := w.admitted
		hint := s.retryHintLocked()
		if !admitted {
			s.cExpired.Inc()
		}
		s.mu.Unlock()
		if admitted {
			return s.releaseFunc(dataset, tenant, time.Now()), 0, schedAdmitted
		}
		return nil, hint, schedExpired
	case <-ctx.Done():
		if s.abandon(w) {
			return nil, 0, schedCancelled
		}
		<-w.ready
		s.mu.Lock()
		admitted := w.admitted
		s.mu.Unlock()
		if admitted {
			// Admitted in the same instant the caller gave up; hand the
			// slot straight back so it is not leaked.
			s.releaseFunc(dataset, tenant, time.Now())()
			return nil, 0, schedCancelled
		}
		return nil, 0, schedCancelled
	}
}

// abandon removes a still-queued waiter; false means it already left the
// queue (admitted or expired by a release) and its ready channel is closed.
func (s *scheduler) abandon(w *waiter) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.index < 0 {
		return false
	}
	heap.Remove(&s.queue, w.index)
	s.gDepth.Set(int64(len(s.queue)))
	return true
}

// releaseFunc frees the slot taken at start and promotes queued waiters.
func (s *scheduler) releaseFunc(dataset, tenant string, start time.Time) func() {
	return func() {
		elapsed := float64(time.Since(start)) / float64(time.Millisecond)
		s.mu.Lock()
		// EWMA of service time drives the retry hints. α = 0.2: smooth
		// enough to ignore one outlier, fresh enough to track load shifts.
		if s.ewmaMillis == 0 {
			s.ewmaMillis = elapsed
		} else {
			s.ewmaMillis = 0.8*s.ewmaMillis + 0.2*elapsed
		}
		s.running--
		if s.perDataset[dataset]--; s.perDataset[dataset] <= 0 {
			delete(s.perDataset, dataset)
		}
		if s.perTenant[tenant]--; s.perTenant[tenant] <= 0 {
			delete(s.perTenant, tenant)
		}
		s.gRunning.Set(int64(s.running))
		s.promoteLocked()
		s.mu.Unlock()
	}
}

// promoteLocked pops waiters in EDF order: expired ones are rejected (they
// can no longer be served in time), and the earliest-deadline waiter whose
// caps have room is admitted. Waiters blocked only by a per-dataset or
// per-tenant cap are skipped over — EDF across the eligible set, not
// head-of-line blocking. s.mu held.
func (s *scheduler) promoteLocked() {
	now := time.Now()
	var skipped []*waiter
	for len(s.queue) > 0 {
		w := heap.Pop(&s.queue).(*waiter)
		if !w.deadline.IsZero() && !now.Before(w.deadline) {
			w.expired = true
			close(w.ready)
			continue
		}
		if s.canRunLocked(w.dataset, w.tenant) {
			w.admitted = true
			s.startLocked(w.dataset, w.tenant)
			close(w.ready)
			break
		}
		if s.running >= s.cfg.MaxConcurrent {
			// No global room: nothing else can be admitted either.
			skipped = append(skipped, w)
			break
		}
		skipped = append(skipped, w) // blocked by a scoped cap; try the next
	}
	for _, w := range skipped {
		heap.Push(&s.queue, w)
	}
	s.gDepth.Set(int64(len(s.queue)))
}

// queueDepth reports the current wait-queue length (tests, admin).
func (s *scheduler) queueDepth() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
