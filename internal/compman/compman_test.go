package compman

import (
	"bufio"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// startServer spins up a server on a loopback listener with a census-like
// dataset registered, returning a connected client.
func startServer(t *testing.T, totalBudget float64) (*Client, *Server) {
	return startServerCfg(t, totalBudget, ServerConfig{})
}

// startServerCfg is startServer with an explicit server configuration (the
// chaos suite injects fault wrappers and deadlines through it).
func startServerCfg(t *testing.T, totalBudget float64, cfg ServerConfig) (*Client, *Server) {
	t.Helper()
	reg := dataset.NewRegistry()
	rng := mathutil.NewRNG(1)
	tbl := dataset.New([]string{"age"})
	for i := 0; i < 5000; i++ {
		if err := tbl.Append(mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Register("census", tbl, dataset.RegisterOptions{
		TotalBudget:  totalBudget,
		Ranges:       []dp.Range{{Lo: 0, Hi: 150}},
		AgedFraction: 0.1,
		Seed:         2,
	}); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(reg, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, srv
}

func TestPingAndList(t *testing.T) {
	client, _ := startServer(t, 100)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	names, err := client.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "census" {
		t.Errorf("Datasets = %v", names)
	}
}

func TestQueryMeanEndToEnd(t *testing.T) {
	client, _ := startServer(t, 100)
	resp, err := client.Query(&Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		Mode:         "tight",
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      5,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Output[0]-40) > 5 {
		t.Errorf("mean = %v, want ~40", resp.Output[0])
	}
	if resp.EpsilonSpent != 5 {
		t.Errorf("EpsilonSpent = %v", resp.EpsilonSpent)
	}

	rem, err := client.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-95) > 1e-9 {
		t.Errorf("remaining = %v, want 95", rem)
	}
}

func TestQueryBudgetEnforcedAcrossQueries(t *testing.T) {
	client, _ := startServer(t, 1.0)
	req := &Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      0.6,
	}
	if _, err := client.Query(req); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(req); err == nil || !strings.Contains(err.Error(), "budget exhausted") {
		t.Errorf("second query err = %v, want budget exhausted", err)
	}
	// The refused query consumed nothing.
	rem, _ := client.RemainingBudget("census")
	if math.Abs(rem-0.4) > 1e-9 {
		t.Errorf("remaining = %v, want 0.4", rem)
	}
}

func TestQueryLooseMode(t *testing.T) {
	client, _ := startServer(t, 100)
	resp, err := client.Query(&Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		Mode:         "loose",
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 300}},
		Epsilon:      4,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Output[0]-40) > 15 {
		t.Errorf("loose mean = %v", resp.Output[0])
	}
	if len(resp.EffectiveRanges) != 1 || resp.EffectiveRanges[0].Hi > 300 {
		t.Errorf("effective ranges = %v", resp.EffectiveRanges)
	}
}

func TestQueryHelperModeWithTranslateSpec(t *testing.T) {
	client, _ := startServer(t, 100)
	resp, err := client.Query(&Request{
		Dataset: "census",
		Program: &ProgramSpec{Type: "mean", Col: 0},
		Mode:    "helper",
		Translate: &TranslateSpec{
			InputDim: []int{0},
			Scale:    []float64{1},
			Offset:   []float64{0},
		},
		Epsilon: 4,
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The IQR of N(40,10) is ~[33, 47]; the mean 40 lies inside, and the
	// output should land near it.
	if math.Abs(resp.Output[0]-40) > 15 {
		t.Errorf("helper mean = %v", resp.Output[0])
	}
}

func TestQueryAccuracyGoal(t *testing.T) {
	client, _ := startServer(t, 100)
	resp, err := client.Query(&Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Accuracy:     &AccuracySpec{Rho: 0.9, Confidence: 0.9},
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.EpsilonSpent <= 0 {
		t.Fatalf("accuracy-mode query spent %v", resp.EpsilonSpent)
	}
	// Accuracy goal met: within 10% of the true ~40.
	if math.Abs(resp.Output[0]-40)/40 > 0.2 {
		t.Errorf("output %v violates even a doubled accuracy margin", resp.Output[0])
	}
	rem, _ := client.RemainingBudget("census")
	if math.Abs((100-rem)-resp.EpsilonSpent) > 1e-9 {
		t.Errorf("ledger charged %v, response says %v", 100-rem, resp.EpsilonSpent)
	}
}

func TestQueryAutoBlockSize(t *testing.T) {
	client, _ := startServer(t, 100)
	resp, err := client.Query(&Request{
		Dataset:       "census",
		Program:       &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges:  []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:       2,
		AutoBlockSize: true,
		Seed:          8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// For a mean query the optimizer should choose small blocks (Example 3),
	// far below the n^0.6 default of ~166.
	if resp.BlockSize >= 100 {
		t.Errorf("auto block size = %d, expected small for a mean query", resp.BlockSize)
	}
}

func TestQueryValidationErrors(t *testing.T) {
	client, _ := startServer(t, 100)
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown dataset", Request{Dataset: "nope", Program: &ProgramSpec{Type: "mean"}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}}, Epsilon: 1}},
		{"missing program", Request{Dataset: "census", OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}}, Epsilon: 1}},
		{"unknown program", Request{Dataset: "census", Program: &ProgramSpec{Type: "sorcery"}, Epsilon: 1}},
		{"no epsilon or accuracy", Request{Dataset: "census", Program: &ProgramSpec{Type: "mean"}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}}}},
		{"both epsilon and accuracy", Request{Dataset: "census", Program: &ProgramSpec{Type: "mean"}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}}, Epsilon: 1, Accuracy: &AccuracySpec{Rho: 0.9, Confidence: 0.9}}},
		{"bad mode", Request{Dataset: "census", Program: &ProgramSpec{Type: "mean"}, Mode: "psychic", Epsilon: 1}},
		{"inverted range", Request{Dataset: "census", Program: &ProgramSpec{Type: "mean"}, OutputRanges: []RangeSpec{{Lo: 5, Hi: 1}}, Epsilon: 1}},
		{"helper without translate", Request{Dataset: "census", Program: &ProgramSpec{Type: "mean"}, Mode: "helper", Epsilon: 1}},
		{"bad percentile", Request{Dataset: "census", Program: &ProgramSpec{Type: "percentile", P: 2}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}}, Epsilon: 1}},
		{"binary missing path", Request{Dataset: "census", Program: &ProgramSpec{Type: "binary"}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}}, Epsilon: 1}},
	}
	for _, c := range cases {
		if _, err := client.Query(&c.req); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Failed queries must not have consumed budget.
	rem, _ := client.RemainingBudget("census")
	if rem != 100 {
		t.Errorf("failed queries consumed budget: remaining %v", rem)
	}
}

func TestMalformedWireRequest(t *testing.T) {
	_, srv := startServer(t, 100)
	// A connection that opens with anything but a binary hello is treated
	// as a pre-binary peer: one JSON farewell naming the retired wire, then
	// close. (On a negotiated binary connection garbage is
	// indistinguishable from a desynchronized frame stream and fails closed
	// — see wire tests.)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not a hello\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(line), "retired") {
		t.Errorf("response to garbage = %s", line)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		t.Errorf("server kept the connection after a garbled open (err=%v)", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	client, srv := startServer(t, 1000)
	_ = client
	addr := srv.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Query(&Request{
				Dataset:      "census",
				Program:      &ProgramSpec{Type: "mean", Col: 0},
				OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
				Epsilon:      1,
				Seed:         int64(i),
			})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	rem, _ := client.RemainingBudget("census")
	if math.Abs(rem-992) > 1e-6 {
		t.Errorf("remaining = %v, want 992", rem)
	}
}

func TestServerStats(t *testing.T) {
	client, _ := startServer(t, 1.0)
	// One success, one budget refusal, one validation failure.
	ok := &Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      0.8,
	}
	if _, err := client.Query(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(ok); err == nil { // budget now short
		t.Fatal("expected budget refusal")
	}
	if _, err := client.Query(&Request{Dataset: "census", Epsilon: 1}); err == nil {
		t.Fatal("expected validation failure")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueriesOK != 1 || stats.BudgetRefusals != 1 || stats.QueriesFailed != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.TotalQueryMillis < 0 {
		t.Errorf("negative latency: %+v", stats)
	}
}

func TestRegisterDatasetOverWire(t *testing.T) {
	client, _ := startServer(t, 100)
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{float64(20 + i%50)}
	}
	err := client.RegisterDataset(&RegisterSpec{
		Name:         "pushed",
		Rows:         rows,
		Columns:      []string{"age"},
		TotalBudget:  5,
		Ranges:       []RangeSpec{{Lo: 0, Hi: 150}},
		AgedFraction: 0.1,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	names, err := client.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("datasets = %v", names)
	}
	// The pushed dataset is immediately queryable.
	resp, err := client.Query(&Request{
		Dataset:      "pushed",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      3,
		BlockSize:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output[0] < 20 || resp.Output[0] > 70 {
		t.Errorf("pushed dataset mean = %v", resp.Output[0])
	}

	// Validation flows through.
	if err := client.RegisterDataset(&RegisterSpec{Name: "bad", Rows: rows}); err == nil {
		t.Error("zero-budget registration accepted")
	}
	if err := client.RegisterDataset(&RegisterSpec{Name: "pushed", Rows: rows, TotalBudget: 1}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := client.RegisterDataset(&RegisterSpec{
		Name: "ragged", Rows: [][]float64{{1}, {1, 2}}, TotalBudget: 1,
	}); err == nil {
		t.Error("ragged rows accepted")
	}
	_, err = client.roundTrip(&Request{Op: OpRegister})
	if err == nil {
		t.Error("register without payload accepted")
	}
}

func TestServerIdleTimeout(t *testing.T) {
	reg := buildCensusRegistry(t, 10)
	srv := NewServer(reg, ServerConfig{IdleTimeout: 150 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	// Go idle past the timeout: the server hangs up, so the next round
	// trip fails.
	time.Sleep(400 * time.Millisecond)
	if err := client.Ping(); err == nil {
		t.Error("idle connection survived the timeout")
	}
	// Fresh connections still work.
	c2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Errorf("fresh connection refused: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	_, srv := startServer(t, 1)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramSpecResolve(t *testing.T) {
	good := []ProgramSpec{
		{Type: "mean", Col: 0},
		{Type: "median", Col: 1},
		{Type: "variance"},
		{Type: "percentile", P: 0.5},
		{Type: "covariance", Col: 0, ColB: 1},
		{Type: "histogram", Col: 0, Lo: 0, Hi: 10, Bins: 5},
		{Type: "kmeans", K: 2, FeatureDims: 2, Iters: 5},
		{Type: "logreg", FeatureDims: 2, LabelCol: 2, Iters: 5},
		{Type: "linreg", FeatureDims: 2, LabelCol: 2},
		{Type: "naivebayes", FeatureDims: 2, LabelCol: 2},
	}
	for _, ps := range good {
		prog, isBin, err := ps.resolve()
		if err != nil || isBin || prog == nil {
			t.Errorf("resolve(%+v) = %v, %v, %v", ps, prog, isBin, err)
		}
	}
	bin := ProgramSpec{Type: "binary", Path: "/bin/app", OutputDims: 2}
	if _, isBin, err := bin.resolve(); err != nil || !isBin {
		t.Errorf("binary resolve: %v, %v", isBin, err)
	}
}
