package compman

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"gupt/internal/faultinject"
	"gupt/internal/telemetry"
)

// sampleRequests returns one representative request per Op, with every
// optional sub-message exercised somewhere. These drive the round-trip
// tests, the golden fixtures, and the differential fuzz seeds.
func sampleRequests() map[string]*Request {
	return map[string]*Request{
		"query": {
			Op:      OpQuery,
			Dataset: "census",
			Program: &ProgramSpec{Type: "mean", Col: 2},
			OutputRanges: []RangeSpec{
				{Lo: 0, Hi: 150},
			},
			Epsilon:        0.5,
			BlockSize:      250,
			Gamma:          3,
			Seed:           42,
			DeadlineMillis: 1500,
		},
		"query-helper": {
			Op:          OpQuery,
			Dataset:     "census",
			Program:     &ProgramSpec{Type: "percentile", Col: 1, P: 0.5},
			Mode:        "helper",
			InputRanges: []RangeSpec{{Lo: 0, Hi: 1}, {Lo: -10, Hi: 10}},
			Translate: &TranslateSpec{
				InputDim: []int{1},
				Scale:    []float64{2},
				Offset:   []float64{-1},
			},
			Epsilon:        1.25,
			AutoBlockSize:  true,
			QuantumMillis:  50,
			UserLevel:      true,
			UserColumn:     3,
			PercentileLow:  0.1,
			PercentileHigh: 0.9,
		},
		"query-accuracy": {
			Op:           OpQuery,
			Dataset:      "census",
			Program:      &ProgramSpec{Type: "binary", Path: "/usr/bin/true", Args: []string{"-v", "--x=1"}, OutputDims: 2},
			Mode:         "loose",
			OutputRanges: []RangeSpec{{Lo: -1, Hi: 1}, {Lo: 0, Hi: 9}},
			Accuracy:     &AccuracySpec{Rho: 0.9, Confidence: 0.95},
		},
		"budget": {Op: OpBudget, Dataset: "census"},
		"list":   {Op: OpList},
		"stats":  {Op: OpStats},
		"register": {
			Op: OpRegister,
			Register: &RegisterSpec{
				Name:         "tbl",
				Rows:         [][]float64{{1, 2}, {3, 4}, {5, 6}},
				Columns:      []string{"a", "b"},
				TotalBudget:  10,
				Ranges:       []RangeSpec{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 10}},
				AgedFraction: 0.25,
				Seed:         9,
			},
		},
		"session": {
			Op:      OpSession,
			Dataset: "census",
			Session: &SessionSpec{
				TotalEpsilon: 2,
				Queries: []SessionQuery{
					{
						Program:      ProgramSpec{Type: "mean", Col: 0},
						OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
						BlockSize:    100,
						Gamma:        2,
						Seed:         5,
					},
					{
						Program:      ProgramSpec{Type: "logreg", FeatureDims: 4, LabelCol: 4, Iters: 20, LearnRate: 0.1, Seed: 1},
						OutputRanges: []RangeSpec{{Lo: -5, Hi: 5}},
					},
				},
			},
		},
		"quantum": {Op: OpQuantum},
	}
}

func sampleResponses() map[string]*Response {
	return map[string]*Response{
		"ok": {
			OK:              true,
			TraceID:         "0123456789abcdef0123456789abcdef",
			Output:          []float64{41.5, -2.25},
			EpsilonSpent:    0.5,
			EpsilonCharged:  0.5,
			EffectiveRanges: []RangeSpec{{Lo: 12, Hi: 71}},
			NumBlocks:       20,
			BlockSize:       250,
			FailedBlocks:    1,
		},
		"error": {
			Error:          "budget exhausted",
			EpsilonCharged: 0.25,
		},
		"stats": {
			OK: true,
			Stats: &ServerStats{
				QueriesOK:         3,
				QueriesFailed:     1,
				BudgetRefusals:    2,
				QueriesAborted:    1,
				QueriesDegraded:   1,
				BlocksSubstituted: 4,
				QueryRetries:      2,
				TotalQueryMillis:  1234,
			},
		},
		"list": {OK: true, Remaining: 7.5, Datasets: []string{"census", "trips"}},
		"session": {
			OK:             true,
			EpsilonCharged: 2,
			Session: []SessionResult{
				{Output: []float64{1.5}, EpsilonSpent: 1.25},
				{Error: "chamber died", EpsilonSpent: 0.75, FailedBlocks: 3},
			},
		},
	}
}

func sampleWorkRequest() *WorkRequest {
	return &WorkRequest{
		Spec: WorkSpec{
			Program:       ProgramSpec{Type: "mean", Col: 1},
			QuantumMillis: 25,
			TraceID:       "0123456789abcdef0123456789abcdef",
		},
		Block: [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}},
	}
}

func sampleWorkResponse() *WorkResponse {
	return &WorkResponse{
		Output:  []float64{4.5, 5.5, 6.5},
		TraceID: "0123456789abcdef0123456789abcdef",
		Spans: []telemetry.RemoteSpan{
			{Stage: telemetry.StageWorkerSetup, Status: telemetry.StatusOK, Millis: 0.25},
			{Stage: telemetry.StageWorkerExecute, Status: telemetry.StatusOK, Millis: 12.5},
		},
	}
}

// TestWireRoundTrip checks every sample message survives a binary
// encode/decode unchanged.
func TestWireRoundTrip(t *testing.T) {
	for name, req := range sampleRequests() {
		frame, err := AppendRequestFrame(nil, req)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, n, err := DecodeRequestFrame(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if n != len(frame) {
			t.Errorf("%s: consumed %d of %d frame bytes", name, n, len(frame))
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, req)
		}
	}
	for name, resp := range sampleResponses() {
		frame, err := AppendResponseFrame(nil, resp)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, _, err := DecodeResponseFrame(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, resp)
		}
	}
	wreq := sampleWorkRequest()
	frame, err := AppendWorkRequestFrame(nil, wreq)
	if err != nil {
		t.Fatal(err)
	}
	gotReq, _, err := DecodeWorkRequestFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, wreq) {
		t.Errorf("work request mismatch:\n got %+v\nwant %+v", gotReq, wreq)
	}
	wresp := sampleWorkResponse()
	frame, err = AppendWorkResponseFrame(nil, wresp)
	if err != nil {
		t.Fatal(err)
	}
	gotResp, _, err := DecodeWorkResponseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, wresp) {
		t.Errorf("work response mismatch:\n got %+v\nwant %+v", gotResp, wresp)
	}
}

// TestWireRoundTripNonFinite checks NaN and ±Inf survive the binary wire
// bit-exactly (JSON cannot carry them at all). DeepEqual rejects NaN, so
// stability is asserted on the canonical frame bytes.
func TestWireRoundTripNonFinite(t *testing.T) {
	resp := &Response{
		OK:     true,
		Output: []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
	}
	frame, err := AppendResponseFrame(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeResponseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range resp.Output {
		if math.Float64bits(got.Output[i]) != math.Float64bits(want) {
			t.Errorf("output[%d]: bits %x, want %x", i, math.Float64bits(got.Output[i]), math.Float64bits(want))
		}
	}
	again, err := AppendResponseFrame(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Error("non-finite response has no stable canonical frame")
	}
}

// TestWireEmptyNormalization checks the binary decoder mirrors the JSON
// wire's omitempty semantics: zero-length collections decode to nil.
func TestWireEmptyNormalization(t *testing.T) {
	req := &Request{
		Op:           OpQuery,
		OutputRanges: []RangeSpec{},
		Register: &RegisterSpec{
			Rows:    [][]float64{},
			Columns: []string{},
		},
	}
	frame, err := AppendRequestFrame(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeRequestFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.OutputRanges != nil || got.Register.Rows != nil || got.Register.Columns != nil {
		t.Errorf("empty collections must decode nil, got %+v", got)
	}
}

// TestWireBinaryQuery runs a real query over the binary wire — the only
// wire left after the JSON fallback's one-release window closed.
func TestWireBinaryQuery(t *testing.T) {
	_, srv := startServer(t, 100)
	client, err := DialVersion(srv.Addr().String(), LatestWireVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if v := client.WireVersion(); v != LatestWireVersion {
		t.Fatalf("negotiated version %d, want %d", v, LatestWireVersion)
	}
	resp, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(resp.Output) != 1 || math.IsNaN(resp.Output[0]) {
		t.Errorf("output = %v", resp.Output)
	}
	if err := client.Ping(); err != nil {
		t.Errorf("ping after query: %v", err)
	}
	rem, err := client.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-99.5) > 1e-9 {
		t.Errorf("remaining budget %v, want 99.5", rem)
	}
}

// TestWireJSONRetired covers every party to the retired version-0 wire:
// a caller pinning version 0 is refused locally, a server facing a legacy
// JSON client answers with one terminal JSON error line naming the reason,
// and a pool facing a legacy JSON worker fails construction with
// ErrPeerTooOld and the worker's address.
func TestWireJSONRetired(t *testing.T) {
	t.Run("client-pin-refused", func(t *testing.T) {
		_, srv := startServer(t, 100)
		_, err := DialVersion(srv.Addr().String(), WireVersionJSON)
		if !errors.Is(err, ErrWireNegotiation) {
			t.Errorf("DialVersion(0) error = %v, want ErrWireNegotiation", err)
		}
	})
	t.Run("pool-pin-refused", func(t *testing.T) {
		_, srv := startServer(t, 100)
		_, err := NewWorkerPoolVersion([]string{srv.Addr().String()}, WireVersionJSON)
		if !errors.Is(err, ErrWireNegotiation) {
			t.Errorf("NewWorkerPoolVersion(0) error = %v, want ErrWireNegotiation", err)
		}
	})
	t.Run("legacy-json-client", func(t *testing.T) {
		// A pre-binary client opens with a bare JSON request line. The server
		// must answer with exactly one JSON error line — the only bytes the
		// old release can parse — and then close.
		_, srv := startServer(t, 100)
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(`{"op":"ping"}` + "\n")); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		r := bufio.NewReader(conn)
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading farewell line: %v", err)
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("farewell is not JSON: %v (%q)", err, line)
		}
		if resp.OK || !strings.Contains(resp.Error, "retired") {
			t.Errorf("farewell = %+v, want an error naming the retired wire", resp)
		}
		if _, err := r.ReadByte(); err != io.EOF {
			t.Errorf("server kept talking after the farewell (err=%v); must close", err)
		}
	})
	t.Run("version-zero-hello", func(t *testing.T) {
		// A structurally valid hello offering version 0 is a well-built peer
		// that is merely too old; it gets the same JSON farewell.
		_, srv := startServer(t, 100)
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(wireHello(WireVersionJSON)); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		r := bufio.NewReader(conn)
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading farewell line: %v", err)
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("farewell is not JSON: %v (%q)", err, line)
		}
		if !strings.Contains(resp.Error, "retired") {
			t.Errorf("farewell = %+v, want an error naming the retired wire", resp)
		}
		if _, err := r.ReadByte(); err != io.EOF {
			t.Errorf("server kept talking after the farewell (err=%v); must close", err)
		}
	})
	t.Run("legacy-json-worker", func(t *testing.T) {
		// A fake pre-binary worker reads the pool's hello as a garbled JSON
		// line and answers with a JSON error. Pool construction must fail
		// with ErrPeerTooOld naming the worker.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			hello := make([]byte, WireHelloLen)
			if _, err := io.ReadFull(conn, hello); err != nil {
				return
			}
			_, _ = conn.Write([]byte(`{"error":"parsing request: invalid character '\\xb1'"}` + "\n"))
		}()
		_, err = NewWorkerPool([]string{l.Addr().String()})
		if !errors.Is(err, ErrPeerTooOld) {
			t.Fatalf("pool error = %v, want ErrPeerTooOld", err)
		}
		if !strings.Contains(err.Error(), l.Addr().String()) {
			t.Errorf("pool error %q does not name the stale worker %s", err, l.Addr())
		}
	})
}

// TestWorkerPoolChaos runs the binary pool↔worker wire through the
// faultinject wire-chaos proxy: the proxy must relay frames unit-by-unit,
// and light injected chaos must surface as redials/substitutions, never as
// corrupted outputs or broken ledger accounting.
func TestWorkerPoolChaos(t *testing.T) {
	worker := NewWorker(WorkerConfig{})
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go worker.Serve(wl)
	t.Cleanup(func() { worker.Close() })

	proxy := &faultinject.Proxy{
		Upstream: wl.Addr().String(),
		Schedule: &faultinject.ProtoSchedule{
			Seed: 11,
			Rates: map[faultinject.ProtoFault]float64{
				faultinject.ProtoCorrupt: 0.05,
				faultinject.ProtoStall:   0.05,
			},
			StallFor: time.Millisecond,
		},
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	pool, err := NewWorkerPool([]string{proxy.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	for i := 0; i < 8; i++ {
		chamber := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "mean", Col: 0}}, nil)
		out, err := chamber.Execute(contextWithTimeout(t, 5*time.Second), workerBlock(5))
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if len(out) != 1 || out[0] != 2 {
			t.Errorf("block %d: remote mean = %v, want [2]", i, out)
		}
	}
}

// TestWireNegotiationFailClosed covers the garbled-handshake paths: every
// reply a client cannot prove is a valid downgrade echo terminates the
// connection (a recognizably JSON reply is the distinct ErrPeerTooOld),
// and a server that sees a mangled hello drops the client instead of
// guessing a wire.
func TestWireNegotiationFailClosed(t *testing.T) {
	t.Run("client-garbage-reply", func(t *testing.T) {
		checkClientRejects(t, []byte("XYZ garbage\n"))
	})
	t.Run("client-upward-version", func(t *testing.T) {
		checkClientRejects(t, wireHello(LatestWireVersion+1))
	})
	t.Run("client-mangled-echo", func(t *testing.T) {
		checkClientRejects(t, []byte{WireMagic, 'G', 'X', 1, '\n'})
	})
	t.Run("client-truncated-reply", func(t *testing.T) {
		// The fake server closes after 2 bytes; the client must error, not
		// fall back to JSON on a half-read echo.
		checkClientRejects(t, []byte{WireMagic, 'G'})
	})
	t.Run("client-json-reply", func(t *testing.T) {
		// Any JSON reply to our hello identifies a pre-binary server: that is
		// ErrPeerTooOld (upgrade the peer), not a garbled handshake.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			hello := make([]byte, WireHelloLen)
			if _, err := io.ReadFull(conn, hello); err != nil {
				return
			}
			_, _ = conn.Write([]byte("{not json}\n"))
		}()
		_, err = DialVersion(l.Addr().String(), LatestWireVersion)
		if !errors.Is(err, ErrPeerTooOld) {
			t.Errorf("negotiation error = %v, want ErrPeerTooOld", err)
		}
	})

	serverCases := map[string][]byte{
		"server-mangled-hello":   {WireMagic, 'G', 'X', 1, '\n'},
		"server-unterminated":    {WireMagic, 'G', 'W', 1, 'x'},
		"server-truncated-hello": {WireMagic, 'G'},
	}
	for name, hello := range serverCases {
		t.Run(name, func(t *testing.T) {
			_, srv := startServer(t, 100)
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(hello); err != nil {
				t.Fatal(err)
			}
			if len(hello) < WireHelloLen {
				// Half a hello then EOF: the server must fail closed on the
				// truncated handshake.
				tc := conn.(*net.TCPConn)
				tc.CloseWrite()
			}
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := bufio.NewReader(conn).ReadByte(); err != io.EOF {
				t.Errorf("server answered a garbled hello (err=%v); must close", err)
			}
		})
	}
}

// checkClientRejects dials a fake server that answers the client's hello
// with the given bytes and asserts negotiation fails closed.
func checkClientRejects(t *testing.T, reply []byte) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hello := make([]byte, WireHelloLen)
		if _, err := io.ReadFull(conn, hello); err != nil {
			return
		}
		_, _ = conn.Write(reply)
	}()
	_, err = DialVersion(l.Addr().String(), LatestWireVersion)
	if !errors.Is(err, ErrWireNegotiation) {
		t.Errorf("negotiation error = %v, want ErrWireNegotiation", err)
	}
	<-done
}

// TestWireFrameCorruptionFailsClosed checks a binary connection is torn
// down on the first bad frame rather than resynchronized by guesswork.
func TestWireFrameCorruptionFailsClosed(t *testing.T) {
	_, srv := startServer(t, 100)
	client, err := DialVersion(srv.Addr().String(), LatestWireVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.WireVersion() != LatestWireVersion {
		t.Fatalf("negotiated %d, want latest binary", client.WireVersion())
	}
	frame, err := AppendRequestFrame(nil, &Request{Op: OpQuantum})
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xFF // corrupt the payload under an unchanged CRC
	if _, err := client.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = client.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.r.ReadByte(); err != io.EOF {
		t.Errorf("server answered a corrupt frame (err=%v); must close", err)
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
