package compman

import (
	"bytes"
	"encoding/json"
	"testing"

	"gupt/internal/telemetry"
)

// FuzzWireEquivalence is the binary wire's differential lockdown: any
// frame the binary decoder accepts must (a) re-encode to a stable
// canonical frame, and (b) when the message is JSON-representable, decode
// to the semantically identical message through the JSON wire. Semantic
// identity is asserted on canonical binary frames, which compare NaN
// payloads and -0.0 bit-exactly where DeepEqual cannot. Messages JSON
// cannot carry (non-finite floats — json.Marshal refuses them) are held to
// the binary-only half of the property.
//
// The corpus seeds every message kind with every Op, including the
// trace-context fields (Response.TraceID, WorkSpec.TraceID,
// WorkResponse.Spans), plus framing edge cases.
func FuzzWireEquivalence(f *testing.F) {
	for _, req := range sampleRequests() {
		if frame, err := AppendRequestFrame(nil, req); err == nil {
			f.Add(frame)
		}
	}
	for _, resp := range sampleResponses() {
		if frame, err := AppendResponseFrame(nil, resp); err == nil {
			f.Add(frame)
		}
	}
	if frame, err := AppendWorkRequestFrame(nil, sampleWorkRequest()); err == nil {
		f.Add(frame)
	}
	if frame, err := AppendWorkResponseFrame(nil, sampleWorkResponse()); err == nil {
		f.Add(frame)
	}
	// Framing edge cases: empty input, torn header, zero-length frame with
	// a valid CRC, declared length past the buffer, garbage.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 1})
	f.Add([]byte("!!not-a-frame-at-all!!\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, _, err := DecodeRequestFrame(data); err == nil {
			canon := mustFrame(t, "request", func(dst []byte) ([]byte, error) { return AppendRequestFrame(dst, req) })
			checkBinaryStable(t, "request", canon, func(b []byte) (any, error) {
				m, _, err := DecodeRequestFrame(b)
				return m, err
			}, func(m any, dst []byte) ([]byte, error) { return AppendRequestFrame(dst, m.(*Request)) })
			checkJSONLeg(t, "request", req, canon, func(line []byte) (any, error) {
				return DecodeRequest(line)
			}, func(m any, dst []byte) ([]byte, error) { return AppendRequestFrame(dst, m.(*Request)) })
		}
		if resp, _, err := DecodeResponseFrame(data); err == nil {
			canon := mustFrame(t, "response", func(dst []byte) ([]byte, error) { return AppendResponseFrame(dst, resp) })
			checkBinaryStable(t, "response", canon, func(b []byte) (any, error) {
				m, _, err := DecodeResponseFrame(b)
				return m, err
			}, func(m any, dst []byte) ([]byte, error) { return AppendResponseFrame(dst, m.(*Response)) })
			checkJSONLeg(t, "response", resp, canon, func(line []byte) (any, error) {
				return DecodeResponse(line)
			}, func(m any, dst []byte) ([]byte, error) { return AppendResponseFrame(dst, m.(*Response)) })
		}
		if wreq, _, err := DecodeWorkRequestFrame(data); err == nil {
			canon := mustFrame(t, "work request", func(dst []byte) ([]byte, error) { return AppendWorkRequestFrame(dst, wreq) })
			checkBinaryStable(t, "work request", canon, func(b []byte) (any, error) {
				m, _, err := DecodeWorkRequestFrame(b)
				return m, err
			}, func(m any, dst []byte) ([]byte, error) { return AppendWorkRequestFrame(dst, m.(*WorkRequest)) })
			checkJSONLeg(t, "work request", wreq, canon, func(line []byte) (any, error) {
				return DecodeWorkRequest(line)
			}, func(m any, dst []byte) ([]byte, error) { return AppendWorkRequestFrame(dst, m.(*WorkRequest)) })
		}
		if wresp, _, err := DecodeWorkResponseFrame(data); err == nil {
			canon := mustFrame(t, "work response", func(dst []byte) ([]byte, error) { return AppendWorkResponseFrame(dst, wresp) })
			checkBinaryStable(t, "work response", canon, func(b []byte) (any, error) {
				m, _, err := DecodeWorkResponseFrame(b)
				return m, err
			}, func(m any, dst []byte) ([]byte, error) { return AppendWorkResponseFrame(dst, m.(*WorkResponse)) })
			checkJSONLeg(t, "work response", wresp, canon, func(line []byte) (any, error) {
				return DecodeWorkResponse(line)
			}, func(m any, dst []byte) ([]byte, error) { return AppendWorkResponseFrame(dst, m.(*WorkResponse)) })
			// Wire-origin spans must also survive the trace-merge
			// sanitization boundary, same as the JSON fuzz target.
			tr := telemetry.NewTrace(nil, "fuzz", "ds")
			tr.AddRemoteSpans("worker:fuzz", wresp.Spans)
			_ = tr.String()
		}
	})
}

// mustFrame encodes an accepted message; a decoder must never accept a
// message its encoder refuses.
func mustFrame(t *testing.T, what string, enc func([]byte) ([]byte, error)) []byte {
	t.Helper()
	frame, err := enc(nil)
	if err != nil {
		t.Fatalf("accepted %s does not re-encode: %v", what, err)
	}
	return frame
}

// checkBinaryStable asserts decode∘encode is the identity on canonical
// frames: the second round trip must reproduce the same bytes.
func checkBinaryStable(t *testing.T, what string, canon []byte, dec func([]byte) (any, error), enc func(any, []byte) ([]byte, error)) {
	t.Helper()
	again, err := dec(canon)
	if err != nil {
		t.Fatalf("%s: canonical frame rejected: %v", what, err)
	}
	frame2, err := enc(again, nil)
	if err != nil {
		t.Fatalf("%s: canonical frame does not re-encode: %v", what, err)
	}
	if !bytes.Equal(canon, frame2) {
		t.Fatalf("%s: canonical frame unstable:\n first %x\nsecond %x", what, canon, frame2)
	}
}

// checkJSONLeg routes the message through the legacy JSON wire and asserts
// both wires agree, comparing canonical binary frames. json.Marshal
// refusing the message (non-finite floats) skips the leg: those messages
// simply cannot ride the JSON wire.
func checkJSONLeg(t *testing.T, what string, msg any, canon []byte, jsonDec func([]byte) (any, error), enc func(any, []byte) ([]byte, error)) {
	t.Helper()
	line, err := json.Marshal(msg)
	if err != nil {
		return
	}
	viaJSON, err := jsonDec(line)
	if err != nil {
		t.Fatalf("%s: JSON wire rejected a binary-accepted message: %v\n%s", what, err, line)
	}
	frameJSON, err := enc(viaJSON, nil)
	if err != nil {
		t.Fatalf("%s: JSON-decoded message does not binary-encode: %v", what, err)
	}
	if !bytes.Equal(canon, frameJSON) {
		t.Fatalf("%s: binary and JSON wires disagree:\nbinary %x\n  json %x\n  line %s", what, canon, frameJSON, line)
	}
}
