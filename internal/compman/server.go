package compman

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"gupt/internal/aging"
	"gupt/internal/analytics"
	"gupt/internal/budget"
	"gupt/internal/core"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/qcache"
	"gupt/internal/ratelimit"
	"gupt/internal/sandbox"
	"gupt/internal/telemetry"
	"gupt/internal/telemetry/audit"
	"gupt/internal/tenant"
)

// ServerConfig tunes the trusted server component.
type ServerConfig struct {
	// DefaultQuantum is applied to queries that do not set their own (the
	// hosted platform's timing-attack defense). Zero leaves timing
	// normalization off unless a query requests it.
	DefaultQuantum time.Duration
	// ScratchRoot hosts per-execution scratch directories for subprocess
	// chambers; empty means the OS temp dir.
	ScratchRoot string
	// StatePath, when set, makes the budget ledger durable: the registry's
	// per-dataset spends are journaled there after every successful charge
	// and should be restored (Registry.RestoreBudgets) before serving.
	// Without it, a crash would silently refund all spent privacy budget.
	StatePath string
	// WorkerAddrs lists worker daemons (cmd/gupt-worker) to distribute
	// block executions across — the paper's cluster deployment. Empty
	// keeps execution on the server node.
	WorkerAddrs []string
	// IdleTimeout disconnects clients that send nothing for this long,
	// bounding slow-loris style connection hoarding. Zero disables it.
	IdleTimeout time.Duration
	// BlockTimeout bounds each block execution's wall-clock time from
	// outside the chamber (see core.Options.BlockTimeout): a hung chamber
	// or wedged worker connection costs one substituted block, not the
	// query. Zero disables the per-block deadline.
	BlockTimeout time.Duration
	// QueryTimeout bounds a whole query's execution. A query that exceeds
	// it aborts with its privacy charge consumed — the analyst cannot
	// convert forced slowness into refunded budget (§6.2). Zero disables.
	QueryTimeout time.Duration
	// MaxQueryRetries re-runs the engine up to this many times when a run
	// fails after its charge settled. Retries never re-charge: the ε was
	// spent once, and re-running releases at most one output for it.
	MaxQueryRetries int
	// MaxFailFrac aborts queries whose substituted-block fraction exceeds
	// it (see core.Options.MaxFailFrac). Zero disables the guard.
	MaxFailFrac float64
	// ChamberWrapper, when set, wraps every chamber the server builds —
	// in-process, subprocess and worker-pool alike. This is the fault
	// injection surface (internal/faultinject) and an ops hook for
	// instrumentation; production deployments normally leave it nil.
	ChamberWrapper func(sandbox.Chamber) sandbox.Chamber
	// Logger receives connection-level diagnostics; nil silences them.
	Logger *log.Logger
	// Telemetry is the metrics registry the server instruments into
	// (counters, gauges, bucketed latency histograms). Nil makes the server
	// create a private one; operators who serve an admin endpoint pass a
	// shared registry here (see internal/telemetry and cmd/guptd
	// -admin-addr).
	Telemetry *telemetry.Registry
	// TraceLogger, when set, receives one line per traced query with RAW
	// per-stage durations — the opt-in slow-query trace log. This reopens
	// the §6.3 timing side channel for anyone who can read the log, so it
	// must stay operator-private and off in adversarial deployments; see
	// SECURITY.md before enabling.
	TraceLogger *log.Logger
	// TraceThreshold suppresses trace-log lines for queries faster than
	// this; zero logs every query when TraceLogger is set.
	TraceThreshold time.Duration
	// Audit, when set, receives one tamper-evident record per settled query
	// and session (dataset, ε movements, outcome, trace id, bucketed
	// latency — never outputs or raw durations). When TraceLogger is also
	// set, its raw-duration lines are additionally folded in as explicit
	// unsafe_raw records, so the side-channel exposure is itself on the
	// audit record. Nil disables auditing.
	Audit *audit.Log
	// TraceBufferSize caps the /traces ring buffer of completed query
	// traces; zero means telemetry.DefaultTraceBufferSize.
	TraceBufferSize int
	// FlightRecorderSize caps the /flight ring of recent query flights
	// (bucketed timeline + fan-out attribution + cost per query, including
	// refused queries); zero means telemetry.DefaultFlightRecorderSize.
	FlightRecorderSize int
	// CacheEntries bounds the noisy-answer cache (internal/qcache): repeat
	// queries whose fingerprint matches a previously released answer are
	// served that same answer at zero additional ε. Zero or negative
	// disables caching entirely.
	CacheEntries int
	// CacheTTL expires cached answers this long after release; zero keeps
	// them until evicted. Expiry is memory reclamation, not correctness —
	// the dataset content version inside every fingerprint already makes
	// stale answers unreachable.
	CacheTTL time.Duration
	// Tenants, when set, turns on the multi-tenant front door: every
	// request must carry an API key that resolves to an enabled tenant,
	// dataset access follows the tenant's grants, per-tenant ε quotas layer
	// on top of the global budget, and per-tenant rate limits gate query
	// admission. Nil keeps the single-tenant behavior: no authentication,
	// every request runs as the default principal.
	Tenants *tenant.Registry
	// Sched configures the deadline-aware admission scheduler: bounded
	// query queue, EDF ordering, global/per-dataset/per-tenant concurrency
	// caps, RetryAfterMillis backpressure. The zero value disables it (every
	// query runs immediately, the pre-scheduler behavior).
	Sched SchedConfig
	// WorkerConns bounds concurrent block exchanges per worker host; zero
	// means 1 (one in-flight block per worker). The engine's parallelism is
	// sized to workers × WorkerConns.
	WorkerConns int
	// StragglerAfter, when positive, duplicates a block to the next-ranked
	// worker if its assigned worker has not answered within this duration
	// (first result wins). Zero disables straggler re-dispatch.
	StragglerAfter time.Duration
}

// Server is the trusted computation-manager server. It owns the dataset
// registry and the budget manager; untrusted analyst programs only ever
// see block data inside chambers and the final private outputs.
type Server struct {
	reg      *dataset.Registry
	mgr      *budget.Manager
	cfg      ServerConfig
	pool     *WorkerPool // nil when executing locally
	poolErr  error       // non-nil when WorkerAddrs were set but unreachable
	tel      *telemetry.Registry
	stats    *statsCollector
	traces   *telemetry.TraceBuffer    // completed query traces, for /traces
	inflight *telemetry.Inflight       // live query table, for /queries
	flight   *telemetry.FlightRecorder // recent query flights, for /flight
	plane    *telemetry.BudgetPlane    // ε burn-down rows, for /budget
	cache    *qcache.Cache             // noisy-answer cache; nil when disabled
	limiter  *ratelimit.Limiter        // per-tenant admission gate; nil when tenancy off
	sched    *scheduler                // deadline-aware admission; nil when disabled

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server over the given registry. If cfg.WorkerAddrs is
// set, every worker must be reachable at construction time.
func NewServer(reg *dataset.Registry, cfg ServerConfig) *Server {
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	s := &Server{
		reg:      reg,
		mgr:      budget.NewManager(reg),
		cfg:      cfg,
		tel:      tel,
		stats:    newStatsCollector(tel),
		traces:   telemetry.NewTraceBuffer(cfg.TraceBufferSize),
		inflight: telemetry.NewInflight(tel.Counter("compman.queries_slow")),
		flight:   telemetry.NewFlightRecorder(cfg.FlightRecorderSize),
		plane:    telemetry.NewBudgetPlane(tel),
		cache:    qcache.New(qcache.Config{MaxEntries: cfg.CacheEntries, TTL: cfg.CacheTTL, Telemetry: tel}),
		conns:    make(map[net.Conn]struct{}),
	}
	s.mgr.Instrument(tel)
	s.mgr.SetBurnDown(s.plane)
	// Threshold crossings become tamper-evident audit records: "tenant X
	// fell below a quarter of its quota on Y" is exactly the event an
	// operator wants on the books before exhaustion, not after.
	s.plane.SetOnEvent(func(ev telemetry.BudgetEvent) {
		if s.cfg.Audit == nil {
			return
		}
		err := s.cfg.Audit.Append(audit.Record{
			Type:    audit.TypeBudgetThreshold,
			Dataset: ev.Dataset,
			Tenant:  ev.Tenant,
			Reason:  fmt.Sprintf("remaining_below_%g", ev.Fraction),
			Detail:  fmt.Sprintf("remaining %g of %g", ev.EpsilonRemaining, ev.EpsilonTotal),
		})
		if err != nil {
			s.logf("compman: audit append: %v", err)
		}
	})
	// Seed the burn-down plane's global rows so /budget shows every
	// registered dataset before its first charge.
	for _, name := range reg.Names() {
		if r, err := reg.Lookup(name); err == nil {
			s.plane.Seed("", name, r.Accountant.Spent(), r.Accountant.Total())
		}
	}
	s.sched = newScheduler(cfg.Sched, tel)
	if cfg.Tenants != nil {
		s.mgr.SetQuotas(cfg.Tenants)
		s.limiter = ratelimit.New()
	}
	// The slow-query watchdog flags queries stuck past the deployment's
	// query deadline — the operator's early warning for a wedged worker or
	// chamber before (or without) the timeout abort.
	if cfg.QueryTimeout > 0 {
		s.inflight.StartWatchdog(cfg.QueryTimeout, time.Second)
	}
	if len(cfg.WorkerAddrs) > 0 {
		pool, err := NewWorkerPoolConfig(PoolConfig{
			Addrs:          cfg.WorkerAddrs,
			ConnsPerWorker: cfg.WorkerConns,
			StragglerAfter: cfg.StragglerAfter,
		})
		if err != nil {
			// Fail queries, not the constructor: the operator sees the
			// cause both in the log and on every refused query.
			s.poolErr = err
			s.logf("compman: worker pool unavailable: %v", err)
		} else {
			s.pool = pool
			s.pool.Instrument(tel)
		}
	}
	return s
}

// Registry exposes the server's dataset registry for operator-side
// registration (the data owner's interface).
func (s *Server) Registry() *dataset.Registry { return s.reg }

// Telemetry exposes the server's metrics registry, for serving an admin
// endpoint (telemetry.AdminHandler) or asserting counters in tests.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Traces returns the completed-trace ring buffer's snapshots, newest
// first — the /traces admin endpoint's data source. Durations are
// bucketed (§6.3).
func (s *Server) Traces() []telemetry.TraceSnapshot { return s.traces.Snapshots() }

// LiveQueries returns the in-flight query table (stage + elapsed bucket),
// the /queries admin endpoint's data source.
func (s *Server) LiveQueries() []telemetry.InflightSnapshot { return s.inflight.Snapshots() }

// Flights returns the query flight recorder's ring, newest first — the
// /flight admin endpoint's data source. Every timing inside is bucketed.
func (s *Server) Flights() []telemetry.FlightRecord { return s.flight.Snapshots() }

// BudgetRows returns the ε burn-down plane's rows (remaining budget, EWMA
// burn rate, time-to-exhaustion per tenant/dataset) — the /budget admin
// endpoint's data source.
func (s *Server) BudgetRows() []telemetry.BudgetRow { return s.plane.Rows() }

// CacheStats snapshots the noisy-answer cache's counters — the /cache
// admin endpoint's data source. All zeros when caching is disabled.
func (s *Server) CacheStats() qcache.Stats { return s.cache.Stats() }

// WorkerStats snapshots the per-worker fleet view (in-flight, answered and
// failed counts, health) — the /workers admin endpoint's data source. Nil
// when the server executes locally (no worker pool).
func (s *Server) WorkerStats() []telemetry.WorkerStatus {
	if s.pool == nil {
		return nil
	}
	return s.pool.WorkerStats()
}

// InvalidateCache drops every cached answer for the named dataset,
// returning the count. Mutation paths call it after bumping the dataset's
// content version; the version bump alone already guarantees correctness.
func (s *Server) InvalidateCache(dataset string) int { return s.cache.Invalidate(dataset) }

// Addr returns the address Serve is listening on, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Serve accepts connections on l until Close is called. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("compman: server closed")
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("compman: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.tel.Gauge("compman.connections").Inc()
		go func() {
			defer s.wg.Done()
			defer s.tel.Gauge("compman.connections").Dec()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	if s.pool != nil {
		s.pool.Close()
	}
	s.inflight.Stop()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	// Connect-time handshake: a binary hello selects the framed wire;
	// anything else means a pre-binary JSON client (refused by name with
	// one terminal error line the legacy release can parse) or a garbled
	// hello (dropped silently — fail closed, § wire.go).
	if s.cfg.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	v, err := sniffWire(conn, br, LatestWireVersion)
	if err != nil {
		if errors.Is(err, ErrPeerTooOld) {
			_ = json.NewEncoder(conn).Encode(Response{Error: ErrPeerTooOld.Error()})
		}
		if err != io.EOF {
			s.logf("compman: wire sniff: %v", err)
		}
		return
	}
	s.serveBinary(conn, br, v)
}

// serveBinary is the framed-wire request loop at the negotiated version v.
// Both scratch buffers are checked out of the shared pool once per
// connection and reused for every message; a body-level decode error
// answers like a malformed JSON line, while a frame-level error (bad length
// or CRC) means the stream can no longer be trusted to be in sync and tears
// the connection down. Responses are framed at v, so a v2 client never sees
// the v3 tenant tail; a tenancy-enabled server instead refuses its requests
// at admission (no API key can arrive over v2 — fail closed).
func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader, v uint8) {
	rbuf, wbuf := getWireBuf(), getWireBuf()
	defer putWireBuf(rbuf)
	defer putWireBuf(wbuf)
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		payload, err := readWireFrame(br, rbuf)
		if err != nil {
			if err != io.EOF {
				s.logf("compman: read frame: %v", err)
			}
			return
		}
		var resp Response
		if req, derr := decodePayload(payload, wireMsgRequest, "request", decodeRequestBody); derr != nil {
			resp = Response{Error: derr.Error()}
		} else {
			resp = s.dispatch(req)
		}
		frame, err := AppendResponseFrameV((*wbuf)[:0], &resp, v)
		if err != nil {
			s.logf("compman: encode response: %v", err)
			return
		}
		if _, err := conn.Write(frame); err != nil {
			s.logf("compman: write response: %v", err)
			return
		}
		*wbuf = frame[:0]
	}
}

// dispatch is the front door: authenticate the principal, then route the
// request with tenant-scoped authorization and rate limiting. With tenancy
// off everything runs as the default principal, byte-for-byte the
// single-tenant behavior.
func (s *Server) dispatch(req *Request) Response {
	tenantID, refusal := s.resolveTenant(req)
	if refusal != nil {
		return *refusal
	}
	resp := s.dispatchAs(tenantID, req)
	// The tenant echo confirms to the client which principal the server
	// resolved its key to — an id, never the key.
	resp.Tenant = tenantID
	return resp
}

// resolveTenant authenticates the request's API key. Tenancy off admits
// everything as the default principal (""). Refusals are uniform — absent,
// unknown, and disabled keys all produce the same error — so the front door
// does not confirm which keys exist; a v2 client structurally cannot send a
// key and lands here too.
func (s *Server) resolveTenant(req *Request) (string, *Response) {
	if s.cfg.Tenants == nil {
		return "", nil
	}
	id, err := s.cfg.Tenants.Authenticate(req.APIKey)
	if err != nil {
		s.tel.Counter("tenant.auth_failures").Inc()
		return "", &Response{Error: err.Error()}
	}
	return id, nil
}

// authorizeDataset enforces the tenant's dataset grants. The refusal does
// not distinguish "no such dataset" from "not granted": an ungranted tenant
// must not be able to probe the dataset namespace.
func (s *Server) authorizeDataset(tenantID, datasetName string) *Response {
	if s.cfg.Tenants == nil {
		return nil
	}
	if s.cfg.Tenants.Authorized(tenantID, datasetName) {
		return nil
	}
	s.tel.Counter("tenant.authz_refusals").Inc()
	return &Response{Error: fmt.Sprintf("tenant %q is not authorized for dataset %q", tenantID, datasetName)}
}

// admit passes the request through the tenant's rate-limit policy. The
// release func must be called when the query finishes (it frees the
// concurrency slot); a rejection carries the retry hint and has cost
// nothing — no charge was attempted, no ε moved.
func (s *Server) admit(tenantID string) (release func(), retryAfter time.Duration, ok bool) {
	if s.limiter == nil {
		return func() {}, 0, true
	}
	info, found := s.cfg.Tenants.Get(tenantID)
	if !found {
		return func() {}, 0, true // authenticated but racing a removal; let authz decide
	}
	lim := ratelimit.Limits{QPS: info.RateQPS, Burst: info.RateBurst, MaxInflight: info.MaxInflight}
	release, retryAfter, ok = s.limiter.Acquire(tenantID, lim)
	if !ok {
		s.tel.Counter("tenant.rate_limited").Inc()
		s.tel.Counter("tenant.rate_limited." + tenantID).Inc()
	}
	return release, retryAfter, ok
}

// rateLimited builds the zero-ε rejection for a rate-limit refusal and
// audits it (with the reason and retry hint): rejections are part of the
// query record even though no budget moved, so a flood shows up in the
// books. When the caller started a trace, the refusal gets a span, a ring
// entry and a flight record too — refused queries are observable queries.
func (s *Server) rateLimited(tenantID, datasetName string, retryAfter time.Duration, tr *telemetry.Trace) Response {
	resp := Response{
		Error:            "rate limited: tenant " + tenantID + " over its admission policy",
		RetryAfterMillis: maxInt64(retryAfter.Milliseconds(), 1),
		TraceID:          traceIDOrNew(tr),
	}
	tr.StartSpan(telemetry.StageSchedDecision).End("rate_limited")
	s.auditRefusalAs(tenantID, datasetName, &resp, "rate_limited", "rate_limited")
	s.recordRefusedTrace(tr, "rate_limited", "rate_limited", resp.RetryAfterMillis)
	return resp
}

// traceIDOrNew returns the trace's id, minting a bare one for paths that
// run untraced (sessions, direct tests).
func traceIDOrNew(tr *telemetry.Trace) string {
	if tr != nil {
		return tr.ID
	}
	return telemetry.NewTraceID()
}

// recordRefusedTrace publishes a refused query's trace to the ring and the
// flight recorder, so a refusal is as observable as a served query.
func (s *Server) recordRefusedTrace(tr *telemetry.Trace, outcome, reason string, retryAfterMillis int64) {
	if tr == nil {
		return
	}
	s.traces.Add(tr, outcome)
	s.flight.Record(tr, outcome, telemetry.FlightExtra{
		Reason:           reason,
		RetryAfterMillis: retryAfterMillis,
	})
}

// schedule passes the request through the deadline-aware scheduler. A nil
// second return means the query was admitted and holds a slot until
// release is called; otherwise the refusal response is final — built and
// audited here (reason and retry hint included), always before any ε
// moved. The returned deadline is the absolute answer-by time derived from
// req.DeadlineMillis (zero when the client set none); execution must not
// outlive it.
//
// tr, when non-nil, gets the scheduler's self-observation spans: a
// sched.queue span covering the time spent in the admission queue and a
// sched.decision span whose status carries the verdict. Refusals publish
// the trace to the ring and flight recorder before returning.
func (s *Server) schedule(ctx context.Context, tenantID string, req *Request, tr *telemetry.Trace) (release func(), deadline time.Time, refusal *Response) {
	if req.DeadlineMillis > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}
	queue := tr.StartSpan(telemetry.StageSchedQueue)
	release, retryAfter, verdict := s.sched.admit(ctx, req.Dataset, tenantID, deadline)
	queue.End(telemetry.StatusOK)
	decision := tr.StartSpan(telemetry.StageSchedDecision)
	switch verdict {
	case schedAdmitted:
		decision.End(telemetry.StatusOK)
		// Deadline slack at admission — how much headroom admitted queries
		// actually have — feeds a bucketed histogram (§6.3: counts only).
		if !deadline.IsZero() {
			slack := time.Until(deadline)
			if slack < 0 {
				slack = 0
			}
			s.tel.Histogram("compman.sched.deadline_slack.millis", telemetry.DefaultLatencyBuckets).Observe(slack)
		}
		return release, deadline, nil
	case schedBusy:
		decision.End(telemetry.StatusRefusedBusy)
		resp := Response{
			Error:            "server overloaded: query queue is full",
			RetryAfterMillis: maxInt64(retryAfter.Milliseconds(), 1),
			TraceID:          traceIDOrNew(tr),
		}
		s.stats.recordOverloaded()
		s.auditRefusalAs(tenantID, req.Dataset, &resp, "overloaded", "queue_full")
		s.recordRefusedTrace(tr, "overloaded", "queue_full", resp.RetryAfterMillis)
		return nil, deadline, &resp
	case schedExpired:
		decision.End(telemetry.StatusRefusedExpired)
		resp := Response{
			Error:            "deadline unmeetable: query would expire before a slot frees up",
			RetryAfterMillis: maxInt64(retryAfter.Milliseconds(), 1),
			TraceID:          traceIDOrNew(tr),
		}
		s.stats.recordOverloaded()
		s.auditRefusalAs(tenantID, req.Dataset, &resp, "overloaded", "deadline_unmeetable")
		s.recordRefusedTrace(tr, "overloaded", "deadline_unmeetable", resp.RetryAfterMillis)
		return nil, deadline, &resp
	default: // schedCancelled: the connection went away; the response is unsendable
		decision.End(telemetry.StatusCancelled)
		resp := Response{Error: "query cancelled while queued", TraceID: traceIDOrNew(tr)}
		// The client cannot see this response, but the books still should:
		// a cancelled-while-queued query is a scheduler refusal too.
		s.auditRefusalAs(tenantID, req.Dataset, &resp, "cancelled", "cancelled_while_queued")
		s.recordRefusedTrace(tr, "cancelled", "cancelled_while_queued", 0)
		return nil, deadline, &resp
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (s *Server) dispatchAs(tenantID string, req *Request) Response {
	switch req.Op {
	case OpQuantum:
		return Response{OK: true}
	case OpList:
		names := s.reg.Names()
		if s.cfg.Tenants != nil && !s.cfg.Tenants.IsAdmin(tenantID) {
			granted := names[:0]
			for _, n := range names {
				if s.cfg.Tenants.Authorized(tenantID, n) {
					granted = append(granted, n)
				}
			}
			names = granted
		}
		return Response{OK: true, Datasets: names}
	case OpStats:
		snap := s.stats.snapshot()
		return Response{OK: true, Stats: &snap}
	case OpRegister:
		// Dataset registration is the data-owner interface: admin-only under
		// tenancy. Grants do not apply — they authorize querying, not
		// (re)defining datasets.
		if s.cfg.Tenants != nil && !s.cfg.Tenants.IsAdmin(tenantID) {
			s.tel.Counter("tenant.authz_refusals").Inc()
			return Response{Error: fmt.Sprintf("tenant %q is not authorized to register datasets", tenantID)}
		}
		return s.handleRegister(req)
	case OpSession:
		if refusal := s.authorizeDataset(tenantID, req.Dataset); refusal != nil {
			return *refusal
		}
		releaseSlot, retryAfter, ok := s.admit(tenantID)
		if !ok {
			return s.rateLimited(tenantID, req.Dataset, retryAfter, nil)
		}
		defer releaseSlot()
		schedRelease, deadline, refusal := s.schedule(context.Background(), tenantID, req, nil)
		if refusal != nil {
			return *refusal
		}
		defer schedRelease()
		start := time.Now()
		resp := s.handleSession(req, tenantID, deadline)
		resp.TraceID = telemetry.NewTraceID()
		s.auditRecordAs(tenantID, req.Dataset, &resp, sessionOutcome(&resp), time.Since(start))
		return resp
	case OpBudget:
		if refusal := s.authorizeDataset(tenantID, req.Dataset); refusal != nil {
			return *refusal
		}
		rem, err := s.mgr.Remaining(req.Dataset)
		if err != nil {
			return errResponse(err)
		}
		return Response{OK: true, Remaining: rem}
	case OpQuery:
		if refusal := s.authorizeDataset(tenantID, req.Dataset); refusal != nil {
			return *refusal
		}
		// The trace id is a random 128-bit hex string: unique across
		// restarts and instances, operator-meaningful for correlation,
		// never derived from analyst input. It propagates to the workers
		// over the WorkSpec and comes back to the analyst on the response.
		// The trace starts BEFORE admission so refused queries get traces
		// too — a refusal's trace carries its sched.queue/sched.decision
		// spans and lands in the ring and the flight recorder.
		tr := telemetry.NewTrace(s.tel, telemetry.NewTraceID(), req.Dataset)
		tr.Tenant = tenantID
		releaseSlot, retryAfter, ok := s.admit(tenantID)
		if !ok {
			return s.rateLimited(tenantID, req.Dataset, retryAfter, tr)
		}
		defer releaseSlot()
		schedRelease, deadline, refusal := s.schedule(context.Background(), tenantID, req, tr)
		if refusal != nil {
			return *refusal
		}
		defer schedRelease()
		start := time.Now()
		inflight := s.tel.Gauge("compman.queries_inflight")
		inflight.Inc()
		live := s.inflight.BeginTenant(tr.ID, req.Dataset, tenantID)
		tr.OnStage = live.SetStage
		resp := s.handleQuery(req, tenantID, tr, deadline)
		live.End()
		inflight.Dec()
		resp.TraceID = tr.ID
		outcome := queryOutcome(&resp)
		if resp.OK {
			s.stats.recordOK(time.Since(start))
			if resp.FailedBlocks > 0 {
				s.stats.recordDegraded(resp.FailedBlocks)
			}
		} else {
			s.stats.recordFailure(
				strings.Contains(resp.Error, dp.ErrBudgetExhausted.Error()),
				resp.EpsilonCharged > 0)
		}
		s.traces.Add(tr, outcome)
		s.flight.Record(tr, outcome, telemetry.FlightExtra{
			EpsilonCharged: resp.EpsilonCharged,
			Blocks:         resp.NumBlocks,
		})
		s.auditRecordAs(tenantID, req.Dataset, &resp, outcome, tr.Elapsed())
		s.logTrace(tr)
		return resp
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func errResponse(err error) Response { return Response{Error: err.Error()} }

// queryOutcome classifies a query response into the audit/trace outcome
// vocabulary: ok, cache_hit (a previously released answer re-served at
// zero ε), degraded (answered with substituted blocks), budget_refused
// (refused before any charge), aborted (failed with its charge consumed —
// the §6.2 posture), or error.
func queryOutcome(resp *Response) string {
	switch {
	case resp.OK && resp.CacheHit:
		return "cache_hit"
	case resp.OK && resp.FailedBlocks > 0:
		return "degraded"
	case resp.OK:
		return "ok"
	case strings.Contains(resp.Error, dp.ErrBudgetExhausted.Error()):
		return "budget_refused"
	case resp.EpsilonCharged > 0:
		return "aborted"
	default:
		return "error"
	}
}

// sessionOutcome classifies a session response; a session whose batch ran
// with some member failures is degraded, not failed (its ε was charged
// atomically up front).
func sessionOutcome(resp *Response) string {
	if !resp.OK {
		if strings.Contains(resp.Error, dp.ErrBudgetExhausted.Error()) {
			return "budget_refused"
		}
		return "error"
	}
	if resp.CacheHit {
		return "cache_hit"
	}
	for _, r := range resp.Session {
		if r.Error != "" || r.FailedBlocks > 0 {
			return "degraded"
		}
	}
	return "ok"
}

// auditRecordAs appends one tamper-evident record for a settled query,
// session, or rate-limit rejection, attributed to the tenant that ran it
// ("" = single-tenant mode; the field is then omitted, keeping pre-tenancy
// chains byte-identical). Append failures are logged, not fatal, same
// stance as journalBudgets: refusing queries on a disk error would be a
// denial-of-service lever.
func (s *Server) auditRecordAs(tenantID, dataset string, resp *Response, outcome string, elapsed time.Duration) {
	if s.cfg.Audit == nil {
		return
	}
	err := s.cfg.Audit.Append(audit.Record{
		Type:                audit.TypeQuery,
		TraceID:             resp.TraceID,
		Dataset:             dataset,
		Tenant:              tenantID,
		Outcome:             outcome,
		EpsilonCharged:      resp.EpsilonCharged,
		Blocks:              resp.NumBlocks,
		LatencyBucketMillis: telemetry.BucketUpperMillis(float64(elapsed)/float64(time.Millisecond), telemetry.DefaultLatencyBuckets),
	})
	if err != nil {
		s.logf("compman: audit append: %v", err)
	}
}

// auditRefusalAs is auditRecordAs for refusals: no latency bucket (nothing
// ran), but the machine-readable reason and the retry hint the client was
// given, so `gupt-cli audit verify` replay sees every refusal with enough
// context to explain it.
func (s *Server) auditRefusalAs(tenantID, dataset string, resp *Response, outcome, reason string) {
	if s.cfg.Audit == nil {
		return
	}
	err := s.cfg.Audit.Append(audit.Record{
		Type:             audit.TypeQuery,
		TraceID:          resp.TraceID,
		Dataset:          dataset,
		Tenant:           tenantID,
		Outcome:          outcome,
		Reason:           reason,
		RetryAfterMillis: resp.RetryAfterMillis,
	})
	if err != nil {
		s.logf("compman: audit append: %v", err)
	}
}

// logTrace emits the opt-in slow-query trace line. Raw per-stage durations
// leave the process ONLY through this path, and only when the operator
// explicitly configured TraceLogger — see SECURITY.md on why that log is
// unsafe to expose to adversarial analysts. When the audit log is enabled
// too, the same line is folded in as an explicit unsafe_raw record, so the
// side-channel exposure is itself tamper-evidently recorded.
func (s *Server) logTrace(tr *telemetry.Trace) {
	if s.cfg.TraceLogger == nil || tr == nil {
		return
	}
	if elapsed := tr.Elapsed(); elapsed < s.cfg.TraceThreshold {
		return
	}
	line := tr.String()
	s.cfg.TraceLogger.Printf("%s", line)
	if s.cfg.Audit != nil {
		err := s.cfg.Audit.Append(audit.Record{
			Type:      audit.TypeUnsafeTrace,
			TraceID:   tr.ID,
			Dataset:   tr.Dataset,
			UnsafeRaw: true,
			Detail:    line,
		})
		if err != nil {
			s.logf("compman: audit append: %v", err)
		}
	}
}

// handleQuery is the trusted query path: resolve program and ranges, settle
// the privacy charge against the platform-owned ledger, then run the
// engine. The budget is charged before execution so an analyst cannot
// observe partial results of a query that would overdraw.
//
// tenantID is the authenticated principal ("" = single-tenant mode): it
// partitions the answer cache, attributes the ledger charge, and layers the
// tenant's quota over the global budget. tr records the query's lifecycle
// spans (admission → budget → engine stages → release); it may be nil in
// direct tests. deadline is the client's absolute answer-by time (zero:
// none); the engine run is bounded by it on top of the server's own
// QueryTimeout.
func (s *Server) handleQuery(req *Request, tenantID string, tr *telemetry.Trace, deadline time.Time) Response {
	// Admission covers everything before the charge: dataset resolution,
	// program and range validation, chamber selection, block-size planning.
	// End keeps only its first call, so the deferred error status fires
	// only when an early return skips the explicit ok below.
	admission := tr.StartSpan(telemetry.StageAdmission)
	defer admission.End(telemetry.StatusError)

	reg, err := s.reg.Lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	if req.Program == nil {
		return Response{Error: "query missing program"}
	}

	// Noisy-answer cache: a repeat of a previously released query — same
	// distribution-relevant fields, same dataset content version — is
	// answered with the *same* already-published release at zero additional
	// ε (DP is closed under post-processing). The hit is journaled as a
	// cache_hit ledger record so the books show the re-release, but the
	// accountant is never debited. Blocks are never scheduled on this path.
	fp := queryFingerprint(req, tenantID, reg.ContentVersion())
	if cached, ok := s.cache.Get(fp); ok {
		resp := cached.(Response)
		resp.CacheHit = true
		resp.EpsilonCharged = 0
		if err := s.mgr.CacheHitAs(tenantID, req.Dataset, fmt.Sprintf("%s:%s", req.Dataset, req.Program.Type)); err != nil {
			s.logf("compman: recording cache hit: %v", err)
		}
		admission.End(telemetry.StatusOK)
		return resp
	}

	program, isBinary, err := req.Program.resolve()
	if err != nil {
		return errResponse(err)
	}
	outputDims := req.Program.OutputDims
	if !isBinary {
		outputDims = program.OutputDims()
	}

	spec, err := s.buildRangeSpec(req, reg, outputDims)
	if err != nil {
		return errResponse(err)
	}

	opts := core.Options{
		BlockSize:    req.BlockSize,
		Gamma:        req.Gamma,
		Seed:         req.Seed,
		Quantum:      s.cfg.DefaultQuantum,
		BlockTimeout: s.cfg.BlockTimeout,
		MaxFailFrac:  s.cfg.MaxFailFrac,
		UserLevel:    req.UserLevel,
		UserColumn:   req.UserColumn,
	}
	if req.QuantumMillis > 0 {
		opts.Quantum = time.Duration(req.QuantumMillis) * time.Millisecond
	}
	if isBinary {
		// Uploaded executables always run under subprocess isolation; the
		// in-process path is reserved for the platform's own library.
		path, args := req.Program.Path, req.Program.Args
		program = binaryProgram{spec: *req.Program}
		opts.NewChamber = func(_ analytics.Program, pol sandbox.Policy) sandbox.Chamber {
			return &sandbox.Subprocess{Path: path, Args: args, Policy: pol, ScratchRoot: s.cfg.ScratchRoot}
		}
	}

	// Cluster execution: fan the blocks out over the worker daemons. The
	// workers resolve the same program spec (and run binaries under their
	// local subprocess chambers), so this overrides any local factory.
	if s.poolErr != nil {
		return errResponse(fmt.Errorf("compman: worker pool unavailable: %w", s.poolErr))
	}
	if s.pool != nil {
		progSpec := *req.Program
		traceID := ""
		if tr != nil {
			traceID = tr.ID
		}
		opts.NewChamber = func(_ analytics.Program, pol sandbox.Policy) sandbox.Chamber {
			return s.pool.Chamber(WorkSpec{
				Program:       progSpec,
				QuantumMillis: pol.Quantum.Milliseconds(),
				TraceID:       traceID,
			}, tr)
		}
		opts.Parallelism = s.pool.Parallelism()
	}
	opts.NewChamber = s.wrapChamberFactory(opts.NewChamber)

	rows := reg.Private.Rows()

	// Auto block size (paper §4.3) from the aged sample, if requested.
	if req.AutoBlockSize && req.BlockSize == 0 {
		if !reg.HasAged() {
			return errResponse(aging.ErrNoAgedData)
		}
		epsForPlan := req.Epsilon
		if epsForPlan <= 0 {
			epsForPlan = 1 // planning default when accuracy mode resolves ε later
		}
		planRanges := spec.Output
		if planRanges == nil {
			return Response{Error: "autoBlockSize requires output ranges"}
		}
		choice, err := aging.OptimizeBlockSize(program, reg.Aged.Rows(), len(rows), epsForPlan, planRanges)
		if err != nil {
			return errResponse(err)
		}
		opts.BlockSize = choice.BlockSize
	}

	admission.End(telemetry.StatusOK)

	// Settle the privacy charge. Any successful charge is journaled before
	// the computation runs, so a crash can never refund it.
	charge := tr.StartSpan(telemetry.StageBudget)
	defer charge.End(telemetry.StatusError)
	label := fmt.Sprintf("%s:%s", req.Dataset, req.Program.Type)
	switch {
	case req.Epsilon > 0 && req.Accuracy != nil:
		return Response{Error: "set either epsilon or accuracy, not both"}
	case req.Epsilon > 0:
		if err := s.mgr.ChargeAs(tenantID, req.Dataset, label, req.Epsilon); err != nil {
			return errResponse(err)
		}
		s.journalBudgets()
		opts.Epsilon = req.Epsilon
	case req.Accuracy != nil:
		if spec.Mode != core.ModeTight && spec.Mode != core.ModeLoose {
			return Response{Error: "accuracy goals need output ranges (tight or loose mode)"}
		}
		goal := aging.AccuracyGoal{Rho: req.Accuracy.Rho, Confidence: req.Accuracy.Confidence}
		bs := opts.BlockSize
		if bs == 0 {
			bs = core.DefaultBlockSize(len(rows))
		}
		est, err := s.mgr.ChargeForAccuracyAs(tenantID, req.Dataset, label, program, bs, spec.Output, goal)
		if err != nil {
			return errResponse(err)
		}
		s.journalBudgets()
		opts.Epsilon = est.Epsilon
		opts.BlockSize = est.BlockSize
	default:
		return Response{Error: "query needs a positive epsilon or an accuracy goal"}
	}
	charge.End(telemetry.StatusOK)

	// The engine stages (partition → blocks → aggregation → noising) span
	// themselves inside core.Run.
	opts.Metrics = s.tel
	opts.Trace = tr

	res, err := s.runCharged(program, rows, spec, opts, deadline)
	if err != nil {
		// The charge is already settled; failed runs still consumed budget
		// conservatively (§6.2 — aborts never refund). Report the failure
		// along with the ε it cost.
		resp := errResponse(err)
		resp.EpsilonCharged = opts.Epsilon
		return resp
	}

	release := tr.StartSpan(telemetry.StageRelease)
	resp := Response{
		OK:              true,
		Output:          res.Output,
		EpsilonSpent:    res.EpsilonSpent,
		EpsilonCharged:  res.EpsilonSpent,
		EffectiveRanges: rangesToWire(res.EffectiveRanges),
		NumBlocks:       res.NumBlocks,
		BlockSize:       res.BlockSize,
		FailedBlocks:    res.FailedBlocks,
	}
	// Fill the cache with clean releases only: a degraded answer (blocks
	// substituted) is safe to re-serve but pins the degradation — a repeat
	// after the fault cleared should get a fresh, full-quality run. The
	// stored value has CacheHit unset and TraceID empty; each hit gets its
	// own trace id and the flag set on its own copy.
	if resp.FailedBlocks == 0 {
		s.cache.Put(fp, req.Dataset, resp, respCacheSize(&resp))
	}
	release.End(telemetry.StatusOK)
	return resp
}

// respCacheSize approximates one cached response's in-memory footprint for
// the qcache.bytes gauge: the float payloads plus a fixed struct overhead.
func respCacheSize(resp *Response) int64 {
	n := int64(160) // struct + map/list bookkeeping, approximate
	n += int64(8 * len(resp.Output))
	n += int64(16 * len(resp.EffectiveRanges))
	for i := range resp.Session {
		n += 64 + int64(8*len(resp.Session[i].Output)) + int64(len(resp.Session[i].Error))
	}
	return n
}

// runCharged executes the engine for a query whose privacy charge has
// already settled, bounded by the configured query deadline, the client's
// answer-by deadline (when set), and the retry budget. Retries are
// deterministic (the seed is perturbed per attempt so a seed-dependent
// failure is not replayed verbatim) and never re-charge: at most one
// output is ever released for the single ε spent.
func (s *Server) runCharged(program analytics.Program, rows []mathutil.Vec, spec core.RangeSpec, opts core.Options, deadline time.Time) (*core.Result, error) {
	ctx := context.Background()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	retries := s.cfg.MaxQueryRetries
	if retries < 0 {
		retries = 0 // a negative config must still execute the charged query once
	}
	var res *core.Result
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		runOpts := opts
		if attempt > 0 {
			runOpts.Seed = opts.Seed + int64(attempt)*0x9E3779B9
			s.stats.recordRetry()
			s.logf("compman: retrying query (attempt %d): %v", attempt+1, err)
		}
		res, err = core.Run(ctx, program, rows, spec, runOpts)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			// The query deadline expired; further attempts cannot finish.
			return nil, fmt.Errorf("compman: query deadline: %w", err)
		}
	}
	return nil, err
}

// wrapChamberFactory applies the configured ChamberWrapper around a
// chamber factory (nil selects the engine's in-process default).
func (s *Server) wrapChamberFactory(base func(analytics.Program, sandbox.Policy) sandbox.Chamber) func(analytics.Program, sandbox.Policy) sandbox.Chamber {
	if s.cfg.ChamberWrapper == nil {
		return base
	}
	if base == nil {
		base = func(prog analytics.Program, pol sandbox.Policy) sandbox.Chamber {
			return &sandbox.InProcess{Program: prog, Policy: pol}
		}
	}
	return func(prog analytics.Program, pol sandbox.Policy) sandbox.Chamber {
		return s.cfg.ChamberWrapper(base(prog, pol))
	}
}

// handleSession runs a §5.2 budget-distributed batch: ε allocated across
// the queries in proportion to their noise scales, the total charged
// atomically before anything runs. tenantID attributes the charge and
// partitions the session cache ("" = single-tenant mode).
func (s *Server) handleSession(req *Request, tenantID string, deadline time.Time) Response {
	spec := req.Session
	if spec == nil {
		return Response{Error: "session op missing payload"}
	}
	if len(spec.Queries) == 0 {
		return Response{Error: "empty session"}
	}
	reg, err := s.reg.Lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}

	// Sessions cache as one unit — their ε is distributed and charged
	// atomically, so the repeat of an identical batch re-releases the whole
	// already-published result set at zero additional ε.
	fp := sessionFingerprint(req, tenantID, reg.ContentVersion())
	if cached, ok := s.cache.Get(fp); ok {
		resp := cached.(Response)
		resp.CacheHit = true
		resp.EpsilonCharged = 0
		label := fmt.Sprintf("session:%s:%d-queries", req.Dataset, len(spec.Queries))
		if err := s.mgr.CacheHitAs(tenantID, req.Dataset, label); err != nil {
			s.logf("compman: recording cache hit: %v", err)
		}
		return resp
	}

	n := reg.Private.NumRows()

	type member struct {
		program analytics.Program
		ranges  []dp.Range
		beta    int
	}
	members := make([]member, len(spec.Queries))
	zetas := make([]float64, len(spec.Queries))
	for i, q := range spec.Queries {
		program, isBinary, err := q.Program.resolve()
		if err != nil {
			return errResponse(fmt.Errorf("session query %d: %w", i, err))
		}
		if isBinary {
			return Response{Error: fmt.Sprintf("session query %d: binary programs are not supported in sessions", i)}
		}
		ranges, err := rangesFromWire(q.OutputRanges)
		if err != nil {
			return errResponse(fmt.Errorf("session query %d: %w", i, err))
		}
		if len(ranges) != program.OutputDims() {
			return Response{Error: fmt.Sprintf("session query %d: %d ranges for %d output dims",
				i, len(ranges), program.OutputDims())}
		}
		beta := q.BlockSize
		if beta == 0 {
			beta = core.DefaultBlockSize(n)
		}
		z, err := budget.Zeta(ranges, beta, n)
		if err != nil {
			return errResponse(fmt.Errorf("session query %d: %w", i, err))
		}
		members[i] = member{program: program, ranges: ranges, beta: beta}
		zetas[i] = z
	}
	alloc, err := budget.Distribute(spec.TotalEpsilon, zetas)
	if err != nil {
		return errResponse(err)
	}

	label := fmt.Sprintf("session:%s:%d-queries", req.Dataset, len(spec.Queries))
	if err := s.mgr.ChargeAs(tenantID, req.Dataset, label, spec.TotalEpsilon); err != nil {
		return errResponse(err)
	}
	s.journalBudgets()

	// The whole session's ε is already charged; a query that fails from
	// here on reports its error in its slot while the rest of the batch
	// still runs. Aborting the batch would waste the survivors' budget —
	// and refunding any of it would reopen the §6.2 attack.
	rows := reg.Private.Rows()
	results := make([]SessionResult, len(members))
	for i, m := range members {
		res, err := s.runCharged(m.program, rows,
			core.RangeSpec{Mode: core.ModeTight, Output: m.ranges},
			core.Options{
				Epsilon:      alloc[i],
				BlockSize:    m.beta,
				Gamma:        spec.Queries[i].Gamma,
				Seed:         spec.Queries[i].Seed,
				Quantum:      s.cfg.DefaultQuantum,
				BlockTimeout: s.cfg.BlockTimeout,
				MaxFailFrac:  s.cfg.MaxFailFrac,
				NewChamber:   s.wrapChamberFactory(nil),
				Metrics:      s.tel,
			}, deadline)
		if err != nil {
			results[i] = SessionResult{Error: err.Error(), EpsilonSpent: alloc[i]}
			continue
		}
		results[i] = SessionResult{
			Output:       res.Output,
			EpsilonSpent: res.EpsilonSpent,
			FailedBlocks: res.FailedBlocks,
		}
	}
	resp := Response{OK: true, Session: results, EpsilonCharged: spec.TotalEpsilon}
	// Cache only sessions where every member released cleanly, same stance
	// as single queries: re-serving a partially failed batch would pin the
	// failures.
	clean := true
	for i := range results {
		if results[i].Error != "" || results[i].FailedBlocks > 0 {
			clean = false
			break
		}
	}
	if clean {
		s.cache.Put(fp, req.Dataset, resp, respCacheSize(&resp))
	}
	return resp
}

// handleRegister is the data-owner path: build a table from the inline
// rows and register it with its lifetime budget.
func (s *Server) handleRegister(req *Request) Response {
	spec := req.Register
	if spec == nil {
		return Response{Error: "register op missing payload"}
	}
	ranges, err := rangesFromWire(spec.Ranges)
	if err != nil {
		return errResponse(err)
	}
	tbl := dataset.New(spec.Columns)
	for i, r := range spec.Rows {
		if err := tbl.Append(mathutil.Vec(r)); err != nil {
			return Response{Error: fmt.Sprintf("row %d: %v", i, err)}
		}
	}
	_, err = s.reg.Register(spec.Name, tbl, dataset.RegisterOptions{
		TotalBudget:  spec.TotalBudget,
		Ranges:       ranges,
		AgedFraction: spec.AgedFraction,
		Seed:         spec.Seed,
	})
	if err != nil {
		return errResponse(err)
	}
	// A (re-)registered dataset starts at a fresh content version, so old
	// cache entries are already unreachable; dropping them eagerly just
	// reclaims the memory.
	s.cache.Invalidate(spec.Name)
	if r, err := s.reg.Lookup(spec.Name); err == nil {
		s.plane.Seed("", spec.Name, r.Accountant.Spent(), r.Accountant.Total())
	}
	s.journalBudgets()
	return Response{OK: true}
}

// journalBudgets persists the ledger after a charge. Persistence failures
// are logged, not fatal: the in-memory ledger remains authoritative for
// this process's lifetime, and refusing queries on a transient disk error
// would be a denial-of-service lever.
func (s *Server) journalBudgets() {
	if s.cfg.StatePath == "" {
		return
	}
	if err := s.reg.SaveBudgets(s.cfg.StatePath); err != nil {
		s.logf("compman: journaling budgets: %v", err)
	}
}

func (s *Server) buildRangeSpec(req *Request, reg *dataset.Registered, outputDims int) (core.RangeSpec, error) {
	outRanges, err := rangesFromWire(req.OutputRanges)
	if err != nil {
		return core.RangeSpec{}, err
	}
	inRanges, err := rangesFromWire(req.InputRanges)
	if err != nil {
		return core.RangeSpec{}, err
	}
	if inRanges == nil {
		inRanges = reg.Private.Ranges() // data-owner-registered bounds
	}
	spec := core.RangeSpec{
		PercentileLow:  req.PercentileLow,
		PercentileHigh: req.PercentileHigh,
	}
	switch req.Mode {
	case "tight", "":
		spec.Mode, spec.Output = core.ModeTight, outRanges
	case "loose":
		spec.Mode, spec.Output = core.ModeLoose, outRanges
	case "helper":
		translate, err := req.Translate.toFunc(outputDims)
		if err != nil {
			return core.RangeSpec{}, err
		}
		if translate == nil {
			return core.RangeSpec{}, errors.New("compman: helper mode needs a translate spec")
		}
		spec.Mode, spec.Input, spec.Translate = core.ModeHelper, inRanges, translate
	default:
		return core.RangeSpec{}, fmt.Errorf("compman: unknown mode %q", req.Mode)
	}
	return spec, nil
}

// binaryProgram satisfies analytics.Program for uploaded executables; Run is
// never called because the subprocess chamber executes the binary itself,
// but the engine needs the declared output dimensionality and a name.
type binaryProgram struct {
	spec ProgramSpec
}

func (b binaryProgram) Name() string    { return "binary:" + b.spec.Path }
func (b binaryProgram) OutputDims() int { return b.spec.OutputDims }
func (b binaryProgram) Run([]mathutil.Vec) (mathutil.Vec, error) {
	return nil, errors.New("compman: binary programs run only inside subprocess chambers")
}
