package compman

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
	"gupt/internal/telemetry"
)

func testSched(cfg SchedConfig) *scheduler { return newScheduler(cfg, telemetry.NewRegistry()) }

func waitQueueDepth(t *testing.T, s *scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.queueDepth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, s.queueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerDisabled(t *testing.T) {
	if s := testSched(SchedConfig{}); s != nil {
		t.Fatal("zero config must disable the scheduler")
	}
	// The nil scheduler is a no-op admit: every query runs immediately.
	var s *scheduler
	release, retryAfter, verdict := s.admit(context.Background(), "ds", "", time.Time{})
	if verdict != schedAdmitted || retryAfter != 0 {
		t.Fatalf("nil scheduler admit = %v, %v", verdict, retryAfter)
	}
	release()
}

// EDF: queued waiters are admitted earliest-deadline-first, with
// deadline-less waiters last — regardless of arrival order.
func TestSchedulerEDFOrder(t *testing.T) {
	s := testSched(SchedConfig{MaxConcurrent: 1, MaxQueue: 8})
	ctx := context.Background()
	release, _, verdict := s.admit(ctx, "ds", "", time.Time{})
	if verdict != schedAdmitted {
		t.Fatalf("first admit = %v", verdict)
	}

	admitted := make(chan string, 3)
	var wg sync.WaitGroup
	enqueue := func(name string, deadline time.Time) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, v := s.admit(ctx, "ds", "", deadline)
			if v != schedAdmitted {
				t.Errorf("waiter %s verdict = %v", name, v)
				return
			}
			admitted <- name
			rel()
		}()
	}
	// Arrival order: no deadline, late deadline, early deadline.
	enqueue("none", time.Time{})
	waitQueueDepth(t, s, 1)
	enqueue("late", time.Now().Add(5*time.Second))
	waitQueueDepth(t, s, 2)
	enqueue("early", time.Now().Add(1*time.Second))
	waitQueueDepth(t, s, 3)

	release() // each admitted waiter releases, cascading the promotions
	wg.Wait()
	close(admitted)
	var order []string
	for name := range admitted {
		order = append(order, name)
	}
	want := []string{"early", "late", "none"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}

func TestSchedulerQueueFullBusy(t *testing.T) {
	s := testSched(SchedConfig{MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()
	release, _, _ := s.admit(ctx, "ds", "", time.Time{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, _, v := s.admit(ctx, "ds", "", time.Time{})
		if v == schedAdmitted {
			rel()
		}
	}()
	waitQueueDepth(t, s, 1)

	// Queue full: the third arrival is refused with a positive retry hint.
	rel, retryAfter, verdict := s.admit(ctx, "ds", "", time.Time{})
	if verdict != schedBusy {
		if rel != nil {
			rel()
		}
		t.Fatalf("verdict = %v, want schedBusy", verdict)
	}
	if retryAfter <= 0 {
		t.Errorf("busy rejection retry hint = %v, want > 0", retryAfter)
	}
	release()
	wg.Wait()
}

// A deadline that has already passed is refused before queueing — and a
// deadline that passes while queued converts to schedExpired without a
// release ever happening.
func TestSchedulerDeadlineExpiry(t *testing.T) {
	s := testSched(SchedConfig{MaxConcurrent: 1})
	ctx := context.Background()

	_, retryAfter, verdict := s.admit(ctx, "ds", "", time.Now().Add(-time.Second))
	if verdict != schedExpired {
		t.Fatalf("past deadline verdict = %v, want schedExpired", verdict)
	}
	if retryAfter <= 0 {
		t.Errorf("expired rejection retry hint = %v, want > 0", retryAfter)
	}

	release, _, _ := s.admit(ctx, "ds", "", time.Time{}) // occupy the slot
	start := time.Now()
	_, _, verdict = s.admit(ctx, "ds", "", time.Now().Add(50*time.Millisecond))
	if verdict != schedExpired {
		t.Fatalf("queued-past-deadline verdict = %v, want schedExpired", verdict)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("expiry took %v; the queue timer should fire at ~50ms", elapsed)
	}
	release()

	// No slot leaked: the next query is admitted immediately.
	rel, _, verdict := s.admit(ctx, "ds", "", time.Time{})
	if verdict != schedAdmitted {
		t.Fatalf("post-expiry admit = %v", verdict)
	}
	rel()
}

// Scoped caps: a dataset (or tenant) at its cap queues, but does not block
// other datasets — EDF over the eligible set, not head-of-line blocking.
func TestSchedulerScopedCaps(t *testing.T) {
	s := testSched(SchedConfig{MaxConcurrent: 4, MaxPerDataset: 1, MaxPerTenant: 2})
	ctx := context.Background()

	relHot, _, verdict := s.admit(ctx, "hot", "acme", time.Time{})
	if verdict != schedAdmitted {
		t.Fatalf("first hot admit = %v", verdict)
	}

	hotDone := make(chan struct{})
	go func() {
		defer close(hotDone)
		rel, _, v := s.admit(ctx, "hot", "acme", time.Time{})
		if v != schedAdmitted {
			t.Errorf("queued hot query verdict = %v", v)
			return
		}
		rel()
	}()
	waitQueueDepth(t, s, 1)

	// A different dataset sails through while "hot" is capped.
	relCold, _, verdict := s.admit(ctx, "cold", "acme", time.Time{})
	if verdict != schedAdmitted {
		t.Fatalf("cold dataset admit = %v; per-dataset cap must not block other datasets", verdict)
	}

	// The tenant cap bites now: two acme queries are running.
	s.mu.Lock()
	canRun := s.canRunLocked("other", "acme")
	s.mu.Unlock()
	if canRun {
		t.Error("tenant acme at MaxPerTenant=2 still admits")
	}
	s.mu.Lock()
	canRun = s.canRunLocked("other", "globex")
	s.mu.Unlock()
	if !canRun {
		t.Error("tenant globex blocked by acme's cap")
	}

	relHot() // frees the dataset cap; the queued hot query promotes
	<-hotDone
	relCold()
}

func TestSchedulerCancelledWhileQueued(t *testing.T) {
	s := testSched(SchedConfig{MaxConcurrent: 1})
	release, _, _ := s.admit(context.Background(), "ds", "", time.Time{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan schedVerdict, 1)
	go func() {
		_, _, v := s.admit(ctx, "ds", "", time.Time{})
		done <- v
	}()
	waitQueueDepth(t, s, 1)
	cancel()
	if v := <-done; v != schedCancelled {
		t.Fatalf("verdict = %v, want schedCancelled", v)
	}
	waitQueueDepth(t, s, 0) // the abandoned waiter must leave the queue
	release()
}

// slowWrapper returns a ChamberWrapper that sleeps before every block
// execution, making queries slow enough to overlap in admission tests.
func slowWrapper(d time.Duration) func(sandbox.Chamber) sandbox.Chamber {
	return func(inner sandbox.Chamber) sandbox.Chamber {
		return chamberFunc(func(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return inner.Execute(ctx, block)
		})
	}
}

// End to end: an overloaded server answers surplus queries with a
// RetryAfterMillis backpressure refusal instead of slowing everyone down —
// and every refusal costs zero ε.
func TestServerOverloadBackpressure(t *testing.T) {
	const total = 100.0
	const eps = 0.5
	c0, srv := startServerCfg(t, total, ServerConfig{
		ChamberWrapper: slowWrapper(200 * time.Millisecond),
		Sched:          SchedConfig{MaxConcurrent: 1, MaxQueue: 1},
	})
	addr := srv.Addr().String()
	c0.Close()

	const queries = 4
	type outcome struct {
		resp *Response
		err  error
	}
	outcomes := make(chan outcome, queries)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				outcomes <- outcome{err: err}
				return
			}
			defer cl.Close()
			<-start
			req := meanQuery(eps, 2000)
			req.Seed = seed
			resp, err := cl.Query(req)
			outcomes <- outcome{resp, err}
		}(int64(i))
	}
	close(start)
	wg.Wait()
	close(outcomes)

	successes, refusals := 0, 0
	for o := range outcomes {
		if o.err == nil {
			successes++
			continue
		}
		var qe *QueryError
		if !errors.As(o.err, &qe) {
			t.Fatalf("malformed failure %T: %v", o.err, o.err)
		}
		if !strings.Contains(qe.Msg, "overloaded") {
			t.Fatalf("refusal %q does not name the overload", qe.Msg)
		}
		if qe.RetryAfterMillis < 1 {
			t.Errorf("refusal carries no RetryAfterMillis hint: %+v", qe)
		}
		if qe.EpsilonCharged != 0 {
			t.Errorf("overload refusal charged ε %v; backpressure must be free", qe.EpsilonCharged)
		}
		refusals++
	}
	if successes == 0 {
		t.Fatal("no query was served")
	}
	if refusals == 0 {
		t.Fatal("no query was refused — overload never materialized (vacuous test)")
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rem, err := cl.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if want := total - eps*float64(successes); math.Abs(rem-want) > 1e-9 {
		t.Errorf("remaining budget %v, want %v (%d served, %d refused free)", rem, want, successes, refusals)
	}
	if got := srv.Telemetry().Counter("compman.queries_overloaded").Value(); got != int64(refusals) {
		t.Errorf("compman.queries_overloaded = %d, want %d", got, refusals)
	}
}

// A query whose answer-by deadline cannot be met — the slot is held past
// its expiry — is refused as unmeetable with zero ε consumed, while the
// occupying query completes normally.
func TestServerDeadlineUnmeetableRefusal(t *testing.T) {
	const total = 10.0
	const eps = 1.0
	c, srv := startServerCfg(t, total, ServerConfig{
		ChamberWrapper: slowWrapper(300 * time.Millisecond),
		Sched:          SchedConfig{MaxConcurrent: 1},
	})
	addr := srv.Addr().String()

	slowDone := make(chan error, 1)
	go func() {
		req := meanQuery(eps, 2000)
		req.Seed = 1
		_, err := c.Query(req)
		slowDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the slow query take the slot

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	req := meanQuery(eps, 2000)
	req.Seed = 2
	req.DeadlineMillis = 50 // expires long before the ~900ms slow query frees the slot
	_, err = cl.Query(req)
	if err == nil {
		t.Fatal("deadline-doomed query was answered")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("malformed failure %T: %v", err, err)
	}
	if !strings.Contains(qe.Msg, "deadline") {
		t.Errorf("refusal %q does not name the deadline", qe.Msg)
	}
	if qe.RetryAfterMillis < 1 || qe.EpsilonCharged != 0 {
		t.Errorf("refusal = %+v; want a free rejection with a retry hint", qe)
	}

	if err := <-slowDone; err != nil {
		t.Fatalf("occupying query failed: %v", err)
	}
	rem, err := cl.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if want := total - eps; math.Abs(rem-want) > 1e-9 {
		t.Errorf("remaining budget %v, want %v (only the served query may charge)", rem, want)
	}
}
