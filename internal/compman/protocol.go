// Package compman implements GUPT's computation manager (paper Fig. 2): a
// server component that fronts the dataset manager and privacy budget for
// analysts, and a client library. Analysts never touch datasets or
// accountants directly — they submit a query over a length-prefixed binary
// framed protocol (wire.go); the trusted server resolves the dataset,
// charges the budget, runs the sample-and-aggregate engine across isolated
// chambers, and returns only the differentially private answer. The JSON
// codecs below remain for the admin HTTP surface and the one terminal
// error line sent to retired JSON-wire peers.
package compman

import (
	"encoding/json"
	"errors"
	"fmt"

	"gupt/internal/analytics"
	"gupt/internal/dp"
)

// Op names the protocol operations.
type Op string

// Protocol operations.
const (
	OpQuery    Op = "query"    // run a DP computation
	OpBudget   Op = "budget"   // read a dataset's remaining budget
	OpList     Op = "list"     // list registered dataset names
	OpStats    Op = "stats"    // read server activity counters
	OpRegister Op = "register" // register a dataset (data-owner side)
	OpSession  Op = "session"  // run a budget-distributed query batch (§5.2)
	OpQuantum  Op = "quantum"  // no-op liveness check
)

// RangeSpec is a serializable [lo, hi] interval.
type RangeSpec struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

func (r RangeSpec) toRange() (dp.Range, error) { return dp.NewRange(r.Lo, r.Hi) }

func rangesToWire(rs []dp.Range) []RangeSpec {
	out := make([]RangeSpec, len(rs))
	for i, r := range rs {
		out[i] = RangeSpec{Lo: r.Lo, Hi: r.Hi}
	}
	return out
}

func rangesFromWire(rs []RangeSpec) ([]dp.Range, error) {
	if rs == nil {
		return nil, nil
	}
	out := make([]dp.Range, len(rs))
	for i, r := range rs {
		rr, err := r.toRange()
		if err != nil {
			return nil, fmt.Errorf("range %d: %w", i, err)
		}
		out[i] = rr
	}
	return out, nil
}

// ProgramSpec names an analysis program over the wire. Closures cannot
// cross the network, so analysts choose between the platform's built-in
// program library and an uploaded executable run under subprocess
// isolation.
type ProgramSpec struct {
	// Type selects the program: "mean", "median", "variance", "percentile",
	// "covariance", "histogram", "kmeans", "logreg", "linreg",
	// "naivebayes", or "binary".
	Type string `json:"type"`
	// Col is the target column for the scalar statistics; ColB is the
	// second column for "covariance".
	Col  int `json:"col,omitempty"`
	ColB int `json:"colB,omitempty"`
	// P is the quantile for "percentile".
	P float64 `json:"p,omitempty"`
	// Lo, Hi and Bins parameterize "histogram".
	Lo   float64 `json:"lo,omitempty"`
	Hi   float64 `json:"hi,omitempty"`
	Bins int     `json:"bins,omitempty"`
	// K, FeatureDims, Iters, Seed parameterize "kmeans"; FeatureDims,
	// LabelCol, Iters also parameterize "logreg".
	K           int     `json:"k,omitempty"`
	FeatureDims int     `json:"featureDims,omitempty"`
	LabelCol    int     `json:"labelCol,omitempty"`
	Iters       int     `json:"iters,omitempty"`
	LearnRate   float64 `json:"learnRate,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	// Path, Args and OutputDims describe an uploaded executable for
	// Type "binary": it speaks the sandbox stdin/stdout protocol and is
	// always run inside a subprocess chamber.
	Path       string   `json:"path,omitempty"`
	Args       []string `json:"args,omitempty"`
	OutputDims int      `json:"outputDims,omitempty"`
}

// ErrBadProgram is returned for unresolvable program specifications.
var ErrBadProgram = errors.New("compman: invalid program spec")

// resolve builds the in-process Program for a spec, or reports that the
// spec names a binary (which the server runs via subprocess chambers).
func (ps ProgramSpec) resolve() (analytics.Program, bool, error) {
	switch ps.Type {
	case "mean":
		return analytics.Mean{Col: ps.Col}, false, nil
	case "median":
		return analytics.Median{Col: ps.Col}, false, nil
	case "variance":
		return analytics.Variance{Col: ps.Col}, false, nil
	case "percentile":
		if ps.P <= 0 || ps.P >= 1 {
			return nil, false, fmt.Errorf("%w: percentile p=%v", ErrBadProgram, ps.P)
		}
		return analytics.Percentile{Col: ps.Col, P: ps.P}, false, nil
	case "kmeans":
		return analytics.KMeans{K: ps.K, FeatureDims: ps.FeatureDims, Iters: ps.Iters, Seed: ps.Seed}, false, nil
	case "covariance":
		return analytics.Covariance{ColA: ps.Col, ColB: ps.ColB}, false, nil
	case "histogram":
		if ps.Bins <= 0 || !(ps.Hi > ps.Lo) {
			return nil, false, fmt.Errorf("%w: histogram needs bins>0 and hi>lo", ErrBadProgram)
		}
		return analytics.Histogram{Col: ps.Col, Lo: ps.Lo, Hi: ps.Hi, Bins: ps.Bins}, false, nil
	case "logreg":
		lr := ps.LearnRate
		if lr == 0 {
			lr = 0.1
		}
		return analytics.LogisticRegression{
			FeatureDims: ps.FeatureDims, LabelCol: ps.LabelCol, Iters: ps.Iters, LearnRate: lr,
		}, false, nil
	case "linreg":
		return analytics.LinearRegression{FeatureDims: ps.FeatureDims, TargetCol: ps.LabelCol}, false, nil
	case "naivebayes":
		return analytics.NaiveBayes{FeatureDims: ps.FeatureDims, LabelCol: ps.LabelCol}, false, nil
	case "binary":
		if ps.Path == "" || ps.OutputDims <= 0 {
			return nil, false, fmt.Errorf("%w: binary needs path and outputDims", ErrBadProgram)
		}
		return nil, true, nil
	default:
		return nil, false, fmt.Errorf("%w: unknown type %q", ErrBadProgram, ps.Type)
	}
}

// TranslateSpec is a serializable stand-in for GUPT-helper's range
// translation function: output dimension i gets the (scaled, shifted)
// estimated input range of input dimension InputDim[i].
type TranslateSpec struct {
	InputDim []int     `json:"inputDim"`
	Scale    []float64 `json:"scale"`
	Offset   []float64 `json:"offset"`
}

func (ts *TranslateSpec) toFunc(outputDims int) (func([]dp.Range) []dp.Range, error) {
	if ts == nil {
		return nil, nil
	}
	if len(ts.InputDim) != outputDims || len(ts.Scale) != outputDims || len(ts.Offset) != outputDims {
		return nil, fmt.Errorf("compman: translate spec arity %d/%d/%d, want %d",
			len(ts.InputDim), len(ts.Scale), len(ts.Offset), outputDims)
	}
	dims := append([]int(nil), ts.InputDim...)
	scale := append([]float64(nil), ts.Scale...)
	offset := append([]float64(nil), ts.Offset...)
	return func(in []dp.Range) []dp.Range {
		out := make([]dp.Range, outputDims)
		for i := range out {
			d := dims[i]
			if d < 0 || d >= len(in) {
				d = 0
			}
			r := in[d].Scale(scale[i])
			out[i] = dp.Range{Lo: r.Lo + offset[i], Hi: r.Hi + offset[i]}
		}
		return out
	}, nil
}

// AccuracySpec is a serializable accuracy goal (paper §5.1).
type AccuracySpec struct {
	Rho        float64 `json:"rho"`
	Confidence float64 `json:"confidence"`
}

// RegisterSpec is the data-owner side of the protocol (paper Fig. 2): a
// dataset pushed over the wire with its lifetime budget. Registration is an
// owner/operator operation; deployments exposing the service to untrusted
// analysts should front the endpoint with transport-level authentication,
// which is out of scope here (as in the paper).
type RegisterSpec struct {
	Name string `json:"name"`
	// Rows carries the records inline; Columns optionally names them.
	Rows    [][]float64 `json:"rows"`
	Columns []string    `json:"columns,omitempty"`
	// TotalBudget is the dataset's lifetime ε budget.
	TotalBudget float64 `json:"totalBudget"`
	// Ranges optionally declares public attribute bounds.
	Ranges []RangeSpec `json:"ranges,omitempty"`
	// AgedFraction carves out the aged, non-private sample (§3.3).
	AgedFraction float64 `json:"agedFraction,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
}

// SessionQuery is one member of a budget-distributed batch: a program plus
// its (tight) output ranges; the session, not the query, carries the ε.
type SessionQuery struct {
	Program      ProgramSpec `json:"program"`
	OutputRanges []RangeSpec `json:"outputRanges"`
	BlockSize    int         `json:"blockSize,omitempty"`
	Gamma        int         `json:"gamma,omitempty"`
	Seed         int64       `json:"seed,omitempty"`
}

// SessionSpec is the wire form of the §5.2 session: a total ε split across
// the queries in proportion to their noise scales and charged atomically.
type SessionSpec struct {
	TotalEpsilon float64        `json:"totalEpsilon"`
	Queries      []SessionQuery `json:"queries"`
}

// SessionResult is one query's outcome within a session response. A
// session's budget is charged atomically up front, so a query that fails
// mid-session reports its error here while the rest of the batch still
// runs; its allocated ε is consumed either way (§6.2).
type SessionResult struct {
	Output       []float64 `json:"output,omitempty"`
	EpsilonSpent float64   `json:"epsilonSpent"`
	Error        string    `json:"error,omitempty"`
	FailedBlocks int       `json:"failedBlocks,omitempty"`
}

// Request is one protocol message from client to server.
type Request struct {
	Op      Op     `json:"op"`
	Dataset string `json:"dataset,omitempty"`

	Program *ProgramSpec `json:"program,omitempty"`
	// Mode is "tight", "loose" or "helper".
	Mode         string         `json:"mode,omitempty"`
	OutputRanges []RangeSpec    `json:"outputRanges,omitempty"`
	InputRanges  []RangeSpec    `json:"inputRanges,omitempty"`
	Translate    *TranslateSpec `json:"translate,omitempty"`

	// Exactly one of Epsilon and Accuracy must be set for OpQuery.
	Epsilon  float64       `json:"epsilon,omitempty"`
	Accuracy *AccuracySpec `json:"accuracy,omitempty"`

	// Register carries the dataset payload for OpRegister.
	Register *RegisterSpec `json:"register,omitempty"`

	// Session carries the batch for OpSession.
	Session *SessionSpec `json:"session,omitempty"`

	BlockSize     int   `json:"blockSize,omitempty"`
	Gamma         int   `json:"gamma,omitempty"`
	AutoBlockSize bool  `json:"autoBlockSize,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	// QuantumMillis arms the timing defense for this query's blocks.
	QuantumMillis int64 `json:"quantumMillis,omitempty"`
	// UserLevel and UserColumn switch the privacy unit from records to
	// users identified by a column (paper §8.1, extension).
	UserLevel  bool `json:"userLevel,omitempty"`
	UserColumn int  `json:"userColumn,omitempty"`
	// PercentileLow/High select the Loose/Helper range-estimation pair;
	// zero selects the paper's default (0.25, 0.75).
	PercentileLow  float64 `json:"percentileLow,omitempty"`
	PercentileHigh float64 `json:"percentileHigh,omitempty"`

	// APIKey authenticates the caller when the server runs with tenancy
	// enabled (PR 8). Wire version 3 carries it as an optional tail; a
	// version-2 peer simply never sends one. The server resolves it to a
	// tenant id and NEVER echoes, logs, or audits the key itself.
	APIKey string `json:"apiKey,omitempty"`

	// DeadlineMillis is the caller's answer-by budget in milliseconds,
	// measured from the server's receipt of the request. The deadline-aware
	// scheduler orders queued queries earliest-deadline-first and refuses —
	// with a RetryAfterMillis hint, before any ε is charged — queries whose
	// deadline would expire in the queue. Zero means no client deadline.
	// Wire version 4 carries it as an optional request tail; older peers
	// simply never send one.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// Response is one protocol message from server to client.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// TraceID is the server-assigned correlation id for this operation
	// (queries and sessions): a random 128-bit hex string, never derived
	// from analyst input. Analysts can quote it to the operator, who can
	// find the query at /traces and in the audit log. Requests carry no
	// trace field at all — accepting analyst-supplied ids would let an
	// analyst forge audit correlation.
	TraceID string `json:"traceId,omitempty"`

	// Query results.
	Output          []float64   `json:"output,omitempty"`
	EpsilonSpent    float64     `json:"epsilonSpent,omitempty"`
	EffectiveRanges []RangeSpec `json:"effectiveRanges,omitempty"`
	NumBlocks       int         `json:"numBlocks,omitempty"`
	BlockSize       int         `json:"blockSize,omitempty"`
	FailedBlocks    int         `json:"failedBlocks,omitempty"`
	// EpsilonCharged is the privacy budget the operation consumed whether
	// or not it succeeded. A query that aborts after its charge settled
	// reports Error plus a non-zero EpsilonCharged — the §6.2 defense:
	// forcing failures never refunds budget.
	EpsilonCharged float64 `json:"epsilonCharged,omitempty"`

	// CacheHit marks an answer served from the noisy-answer cache: the
	// identical already-published release, re-sent at zero additional ε
	// (post-processing). EpsilonSpent then reports the ε the original
	// release consumed, while EpsilonCharged is zero — nothing was debited
	// for this repeat.
	CacheHit bool `json:"cacheHit,omitempty"`

	// Budget / list / stats / session results.
	Remaining float64         `json:"remaining,omitempty"`
	Datasets  []string        `json:"datasets,omitempty"`
	Stats     *ServerStats    `json:"stats,omitempty"`
	Session   []SessionResult `json:"session,omitempty"`

	// Tenant is the principal the server resolved and billed for this
	// operation (PR 8). Empty on tenancy-off servers. Wire version 3
	// carries it as an optional response tail.
	Tenant string `json:"tenant,omitempty"`
	// RetryAfterMillis is set on rate-limit rejections: the client should
	// back off at least this long before retrying. The rejection charged
	// zero ε — it happened before any budget admission.
	RetryAfterMillis int64 `json:"retryAfterMillis,omitempty"`
}

// The wire decoders below are the single entry points for every byte
// stream an untrusted peer controls: analyst requests into the server,
// server responses into the client, and worker replies into the pool.
// They are fuzzed (fuzz_test.go) and must never panic on arbitrary input.

// DecodeRequest parses one analyst request line.
func DecodeRequest(line []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return nil, fmt.Errorf("malformed request: %w", err)
	}
	return &req, nil
}

// DecodeResponse parses one server response line.
func DecodeResponse(line []byte) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("malformed response: %w", err)
	}
	return &resp, nil
}

// DecodeWorkRequest parses one block-execution request line.
func DecodeWorkRequest(line []byte) (*WorkRequest, error) {
	var req WorkRequest
	if err := json.Unmarshal(line, &req); err != nil {
		return nil, fmt.Errorf("malformed work request: %w", err)
	}
	return &req, nil
}

// DecodeWorkResponse parses one worker reply line.
func DecodeWorkResponse(line []byte) (*WorkResponse, error) {
	var resp WorkResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("malformed work response: %w", err)
	}
	return &resp, nil
}
