package compman

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"gupt/internal/dp"
)

func TestTranslateSpecToFunc(t *testing.T) {
	ts := &TranslateSpec{
		InputDim: []int{0, 0},
		Scale:    []float64{1, 2},
		Offset:   []float64{0, -5},
	}
	fn, err := ts.toFunc(2)
	if err != nil {
		t.Fatal(err)
	}
	out := fn([]dp.Range{{Lo: 10, Hi: 20}})
	if out[0].Lo != 10 || out[0].Hi != 20 {
		t.Errorf("identity translation = %+v", out[0])
	}
	if out[1].Lo != 15 || out[1].Hi != 35 {
		t.Errorf("scaled translation = %+v", out[1])
	}
	// Out-of-range input dim falls back to dim 0 rather than panicking.
	ts2 := &TranslateSpec{InputDim: []int{7}, Scale: []float64{1}, Offset: []float64{0}}
	fn2, err := ts2.toFunc(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fn2([]dp.Range{{Lo: 1, Hi: 2}}); got[0].Lo != 1 {
		t.Errorf("fallback translation = %+v", got[0])
	}
	// Arity mismatch rejected.
	if _, err := ts.toFunc(3); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Nil spec means no function.
	var nilSpec *TranslateSpec
	fn3, err := nilSpec.toFunc(1)
	if err != nil || fn3 != nil {
		t.Errorf("nil spec should yield nil func and nil error, got err=%v", err)
	}
}

func TestRangesWire(t *testing.T) {
	in := []dp.Range{{Lo: -1, Hi: 2}, {Lo: 0, Hi: 0}}
	back, err := rangesFromWire(rangesToWire(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if back[i] != in[i] {
			t.Errorf("range %d: %+v != %+v", i, back[i], in[i])
		}
	}
	if _, err := rangesFromWire([]RangeSpec{{Lo: 2, Hi: 1}}); err == nil {
		t.Error("inverted wire range accepted")
	}
	got, err := rangesFromWire(nil)
	if err != nil || got != nil {
		t.Errorf("nil wire ranges: %v, %v", got, err)
	}
}

// Property: any valid Request survives a JSON round trip unchanged in the
// fields the server dispatches on.
func TestRequestJSONRoundTripProperty(t *testing.T) {
	f := func(dsRaw string, eps float64, blockSize uint16, seed int64, userLevel bool) bool {
		if math.IsNaN(eps) || math.IsInf(eps, 0) {
			return true
		}
		req := Request{
			Op:        OpQuery,
			Dataset:   dsRaw,
			Program:   &ProgramSpec{Type: "mean", Col: 1},
			Epsilon:   eps,
			BlockSize: int(blockSize),
			Seed:      seed,
			UserLevel: userLevel,
			OutputRanges: []RangeSpec{
				{Lo: 0, Hi: 1},
			},
		}
		data, err := json.Marshal(req)
		if err != nil {
			return false
		}
		var back Request
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Dataset == req.Dataset &&
			back.Epsilon == req.Epsilon &&
			back.BlockSize == req.BlockSize &&
			back.Seed == req.Seed &&
			back.UserLevel == req.UserLevel &&
			back.Program != nil && back.Program.Type == "mean" && back.Program.Col == 1 &&
			len(back.OutputRanges) == 1 && back.OutputRanges[0] == req.OutputRanges[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
