package compman

import (
	"encoding/json"
	"testing"

	"gupt/internal/telemetry"
)

// The four wire decoders are the only entry points for bytes an untrusted
// peer controls: analyst requests into the server, server responses into
// the client, block requests into a worker, and worker replies into the
// pool. None may panic on arbitrary input, and anything they accept must
// survive a re-encode (the server echoes fields like Op and Dataset into
// logs and labels).

func FuzzDecodeRequest(f *testing.F) {
	f.Add(`{"op":"query","dataset":"census","epsilon":1}`)
	f.Add(`{"op":"register","register":{"name":"x","rows":[[1]]}}`)
	f.Add(`{"op":"session","session":{"totalEpsilon":1,"queries":[]}}`)
	f.Add(`{"op":"query","program":{"type":"mean"},"outputRanges":[{"lo":0,"hi":1}]}`)
	f.Add(`not json`)
	f.Add(`{"epsilon":1e400}`)
	f.Add(`{"op":"??"}`)
	f.Fuzz(func(t *testing.T, input string) {
		req, err := DecodeRequest([]byte(input))
		if err != nil {
			return
		}
		if _, err := json.Marshal(req); err != nil {
			t.Errorf("accepted request does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(`{"ok":true,"output":[1,2]}`)
	f.Add(`{"ok":false,"error":"boom","epsilonCharged":0.5}`)
	f.Add(`{"stats":{"queriesOK":3}}`)
	f.Add(`{"session":[{"output":[1],"epsilonSpent":0.1}]}`)
	f.Add(`{"ok":true,"traceId":"0123456789abcdef0123456789abcdef"}`)
	f.Add(`{"ok":true,"traceId":"zz-not-hex"}`)
	f.Add(`]]]`)
	f.Fuzz(func(t *testing.T, input string) {
		resp, err := DecodeResponse([]byte(input))
		if err != nil {
			return
		}
		if _, err := json.Marshal(resp); err != nil {
			t.Errorf("accepted response does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeWorkRequest(f *testing.F) {
	f.Add(`{"spec":{"program":{"type":"mean"}},"block":[[1],[2]]}`)
	f.Add(`{"block":[]}`)
	f.Add(`{"spec":{"quantumMillis":-1}}`)
	f.Add(`{"block":[[1e400]]}`)
	f.Add(`{"spec":{"program":{"type":"mean"},"traceId":"0123456789abcdef0123456789abcdef"},"block":[[1]]}`)
	f.Add(`{"spec":{"traceId":""}}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		req, err := DecodeWorkRequest([]byte(input))
		if err != nil {
			return
		}
		if _, err := json.Marshal(req); err != nil {
			t.Errorf("accepted work request does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeWorkResponse(f *testing.F) {
	f.Add(`{"output":[42]}`)
	f.Add(`{"error":"chamber died"}`)
	f.Add(`{"output":null,"error":""}`)
	f.Add(`!!not-json-at-all!!`)
	f.Add(`{"output":[1,2,`)
	f.Add(`{"output":[1],"traceId":"0123456789abcdef0123456789abcdef","spans":[{"stage":"worker.setup","status":"ok","millis":1.5}]}`)
	f.Add(`{"spans":[{"stage":"worker.execute","millis":-1}]}`)
	f.Add(`{"spans":[{"stage":"worker.execute","millis":1e400}]}`)
	f.Add(`{"spans":[{"millis":null}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		resp, err := DecodeWorkResponse([]byte(input))
		if err != nil {
			return
		}
		if _, err := json.Marshal(resp); err != nil {
			t.Errorf("accepted work response does not re-encode: %v", err)
		}
		// Anything the decoder accepts must also survive the trace merge:
		// AddRemoteSpans is the sanitization boundary for wire-origin spans
		// (caps strings, drops non-finite durations) and must never panic
		// or poison the trace's own export path.
		tr := telemetry.NewTrace(nil, "fuzz", "ds")
		tr.AddRemoteSpans("worker:fuzz", resp.Spans)
		_ = tr.String()
	})
}
