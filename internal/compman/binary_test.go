package compman

import (
	"context"
	"math"
	"os"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

// TestMain lets this test binary double as an uploaded analyst executable
// (the "binary" program type): when GUPT_COMPMAN_APP is set it speaks the
// sandbox chamber protocol instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv("GUPT_COMPMAN_APP") == "mean" {
		err := sandbox.ServeApp(os.Stdin, os.Stdout, func(block []mathutil.Vec) (mathutil.Vec, error) {
			return analytics.Mean{Col: 0}.Run(block)
		})
		if err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// End-to-end: an analyst-uploaded binary runs under subprocess chambers
// through the full server path — query, budget charge, sample-and-aggregate
// over isolated processes, private answer.
func TestQueryBinaryProgramEndToEnd(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// Chambers clear the environment, so the app-mode selector is baked
	// into a wrapper script that sets it and execs the test binary.
	script := t.TempDir() + "/app.sh"
	if err := os.WriteFile(script,
		[]byte("#!/bin/sh\nGUPT_COMPMAN_APP=mean exec "+exe+" \"$@\"\n"), 0o700); err != nil {
		t.Fatal(err)
	}

	client, _ := startServer(t, 100)
	resp, err := client.Query(&Request{
		Dataset: "census",
		Program: &ProgramSpec{
			Type:       "binary",
			Path:       script,
			OutputDims: 1,
		},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      20,
		Seed:         3,
		BlockSize:    500, // few blocks keep the subprocess fan-out quick
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Output[0]-40) > 6 {
		t.Errorf("binary-program mean = %v, want ~40", resp.Output[0])
	}
	if resp.FailedBlocks != 0 {
		t.Errorf("FailedBlocks = %d", resp.FailedBlocks)
	}
}

// The same uploaded binary dispatched through worker daemons: the worker
// runs it in its local subprocess chambers.
func TestWorkerBinaryProgram(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	script := t.TempDir() + "/app.sh"
	if err := os.WriteFile(script,
		[]byte("#!/bin/sh\nGUPT_COMPMAN_APP=mean exec "+exe+" \"$@\"\n"), 0o700); err != nil {
		t.Fatal(err)
	}
	addr := startWorker(t)
	pool, err := NewWorkerPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	chamber := pool.Chamber(WorkSpec{Program: ProgramSpec{Type: "binary", Path: script, OutputDims: 1}}, nil)
	out, err := chamber.Execute(context.Background(), workerBlock(5))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Errorf("worker binary mean = %v, want 2", out[0])
	}
}
