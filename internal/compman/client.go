package compman

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client is the analyst-side computation-manager component: a thin,
// synchronized wrapper over the binary framed wire (see wire.go). It is
// safe for concurrent use; requests are serialized on the single
// connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	version uint8
	apiKey  string // stamped onto every request when the wire speaks v3
	wbuf    []byte // reused binary encode buffer
	rbuf    []byte // reused binary frame read buffer
}

// Dial connects to a computation-manager server, negotiating the newest
// wire version both ends speak. A server that only speaks the retired
// version-0 JSON wire is refused with ErrPeerTooOld.
func Dial(addr string) (*Client, error) {
	return DialVersion(addr, LatestWireVersion)
}

// DialVersion connects offering at most the given wire version.
// WireVersionJSON (0) is retired and fails closed with a clear error.
func DialVersion(addr string, version uint8) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("compman: dial %s: %w", addr, err)
	}
	c, err := NewClientVersion(conn, version)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection, negotiating the newest wire
// version. It is NewClientVersion at LatestWireVersion; the error contract
// is the same.
func NewClient(conn net.Conn) (*Client, error) {
	return NewClientVersion(conn, LatestWireVersion)
}

// NewClientVersion wraps an established connection, performing the
// connect-time version handshake up to the given version. A garbled
// handshake fails closed with ErrWireNegotiation, a pre-binary peer with
// ErrPeerTooOld; the caller still owns the connection.
func NewClientVersion(conn net.Conn, version uint8) (*Client, error) {
	c := &Client{conn: conn, r: bufio.NewReaderSize(conn, 1<<20)}
	v, err := negotiateWire(conn, c.r, version)
	if err != nil {
		return nil, err
	}
	c.version = v
	return c, nil
}

// WireVersion reports the negotiated wire version.
func (c *Client) WireVersion() uint8 { return c.version }

// SetAPIKey attaches tenant credentials to every subsequent request. The
// key only travels on wire version 3+; against an older server it is
// silently dropped by the framing, and a tenancy-enabled server will then
// refuse admission — fail closed, never fail open.
func (c *Client) SetAPIKey(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apiKey = key
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// QueryError is a server-refused operation, preserving the privacy budget
// the attempt consumed anyway. A query that aborted after its charge
// settled reports EpsilonCharged > 0 — the analyst paid for the failure
// (§6.2), and budget-tracking clients must account for it.
type QueryError struct {
	Msg            string
	EpsilonCharged float64
	// RetryAfterMillis, when positive, is the server's rate-limit backoff
	// hint: the rejection consumed zero ε and the request may be retried
	// after this many milliseconds.
	RetryAfterMillis int64
}

func (e *QueryError) Error() string { return e.Msg }

// roundTrip sends one request and decodes one response. Both buffers
// persist across calls, so steady-state framing allocates nothing.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.APIKey == "" && c.apiKey != "" {
		q := *req
		q.APIKey = c.apiKey
		req = &q
	}
	frame, err := AppendRequestFrameV(c.wbuf[:0], req, c.version)
	if err != nil {
		return nil, fmt.Errorf("compman: encode: %w", err)
	}
	if _, err := c.conn.Write(frame); err != nil {
		return nil, fmt.Errorf("compman: send: %w", err)
	}
	c.wbuf = frame[:0]
	payload, err := readWireFrame(c.r, &c.rbuf)
	if err != nil {
		return nil, fmt.Errorf("compman: receive: %w", err)
	}
	resp, err := decodePayload(payload, wireMsgResponse, "response", decodeResponseBody)
	if err != nil {
		return nil, fmt.Errorf("compman: %w", err)
	}
	if !resp.OK {
		if resp.Error == "" {
			resp.Error = "unspecified server error"
		}
		return nil, &QueryError{Msg: resp.Error, EpsilonCharged: resp.EpsilonCharged, RetryAfterMillis: resp.RetryAfterMillis}
	}
	return resp, nil
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpQuantum})
	return err
}

// Datasets lists the names registered on the server.
func (c *Client) Datasets() ([]string, error) {
	resp, err := c.roundTrip(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// Stats reads the server's activity counters.
func (c *Client) Stats() (ServerStats, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return ServerStats{}, err
	}
	if resp.Stats == nil {
		return ServerStats{}, errors.New("compman: server returned no stats")
	}
	return *resp.Stats, nil
}

// RemainingBudget reads a dataset's unspent privacy budget.
func (c *Client) RemainingBudget(dataset string) (float64, error) {
	resp, err := c.roundTrip(&Request{Op: OpBudget, Dataset: dataset})
	if err != nil {
		return 0, err
	}
	return resp.Remaining, nil
}

// Query runs one differentially private computation. The request must have
// Op unset or OpQuery; all other fields are as documented on Request.
func (c *Client) Query(req *Request) (*Response, error) {
	q := *req
	q.Op = OpQuery
	return c.roundTrip(&q)
}

// RegisterDataset pushes a dataset to the server (the data-owner
// interface).
func (c *Client) RegisterDataset(spec *RegisterSpec) error {
	_, err := c.roundTrip(&Request{Op: OpRegister, Register: spec})
	return err
}

// Session runs a budget-distributed query batch (§5.2) against one
// dataset: the total ε splits across the queries in proportion to their
// noise scales and is charged atomically.
func (c *Client) Session(dataset string, spec *SessionSpec) ([]SessionResult, error) {
	resp, err := c.roundTrip(&Request{Op: OpSession, Dataset: dataset, Session: spec})
	if err != nil {
		return nil, err
	}
	return resp.Session, nil
}
