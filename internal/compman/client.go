package compman

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client is the analyst-side computation-manager component: a thin,
// synchronized wrapper over the newline-delimited JSON protocol. It is safe
// for concurrent use; requests are serialized on the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to a computation-manager server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("compman: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<20),
		enc:  json.NewEncoder(conn),
	}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// QueryError is a server-refused operation, preserving the privacy budget
// the attempt consumed anyway. A query that aborted after its charge
// settled reports EpsilonCharged > 0 — the analyst paid for the failure
// (§6.2), and budget-tracking clients must account for it.
type QueryError struct {
	Msg            string
	EpsilonCharged float64
}

func (e *QueryError) Error() string { return e.Msg }

// roundTrip sends one request and decodes one response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("compman: send: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("compman: receive: %w", err)
	}
	resp, err := DecodeResponse(line)
	if err != nil {
		return nil, fmt.Errorf("compman: %w", err)
	}
	if !resp.OK {
		if resp.Error == "" {
			resp.Error = "unspecified server error"
		}
		return nil, &QueryError{Msg: resp.Error, EpsilonCharged: resp.EpsilonCharged}
	}
	return resp, nil
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpQuantum})
	return err
}

// Datasets lists the names registered on the server.
func (c *Client) Datasets() ([]string, error) {
	resp, err := c.roundTrip(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// Stats reads the server's activity counters.
func (c *Client) Stats() (ServerStats, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return ServerStats{}, err
	}
	if resp.Stats == nil {
		return ServerStats{}, errors.New("compman: server returned no stats")
	}
	return *resp.Stats, nil
}

// RemainingBudget reads a dataset's unspent privacy budget.
func (c *Client) RemainingBudget(dataset string) (float64, error) {
	resp, err := c.roundTrip(&Request{Op: OpBudget, Dataset: dataset})
	if err != nil {
		return 0, err
	}
	return resp.Remaining, nil
}

// Query runs one differentially private computation. The request must have
// Op unset or OpQuery; all other fields are as documented on Request.
func (c *Client) Query(req *Request) (*Response, error) {
	q := *req
	q.Op = OpQuery
	return c.roundTrip(&q)
}

// RegisterDataset pushes a dataset to the server (the data-owner
// interface).
func (c *Client) RegisterDataset(spec *RegisterSpec) error {
	_, err := c.roundTrip(&Request{Op: OpRegister, Register: spec})
	return err
}

// Session runs a budget-distributed query batch (§5.2) against one
// dataset: the total ε splits across the queries in proportion to their
// noise scales and is charged atomically.
func (c *Client) Session(dataset string, spec *SessionSpec) ([]SessionResult, error) {
	resp, err := c.roundTrip(&Request{Op: OpSession, Dataset: dataset, Session: spec})
	if err != nil {
		return nil, err
	}
	return resp.Session, nil
}
