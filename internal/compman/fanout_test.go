package compman

import (
	"math"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"gupt/internal/faultinject"
)

// startKillableWorker is startWorker with an explicit kill switch, for
// tests that take a worker down mid-fleet rather than at cleanup.
func startKillableWorker(t *testing.T) (addr string, kill func()) {
	t.Helper()
	w := NewWorker(WorkerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Serve(l)
	}()
	var once sync.Once
	kill = func() {
		once.Do(func() {
			w.Close()
			wg.Wait()
		})
	}
	t.Cleanup(kill)
	return l.Addr().String(), kill
}

func fanoutQuery(t *testing.T, cfg ServerConfig, seed int64) *Response {
	t.Helper()
	c, _ := startServerCfg(t, 100, cfg)
	req := meanQuery(0.5, 250)
	req.Seed = seed
	resp, err := c.Query(req)
	if err != nil {
		t.Fatalf("query (cfg %+v): %v", cfg.WorkerAddrs, err)
	}
	return resp
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// The core acceptance invariant for sharding: the same seeded query
// answered locally, by a single worker, and by a four-worker fleet is
// bit-identical. All randomness (partition shuffle, Laplace draws) lives
// on the computation manager; workers only evaluate blocks, so block→
// worker placement must be output-invisible.
func TestFanoutBitIdentity(t *testing.T) {
	w1 := startWorker(t)
	w2 := startWorker(t)
	w3 := startWorker(t)
	w4 := startWorker(t)

	local := fanoutQuery(t, ServerConfig{}, 42)
	single := fanoutQuery(t, ServerConfig{WorkerAddrs: []string{w1}}, 42)
	fleet := fanoutQuery(t, ServerConfig{
		WorkerAddrs: []string{w1, w2, w3, w4},
		WorkerConns: 2,
	}, 42)

	for _, resp := range []*Response{local, single, fleet} {
		if resp.FailedBlocks != 0 {
			t.Fatalf("healthy run substituted %d blocks", resp.FailedBlocks)
		}
	}
	if !bitsEqual(local.Output, single.Output) {
		t.Errorf("1-worker output %v differs from local %v", single.Output, local.Output)
	}
	if !bitsEqual(local.Output, fleet.Output) {
		t.Errorf("4-worker output %v differs from local %v", fleet.Output, local.Output)
	}
}

func rankAddrs(addrs []string, idx int) []string {
	out := append([]string(nil), addrs...)
	sort.SliceStable(out, func(a, b int) bool {
		return rendezvousScore(out[a], idx) > rendezvousScore(out[b], idx)
	})
	return out
}

// Rendezvous assignment invariants, on the pure ranking function: the
// per-block worker ranking ignores configuration order, and removing one
// worker moves only the blocks that lived on it — every other block keeps
// its home (no rebalancing stampede on membership change).
func TestFanoutAssignmentStability(t *testing.T) {
	fleet := []string{"10.0.0.1:7200", "10.0.0.2:7200", "10.0.0.3:7200", "10.0.0.4:7200"}
	shuffled := []string{"10.0.0.3:7200", "10.0.0.1:7200", "10.0.0.4:7200", "10.0.0.2:7200"}
	const removed = "10.0.0.3:7200"
	survivors := []string{"10.0.0.1:7200", "10.0.0.2:7200", "10.0.0.4:7200"}

	homes := map[string]int{}
	for idx := 0; idx < 256; idx++ {
		rank := rankAddrs(fleet, idx)
		homes[rank[0]]++

		// Config-order independence: the whole ranking, not just the
		// home, is a pure function of (worker set, block index).
		perm := rankAddrs(shuffled, idx)
		for i := range rank {
			if rank[i] != perm[i] {
				t.Fatalf("block %d: ranking depends on address order: %v vs %v", idx, rank, perm)
			}
		}

		// Minimal-disruption on removal: survivors keep their blocks,
		// and an orphaned block falls to its next-ranked worker — the
		// same worker failover would have walked to.
		after := rankAddrs(survivors, idx)
		if rank[0] != removed {
			if after[0] != rank[0] {
				t.Fatalf("block %d moved from %s to %s though its home survived", idx, rank[0], after[0])
			}
		} else if after[0] != rank[1] {
			t.Fatalf("block %d orphaned to %s, want next-ranked %s", idx, after[0], rank[1])
		}
	}
	// Sanity: rendezvous actually spreads load — every worker is home to
	// a reasonable share of 256 blocks (fair share is 64).
	for _, addr := range fleet {
		if homes[addr] < 32 {
			t.Errorf("worker %s homes only %d/256 blocks", addr, homes[addr])
		}
	}
}

// Pool-level mirror of the stability test, against live workers: two
// pools configured with the same fleet in different order produce the
// same dispatch-order head for every block.
func TestFanoutPoolCandidateStability(t *testing.T) {
	addrs := []string{startWorker(t), startWorker(t), startWorker(t)}
	poolA, err := NewWorkerPool(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer poolA.Close()
	poolB, err := NewWorkerPool([]string{addrs[2], addrs[0], addrs[1]})
	if err != nil {
		t.Fatal(err)
	}
	defer poolB.Close()

	for idx := 0; idx < 64; idx++ {
		a := poolA.candidates(idx)
		b := poolB.candidates(idx)
		if a[0].addr != b[0].addr {
			t.Fatalf("block %d homed on %s by one pool, %s by the other", idx, a[0].addr, b[0].addr)
		}
	}
}

// Satellite 4, the fleet chaos drill: one worker stalls every reply long
// past the straggler threshold, another is killed outright after the
// server connects. The merged answer must be bit-identical to a healthy
// single-worker run, with zero substituted blocks and the privacy budget
// charged exactly once.
func TestFanoutStragglerAndDeadWorker(t *testing.T) {
	w1 := startWorker(t)

	// w2 answers correctly but stalls every reply by 600ms.
	stalled := NewWorker(WorkerConfig{})
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go stalled.Serve(sl)
	t.Cleanup(func() { stalled.Close() })
	proxy := &faultinject.Proxy{
		Upstream: sl.Addr().String(),
		Schedule: &faultinject.ProtoSchedule{
			Plan:     []faultinject.ProtoFault{faultinject.ProtoStall},
			StallFor: 600 * time.Millisecond,
		},
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	w3, killW3 := startKillableWorker(t)

	const total = 100.0
	const eps = 0.5
	c, srv := startServerCfg(t, total, ServerConfig{
		WorkerAddrs:    []string{w1, proxy.Addr().String(), w3},
		StragglerAfter: 100 * time.Millisecond,
		BlockTimeout:   10 * time.Second,
	})
	killW3() // dies after the pool connected: blocks homed there must fail over

	req := meanQuery(eps, 250)
	req.Seed = 911
	resp, err := c.Query(req)
	if err != nil {
		t.Fatalf("chaos query: %v", err)
	}
	if resp.FailedBlocks != 0 {
		t.Errorf("chaos run substituted %d blocks; redundancy should have covered them", resp.FailedBlocks)
	}

	golden := fanoutQuery(t, ServerConfig{WorkerAddrs: []string{w1}}, 911)
	if !bitsEqual(resp.Output, golden.Output) {
		t.Errorf("chaos output %v differs from healthy single-worker output %v", resp.Output, golden.Output)
	}

	// Budget charged exactly once: duplicate dispatches and failovers are
	// transport events, invisible to the ledger.
	rem, err := c.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-(total-eps)) > 1e-9 {
		t.Errorf("remaining budget %v, want %v (exactly one charge)", rem, total-eps)
	}

	// The recovery machinery actually engaged: with 18 blocks over 3
	// workers it is vanishingly unlikely neither the stalled nor the dead
	// worker was home to any block.
	redispatch := srv.Telemetry().Counter("compman.pool.straggler_redispatch").Value()
	failovers := srv.Telemetry().Counter("compman.pool.failovers").Value()
	if redispatch+failovers == 0 {
		t.Error("no straggler redispatch and no failover happened — chaos never bit")
	}
}
