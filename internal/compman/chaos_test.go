package compman

import (
	"context"
	"errors"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gupt/internal/faultinject"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

// chamberFunc adapts a function to sandbox.Chamber for test wrappers.
type chamberFunc func(context.Context, []mathutil.Vec) (mathutil.Vec, error)

func (f chamberFunc) Execute(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
	return f(ctx, block)
}

// faultWrapper builds a ServerConfig.ChamberWrapper injecting the given
// schedule around every chamber the server creates.
func faultWrapper(sched *faultinject.Schedule) func(sandbox.Chamber) sandbox.Chamber {
	return func(inner sandbox.Chamber) sandbox.Chamber {
		return &faultinject.Chamber{Inner: inner, Schedule: sched, OutputDims: 1}
	}
}

func meanQuery(eps float64, blockSize int) *Request {
	return &Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      eps,
		BlockSize:    blockSize,
		Seed:         7,
	}
}

// A query whose chambers crash and emit garbage on a fixed seed must still
// succeed — degraded, with the failures visible in the response, the
// operator stats, and exactly its ε (no more) gone from the ledger.
func TestChaosQueryDegradesUnderChamberFaults(t *testing.T) {
	sched := &faultinject.Schedule{
		Seed: 11,
		Rates: map[faultinject.Kind]float64{
			faultinject.CrashBefore: 0.15,
			faultinject.Garbage:     0.15,
			faultinject.WrongArity:  0.10,
		},
	}
	c, _ := startServerCfg(t, 10, ServerConfig{ChamberWrapper: faultWrapper(sched)})

	const eps = 0.5
	resp, err := c.Query(meanQuery(eps, 250)) // 5000 rows → 20 blocks
	if err != nil {
		t.Fatal(err)
	}
	if resp.FailedBlocks == 0 {
		t.Fatal("fault schedule injected nothing — vacuous chaos test")
	}
	if resp.FailedBlocks >= resp.NumBlocks {
		t.Fatalf("all %d blocks failed; expected a degraded, not destroyed, query", resp.NumBlocks)
	}
	if math.IsNaN(resp.Output[0]) || math.IsInf(resp.Output[0], 0) {
		t.Errorf("garbage leaked into the release: %v", resp.Output)
	}
	if resp.EpsilonCharged != eps {
		t.Errorf("EpsilonCharged = %v, want %v", resp.EpsilonCharged, eps)
	}
	rem, err := c.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-(10-eps)) > 1e-9 {
		t.Errorf("remaining budget %v, want %v", rem, 10-eps)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueriesDegraded != 1 {
		t.Errorf("QueriesDegraded = %d, want 1", stats.QueriesDegraded)
	}
	if stats.BlocksSubstituted != int64(resp.FailedBlocks) {
		t.Errorf("BlocksSubstituted = %d, want %d", stats.BlocksSubstituted, resp.FailedBlocks)
	}
}

// Budget-charged-on-abort (paper §6.2): a query that fails after its charge
// settled must consume its ε — an analyst cannot convert forced failures
// into refunded budget. Covers both abort paths (query deadline, quality
// guard) and contrasts them with a pre-charge budget refusal, which
// consumes nothing.
func TestBudgetChargedOnAbort(t *testing.T) {
	const total = 10.0
	cases := []struct {
		name        string
		cfg         func() ServerConfig
		eps         float64
		wantCharged bool
	}{
		{
			name: "hang past query deadline",
			cfg: func() ServerConfig {
				sched := &faultinject.Schedule{
					Plan:    []faultinject.Kind{faultinject.Hang},
					HangFor: 10 * time.Second,
				}
				return ServerConfig{
					ChamberWrapper: faultWrapper(sched),
					QueryTimeout:   150 * time.Millisecond,
				}
			},
			eps:         1,
			wantCharged: true,
		},
		{
			name: "all blocks crash past quality guard",
			cfg: func() ServerConfig {
				sched := &faultinject.Schedule{Plan: []faultinject.Kind{faultinject.CrashBefore}}
				return ServerConfig{
					ChamberWrapper: faultWrapper(sched),
					MaxFailFrac:    0.5,
				}
			},
			eps:         1,
			wantCharged: true,
		},
		{
			name:        "budget refusal consumes nothing",
			cfg:         func() ServerConfig { return ServerConfig{} },
			eps:         total + 1,
			wantCharged: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := startServerCfg(t, total, tc.cfg())
			_, err := c.Query(meanQuery(tc.eps, 250))
			if err == nil {
				t.Fatal("query succeeded; expected an abort")
			}
			var qe *QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("error %T is not a *QueryError: %v", err, err)
			}
			rem, err := c.RemainingBudget("census")
			if err != nil {
				t.Fatal(err)
			}
			stats, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantCharged {
				if qe.EpsilonCharged != tc.eps {
					t.Errorf("EpsilonCharged = %v, want %v (abort must keep the charge)", qe.EpsilonCharged, tc.eps)
				}
				if math.Abs(rem-(total-tc.eps)) > 1e-9 {
					t.Errorf("remaining budget %v, want %v", rem, total-tc.eps)
				}
				if stats.QueriesAborted != 1 {
					t.Errorf("QueriesAborted = %d, want 1", stats.QueriesAborted)
				}
			} else {
				if qe.EpsilonCharged != 0 {
					t.Errorf("EpsilonCharged = %v, want 0 (refusal happens pre-charge)", qe.EpsilonCharged)
				}
				if rem != total {
					t.Errorf("remaining budget %v, want untouched %v", rem, total)
				}
				if stats.BudgetRefusals != 1 {
					t.Errorf("BudgetRefusals = %d, want 1", stats.BudgetRefusals)
				}
				if stats.QueriesAborted != 0 {
					t.Errorf("QueriesAborted = %d, want 0", stats.QueriesAborted)
				}
			}
		})
	}
}

// A transient failure burst must cost one retry, not the query — and the
// retry must not re-charge the budget.
func TestQueryRetryRecoversTransientFailure(t *testing.T) {
	// 5000 rows minus the 10% aged carve-out → 4500 private rows → 18
	// blocks at BlockSize 250.
	const blocks = 18
	var calls atomic.Int64
	wrapper := func(inner sandbox.Chamber) sandbox.Chamber {
		return chamberFunc(func(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
			if calls.Add(1) <= blocks {
				return nil, errors.New("transient chamber failure")
			}
			return inner.Execute(ctx, block)
		})
	}
	c, _ := startServerCfg(t, 10, ServerConfig{
		ChamberWrapper:  wrapper,
		MaxQueryRetries: 1,
		MaxFailFrac:     0.5,
	})

	const eps = 1.0
	resp, err := c.Query(meanQuery(eps, 250)) // exactly `blocks` blocks
	if err != nil {
		t.Fatalf("query did not recover via retry: %v", err)
	}
	if resp.NumBlocks != blocks {
		t.Fatalf("NumBlocks = %d, want %d (fault window mistargeted)", resp.NumBlocks, blocks)
	}
	if resp.FailedBlocks != 0 {
		t.Errorf("FailedBlocks = %d after recovery, want 0", resp.FailedBlocks)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueryRetries != 1 {
		t.Errorf("QueryRetries = %d, want 1", stats.QueryRetries)
	}
	if stats.QueriesOK != 1 || stats.QueriesAborted != 0 {
		t.Errorf("QueriesOK = %d, QueriesAborted = %d; want 1, 0", stats.QueriesOK, stats.QueriesAborted)
	}
	rem, err := c.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-(10-eps)) > 1e-9 {
		t.Errorf("remaining budget %v, want %v (retry must not re-charge)", rem, 10-eps)
	}
}

// A negative retry configuration must clamp to "run once", not skip
// execution entirely — skipping returned a nil result that crashed the
// query handler (found by probing `guptd -retries -1`).
func TestNegativeRetryConfigStillExecutes(t *testing.T) {
	c, _ := startServerCfg(t, 10, ServerConfig{MaxQueryRetries: -1})
	resp, err := c.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Output) != 1 {
		t.Errorf("output = %v, want one dimension", resp.Output)
	}
}

// A session's ε is charged atomically before anything runs; a member query
// that aborts must keep its allocation consumed while the rest of the batch
// completes (§5.2 + §6.2).
func TestSessionPartialFailureKeepsFullCharge(t *testing.T) {
	const blocks = 9 // per session query: 4500 private rows / BlockSize 500
	var calls atomic.Int64
	wrapper := func(inner sandbox.Chamber) sandbox.Chamber {
		return chamberFunc(func(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
			if calls.Add(1) <= blocks {
				return nil, errors.New("node down")
			}
			return inner.Execute(ctx, block)
		})
	}
	c, _ := startServerCfg(t, 10, ServerConfig{
		ChamberWrapper: wrapper,
		MaxFailFrac:    0.5,
	})

	const total = 1.0
	results, err := c.Session("census", &SessionSpec{
		TotalEpsilon: total,
		Queries: []SessionQuery{
			{Program: ProgramSpec{Type: "mean", Col: 0}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}}, BlockSize: 500},
			{Program: ProgramSpec{Type: "mean", Col: 0}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}}, BlockSize: 500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Error == "" {
		t.Error("first query survived the fault burst; expected an abort in its slot")
	}
	if results[0].EpsilonSpent <= 0 {
		t.Errorf("aborted query reports EpsilonSpent = %v; its allocation must stay consumed", results[0].EpsilonSpent)
	}
	if results[1].Error != "" {
		t.Errorf("second query failed: %s", results[1].Error)
	}
	if len(results[1].Output) != 1 {
		t.Errorf("second query output = %v, want one dimension", results[1].Output)
	}
	rem, err := c.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-(10-total)) > 1e-9 {
		t.Errorf("remaining budget %v, want %v (whole session charged atomically)", rem, 10-total)
	}
}

// Wire-level chaos: a faultinject.Proxy corrupts, truncates, stalls and
// severs worker replies between the pool and a real worker daemon. Every
// query must still come back well-formed — either a private answer with
// finite output or a charged error — and the ledger must account exactly
// for the charges.
func TestWorkerProtocolChaos(t *testing.T) {
	worker := NewWorker(WorkerConfig{})
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go worker.Serve(wl)
	t.Cleanup(func() { worker.Close() })

	proxy := &faultinject.Proxy{
		Upstream: wl.Addr().String(),
		Schedule: &faultinject.ProtoSchedule{
			Seed: 5,
			Rates: map[faultinject.ProtoFault]float64{
				faultinject.ProtoCorrupt:    0.10,
				faultinject.ProtoTruncate:   0.05,
				faultinject.ProtoDisconnect: 0.05,
				faultinject.ProtoStall:      0.10,
			},
			StallFor: 5 * time.Millisecond,
		},
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	const total = 10.0
	c, _ := startServerCfg(t, total, ServerConfig{
		WorkerAddrs:  []string{proxy.Addr().String()},
		BlockTimeout: 2 * time.Second,
	})

	const queries = 5
	const eps = 0.5
	charged := 0.0
	for i := 0; i < queries; i++ {
		req := meanQuery(eps, 250)
		req.Seed = int64(i)
		resp, err := c.Query(req)
		if err != nil {
			// An abort is acceptable under chaos, but it must be a
			// well-formed, charge-preserving refusal.
			var qe *QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("query %d: malformed failure %T: %v", i, err, err)
			}
			charged += qe.EpsilonCharged
			continue
		}
		charged += resp.EpsilonCharged
		if len(resp.Output) != 1 || math.IsNaN(resp.Output[0]) || math.IsInf(resp.Output[0], 0) {
			t.Errorf("query %d: corrupted output %v", i, resp.Output)
		}
	}
	if charged == 0 {
		t.Fatal("no query charged any budget — chaos destroyed the whole run")
	}
	rem, err := c.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-(total-charged)) > 1e-9 {
		t.Errorf("ledger off: remaining %v + charged %v != total %v", rem, charged, total)
	}
	if got := proxy.Schedule.Counts(); len(got) < 2 {
		t.Errorf("proxy injected too few fault kinds to be meaningful: %v", got)
	}
}
