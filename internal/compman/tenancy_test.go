package compman

import (
	"errors"
	"strings"
	"testing"

	"gupt/internal/dp"
	"gupt/internal/tenant"
)

// startTenantServer spins up a tenancy-enabled server over the census
// dataset with two tenants: alice (granted census) and bob (granted "*",
// admin). It returns the server, the registry, and each tenant's raw API
// key — the only time raw keys exist, same as production.
func startTenantServer(t *testing.T, totalBudget float64, cfg ServerConfig) (*Server, *tenant.Registry, map[string]string) {
	t.Helper()
	tenants := tenant.NewRegistry()
	keys := make(map[string]string)
	for _, id := range []string{"alice", "bob"} {
		key, err := tenants.Create(id)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = key
	}
	if err := tenants.Grant("alice", "census"); err != nil {
		t.Fatal(err)
	}
	if err := tenants.Grant("bob", "*"); err != nil {
		t.Fatal(err)
	}
	if err := tenants.SetAdmin("bob", true); err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = tenants
	_, srv := startServerCfg(t, totalBudget, cfg)
	return srv, tenants, keys
}

// dialAs connects a fresh client authenticated with the given API key.
func dialAs(t *testing.T, srv *Server, key string) *Client {
	t.Helper()
	client, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	client.SetAPIKey(key)
	return client
}

// TestTenancyAdmission is the front door's core contract: a valid key is
// admitted and its queries are tenant-attributed; a missing, wrong, or
// disabled key is refused with one uniform error before any charge.
func TestTenancyAdmission(t *testing.T) {
	srv, tenants, keys := startTenantServer(t, 100, ServerConfig{})

	alice := dialAs(t, srv, keys["alice"])
	resp, err := alice.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatalf("alice query: %v", err)
	}
	if resp.Tenant != "alice" {
		t.Errorf("response tenant = %q, want alice", resp.Tenant)
	}
	if got := tenants.Spent("alice", "census"); got != 0.5 {
		t.Errorf("alice quota accounting = %v, want 0.5", got)
	}

	for name, key := range map[string]string{
		"no key":    "",
		"wrong key": "gupt_" + strings.Repeat("00", 24),
	} {
		bad := dialAs(t, srv, key)
		_, err := bad.Query(meanQuery(0.5, 250))
		if err == nil || !strings.Contains(err.Error(), tenant.ErrUnauthenticated.Error()) {
			t.Errorf("%s: err = %v, want uniform unauthenticated refusal", name, err)
		}
		var qe *QueryError
		if errors.As(err, &qe) && qe.EpsilonCharged != 0 {
			t.Errorf("%s: refusal charged %v ε", name, qe.EpsilonCharged)
		}
	}
}

// TestTenantAuthorizationScopesDatasets checks grants gate both querying
// and listing, and that dataset registration is admin-only.
func TestTenantAuthorizationScopesDatasets(t *testing.T) {
	srv, tenants, keys := startTenantServer(t, 100, ServerConfig{})
	if err := tenants.Grant("carol", "nothing"); err == nil {
		t.Fatal("granting an unknown tenant must fail")
	}

	alice := dialAs(t, srv, keys["alice"])
	bob := dialAs(t, srv, keys["bob"])

	// Alice holds a grant for census only; an ungranted dataset refuses
	// identically whether or not it exists (no namespace probing).
	if _, err := alice.Query(meanQuery(0.5, 250)); err != nil {
		t.Fatalf("granted query: %v", err)
	}
	for _, ds := range []string{"secret", "census2"} {
		q := meanQuery(0.5, 250)
		q.Dataset = ds
		_, err := alice.Query(q)
		if err == nil || !strings.Contains(err.Error(), "not authorized") {
			t.Errorf("dataset %q: err = %v, want authorization refusal", ds, err)
		}
	}

	// Listing shows each tenant only its granted datasets.
	names, err := alice.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "census" {
		t.Errorf("alice sees %v, want [census]", names)
	}

	// Registration is the data-owner interface: bob (admin) may, alice not.
	spec := &RegisterSpec{Name: "new-ds", Columns: []string{"x"}, Rows: [][]float64{{1}, {2}, {3}}, TotalBudget: 1}
	if err := alice.RegisterDataset(spec); err == nil || !strings.Contains(err.Error(), "not authorized") {
		t.Errorf("non-admin register: err = %v, want authorization refusal", err)
	}
	if err := bob.RegisterDataset(spec); err != nil {
		t.Errorf("admin register: %v", err)
	}
}

// TestTenantQuotaIsolation is the tenancy tentpole's budget contract:
// exhausting tenant A's quota must not block tenant B, must not move the
// dataset-global budget, and must classify as a budget refusal.
func TestTenantQuotaIsolation(t *testing.T) {
	srv, tenants, keys := startTenantServer(t, 100, ServerConfig{})
	if err := tenants.SetQuota("alice", "census", 0.5); err != nil {
		t.Fatal(err)
	}

	alice := dialAs(t, srv, keys["alice"])
	bob := dialAs(t, srv, keys["bob"])

	if _, err := alice.Query(meanQuery(0.5, 250)); err != nil {
		t.Fatalf("in-quota query: %v", err)
	}
	remBefore, err := bob.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}

	// Alice is at her ceiling: the next charge refuses at the quota layer,
	// before anything durable, so the global budget must not move.
	_, err = alice.Query(meanQuery(0.25, 250))
	if err == nil || !strings.Contains(err.Error(), dp.ErrBudgetExhausted.Error()) {
		t.Fatalf("over-quota query: err = %v, want budget refusal", err)
	}
	var qe *QueryError
	if errors.As(err, &qe) && qe.EpsilonCharged != 0 {
		t.Errorf("quota refusal charged %v ε", qe.EpsilonCharged)
	}
	remAfter, err := bob.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if remAfter != remBefore {
		t.Errorf("global budget moved on a quota refusal: %v -> %v", remBefore, remAfter)
	}

	// Bob is unaffected by alice's exhaustion.
	if _, err := bob.Query(meanQuery(0.5, 250)); err != nil {
		t.Errorf("bob blocked by alice's quota: %v", err)
	}
	if got := tenants.Spent("alice", "census"); got != 0.5 {
		t.Errorf("alice spent = %v after refusal, want 0.5", got)
	}
}

// TestRateLimitRejectionChargesZero: a tenant over its QPS policy is
// rejected with a Retry-After hint and zero ε movement, global and quota.
func TestRateLimitRejectionChargesZero(t *testing.T) {
	srv, tenants, keys := startTenantServer(t, 100, ServerConfig{})
	// One-token burst, glacial refill: the second immediate query rejects.
	if err := tenants.SetLimits("alice", 0.0001, 1, 0); err != nil {
		t.Fatal(err)
	}
	alice := dialAs(t, srv, keys["alice"])
	bob := dialAs(t, srv, keys["bob"])

	if _, err := alice.Query(meanQuery(0.5, 250)); err != nil {
		t.Fatalf("first query: %v", err)
	}
	remBefore, err := bob.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	_, err = alice.Query(meanQuery(0.5, 250))
	var qe *QueryError
	if !errors.As(err, &qe) || !strings.Contains(qe.Msg, "rate limited") {
		t.Fatalf("second query: err = %v, want rate-limit rejection", err)
	}
	if qe.RetryAfterMillis <= 0 {
		t.Errorf("RetryAfterMillis = %d, want a positive backoff hint", qe.RetryAfterMillis)
	}
	if qe.EpsilonCharged != 0 {
		t.Errorf("rate-limit rejection charged %v ε", qe.EpsilonCharged)
	}
	remAfter, err := bob.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if remAfter != remBefore {
		t.Errorf("global budget moved on a rate-limit rejection: %v -> %v", remBefore, remAfter)
	}
	if got := tenants.Spent("alice", "census"); got != 0.5 {
		t.Errorf("alice quota moved on a rejection: %v, want 0.5", got)
	}
	// Bob's independent bucket admits him.
	if _, err := bob.Query(meanQuery(0.5, 250)); err != nil {
		t.Errorf("bob rate-limited by alice's flood: %v", err)
	}
}

// TestTenantPartitionedCache: an identical query is a cache hit for the
// tenant that released it but a fresh (charged) run for any other tenant —
// tenant B can never probe tenant A's query history through hit/miss.
func TestTenantPartitionedCache(t *testing.T) {
	srv, _, keys := startTenantServer(t, 100, ServerConfig{CacheEntries: 64})
	alice := dialAs(t, srv, keys["alice"])
	bob := dialAs(t, srv, keys["bob"])

	q := meanQuery(0.5, 250)
	first, err := alice.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first release flagged as cache hit")
	}
	repeat, err := alice.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.CacheHit || repeat.EpsilonCharged != 0 {
		t.Errorf("same-tenant repeat: hit=%v charged=%v, want free hit", repeat.CacheHit, repeat.EpsilonCharged)
	}
	cross, err := bob.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if cross.CacheHit {
		t.Error("cross-tenant repeat served from another tenant's cache partition")
	}
	if cross.EpsilonCharged != 0.5 {
		t.Errorf("cross-tenant repeat charged %v, want a fresh 0.5 charge", cross.EpsilonCharged)
	}
}

// TestTenancyOffBackwardCompatible: without a tenant registry the server
// behaves exactly as before — keyless clients admitted, key-bearing clients
// admitted too (the key is simply ignored), no tenant echo.
func TestTenancyOffBackwardCompatible(t *testing.T) {
	client, _ := startServer(t, 100)
	client.SetAPIKey("gupt_deadbeef") // must be harmless
	resp, err := client.Query(meanQuery(0.5, 250))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "" {
		t.Errorf("single-tenant response echoes tenant %q", resp.Tenant)
	}
}

// TestV2ClientAgainstTenancyServer: a pre-tenancy (v2) client structurally
// cannot present a key, so a tenancy-enabled server refuses it at admission
// — fail closed — while a tenancy-off server still serves it fine.
func TestV2ClientAgainstTenancyServer(t *testing.T) {
	srv, _, keys := startTenantServer(t, 100, ServerConfig{})
	old, err := DialVersion(srv.Addr().String(), WireVersionBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if old.WireVersion() != WireVersionBinary {
		t.Fatalf("negotiated %d, want v2", old.WireVersion())
	}
	old.SetAPIKey(keys["alice"]) // silently dropped by the v2 framing
	_, err = old.Query(meanQuery(0.5, 250))
	if err == nil || !strings.Contains(err.Error(), tenant.ErrUnauthenticated.Error()) {
		t.Fatalf("v2 client admitted to a tenancy-enabled server: err = %v", err)
	}

	clientOffSrv, _ := startServer(t, 100)
	oldOff, err := DialVersion(clientOffSrv.conn.RemoteAddr().String(), WireVersionBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer oldOff.Close()
	if _, err := oldOff.Query(meanQuery(0.5, 250)); err != nil {
		t.Errorf("v2 client against tenancy-off server: %v", err)
	}
}
