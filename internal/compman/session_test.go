package compman

import (
	"math"
	"strings"
	"testing"
)

func TestSessionOverWire(t *testing.T) {
	client, _ := startServer(t, 100)
	results, err := client.Session("census", &SessionSpec{
		TotalEpsilon: 4,
		Queries: []SessionQuery{
			{
				Program:      ProgramSpec{Type: "mean", Col: 0},
				OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
				Seed:         1,
			},
			{
				Program:      ProgramSpec{Type: "median", Col: 0},
				OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
				Seed:         2,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	// Equal ranges -> even split.
	if math.Abs(results[0].EpsilonSpent-2) > 1e-9 || math.Abs(results[1].EpsilonSpent-2) > 1e-9 {
		t.Errorf("allocations = %v, %v", results[0].EpsilonSpent, results[1].EpsilonSpent)
	}
	for i, r := range results {
		if math.Abs(r.Output[0]-40) > 15 {
			t.Errorf("query %d output = %v", i, r.Output[0])
		}
	}
	// One atomic charge of the session total.
	rem, _ := client.RemainingBudget("census")
	if math.Abs(rem-96) > 1e-9 {
		t.Errorf("remaining = %v, want 96", rem)
	}
}

func TestSessionOverWireProportional(t *testing.T) {
	client, _ := startServer(t, 100)
	results, err := client.Session("census", &SessionSpec{
		TotalEpsilon: 2,
		Queries: []SessionQuery{
			{Program: ProgramSpec{Type: "mean", Col: 0}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}}},
			{Program: ProgramSpec{Type: "variance", Col: 0}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 5625}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The wide-range variance query receives 5625/5775 of the budget.
	ratio := results[1].EpsilonSpent / results[0].EpsilonSpent
	if math.Abs(ratio-37.5) > 0.01 {
		t.Errorf("allocation ratio = %v, want 37.5", ratio)
	}
}

func TestSessionOverWireValidation(t *testing.T) {
	client, _ := startServer(t, 1)
	cases := []struct {
		name string
		ds   string
		spec *SessionSpec
		want string
	}{
		{"nil payload", "census", nil, "missing payload"},
		{"empty", "census", &SessionSpec{TotalEpsilon: 1}, "empty session"},
		{"unknown dataset", "ghost", &SessionSpec{TotalEpsilon: 1, Queries: []SessionQuery{{
			Program: ProgramSpec{Type: "mean"}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}},
		}}}, "not found"},
		{"binary member", "census", &SessionSpec{TotalEpsilon: 1, Queries: []SessionQuery{{
			Program: ProgramSpec{Type: "binary", Path: "/x", OutputDims: 1}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}},
		}}}, "not supported"},
		{"range arity", "census", &SessionSpec{TotalEpsilon: 1, Queries: []SessionQuery{{
			Program: ProgramSpec{Type: "mean"}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}},
		}}}, "ranges"},
		{"over budget", "census", &SessionSpec{TotalEpsilon: 5, Queries: []SessionQuery{{
			Program: ProgramSpec{Type: "mean"}, OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		}}}, "budget exhausted"},
	}
	for _, c := range cases {
		_, err := client.Session(c.ds, c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
	// Failed sessions consumed nothing.
	rem, _ := client.RemainingBudget("census")
	if rem != 1 {
		t.Errorf("failed sessions consumed budget: %v", rem)
	}
}
