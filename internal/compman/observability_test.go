package compman

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"gupt/internal/telemetry"
	"gupt/internal/telemetry/audit"
)

// TestFanoutQueryObservability is the PR's served-path acceptance check:
// a query fanned out across four workers must leave a trace whose span
// tree shows the queue wait, the scheduler's admit decision, and one
// dispatch span per observed block result attributed to the worker that
// ran it — and the flight recorder must hold the same query with its ε
// cost, block count, and per-worker fan-out tallies.
func TestFanoutQueryObservability(t *testing.T) {
	w1, w2, w3, w4 := startWorker(t), startWorker(t), startWorker(t), startWorker(t)
	workers := []string{w1, w2, w3, w4}
	client, srv := startServerCfg(t, 100, ServerConfig{
		WorkerAddrs: workers,
		WorkerConns: 2,
	})

	const eps = 0.5
	resp, err := client.Query(meanQuery(eps, 250)) // 5000 rows → 20 blocks
	if err != nil {
		t.Fatal(err)
	}

	snaps := srv.Traces()
	if len(snaps) != 1 {
		t.Fatalf("Traces() returned %d traces, want 1", len(snaps))
	}
	tr := snaps[0]
	if tr.ID != resp.TraceID || tr.Outcome != "ok" {
		t.Fatalf("trace = id %q outcome %q, want id %q outcome ok", tr.ID, tr.Outcome, resp.TraceID)
	}

	// The scheduler's self-observation: a queue-wait span and an admitted
	// decision, both recorded by the server process itself.
	var sawQueue, sawDecision bool
	dispatchByWorker := map[string]int{}
	for _, sp := range tr.Spans {
		switch sp.Stage {
		case telemetry.StageSchedQueue:
			sawQueue = sp.Status == telemetry.StatusOK
		case telemetry.StageSchedDecision:
			sawDecision = sp.Status == telemetry.StatusOK
		case telemetry.StageFanoutDispatch:
			if !strings.HasPrefix(sp.Process, "worker:") {
				t.Errorf("dispatch span attributed to %q, want worker:<addr>", sp.Process)
			}
			dispatchByWorker[sp.Process]++
		}
	}
	if !sawQueue {
		t.Error("trace has no ok sched.queue span")
	}
	if !sawDecision {
		t.Error("trace has no admitted sched.decision span")
	}
	total := 0
	for proc, n := range dispatchByWorker {
		addr := strings.TrimPrefix(proc, "worker:")
		found := false
		for _, w := range workers {
			if w == addr {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("dispatch span names unknown worker %q", proc)
		}
		total += n
	}
	// Every block's winning result records one dispatch span; losing race
	// duplicates record nothing, so the total is exactly the block count
	// (no stragglers or failovers fire against healthy local workers).
	if total != resp.NumBlocks {
		t.Errorf("observed %d dispatch spans, want %d (one per block)", total, resp.NumBlocks)
	}
	if len(dispatchByWorker) < 2 {
		t.Errorf("all %d blocks landed on %d worker(s); fan-out attribution is vacuous", total, len(dispatchByWorker))
	}

	// The same query in the flight recorder, with cost and fan-out tallies.
	flights := srv.Flights()
	if len(flights) != 1 {
		t.Fatalf("Flights() returned %d records, want 1", len(flights))
	}
	fl := flights[0]
	if fl.ID != resp.TraceID {
		t.Errorf("flight id %q, want %q", fl.ID, resp.TraceID)
	}
	if math.Abs(fl.EpsilonCharged-eps) > 1e-9 || fl.Blocks != resp.NumBlocks {
		t.Errorf("flight cost = ε %v over %d blocks, want ε %v over %d",
			fl.EpsilonCharged, fl.Blocks, eps, resp.NumBlocks)
	}
	var dispatches int
	for _, w := range fl.Workers {
		if !strings.HasPrefix(w.Process, "worker:") {
			t.Errorf("flight worker %q not attributed", w.Process)
		}
		dispatches += w.Dispatches
	}
	if dispatches != resp.NumBlocks {
		t.Errorf("flight worker dispatches = %d, want %d", dispatches, resp.NumBlocks)
	}
}

// TestRefusalObservability is the refused-path acceptance check: a query
// the scheduler turns away must be as observable as a served one — a
// trace in the ring whose sched.decision span carries the refusal status,
// a flight record with the reason and retry hint, and an audit record
// carrying both so the refusal is part of the tamper-evident history.
func TestRefusalObservability(t *testing.T) {
	dir := t.TempDir()
	alog, err := audit.Open(dir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer alog.Close()
	c0, srv := startServerCfg(t, 100, ServerConfig{
		ChamberWrapper: slowWrapper(200 * time.Millisecond),
		Sched:          SchedConfig{MaxConcurrent: 1, MaxQueue: 1},
		Audit:          alog,
	})
	addr := srv.Addr().String()
	c0.Close()

	const queries = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				return
			}
			defer cl.Close()
			<-start
			req := meanQuery(0.5, 2000)
			req.Seed = seed
			_, _ = cl.Query(req)
		}(int64(i))
	}
	close(start)
	wg.Wait()

	refused := srv.Telemetry().Counter("compman.queries_overloaded").Value()
	if refused == 0 {
		t.Fatal("no query was refused — overload never materialized (vacuous test)")
	}

	// Refused queries get traces too, with the verdict on the decision span.
	var refusedTraces int
	for _, tr := range srv.Traces() {
		if tr.Outcome != "overloaded" {
			continue
		}
		refusedTraces++
		var verdict string
		for _, sp := range tr.Spans {
			if sp.Stage == telemetry.StageSchedDecision {
				verdict = sp.Status
			}
		}
		if verdict != telemetry.StatusRefusedBusy && verdict != telemetry.StatusRefusedExpired {
			t.Errorf("refused trace %s decision span status = %q", tr.ID, verdict)
		}
	}
	if int64(refusedTraces) != refused {
		t.Errorf("traces show %d refusals, scheduler counted %d", refusedTraces, refused)
	}

	// The flight recorder names the reason and the retry hint, at zero ε.
	var refusedFlights int
	for _, fl := range srv.Flights() {
		if fl.Outcome != "overloaded" {
			continue
		}
		refusedFlights++
		if fl.Reason != "queue_full" && fl.Reason != "deadline_unmeetable" {
			t.Errorf("refused flight reason = %q", fl.Reason)
		}
		if fl.RetryAfterMillis < 1 {
			t.Errorf("refused flight carries no retry hint: %+v", fl)
		}
		if fl.EpsilonCharged != 0 {
			t.Errorf("refusal charged ε %v in the flight record", fl.EpsilonCharged)
		}
	}
	if int64(refusedFlights) != refused {
		t.Errorf("flight recorder shows %d refusals, scheduler counted %d", refusedFlights, refused)
	}

	// Satellite 1: every scheduler refusal is on the audit record with its
	// reason and retry hint, before any ε moved.
	if err := alog.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := audit.Read(dir, func(rec audit.Record) bool {
		return rec.Outcome == "overloaded"
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != refused {
		t.Fatalf("audit log holds %d refusal records, want %d", len(recs), refused)
	}
	for _, rec := range recs {
		if rec.Reason != "queue_full" && rec.Reason != "deadline_unmeetable" {
			t.Errorf("audit refusal reason = %q", rec.Reason)
		}
		if rec.RetryAfterMillis < 1 {
			t.Errorf("audit refusal has no retry hint: %+v", rec)
		}
		if rec.EpsilonCharged != 0 {
			t.Errorf("audit refusal charged ε: %+v", rec)
		}
		if rec.Dataset != "census" {
			t.Errorf("audit refusal dataset = %q", rec.Dataset)
		}
	}
}
