package compman

import (
	"math"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// buildCensusRegistry mirrors startServer's dataset without the server.
func buildCensusRegistry(t *testing.T, totalBudget float64) *dataset.Registry {
	t.Helper()
	reg := dataset.NewRegistry()
	rng := mathutil.NewRNG(1)
	tbl := dataset.New([]string{"age"})
	for i := 0; i < 2000; i++ {
		if err := tbl.Append(mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Register("census", tbl, dataset.RegisterOptions{
		TotalBudget: totalBudget,
		Ranges:      []dp.Range{{Lo: 0, Hi: 150}},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func serveOnce(t *testing.T, reg *dataset.Registry, statePath string) (*Client, func()) {
	t.Helper()
	srv := NewServer(reg, ServerConfig{StatePath: statePath})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(l)
	}()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	stop := func() {
		client.Close()
		srv.Close()
		wg.Wait()
	}
	return client, stop
}

// The security property the ledger journal exists for: spent privacy budget
// survives a server restart, so crashing the server never refunds epsilon.
func TestBudgetSurvivesServerRestart(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "ledger.json")

	// First server lifetime: spend 7 of 10.
	client, stop := serveOnce(t, buildCensusRegistry(t, 10), statePath)
	_, err := client.Query(&Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop()

	// "Restart": a fresh registry restored from the journal.
	reg2 := buildCensusRegistry(t, 10)
	if err := reg2.RestoreBudgets(statePath); err != nil {
		t.Fatal(err)
	}
	client2, stop2 := serveOnce(t, reg2, statePath)
	defer stop2()

	rem, err := client2.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-3) > 1e-9 {
		t.Fatalf("remaining after restart = %v, want 3", rem)
	}
	// A query that would have fit the original budget is now refused.
	_, err = client2.Query(&Request{
		Dataset:      "census",
		Program:      &ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      5,
	})
	if err == nil || !strings.Contains(err.Error(), "budget exhausted") {
		t.Fatalf("post-restart overspend err = %v", err)
	}
}
