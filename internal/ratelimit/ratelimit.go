// Package ratelimit implements the per-tenant admission throttle for the
// multi-tenant front door: a token bucket for sustained request rate plus a
// concurrency ceiling, keyed by an opaque principal id. A rejected
// acquisition carries a retry-after hint that guptd surfaces to the client
// (Response.RetryAfterMillis) — the §6.2 posture extended to capacity:
// rejections happen before any privacy charge, so a rate-limited request
// costs zero ε.
//
// The limiter is deliberately tiny and stdlib-only: one mutex, one bucket
// per key, lazy refill on access. The key space is the tenant registry, so
// the map is bounded by the number of registered tenants.
package ratelimit

import (
	"sync"
	"time"
)

// Limits is one principal's admission policy. The zero value is unlimited.
type Limits struct {
	// QPS is the sustained admission rate (token refill per second);
	// zero or negative disables rate limiting for the key.
	QPS float64
	// Burst is the bucket depth — how many requests may land back-to-back
	// before the sustained rate applies. Values below 1 act as 1 when QPS
	// is set.
	Burst int
	// MaxInflight caps concurrently admitted operations; zero or negative
	// disables the concurrency ceiling.
	MaxInflight int
}

// limited reports whether the policy constrains anything at all.
func (l Limits) limited() bool { return l.QPS > 0 || l.MaxInflight > 0 }

// bucket is one key's live state: the token balance, its last refill
// instant, and the number of admitted-but-unreleased operations.
type bucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

// Limiter admits operations per key under per-call Limits. Safe for
// concurrent use. The zero value is not usable; construct with New.
type Limiter struct {
	mu      sync.Mutex
	now     func() time.Time
	buckets map[string]*bucket
}

// New returns a limiter on the real clock.
func New() *Limiter { return NewWithClock(time.Now) }

// NewWithClock returns a limiter reading time from now — the test seam for
// deterministic refill arithmetic.
func NewWithClock(now func() time.Time) *Limiter {
	return &Limiter{now: now, buckets: make(map[string]*bucket)}
}

// minRetry floors the retry-after hint so a rejection always carries a
// positive, visible backoff (RetryAfterMillis ≥ 1 on the wire).
const minRetry = time.Millisecond

// Acquire admits one operation for key under lim. On admission it returns
// ok=true and a release func that MUST be called when the operation
// completes (it frees the concurrency slot; calling it more than once is
// harmless). On rejection it returns ok=false and a retry-after hint: the
// time until a token accrues for a rate rejection, or a fixed short
// backoff for a concurrency rejection (slot lifetimes are unknowable).
//
// An unlimited policy (zero Limits) admits immediately without touching
// any bucket state.
func (l *Limiter) Acquire(key string, lim Limits) (release func(), retryAfter time.Duration, ok bool) {
	if !lim.limited() {
		return func() {}, 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	b := l.buckets[key]
	now := l.now()
	if b == nil {
		b = &bucket{last: now}
		if lim.QPS > 0 {
			b.tokens = float64(max(lim.Burst, 1)) // a fresh key starts with a full burst
		}
		l.buckets[key] = b
	}

	if lim.QPS > 0 {
		depth := float64(max(lim.Burst, 1))
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * lim.QPS
			if b.tokens > depth {
				b.tokens = depth
			}
		}
		b.last = now
	}

	if lim.MaxInflight > 0 && b.inflight >= lim.MaxInflight {
		return nil, 100 * time.Millisecond, false
	}
	if lim.QPS > 0 {
		if b.tokens < 1 {
			wait := time.Duration((1 - b.tokens) / lim.QPS * float64(time.Second))
			if wait < minRetry {
				wait = minRetry
			}
			return nil, wait, false
		}
		b.tokens--
	}

	b.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			b.inflight--
			l.mu.Unlock()
		})
	}, 0, true
}

// Inflight reports the key's currently admitted-but-unreleased count —
// an observability read, used by tests and the admin tenant view.
func (l *Limiter) Inflight(key string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b := l.buckets[key]; b != nil {
		return b.inflight
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
