package ratelimit

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestUnlimitedPolicyAlwaysAdmits(t *testing.T) {
	l := New()
	for i := 0; i < 1000; i++ {
		release, retry, ok := l.Acquire("t", Limits{})
		if !ok || retry != 0 {
			t.Fatalf("unlimited acquire %d: ok=%v retry=%v", i, ok, retry)
		}
		release()
	}
}

func TestBurstThenRateRejection(t *testing.T) {
	clk := newFakeClock()
	l := NewWithClock(clk.now)
	lim := Limits{QPS: 10, Burst: 3}

	for i := 0; i < 3; i++ {
		release, _, ok := l.Acquire("t", lim)
		if !ok {
			t.Fatalf("burst acquire %d rejected", i)
		}
		release()
	}
	_, retry, ok := l.Acquire("t", lim)
	if ok {
		t.Fatal("4th immediate acquire admitted past burst")
	}
	// Bucket is empty: next token at 1/QPS = 100ms.
	if retry < 50*time.Millisecond || retry > 150*time.Millisecond {
		t.Fatalf("retry hint %v, want ~100ms", retry)
	}

	clk.advance(retry)
	release, _, ok := l.Acquire("t", lim)
	if !ok {
		t.Fatal("acquire after waiting the hinted retry still rejected")
	}
	release()
}

func TestRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	l := NewWithClock(clk.now)
	lim := Limits{QPS: 100, Burst: 2}

	for i := 0; i < 2; i++ {
		r, _, ok := l.Acquire("t", lim)
		if !ok {
			t.Fatalf("drain %d rejected", i)
		}
		r()
	}
	clk.advance(time.Hour) // refill far past the bucket depth
	admitted := 0
	for i := 0; i < 10; i++ {
		r, _, ok := l.Acquire("t", lim)
		if ok {
			admitted++
			r()
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d back-to-back after long idle, want burst depth 2", admitted)
	}
}

func TestConcurrencyCeiling(t *testing.T) {
	l := New()
	lim := Limits{MaxInflight: 2}

	r1, _, ok1 := l.Acquire("t", lim)
	r2, _, ok2 := l.Acquire("t", lim)
	if !ok1 || !ok2 {
		t.Fatal("first two inflight acquisitions rejected")
	}
	if _, retry, ok := l.Acquire("t", lim); ok {
		t.Fatal("third concurrent acquire admitted past MaxInflight=2")
	} else if retry <= 0 {
		t.Fatalf("concurrency rejection carries no retry hint: %v", retry)
	}
	if got := l.Inflight("t"); got != 2 {
		t.Fatalf("Inflight=%d, want 2", got)
	}
	r1()
	r1() // double release must not free a second slot
	if got := l.Inflight("t"); got != 1 {
		t.Fatalf("Inflight after release=%d, want 1", got)
	}
	r3, _, ok := l.Acquire("t", lim)
	if !ok {
		t.Fatal("acquire after release rejected")
	}
	r3()
	r2()
	if got := l.Inflight("t"); got != 0 {
		t.Fatalf("Inflight after all releases=%d, want 0", got)
	}
}

func TestKeysAreIndependent(t *testing.T) {
	clk := newFakeClock()
	l := NewWithClock(clk.now)
	lim := Limits{QPS: 1, Burst: 1}

	if _, _, ok := l.Acquire("a", lim); !ok {
		t.Fatal("tenant a's first acquire rejected")
	}
	if _, _, ok := l.Acquire("a", lim); ok {
		t.Fatal("tenant a's second immediate acquire admitted")
	}
	// Tenant b has its own bucket and must be unaffected by a's exhaustion.
	if _, _, ok := l.Acquire("b", lim); !ok {
		t.Fatal("tenant b rejected after tenant a exhausted its own bucket")
	}
}

func TestRetryHintIsAlwaysPositive(t *testing.T) {
	clk := newFakeClock()
	l := NewWithClock(clk.now)
	lim := Limits{QPS: 1e9, Burst: 1} // near-instant refill → tiny computed wait
	if _, _, ok := l.Acquire("t", lim); !ok {
		t.Fatal("first acquire rejected")
	}
	if _, retry, ok := l.Acquire("t", lim); !ok && retry < minRetry {
		t.Fatalf("retry hint %v below floor %v", retry, minRetry)
	}
}
