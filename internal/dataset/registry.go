package dataset

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// contentClock issues content versions. It is process-global and strictly
// monotonic, so a dataset re-registered under a previously used name can
// never repeat a version: any cache keyed on (name, version) structurally
// cannot confuse the two incarnations.
var contentClock atomic.Uint64

// nextContentVersion draws a fresh, never-before-issued content version.
func nextContentVersion() uint64 { return contentClock.Add(1) }

// Registry errors.
var (
	ErrNotFound  = errors.New("dataset: not found")
	ErrDuplicate = errors.New("dataset: already registered")
)

// Spender is a privacy-charge sink: Spend debits eps against a dataset's
// budget, returning dp.ErrBudgetExhausted when it cannot. The durable
// ledger (internal/ledger) implements it to interpose log-before-charge
// persistence in front of the in-memory accountant.
type Spender interface {
	Spend(label string, eps float64) error
}

// Registered is a dataset under the registry's management: the private
// records, the owner-declared total privacy budget (enforced by the
// embedded accountant), optional attribute ranges, and the aged sample used
// by the aging-of-sensitivity optimizers.
type Registered struct {
	Name string
	// Private holds the records whose privacy the platform protects.
	Private *Table
	// Aged holds records that have aged out of privacy protection
	// (paper §3.3). May be empty when the owner supplies no aged data; the
	// aging-based optimizers then fall back to defaults.
	Aged *Table
	// Accountant enforces the dataset's lifetime ε budget. Read budget
	// state (Remaining, Spent, History) here; route debits through Spend
	// so a durable charger, when bound, sees every charge.
	Accountant *dp.Accountant

	// charger, when bound, replaces the bare accountant on the charge
	// path. Written only before the dataset is reachable (at registration,
	// via the registry hook, or at boot before serving) — see BindCharger.
	charger Spender

	// version is the dataset's content version: assigned from the global
	// clock at registration and bumped on every mutation of the dataset's
	// tables. Released-answer caches fold it into their keys, so an answer
	// computed before a mutation can never be served to a query admitted
	// after it.
	version atomic.Uint64
}

// ContentVersion reads the dataset's current content version. Safe for
// concurrent use with BumpContentVersion.
func (r *Registered) ContentVersion() uint64 { return r.version.Load() }

// BumpContentVersion advances the dataset's content version to a fresh
// value from the global clock and returns it. Every code path that mutates
// the dataset's tables (replacing the aged sample, re-loading rows) must
// call this before the mutated state can influence a released answer.
func (r *Registered) BumpContentVersion() uint64 {
	v := nextContentVersion()
	r.version.Store(v)
	return v
}

// CacheHitRecorder is the optional interface a charger implements to
// journal ε=0 cache re-releases. The durable ledger's Backed accountant
// implements it so the WAL distinguishes a cache hit from a fresh spend.
type CacheHitRecorder interface {
	RecordCacheHit(label string) error
}

// TenantSpender is the optional interface a charger implements to attribute
// charges to a principal (PR 8). The durable ledger's Backed accountant
// implements it so the WAL's tenant column survives crash recovery.
// Chargers without it serve multi-tenant traffic fine — attribution just
// degrades to the default principal.
type TenantSpender interface {
	SpendAs(tenant, label string, eps float64) error
}

// TenantCacheHitRecorder is CacheHitRecorder with tenant attribution.
type TenantCacheHitRecorder interface {
	RecordCacheHitAs(tenant, label string) error
}

// RecordCacheHit journals an ε=0 cache re-release against the dataset's
// charger, when one is bound and supports it. It never touches the
// accountant: a cache hit moves no budget by construction.
func (r *Registered) RecordCacheHit(label string) error {
	if rec, ok := r.charger.(CacheHitRecorder); ok {
		return rec.RecordCacheHit(label)
	}
	return nil
}

// RecordCacheHitAs is RecordCacheHit attributed to a tenant id. Falls back
// through the tenant-blind recorder when the charger predates tenancy, and
// to a no-op when no charger is bound.
func (r *Registered) RecordCacheHitAs(tenant, label string) error {
	if tenant != "" {
		if rec, ok := r.charger.(TenantCacheHitRecorder); ok {
			return rec.RecordCacheHitAs(tenant, label)
		}
	}
	return r.RecordCacheHit(label)
}

// BindCharger routes the dataset's future charges through s (typically a
// ledger.Backed). It must be called before the dataset serves charges —
// at boot, or from the registry's registration hook, which runs before
// Register publishes the dataset — because the binding itself is not
// synchronized with concurrent Spend calls.
func (r *Registered) BindCharger(s Spender) { r.charger = s }

// Spend debits eps from the dataset's budget under label. All platform
// charge paths go through here: with a durable charger bound the debit is
// crash-safe (log-before-charge), otherwise it hits the in-memory
// accountant directly.
func (r *Registered) Spend(label string, eps float64) error {
	if r.charger != nil {
		return r.charger.Spend(label, eps)
	}
	return r.Accountant.Spend(label, eps)
}

// SpendAs debits eps attributed to a tenant id (PR 8). With a
// tenant-aware charger bound (the durable ledger) the attribution reaches
// the WAL; otherwise it degrades to an unattributed Spend so embedded and
// legacy deployments keep working. The empty tenant is exactly Spend.
func (r *Registered) SpendAs(tenant, label string, eps float64) error {
	if tenant != "" {
		if ts, ok := r.charger.(TenantSpender); ok {
			return ts.SpendAs(tenant, label, eps)
		}
	}
	return r.Spend(label, eps)
}

// HasAged reports whether an aged sample is available.
func (r *Registered) HasAged() bool { return r.Aged != nil && r.Aged.NumRows() > 0 }

// Registry is GUPT's dataset manager (paper Fig. 2): it registers dataset
// instances and owns their remaining privacy budgets. It is safe for
// concurrent use. Analyst-side code only ever receives dataset names, never
// the tables themselves; the computation manager resolves names through the
// registry on the trusted side.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*Registered
	hook RegisterHook
}

// RegisterHook runs inside Register, after validation but before the
// dataset becomes visible to Lookup. Returning an error fails the
// registration. The durable ledger installs one to bind every new
// dataset's charges to stable storage (fail closed: a dataset that cannot
// be made durable is not served).
type RegisterHook func(*Registered) error

// SetRegisterHook installs h for all future registrations (nil clears).
func (reg *Registry) SetRegisterHook(h RegisterHook) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.hook = h
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Registered)}
}

// RegisterOptions configures dataset registration.
type RegisterOptions struct {
	// TotalBudget is the dataset's lifetime ε budget (required, > 0).
	TotalBudget float64
	// Ranges optionally declares public per-attribute input bounds.
	Ranges []dp.Range
	// AgedFraction, if positive, deterministically carves that fraction of
	// the records (selected with Seed) into the aged, non-private sample.
	// Mutually exclusive with Aged.
	AgedFraction float64
	// Aged optionally supplies an explicit aged table drawn from the same
	// distribution (for example, a historical snapshot).
	Aged *Table
	// Seed drives the aged-fraction split; registration is deterministic in
	// (table, options).
	Seed int64
}

// Register adds a dataset under the given name. The table is used as-is
// (the registry takes ownership); callers must not retain and mutate it.
func (reg *Registry) Register(name string, t *Table, opts RegisterOptions) (*Registered, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: empty name")
	}
	if t == nil || t.NumRows() == 0 {
		return nil, fmt.Errorf("dataset: registering %q with no rows", name)
	}
	if !(opts.TotalBudget > 0) {
		return nil, fmt.Errorf("dataset: %q needs a positive total privacy budget, got %v", name, opts.TotalBudget)
	}
	if opts.Ranges != nil {
		if err := t.SetRanges(opts.Ranges); err != nil {
			return nil, err
		}
	}
	if opts.Aged != nil && opts.AgedFraction > 0 {
		return nil, fmt.Errorf("dataset: %q sets both Aged and AgedFraction", name)
	}
	if opts.Aged != nil && opts.Aged.NumRows() > 0 && opts.Aged.Dims() != t.Dims() {
		return nil, fmt.Errorf("dataset: %q aged sample has %d dims, dataset has %d",
			name, opts.Aged.Dims(), t.Dims())
	}

	private, aged := t, opts.Aged
	if opts.AgedFraction > 0 {
		if opts.AgedFraction >= 1 {
			return nil, fmt.Errorf("dataset: %q aged fraction %v must be in (0,1)", name, opts.AgedFraction)
		}
		aged, private = t.Split(mathutil.NewRNG(opts.Seed), opts.AgedFraction)
		if private.NumRows() == 0 {
			return nil, fmt.Errorf("dataset: %q aged fraction %v leaves no private rows", name, opts.AgedFraction)
		}
	}

	r := &Registered{
		Name:       name,
		Private:    private,
		Aged:       aged,
		Accountant: dp.NewAccountant(opts.TotalBudget),
	}
	r.version.Store(nextContentVersion())

	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.sets[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if reg.hook != nil {
		// Runs before the dataset is visible to Lookup, so a bound charger
		// is in place before any concurrent Spend can reach it. Lock
		// ordering: Registry.mu → (hook) Ledger.mu → Accountant.mu.
		if err := reg.hook(r); err != nil {
			return nil, err
		}
	}
	reg.sets[name] = r
	return r, nil
}

// Lookup returns the registered dataset with the given name.
func (reg *Registry) Lookup(name string) (*Registered, error) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	r, ok := reg.sets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return r, nil
}

// Unregister removes a dataset; subsequent lookups fail. Removing an
// unknown name is an error so that operator typos surface.
func (reg *Registry) Unregister(name string) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.sets[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(reg.sets, name)
	return nil
}

// Names returns the sorted names of all registered datasets.
func (reg *Registry) Names() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	names := make([]string, 0, len(reg.sets))
	for n := range reg.sets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
