package dataset

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gupt/internal/dp"
)

func TestSaveRestoreBudgets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budgets.json")

	reg := NewRegistry()
	r, err := reg.Register("census", sampleTable(t, 20), RegisterOptions{TotalBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Accountant.Spend("q1", 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Accountant.Spend("q2", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveBudgets(path); err != nil {
		t.Fatal(err)
	}

	// A "restarted" registry with fresh accountants.
	reg2 := NewRegistry()
	r2, err := reg2.Register("census", sampleTable(t, 20), RegisterOptions{TotalBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg2.RestoreBudgets(path); err != nil {
		t.Fatal(err)
	}
	if got := r2.Accountant.Remaining(); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("restored remaining = %v, want 5.5", got)
	}
	// The spent budget stays spent: an overdraw is still refused.
	if err := r2.Accountant.Spend("q3", 6); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Errorf("post-restore overspend err = %v", err)
	}
}

func TestRestoreBudgetsIgnoresUnknownDatasets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budgets.json")
	reg := NewRegistry()
	r, _ := reg.Register("old", sampleTable(t, 5), RegisterOptions{TotalBudget: 4})
	_ = r.Accountant.Spend("q", 1)
	if err := reg.SaveBudgets(path); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	fresh, _ := reg2.Register("new", sampleTable(t, 5), RegisterOptions{TotalBudget: 4})
	if err := reg2.RestoreBudgets(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Accountant.Spent() != 0 {
		t.Errorf("unrelated dataset was charged: %v", fresh.Accountant.Spent())
	}
}

// Restoration fails safe: if the recorded spend exceeds the (re-registered,
// smaller) total, the dataset simply starts exhausted — remaining budget
// can never be refunded by a restart.
func TestRestoreBudgetsMonotone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budgets.json")
	reg := NewRegistry()
	r, _ := reg.Register("d", sampleTable(t, 5), RegisterOptions{TotalBudget: 10})
	_ = r.Accountant.Spend("q", 8)
	if err := reg.SaveBudgets(path); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	shrunk, _ := reg2.Register("d", sampleTable(t, 5), RegisterOptions{TotalBudget: 2})
	if err := reg2.RestoreBudgets(path); err != nil {
		t.Fatal(err)
	}
	if rem := shrunk.Accountant.Remaining(); rem > 1e-9 {
		t.Errorf("remaining = %v, want 0 (spend capped at the new total)", rem)
	}
}

func TestRestoreBudgetsBadFile(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RestoreBudgets("/nonexistent/file.json"); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := reg.RestoreBudgets(bad); err == nil {
		t.Error("garbage file accepted")
	}
	wrongVersion := filepath.Join(t.TempDir(), "v.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"version": 99}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := reg.RestoreBudgets(wrongVersion); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestSaveBudgetsAtomic(t *testing.T) {
	// Saving twice leaves exactly one state file and no temp litter.
	dir := t.TempDir()
	path := filepath.Join(dir, "budgets.json")
	reg := NewRegistry()
	_, _ = reg.Register("d", sampleTable(t, 5), RegisterOptions{TotalBudget: 1})
	if err := reg.SaveBudgets(path); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveBudgets(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "budgets.json" {
		t.Errorf("dir contents: %v", entries)
	}
}
