package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"gupt/internal/mathutil"
)

// ReadCSV parses a table from CSV. If header is true the first record is
// taken as column names; otherwise columns are anonymous. Every field must
// parse as a float64.
func ReadCSV(r io.Reader, header bool) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // we validate rectangularity ourselves with better errors

	var t *Table
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		if t == nil {
			if header {
				t = New(rec)
				continue
			}
			t = New(nil)
		}
		row := make(mathutil.Vec, len(rec))
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d field %d: %w", line, i+1, err)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
	}
	if t == nil {
		return nil, fmt.Errorf("dataset: empty csv input")
	}
	return t, nil
}

// WriteCSV writes the table as CSV. Column names are emitted as a header
// row when present.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.cols) > 0 {
		if err := cw.Write(t.cols); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
	}
	rec := make([]string, t.Dims())
	for _, row := range t.rows {
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSVFile reads a table from the named CSV file.
func LoadCSVFile(path string, header bool) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, header)
}

// SaveCSVFile writes the table to the named CSV file, creating or
// truncating it.
func (t *Table) SaveCSVFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: %w", cerr)
		}
	}()
	return t.WriteCSV(f)
}
