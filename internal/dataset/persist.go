package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Privacy-budget persistence. Spent budget is a security-critical fact: if
// the platform forgets it across a restart, an analyst can reset their ε
// consumption by crashing the server. The registry therefore supports
// journaling every dataset's cumulative spend to a state file and restoring
// it at startup. Restoration is monotone — it can only *reduce* remaining
// budget, never refund it — so a stale or truncated state file fails safe.

// budgetState is the serialized form of one dataset's ledger summary.
type budgetState struct {
	Name    string    `json:"name"`
	Total   float64   `json:"total"`
	Spent   float64   `json:"spent"`
	Queries int       `json:"queries"`
	SavedAt time.Time `json:"savedAt"`
}

type registryState struct {
	Version int           `json:"version"`
	Budgets []budgetState `json:"budgets"`
}

const stateVersion = 1

// SaveBudgets writes every registered dataset's budget consumption to path
// atomically (write to a temp file, then rename).
func (reg *Registry) SaveBudgets(path string) error {
	reg.mu.RLock()
	state := registryState{Version: stateVersion}
	for name, r := range reg.sets {
		state.Budgets = append(state.Budgets, budgetState{
			Name:    name,
			Total:   r.Accountant.Total(),
			Spent:   r.Accountant.Spent(),
			Queries: r.Accountant.Queries(),
			SavedAt: time.Now(),
		})
	}
	reg.mu.RUnlock()

	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: marshal budget state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("dataset: write budget state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("dataset: commit budget state: %w", err)
	}
	return nil
}

// RestoreBudgets replays a saved state file into the registry: for each
// dataset present in both the file and the registry, the recorded spend is
// re-charged against the (fresh) accountant. Datasets in the file but not
// in the registry are ignored (they may be retired); datasets in the
// registry but not in the file start with an untouched budget.
//
// Restoration never increases remaining budget: if the recorded spend
// exceeds the registered total (e.g. the owner lowered the budget), the
// accountant is exhausted outright.
func (reg *Registry) RestoreBudgets(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("dataset: read budget state: %w", err)
	}
	var state registryState
	if err := json.Unmarshal(data, &state); err != nil {
		return fmt.Errorf("dataset: parse budget state: %w", err)
	}
	if state.Version != stateVersion {
		return fmt.Errorf("dataset: budget state version %d, want %d", state.Version, stateVersion)
	}

	reg.mu.RLock()
	defer reg.mu.RUnlock()
	for _, b := range state.Budgets {
		r, ok := reg.sets[b.Name]
		if !ok {
			continue
		}
		if b.Spent <= 0 {
			continue
		}
		spend := b.Spent
		if remaining := r.Accountant.Remaining(); spend > remaining {
			spend = remaining
		}
		if spend > 0 {
			if err := r.Accountant.Spend("restored:"+path, spend); err != nil {
				return fmt.Errorf("dataset: restoring %q: %w", b.Name, err)
			}
		}
	}
	return nil
}
