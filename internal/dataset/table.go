// Package dataset implements GUPT's dataset manager: an in-memory table
// model for multi-dimensional real-valued records, CSV import/export, a
// concurrency-safe registry that owns each dataset's cumulative privacy
// budget, and the aging-of-sensitivity model (paper §3.3) that exposes an
// aged, no-longer-sensitive sample of each dataset for parameter tuning.
package dataset

import (
	"errors"
	"fmt"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// ErrDimensionMismatch is returned when a row's width differs from the
// table's.
var ErrDimensionMismatch = errors.New("dataset: row dimension mismatch")

// Table is an immutable-after-build collection of k-dimensional real-valued
// records, the unit of data that GUPT computations run against. A table may
// carry optional column names and per-column attribute ranges supplied by
// the data owner.
type Table struct {
	cols   []string
	rows   []mathutil.Vec
	ranges []dp.Range // nil if the owner supplied no attribute ranges
}

// New creates a table with the given column names. Rows are added with
// Append. A nil or empty cols is allowed for anonymous columns once the
// first row fixes the dimensionality.
func New(cols []string) *Table {
	return &Table{cols: append([]string(nil), cols...)}
}

// FromRows builds a table directly from rows, which must be non-empty and
// rectangular. The rows are copied.
func FromRows(cols []string, rows []mathutil.Vec) (*Table, error) {
	t := New(cols)
	for i, r := range rows {
		if err := t.Append(r); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return t, nil
}

// Append adds a copy of row to the table. All rows must share one width,
// and if column names were supplied the width must match them.
func (t *Table) Append(row mathutil.Vec) error {
	if len(t.cols) > 0 && len(row) != len(t.cols) {
		return fmt.Errorf("%w: row has %d values, table has %d columns", ErrDimensionMismatch, len(row), len(t.cols))
	}
	if len(t.rows) > 0 && len(row) != len(t.rows[0]) {
		return fmt.Errorf("%w: row has %d values, table rows have %d", ErrDimensionMismatch, len(row), len(t.rows[0]))
	}
	t.rows = append(t.rows, row.Clone())
	return nil
}

// NumRows returns the number of records.
func (t *Table) NumRows() int { return len(t.rows) }

// Dims returns the record dimensionality, or 0 for an empty table with no
// declared columns.
func (t *Table) Dims() int {
	if len(t.rows) > 0 {
		return len(t.rows[0])
	}
	return len(t.cols)
}

// Columns returns a copy of the column names (possibly empty).
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// Row returns a copy of record i.
func (t *Table) Row(i int) mathutil.Vec { return t.rows[i].Clone() }

// Rows returns a deep copy of all records. Computations receive copies so
// an untrusted program can never mutate the registered data (part of the
// state-attack defense).
func (t *Table) Rows() []mathutil.Vec {
	out := make([]mathutil.Vec, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.Clone()
	}
	return out
}

// Column returns a copy of column j across all records.
func (t *Table) Column(j int) []float64 {
	out := make([]float64, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[j]
	}
	return out
}

// Subset returns a new table containing copies of the records at the given
// indices, in order. Indices must be valid.
func (t *Table) Subset(indices []int) *Table {
	sub := New(t.cols)
	sub.ranges = append([]dp.Range(nil), t.ranges...)
	for _, i := range indices {
		sub.rows = append(sub.rows, t.rows[i].Clone())
	}
	return sub
}

// SetRanges attaches per-column attribute ranges (the data owner's public
// input bounds). The slice length must equal the table dimensionality.
func (t *Table) SetRanges(ranges []dp.Range) error {
	if len(ranges) != t.Dims() {
		return fmt.Errorf("dataset: %d ranges for %d columns", len(ranges), t.Dims())
	}
	for i, r := range ranges {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("column %d: %w", i, err)
		}
	}
	t.ranges = append([]dp.Range(nil), ranges...)
	return nil
}

// Ranges returns a copy of the attribute ranges, or nil if none were set.
func (t *Table) Ranges() []dp.Range {
	if t.ranges == nil {
		return nil
	}
	return append([]dp.Range(nil), t.ranges...)
}

// Split deterministically partitions the table's records into two new
// tables: the first receives frac of the rows (rounded down), chosen
// uniformly at random from rng, and the second receives the rest. GUPT uses
// this for the aging model: the first part plays the aged, non-private
// sample.
func (t *Table) Split(rng *mathutil.RNG, frac float64) (*Table, *Table) {
	frac = mathutil.Clamp(frac, 0, 1)
	n := len(t.rows)
	cut := int(frac * float64(n))
	perm := rng.Perm(n)
	return t.Subset(perm[:cut]), t.Subset(perm[cut:])
}
