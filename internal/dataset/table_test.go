package dataset

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func mkTable(t *testing.T, rows ...mathutil.Vec) *Table {
	t.Helper()
	tbl, err := FromRows(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableAppendAndAccess(t *testing.T) {
	tbl := New([]string{"a", "b"})
	if err := tbl.Append(mathutil.Vec{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(mathutil.Vec{3}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("short row accepted, err=%v", err)
	}
	if tbl.NumRows() != 1 || tbl.Dims() != 2 {
		t.Errorf("NumRows=%d Dims=%d", tbl.NumRows(), tbl.Dims())
	}
	if got := tbl.Column(1); got[0] != 2 {
		t.Errorf("Column(1) = %v", got)
	}
}

func TestTableRowsAreCopies(t *testing.T) {
	src := mathutil.Vec{1, 2}
	tbl := New(nil)
	if err := tbl.Append(src); err != nil {
		t.Fatal(err)
	}
	src[0] = 99 // mutating the caller's slice must not affect the table
	if tbl.Row(0)[0] != 1 {
		t.Error("Append aliased caller slice")
	}
	r := tbl.Row(0)
	r[1] = 99
	if tbl.Row(0)[1] != 2 {
		t.Error("Row exposed internal storage")
	}
	rows := tbl.Rows()
	rows[0][0] = 42
	if tbl.Row(0)[0] != 1 {
		t.Error("Rows exposed internal storage")
	}
}

func TestTableRaggedRejected(t *testing.T) {
	_, err := FromRows(nil, []mathutil.Vec{{1, 2}, {3}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged rows accepted, err=%v", err)
	}
}

func TestTableSubset(t *testing.T) {
	tbl := mkTable(t, mathutil.Vec{0}, mathutil.Vec{1}, mathutil.Vec{2}, mathutil.Vec{3})
	sub := tbl.Subset([]int{3, 1})
	if sub.NumRows() != 2 || sub.Row(0)[0] != 3 || sub.Row(1)[0] != 1 {
		t.Errorf("Subset rows wrong: %v", sub.Rows())
	}
}

func TestTableSetRanges(t *testing.T) {
	tbl := mkTable(t, mathutil.Vec{1, 2})
	if err := tbl.SetRanges([]dp.Range{{Lo: 0, Hi: 1}}); err == nil {
		t.Error("wrong-length ranges accepted")
	}
	if err := tbl.SetRanges([]dp.Range{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 0}}); err == nil {
		t.Error("inverted range accepted")
	}
	want := []dp.Range{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 10}}
	if err := tbl.SetRanges(want); err != nil {
		t.Fatal(err)
	}
	got := tbl.Ranges()
	if len(got) != 2 || got[1].Hi != 10 {
		t.Errorf("Ranges = %v", got)
	}
	got[0].Hi = 999 // copy, not alias
	if tbl.Ranges()[0].Hi != 1 {
		t.Error("Ranges exposed internal state")
	}
}

func TestTableSplit(t *testing.T) {
	rows := make([]mathutil.Vec, 100)
	for i := range rows {
		rows[i] = mathutil.Vec{float64(i)}
	}
	tbl, _ := FromRows(nil, rows)
	a, b := tbl.Split(mathutil.NewRNG(1), 0.3)
	if a.NumRows() != 30 || b.NumRows() != 70 {
		t.Fatalf("Split sizes %d/%d, want 30/70", a.NumRows(), b.NumRows())
	}
	// Together they form an exact partition of the rows.
	seen := make(map[float64]bool)
	for _, part := range []*Table{a, b} {
		for _, r := range part.Rows() {
			if seen[r[0]] {
				t.Fatalf("row %v appears twice", r[0])
			}
			seen[r[0]] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("partition lost rows: %d", len(seen))
	}
	// Deterministic in the seed.
	a2, _ := tbl.Split(mathutil.NewRNG(1), 0.3)
	for i := 0; i < a.NumRows(); i++ {
		if a.Row(i)[0] != a2.Row(i)[0] {
			t.Fatal("Split not deterministic for fixed seed")
		}
	}
}

// Property: Split(frac) always partitions: sizes add up and no row is lost
// or duplicated, for any frac.
func TestTableSplitProperty(t *testing.T) {
	f := func(nRaw uint8, fracRaw float64, seed int64) bool {
		n := int(nRaw%50) + 1
		frac := math.Abs(math.Mod(fracRaw, 1))
		rows := make([]mathutil.Vec, n)
		for i := range rows {
			rows[i] = mathutil.Vec{float64(i)}
		}
		tbl, err := FromRows(nil, rows)
		if err != nil {
			return false
		}
		a, b := tbl.Split(mathutil.NewRNG(seed), frac)
		if a.NumRows()+b.NumRows() != n {
			return false
		}
		seen := make(map[float64]bool, n)
		for _, part := range []*Table{a, b} {
			for _, r := range part.Rows() {
				if seen[r[0]] {
					return false
				}
				seen[r[0]] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl, err := FromRows([]string{"x", "y"}, []mathutil.Vec{{1.5, -2}, {0.25, 1e10}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), true)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || back.Dims() != 2 {
		t.Fatalf("round trip shape %dx%d", back.NumRows(), back.Dims())
	}
	if back.Columns()[1] != "y" {
		t.Errorf("columns = %v", back.Columns())
	}
	for i := 0; i < 2; i++ {
		if !back.Row(i).Equal(tbl.Row(i), 0) {
			t.Errorf("row %d = %v, want %v", i, back.Row(i), tbl.Row(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), false); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,notanumber\n"), false); err == nil {
		t.Error("non-numeric field accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), false); err == nil {
		t.Error("ragged csv accepted")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tbl := mkTable(t, mathutil.Vec{1, 2}, mathutil.Vec{3, 4})
	path := t.TempDir() + "/t.csv"
	if err := tbl.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 {
		t.Errorf("file round trip lost rows: %d", back.NumRows())
	}
	if _, err := LoadCSVFile(path+".missing", false); err == nil {
		t.Error("missing file accepted")
	}
}
