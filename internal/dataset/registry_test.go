package dataset

import (
	"errors"
	"sync"
	"testing"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func sampleTable(t *testing.T, n int) *Table {
	t.Helper()
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{float64(i), float64(i % 7)}
	}
	tbl, err := FromRows([]string{"a", "b"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRegisterAndLookup(t *testing.T) {
	reg := NewRegistry()
	_, err := reg.Register("census", sampleTable(t, 10), RegisterOptions{TotalBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := reg.Lookup("census")
	if err != nil {
		t.Fatal(err)
	}
	if r.Private.NumRows() != 10 || r.Accountant.Total() != 2 {
		t.Errorf("registered dataset wrong: rows=%d total=%v", r.Private.NumRows(), r.Accountant.Total())
	}
	if r.HasAged() {
		t.Error("no aged data requested but HasAged is true")
	}
	if _, err := reg.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup of unknown name, err=%v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	reg := NewRegistry()
	tbl := sampleTable(t, 10)
	cases := []struct {
		name string
		n    string
		tbl  *Table
		opts RegisterOptions
	}{
		{"empty name", "", tbl, RegisterOptions{TotalBudget: 1}},
		{"nil table", "x", nil, RegisterOptions{TotalBudget: 1}},
		{"empty table", "x", New(nil), RegisterOptions{TotalBudget: 1}},
		{"zero budget", "x", tbl, RegisterOptions{}},
		{"negative budget", "x", tbl, RegisterOptions{TotalBudget: -1}},
		{"aged fraction 1", "x", tbl, RegisterOptions{TotalBudget: 1, AgedFraction: 1}},
		{"both aged forms", "x", tbl, RegisterOptions{TotalBudget: 1, AgedFraction: 0.5, Aged: sampleTable(t, 2)}},
		{"bad ranges", "x", tbl, RegisterOptions{TotalBudget: 1, Ranges: []dp.Range{{Lo: 0, Hi: 1}}}},
	}
	for _, c := range cases {
		if _, err := reg.Register(c.n, c.tbl, c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRegisterDuplicate(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Register("d", sampleTable(t, 5), RegisterOptions{TotalBudget: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("d", sampleTable(t, 5), RegisterOptions{TotalBudget: 1}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate accepted, err=%v", err)
	}
}

func TestRegisterAgedFraction(t *testing.T) {
	reg := NewRegistry()
	r, err := reg.Register("d", sampleTable(t, 100), RegisterOptions{TotalBudget: 1, AgedFraction: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasAged() {
		t.Fatal("aged sample missing")
	}
	if r.Aged.NumRows() != 20 || r.Private.NumRows() != 80 {
		t.Errorf("aged/private split %d/%d, want 20/80", r.Aged.NumRows(), r.Private.NumRows())
	}
}

func TestRegisterExplicitAged(t *testing.T) {
	reg := NewRegistry()
	aged := sampleTable(t, 30)
	r, err := reg.Register("d", sampleTable(t, 100), RegisterOptions{TotalBudget: 1, Aged: aged})
	if err != nil {
		t.Fatal(err)
	}
	if r.Aged.NumRows() != 30 || r.Private.NumRows() != 100 {
		t.Errorf("explicit aged %d/%d", r.Aged.NumRows(), r.Private.NumRows())
	}
}

func TestRegisterWithRanges(t *testing.T) {
	reg := NewRegistry()
	ranges := []dp.Range{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 6}}
	r, err := reg.Register("d", sampleTable(t, 10), RegisterOptions{TotalBudget: 1, Ranges: ranges})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Private.Ranges()
	if len(got) != 2 || got[0].Hi != 100 {
		t.Errorf("ranges not attached: %v", got)
	}
}

func TestUnregister(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register("d", sampleTable(t, 5), RegisterOptions{TotalBudget: 1})
	if err := reg.Unregister("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("d"); !errors.Is(err, ErrNotFound) {
		t.Error("dataset still present after Unregister")
	}
	if err := reg.Unregister("d"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Unregister, err=%v", err)
	}
}

func TestNames(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register("zeta", sampleTable(t, 5), RegisterOptions{TotalBudget: 1})
	_, _ = reg.Register("alpha", sampleTable(t, 5), RegisterOptions{TotalBudget: 1})
	names := reg.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			if _, err := reg.Register(name, sampleTable(t, 5), RegisterOptions{TotalBudget: 1}); err != nil {
				t.Errorf("register %s: %v", name, err)
				return
			}
			if _, err := reg.Lookup(name); err != nil {
				t.Errorf("lookup %s: %v", name, err)
			}
		}(i)
	}
	wg.Wait()
	if len(reg.Names()) != 20 {
		t.Errorf("expected 20 datasets, got %d", len(reg.Names()))
	}
}

// The registry's accountant is the single gate on a dataset's budget:
// spending through one lookup is visible through another (the
// platform-owned ledger that defeats privacy-budget attacks).
func TestRegistrySharedAccountant(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register("d", sampleTable(t, 5), RegisterOptions{TotalBudget: 1})
	r1, _ := reg.Lookup("d")
	r2, _ := reg.Lookup("d")
	if err := r1.Accountant.Spend("q", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := r2.Accountant.Spend("q", 0.5); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Errorf("second handle allowed overspend, err=%v", err)
	}
}
