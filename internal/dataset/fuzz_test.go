package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV parser and
// that anything it accepts is a rectangular numeric table that survives a
// round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n", true)
	f.Add("1.5\n-2e10\n", false)
	f.Add("", false)
	f.Add("x\n", true)
	f.Add("1,2\n3\n", false)
	f.Add("nan,inf\n", false)
	f.Fuzz(func(t *testing.T, input string, header bool) {
		tbl, err := ReadCSV(strings.NewReader(input), header)
		if err != nil {
			return
		}
		dims := tbl.Dims()
		for i := 0; i < tbl.NumRows(); i++ {
			if len(tbl.Row(i)) != dims {
				t.Fatalf("accepted ragged table: row %d has %d cols, table %d", i, len(tbl.Row(i)), dims)
			}
		}
		if tbl.NumRows() == 0 {
			// Header-only input parses to an empty table, which is not
			// registrable and whose serialization is degenerate; the
			// round-trip property only applies to real tables.
			return
		}
		var sb strings.Builder
		if err := tbl.WriteCSV(&sb); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(sb.String()), len(tbl.Columns()) > 0)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumRows() != tbl.NumRows() {
			t.Fatalf("round trip changed row count: %d -> %d", tbl.NumRows(), back.NumRows())
		}
	})
}
