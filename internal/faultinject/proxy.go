package faultinject

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gupt/internal/mathutil"
)

// Binary-wire layout facts, mirrored from internal/compman/wire.go (which
// imports this package from its chaos tests, so the dependency cannot run
// the other way). compman's wire tests pin these against the canonical
// constants so they cannot drift silently.
const (
	wireMagic          = 0xB1
	wireHelloLen       = 5
	wireFrameHeaderLen = 8
	maxWireFrame       = 64 << 20
)

// ProtoFault enumerates the wire-level faults a Proxy can inject into the
// worker protocol's NDJSON reply stream.
type ProtoFault int

const (
	// ProtoNone relays the reply untouched.
	ProtoNone ProtoFault = iota
	// ProtoCorrupt replaces the reply line with bytes that are not JSON.
	ProtoCorrupt
	// ProtoTruncate forwards only a prefix of the reply line (still
	// newline-terminated, so the reader sees a short, broken record).
	ProtoTruncate
	// ProtoDisconnect drops the client connection instead of replying —
	// a worker that died mid-exchange.
	ProtoDisconnect
	// ProtoStall delays the reply by StallFor before forwarding it.
	ProtoStall
	numProtoFaults int = iota
)

// String names the fault for logs and test output.
func (f ProtoFault) String() string {
	switch f {
	case ProtoNone:
		return "proto-none"
	case ProtoCorrupt:
		return "proto-corrupt"
	case ProtoTruncate:
		return "proto-truncate"
	case ProtoDisconnect:
		return "proto-disconnect"
	case ProtoStall:
		return "proto-stall"
	default:
		return fmt.Sprintf("protofault(%d)", int(f))
	}
}

// ProtoSchedule decides the fault for each successive reply, like Schedule
// but over the wire-fault kinds.
type ProtoSchedule struct {
	// Seed drives random decisions.
	Seed int64
	// Rates maps each fault to its per-reply probability; ignored when
	// Plan is set.
	Rates map[ProtoFault]float64
	// Plan scripts faults explicitly: reply i suffers Plan[i % len(Plan)].
	Plan []ProtoFault
	// StallFor is the ProtoStall delay; zero selects 50ms.
	StallFor time.Duration

	mu     sync.Mutex
	rng    *mathutil.RNG
	calls  int
	counts [numProtoFaults]int
}

func (s *ProtoSchedule) next() ProtoFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.calls
	s.calls++
	var f ProtoFault
	if len(s.Plan) > 0 {
		f = s.Plan[i%len(s.Plan)]
	} else {
		if s.rng == nil {
			s.rng = mathutil.NewRNG(s.Seed)
		}
		u := s.rng.Float64()
		// Dense fixed-order draw, as in Schedule.next: map iteration order
		// must not influence outcomes.
		var rates [numProtoFaults]float64
		for k, r := range s.Rates {
			if k > ProtoNone && int(k) < numProtoFaults && r > 0 {
				rates[k] = r
			}
		}
		for kind, rate := range rates {
			if u < rate {
				f = ProtoFault(kind)
				break
			}
			u -= rate
		}
	}
	s.counts[f]++
	return f
}

// Counts reports how many times each fault has been injected.
func (s *ProtoSchedule) Counts() map[ProtoFault]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[ProtoFault]int)
	for f, c := range s.counts {
		if c > 0 {
			out[ProtoFault(f)] = c
		}
	}
	return out
}

func (s *ProtoSchedule) stallFor() time.Duration {
	if s.StallFor > 0 {
		return s.StallFor
	}
	return 50 * time.Millisecond
}

// Proxy is a chaos TCP proxy for the newline-delimited JSON worker
// protocol. It forwards request lines to the upstream address verbatim and
// injects schedule-driven faults into the reply stream. Point a
// compman.WorkerPool at the proxy's address instead of the worker's to
// exercise the pool's redial/retry and the engine's substitution paths.
type Proxy struct {
	// Upstream is the real worker address. Required.
	Upstream string
	// Schedule drives the injection decisions. Required.
	Schedule *ProtoSchedule

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns once the listener is accepting.
func (p *Proxy) Start(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("faultinject: proxy listen: %w", err)
	}
	p.mu.Lock()
	p.listener = l
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	p.wg.Add(1)
	go p.serve(l)
	return nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.listener == nil {
		return nil
	}
	return p.listener.Addr()
}

// Close stops the proxy and severs all live connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	l := p.listener
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) serve(l net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// handle relays one client connection. Requests stream upstream untouched;
// replies pass through the fault schedule one protocol unit at a time — a
// newline-terminated line on the JSON wire, a CRC32C frame on the binary
// wire. The proxy sniffs which wire a connection negotiated from the
// upstream's first reply byte (a binary hello echo starts with
// wireMagic, which no JSON reply can) and relays the hello echo
// verbatim: negotiation is connection bookkeeping, not a reply, and
// garbling it is the job of the directed fail-closed tests.
func (p *Proxy) handle(client net.Conn) {
	defer func() {
		client.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
	}()
	upstream, err := net.Dial("tcp", p.Upstream)
	if err != nil {
		return
	}
	defer upstream.Close()

	// Requests: plain byte relay.
	go func() {
		_, _ = io.Copy(upstream, client)
		upstream.Close()
	}()

	r := bufio.NewReaderSize(upstream, 1<<20)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	framed := first[0] == wireMagic
	if framed {
		hello := make([]byte, wireHelloLen)
		if _, err := io.ReadFull(r, hello); err != nil {
			return
		}
		if _, err := client.Write(hello); err != nil {
			return
		}
	}
	for {
		var unit []byte
		var err error
		if framed {
			unit, err = readFrameUnit(r)
		} else {
			unit, err = r.ReadBytes('\n')
		}
		if err != nil {
			return
		}
		switch p.Schedule.next() {
		case ProtoNone:
			if _, err := client.Write(unit); err != nil {
				return
			}
		case ProtoCorrupt:
			if _, err := client.Write(corruptUnit(unit, framed)); err != nil {
				return
			}
		case ProtoTruncate:
			if _, err := client.Write(truncateUnit(unit, framed)); err != nil {
				return
			}
		case ProtoDisconnect:
			return
		case ProtoStall:
			time.Sleep(p.Schedule.stallFor())
			if _, err := client.Write(unit); err != nil {
				return
			}
		}
	}
}

// readFrameUnit reads one binary-wire frame — header plus payload — as a
// single reply unit, without validating its checksum (the proxy forwards
// whatever the worker sent; validation is the receiver's job).
func readFrameUnit(r *bufio.Reader) ([]byte, error) {
	hdr := make([]byte, wireFrameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxWireFrame {
		return nil, fmt.Errorf("faultinject: upstream frame length %d exceeds limit", n)
	}
	unit := make([]byte, wireFrameHeaderLen+int(n))
	copy(unit, hdr)
	if _, err := io.ReadFull(r, unit[wireFrameHeaderLen:]); err != nil {
		return nil, err
	}
	return unit, nil
}

// corruptUnit returns a same-shape reply whose content cannot decode: junk
// bytes on the JSON wire, a bit-flipped payload under an unchanged header
// (guaranteed CRC mismatch) on the binary wire. Either way the receiver
// sees an immediately detectable corruption, not a stall.
func corruptUnit(unit []byte, framed bool) []byte {
	if !framed {
		return []byte("!!not-json-at-all!!\n")
	}
	out := append([]byte(nil), unit...)
	for i := wireFrameHeaderLen; i < len(out); i++ {
		out[i] ^= 0xFF
	}
	return out
}

// truncateUnit returns a torn reply the receiver detects immediately: a
// short newline-terminated prefix on the JSON wire; on the binary wire a
// frame whose header declares half the payload but keeps the original
// checksum, so the length/CRC cross-check fails on arrival instead of the
// reader blocking for bytes that never come.
func truncateUnit(unit []byte, framed bool) []byte {
	if !framed {
		cut := len(unit) / 2
		if cut == 0 {
			cut = 1
		}
		return append(unit[:cut:cut], '\n')
	}
	cut := (len(unit) - wireFrameHeaderLen) / 2
	out := make([]byte, wireFrameHeaderLen+cut)
	binary.LittleEndian.PutUint32(out[0:4], uint32(cut))
	copy(out[4:8], unit[4:8]) // original CRC: cannot match the shorter payload
	copy(out[wireFrameHeaderLen:], unit[wireFrameHeaderLen:wireFrameHeaderLen+cut])
	return out
}
