package faultinject

import (
	"testing"

	"gupt/internal/compman"
)

// The proxy mirrors the binary-wire layout constants instead of importing
// them (compman's chaos tests import this package, so the dependency
// cannot run the other way). This pin is what keeps the mirror honest: if
// the canonical constants in compman/wire.go move, this fails before any
// chaos test silently degrades into relaying garbage.
func TestWireConstantsMirrorCompman(t *testing.T) {
	if wireMagic != compman.WireMagic {
		t.Errorf("wireMagic %#x != compman.WireMagic %#x", wireMagic, compman.WireMagic)
	}
	if wireHelloLen != compman.WireHelloLen {
		t.Errorf("wireHelloLen %d != compman.WireHelloLen %d", wireHelloLen, compman.WireHelloLen)
	}
	if wireFrameHeaderLen != compman.WireFrameHeaderLen {
		t.Errorf("wireFrameHeaderLen %d != compman.WireFrameHeaderLen %d", wireFrameHeaderLen, compman.WireFrameHeaderLen)
	}
	if maxWireFrame != compman.MaxWireFrame {
		t.Errorf("maxWireFrame %d != compman.MaxWireFrame %d", maxWireFrame, compman.MaxWireFrame)
	}
}
