package faultinject

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

func innerChamber() sandbox.Chamber {
	return &sandbox.InProcess{Program: analytics.Mean{Col: 0}}
}

func block() []mathutil.Vec { return []mathutil.Vec{{10}, {20}, {30}} }

// Same seed and rates must produce the identical fault sequence: chaos
// failures have to reproduce exactly from their seed.
func TestScheduleDeterministicInSeed(t *testing.T) {
	draw := func(seed int64) []Kind {
		s := &Schedule{Seed: seed, Rates: map[Kind]float64{
			CrashBefore: 0.2, Garbage: 0.2, WrongArity: 0.2,
		}}
		out := make([]Kind, 200)
		for i := range out {
			out[i] = s.next()
		}
		return out
	}
	a, b := draw(7), draw(7)
	different := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
		if a[i] != None {
			different = true
		}
	}
	if !different {
		t.Fatal("schedule injected nothing — vacuous determinism check")
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

// A scripted plan must hit exactly the executions it names.
func TestSchedulePlanCycles(t *testing.T) {
	s := &Schedule{Plan: []Kind{None, CrashBefore, Garbage}}
	want := []Kind{None, CrashBefore, Garbage, None, CrashBefore, Garbage}
	for i, w := range want {
		if got := s.next(); got != w {
			t.Errorf("call %d: got %v, want %v", i, got, w)
		}
	}
	counts := s.Counts()
	if counts[CrashBefore] != 2 || counts[Garbage] != 2 || counts[None] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestChamberFaultKinds(t *testing.T) {
	cases := []struct {
		kind      Kind
		wantErr   bool
		checkVec  func(mathutil.Vec) bool
		wantDelay time.Duration
	}{
		{kind: None, checkVec: func(v mathutil.Vec) bool { return len(v) == 1 && v[0] == 20 }},
		{kind: CrashBefore, wantErr: true},
		{kind: CrashAfter, wantErr: true},
		{kind: Garbage, checkVec: func(v mathutil.Vec) bool {
			return len(v) == 1 && math.IsNaN(v[0])
		}},
		{kind: OutOfRange, checkVec: func(v mathutil.Vec) bool {
			return len(v) == 1 && v[0] == 1e12
		}},
		{kind: WrongArity, checkVec: func(v mathutil.Vec) bool { return len(v) == 2 }},
		{kind: SlowStart, wantDelay: 5 * time.Millisecond, checkVec: func(v mathutil.Vec) bool {
			return len(v) == 1 && v[0] == 20
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			c := &Chamber{
				Inner:      innerChamber(),
				Schedule:   &Schedule{Plan: []Kind{tc.kind}, SlowBy: 5 * time.Millisecond},
				OutputDims: 1,
			}
			start := time.Now()
			out, err := c.Execute(context.Background(), block())
			if tc.wantErr {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("err = %v, want ErrInjected", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !tc.checkVec(out) {
				t.Errorf("output = %v", out)
			}
			if tc.wantDelay > 0 && time.Since(start) < tc.wantDelay {
				t.Errorf("returned in %v, want ≥ %v", time.Since(start), tc.wantDelay)
			}
		})
	}
}

// A hang must respect context cancellation — that is the hook the engine's
// per-block deadline uses to reclaim the block.
func TestChamberHangHonorsContext(t *testing.T) {
	c := &Chamber{
		Inner:      innerChamber(),
		Schedule:   &Schedule{Plan: []Kind{Hang}, HangFor: 10 * time.Second},
		OutputDims: 1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Execute(ctx, block())
	if err == nil {
		t.Fatal("hung execution returned no error")
	}
	if time.Since(start) > time.Second {
		t.Errorf("hang outlived its context: %v", time.Since(start))
	}
}

// echoWorker is a minimal NDJSON server standing in for a gupt-worker: it
// replies {"output":[42]} to every line.
func echoWorker(t *testing.T) net.Addr {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					if _, err := conn.Write([]byte(`{"output":[42]}` + "\n")); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr()
}

func TestProxyFaults(t *testing.T) {
	upstream := echoWorker(t)
	proxy := &Proxy{
		Upstream: upstream.String(),
		Schedule: &ProtoSchedule{Plan: []ProtoFault{
			ProtoNone, ProtoCorrupt, ProtoTruncate, ProtoDisconnect,
		}},
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func() (string, error) {
		if _, err := conn.Write([]byte("{}\n")); err != nil {
			return "", err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := r.ReadString('\n')
		return line, err
	}

	// Reply 1 passes through intact.
	line, err := send()
	if err != nil {
		t.Fatal(err)
	}
	var resp struct{ Output []float64 }
	if err := json.Unmarshal([]byte(line), &resp); err != nil || len(resp.Output) != 1 {
		t.Fatalf("clean reply corrupted: %q (%v)", line, err)
	}

	// Reply 2 is corrupted into non-JSON.
	line, err = send()
	if err != nil {
		t.Fatal(err)
	}
	if json.Unmarshal([]byte(line), &resp) == nil {
		t.Fatalf("corrupt fault produced valid JSON: %q", line)
	}

	// Reply 3 is truncated mid-record.
	line, err = send()
	if err != nil {
		t.Fatal(err)
	}
	if json.Unmarshal([]byte(line), &resp) == nil {
		t.Fatalf("truncate fault produced valid JSON: %q", line)
	}

	// Reply 4 never arrives: the connection drops.
	if _, err = send(); err == nil {
		t.Fatal("disconnect fault did not sever the connection")
	}
}
