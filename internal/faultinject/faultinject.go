// Package faultinject is a deterministic, seedable fault-injection layer
// for exercising GUPT's failure paths (paper §6). The platform's security
// argument leans on what happens when a computation *misbehaves*: killed or
// crashed chambers must be replaced by data-independent range-midpoint
// substitutes without leaking state, and privacy budget must be charged
// even when a query aborts — otherwise an analyst mounts a privacy-budget
// attack by forcing failures. Those paths are only reachable by accident in
// normal operation; this package makes them reachable on purpose.
//
// Two injection surfaces mirror the two untrusted boundaries:
//
//   - Chamber wraps any sandbox.Chamber and injects compute-level faults:
//     crash before or after the program runs, hang past the deadline,
//     garbage (non-finite) output, out-of-range output, wrong output
//     arity, and slow starts.
//   - Proxy sits on the wire between a compman.WorkerPool and a worker
//     daemon and injects protocol-level faults: malformed NDJSON replies,
//     truncated replies, stalled replies, and mid-session disconnects.
//
// All injection decisions derive from a Schedule seeded explicitly, so a
// fault pattern that breaks an invariant reproduces exactly from its seed.
package faultinject

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

// Kind enumerates the compute-level faults a Chamber can inject.
type Kind int

const (
	// None leaves the execution untouched.
	None Kind = iota
	// CrashBefore fails the execution before the program runs — the
	// chamber process died on startup.
	CrashBefore
	// CrashAfter runs the program, discards its output, and fails — the
	// chamber process died after computing but before reporting.
	CrashAfter
	// Hang blocks until the context is cancelled (or the schedule's
	// HangFor cap elapses) — a wedged computation that never returns.
	Hang
	// Garbage returns a vector of non-finite values (NaN, ±Inf) of the
	// correct arity — memory corruption or a hostile program.
	Garbage
	// OutOfRange returns finite values far outside any plausible output
	// range — an outlier-smuggling program; the aggregator must clamp.
	OutOfRange
	// WrongArity returns a vector of the wrong width.
	WrongArity
	// SlowStart delays the execution by the schedule's SlowBy, then runs
	// it normally — cold caches, contended nodes.
	SlowStart
	numKinds int = iota
)

// String names the fault for logs and test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case CrashBefore:
		return "crash-before"
	case CrashAfter:
		return "crash-after"
	case Hang:
		return "hang"
	case Garbage:
		return "garbage"
	case OutOfRange:
		return "out-of-range"
	case WrongArity:
		return "wrong-arity"
	case SlowStart:
		return "slow-start"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected is the error returned by injected crashes, so consumers (and
// tests) can tell injected failures from organic ones.
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// Schedule decides which fault, if any, each successive execution suffers.
// Decisions are a deterministic function of the seed and the call sequence:
// with single-threaded callers the n-th execution always draws the same
// fault for the same seed. It is safe for concurrent use (decisions stay
// deterministic as a multiset; per-call attribution then depends on
// scheduling order).
type Schedule struct {
	// Seed drives every injection decision.
	Seed int64
	// Rates maps each fault kind to its per-execution probability. Kinds
	// absent from the map are never injected randomly. Ignored when Plan
	// is set.
	Rates map[Kind]float64
	// Plan, when non-empty, scripts faults explicitly: execution i suffers
	// Plan[i % len(Plan)]. Use it for table-driven tests that need one
	// specific fault on one specific block.
	Plan []Kind
	// HangFor caps how long a Hang fault blocks when the context has no
	// deadline of its own; zero selects 30s (a backstop so a missing
	// engine deadline turns into a slow test, not a deadlocked one).
	HangFor time.Duration
	// SlowBy is the delay a SlowStart fault adds; zero selects 10ms.
	SlowBy time.Duration

	mu     sync.Mutex
	rng    *mathutil.RNG
	calls  int
	counts [numKinds]int
}

// next draws the fault for the next execution.
func (s *Schedule) next() Kind {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.calls
	s.calls++
	var k Kind
	if len(s.Plan) > 0 {
		k = s.Plan[i%len(s.Plan)]
	} else {
		if s.rng == nil {
			s.rng = mathutil.NewRNG(s.Seed)
		}
		u := s.rng.Float64()
		for kind, rate := range orderedRates(s.Rates) {
			if u < rate {
				k = Kind(kind)
				break
			}
			u -= rate
		}
	}
	s.counts[k]++
	return k
}

// orderedRates flattens the rate map into a dense array so the draw above
// consumes rates in a fixed kind order — map iteration order must never
// influence which fault a given uniform draw selects.
func orderedRates(rates map[Kind]float64) [numKinds]float64 {
	var out [numKinds]float64
	for k, r := range rates {
		if k > None && int(k) < numKinds && r > 0 {
			out[k] = r
		}
	}
	return out
}

// Counts reports how many times each fault kind has been injected,
// including None for untouched executions.
func (s *Schedule) Counts() map[Kind]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Kind]int)
	for k, c := range s.counts {
		if c > 0 {
			out[Kind(k)] = c
		}
	}
	return out
}

// Calls reports how many injection decisions the schedule has made.
func (s *Schedule) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *Schedule) hangFor() time.Duration {
	if s.HangFor > 0 {
		return s.HangFor
	}
	return 30 * time.Second
}

func (s *Schedule) slowBy() time.Duration {
	if s.SlowBy > 0 {
		return s.SlowBy
	}
	return 10 * time.Millisecond
}

// Chamber wraps an inner sandbox.Chamber and injects the faults its
// Schedule dictates. The wrapped chamber is what the engine's substitution
// and deadline machinery must survive; the inner chamber still runs for
// kinds that need a real output (CrashAfter, SlowStart).
type Chamber struct {
	// Inner is the chamber faults are injected around. Required.
	Inner sandbox.Chamber
	// Schedule drives the injection decisions. Required.
	Schedule *Schedule
	// OutputDims is the output arity the Garbage and OutOfRange faults
	// forge (WrongArity forges OutputDims+1). Required for those kinds.
	OutputDims int
}

// ReadOnlyBlocks implements sandbox.ReadOnlyChamber by delegation: the
// fault chamber itself only forges outputs, errors and delays — it never
// touches block rows — so the zero-copy contract is exactly the inner
// chamber's.
func (c *Chamber) ReadOnlyBlocks() bool {
	if ro, ok := c.Inner.(sandbox.ReadOnlyChamber); ok {
		return ro.ReadOnlyBlocks()
	}
	return false
}

// Execute implements sandbox.Chamber.
func (c *Chamber) Execute(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
	return c.execute(ctx, func(ctx context.Context) (mathutil.Vec, error) {
		return c.Inner.Execute(ctx, block)
	})
}

// ExecuteBlock implements sandbox.BlockChamber, forwarding the block index
// to an index-aware inner chamber (the distributed pool keeps its
// block→worker assignment under fault injection). An index-oblivious inner
// chamber just gets Execute.
func (c *Chamber) ExecuteBlock(ctx context.Context, idx int, block []mathutil.Vec) (mathutil.Vec, error) {
	return c.execute(ctx, func(ctx context.Context) (mathutil.Vec, error) {
		if bc, ok := c.Inner.(sandbox.BlockChamber); ok {
			return bc.ExecuteBlock(ctx, idx, block)
		}
		return c.Inner.Execute(ctx, block)
	})
}

// execute injects the scheduled fault around one inner run.
func (c *Chamber) execute(ctx context.Context, inner func(context.Context) (mathutil.Vec, error)) (mathutil.Vec, error) {
	switch k := c.Schedule.next(); k {
	case None:
		return inner(ctx)
	case CrashBefore:
		return nil, fmt.Errorf("%w: %s", ErrInjected, k)
	case CrashAfter:
		// Run the real computation first so the crash happens after data
		// was touched — the worst case for state leakage.
		_, _ = inner(ctx)
		return nil, fmt.Errorf("%w: %s", ErrInjected, k)
	case Hang:
		t := time.NewTimer(c.Schedule.hangFor())
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
			return nil, fmt.Errorf("%w: %s expired", ErrInjected, k)
		}
	case Garbage:
		out := make(mathutil.Vec, c.OutputDims)
		for i := range out {
			switch i % 3 {
			case 0:
				out[i] = math.NaN()
			case 1:
				out[i] = math.Inf(1)
			default:
				out[i] = math.Inf(-1)
			}
		}
		return out, nil
	case OutOfRange:
		out := make(mathutil.Vec, c.OutputDims)
		for i := range out {
			out[i] = 1e12
			if i%2 == 1 {
				out[i] = -1e12
			}
		}
		return out, nil
	case WrongArity:
		return make(mathutil.Vec, c.OutputDims+1), nil
	case SlowStart:
		t := time.NewTimer(c.Schedule.slowBy())
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
		return inner(ctx)
	default:
		return nil, fmt.Errorf("%w: unknown kind %v", ErrInjected, k)
	}
}
