package airavat

import (
	"errors"
	"math"
	"testing"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func valueRows(vals ...float64) []mathutil.Vec {
	out := make([]mathutil.Vec, len(vals))
	for i, v := range vals {
		out[i] = mathutil.Vec{v}
	}
	return out
}

func identityJob(eps float64) Job {
	return Job{
		Map:     func(r mathutil.Vec) []float64 { return []float64{r[0]} },
		Outputs: 1,
		Range:   dp.Range{Lo: 0, Hi: 10},
		Epsilon: eps,
	}
}

func TestSumReduce(t *testing.T) {
	p := NewPlatform(valueRows(1, 2, 3, 4), 1e12, 1)
	out, err := p.SumReduce(identityJob(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-10) > 0.01 {
		t.Errorf("SumReduce = %v, want ~10", out[0])
	}
}

func TestSumReduceClampsMaliciousMapper(t *testing.T) {
	p := NewPlatform(valueRows(1, 2), 1e12, 1)
	job := Job{
		Map:     func(mathutil.Vec) []float64 { return []float64{1e15} },
		Outputs: 1,
		Range:   dp.Range{Lo: 0, Hi: 10},
		Epsilon: 1e9,
	}
	out, err := p.SumReduce(job)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] > 21 {
		t.Errorf("clamped sum = %v, want <= 20", out[0])
	}
}

func TestWrongArityEmissionsDropped(t *testing.T) {
	p := NewPlatform(valueRows(1, 2, 3), 1e12, 1)
	job := Job{
		Map: func(r mathutil.Vec) []float64 {
			if r[0] == 2 {
				return []float64{5, 5, 5} // wrong arity: dropped
			}
			return []float64{r[0]}
		},
		Outputs: 1,
		Range:   dp.Range{Lo: 0, Hi: 10},
		Epsilon: 1e9,
	}
	out, err := p.SumReduce(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-4) > 0.01 { // 1 + 3
		t.Errorf("SumReduce = %v, want ~4", out[0])
	}
}

func TestCountReduce(t *testing.T) {
	p := NewPlatform(valueRows(1, -2, 3, -4, 5), 1e12, 1)
	job := Job{
		Map:     func(r mathutil.Vec) []float64 { return []float64{r[0]} },
		Outputs: 1,
		Range:   dp.Range{Lo: -10, Hi: 10},
		Epsilon: 1e9,
	}
	out, err := p.CountReduce(job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out-3) > 0.01 {
		t.Errorf("CountReduce = %v, want ~3", out)
	}
}

func TestAvgReduce(t *testing.T) {
	p := NewPlatform(valueRows(2, 4, 6), 1e12, 1)
	out, err := p.AvgReduce(identityJob(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-4) > 0.01 {
		t.Errorf("AvgReduce = %v, want ~4", out[0])
	}
}

// Budget-attack defense (Table 1): the ledger is platform-side; a job that
// tries to overspend is refused and consumes nothing.
func TestBudgetAttackDefeated(t *testing.T) {
	p := NewPlatform(valueRows(1, 2), 1.0, 1)
	if _, err := p.SumReduce(identityJob(0.8)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SumReduce(identityJob(0.5)); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Errorf("overspend err = %v", err)
	}
	if r := p.Remaining(); math.Abs(r-0.2) > 1e-9 {
		t.Errorf("Remaining = %v, want 0.2", r)
	}
}

// State-attack vulnerability (Table 1): a malicious mapper closure CAN keep
// state across records in this architecture — the attack works, as the
// paper reports for the real Airavat. GUPT's subprocess chambers are what
// close this channel (see internal/sandbox tests).
func TestStateAttackSucceedsAgainstAiravat(t *testing.T) {
	p := NewPlatform(valueRows(1, 2, 3), 1e12, 1)
	leaked := 0.0
	job := Job{
		Map: func(r mathutil.Vec) []float64 {
			leaked += r[0] // exfiltrate through shared state
			return []float64{0}
		},
		Outputs: 1,
		Range:   dp.Range{Lo: 0, Hi: 1},
		Epsilon: 1e9,
	}
	if _, err := p.SumReduce(job); err != nil {
		t.Fatal(err)
	}
	if leaked != 6 {
		t.Errorf("state attack leaked %v, expected 6 (the attack is supposed to work here)", leaked)
	}
}

func TestMapperGetsCopies(t *testing.T) {
	rows := valueRows(1, 2)
	p := NewPlatform(rows, 1e12, 1)
	job := Job{
		Map: func(r mathutil.Vec) []float64 {
			r[0] = -999
			return []float64{0}
		},
		Outputs: 1,
		Range:   dp.Range{Lo: 0, Hi: 1},
		Epsilon: 1e9,
	}
	if _, err := p.SumReduce(job); err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 1 {
		t.Error("mapper mutated protected rows")
	}
}

func TestJobValidation(t *testing.T) {
	p := NewPlatform(valueRows(1), 10, 1)
	bad := []Job{
		{Outputs: 1, Range: dp.Range{Lo: 0, Hi: 1}, Epsilon: 1},                                                   // nil map
		{Map: func(mathutil.Vec) []float64 { return nil }, Outputs: 0, Range: dp.Range{Lo: 0, Hi: 1}, Epsilon: 1}, // zero outputs
		{Map: func(mathutil.Vec) []float64 { return nil }, Outputs: 1, Range: dp.Range{Lo: 1, Hi: 0}, Epsilon: 1}, // inverted range
	}
	for i, j := range bad {
		if _, err := p.SumReduce(j); err == nil {
			t.Errorf("job %d accepted", i)
		}
		if _, err := p.AvgReduce(j); err == nil {
			t.Errorf("avg job %d accepted", i)
		}
		if _, err := p.CountReduce(j); err == nil {
			t.Errorf("count job %d accepted", i)
		}
	}
}
