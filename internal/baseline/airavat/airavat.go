// Package airavat is a minimal reimplementation of Airavat (Roy et al.,
// NSDI '10) sufficient for the paper's Table 1 comparison: a map-reduce
// pipeline in which the analyst supplies an *untrusted* mapper that runs
// per record, while the reducer is a *trusted*, platform-supplied
// differentially private aggregator.
//
// The reproduced restrictions match the original system:
//
//   - The mapper's output is clamped to an analyst-declared range; the
//     declared range, not the data, calibrates the noise.
//   - Each mapper invocation sees exactly one record and must emit a fixed
//     number of values; complex aggregations must live in the trusted
//     reducer, which is why Airavat cannot express k-means or logistic
//     regression end-to-end (Table 1, "Allows expressive programs: No").
//   - Mapper invocations are sequential per record but nothing stops a
//     malicious mapper closure from keeping global state: like the real
//     system, this baseline is vulnerable to state attacks (Table 1).
//     It does defend against budget attacks — the platform owns the ledger.
package airavat

import (
	"errors"
	"fmt"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// Mapper is the analyst's untrusted per-record function. It receives a copy
// of one record and returns one value per declared output slot.
type Mapper func(record mathutil.Vec) []float64

// Job describes one map-reduce computation.
type Job struct {
	// Map is the untrusted mapper.
	Map Mapper
	// Outputs is the fixed number of values the mapper must emit per
	// record; emissions with any other arity are discarded (Airavat
	// enforces a fixed key-value count per mapper).
	Outputs int
	// Range clamps every mapper output value; it also sets the noise
	// sensitivity.
	Range dp.Range
	// Epsilon is the budget this job spends.
	Epsilon float64
}

func (j Job) validate() error {
	if j.Map == nil {
		return errors.New("airavat: nil mapper")
	}
	if j.Outputs <= 0 {
		return fmt.Errorf("airavat: job declares %d outputs", j.Outputs)
	}
	if err := j.Range.Validate(); err != nil {
		return err
	}
	return nil
}

// Platform owns the data and the privacy ledger; the analyst only submits
// jobs. Unlike PINQ, a malicious job cannot overspend — the accountant is
// platform-side (Table 1, "Protection against privacy budget attack: Yes").
type Platform struct {
	rows []mathutil.Vec
	acct *dp.Accountant
	rng  *mathutil.RNG
}

// NewPlatform wraps rows with a total budget.
func NewPlatform(rows []mathutil.Vec, totalEps float64, seed int64) *Platform {
	return &Platform{rows: rows, acct: dp.NewAccountant(totalEps), rng: mathutil.NewRNG(seed)}
}

// Remaining reports the unspent budget (platform-side observability only).
func (p *Platform) Remaining() float64 { return p.acct.Remaining() }

// SumReduce runs the job with the trusted noisy-sum reducer: the clamped
// mapper outputs are summed per slot and released with Laplace noise
// calibrated to the declared range. The job's ε is split evenly across the
// output slots.
func (p *Platform) SumReduce(job Job) ([]float64, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if err := p.acct.Spend("airavat-sum", job.Epsilon); err != nil {
		return nil, err
	}
	epsSlot, err := dp.SplitUniform(job.Epsilon, job.Outputs)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, job.Outputs)
	for _, row := range p.rows {
		vals := job.Map(row.Clone())
		if len(vals) != job.Outputs {
			continue // wrong arity: Airavat drops the emission
		}
		for s, v := range vals {
			sums[s] += job.Range.Clamp(v)
		}
	}
	sens := maxAbs(job.Range)
	out := make([]float64, job.Outputs)
	for s, sum := range sums {
		noisy, err := dp.Laplace(p.rng, sum, sens, epsSlot)
		if err != nil {
			return nil, err
		}
		out[s] = noisy
	}
	return out, nil
}

// CountReduce runs the job with the trusted noisy-count reducer: it counts
// records for which the mapper's first output is positive.
func (p *Platform) CountReduce(job Job) (float64, error) {
	if err := job.validate(); err != nil {
		return 0, err
	}
	if err := p.acct.Spend("airavat-count", job.Epsilon); err != nil {
		return 0, err
	}
	count := 0
	for _, row := range p.rows {
		vals := job.Map(row.Clone())
		if len(vals) == job.Outputs && vals[0] > 0 {
			count++
		}
	}
	return dp.NoisyCount(p.rng, count, job.Epsilon)
}

// AvgReduce composes SumReduce with a noisy count to release per-slot
// means, spending the job's ε half on sums and half on the count.
func (p *Platform) AvgReduce(job Job) ([]float64, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if err := p.acct.Spend("airavat-avg", job.Epsilon); err != nil {
		return nil, err
	}
	half := job.Epsilon / 2
	epsSlot, err := dp.SplitUniform(half, job.Outputs)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, job.Outputs)
	for _, row := range p.rows {
		vals := job.Map(row.Clone())
		if len(vals) != job.Outputs {
			continue
		}
		for s, v := range vals {
			sums[s] += job.Range.Clamp(v)
		}
	}
	count, err := dp.NoisyCount(p.rng, len(p.rows), half)
	if err != nil {
		return nil, err
	}
	if count < 1 {
		count = 1
	}
	sens := maxAbs(job.Range)
	out := make([]float64, job.Outputs)
	for s, sum := range sums {
		noisy, err := dp.Laplace(p.rng, sum, sens, epsSlot)
		if err != nil {
			return nil, err
		}
		out[s] = noisy / count
	}
	return out, nil
}

func maxAbs(r dp.Range) float64 {
	a, b := r.Lo, r.Hi
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
