package pinq

import (
	"errors"
	"math"
	"testing"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func valueRows(vals ...float64) []mathutil.Vec {
	out := make([]mathutil.Vec, len(vals))
	for i, v := range vals {
		out[i] = mathutil.Vec{v}
	}
	return out
}

func TestNoisyPrimitives(t *testing.T) {
	q := NewQueryable(valueRows(1, 2, 3, 4), 1e12, 1)
	c, err := q.NoisyCount(1e9)
	if err != nil || math.Abs(c-4) > 0.01 {
		t.Errorf("NoisyCount = %v, %v", c, err)
	}
	s, err := q.NoisySum(0, dp.Range{Lo: 0, Hi: 10}, 1e9)
	if err != nil || math.Abs(s-10) > 0.01 {
		t.Errorf("NoisySum = %v, %v", s, err)
	}
	a, err := q.NoisyAverage(0, dp.Range{Lo: 0, Hi: 10}, 1e9)
	if err != nil || math.Abs(a-2.5) > 0.01 {
		t.Errorf("NoisyAverage = %v, %v", a, err)
	}
}

func TestBudgetEnforced(t *testing.T) {
	q := NewQueryable(valueRows(1, 2, 3), 1.0, 1)
	if _, err := q.NoisyCount(0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := q.NoisyCount(0.5); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Errorf("overspend err = %v", err)
	}
	if r := q.Remaining(); math.Abs(r-0.2) > 1e-9 {
		t.Errorf("Remaining = %v", r)
	}
}

// The privacy-budget side channel PINQ exposes (and GUPT closes): analyst
// code can observe data-dependent results and conditionally burn the
// remaining budget, so the final budget level itself encodes one bit about
// the data.
func TestBudgetAttackSucceedsAgainstPINQ(t *testing.T) {
	run := func(vals ...float64) float64 {
		q := NewQueryable(valueRows(vals...), 10, 1)
		avg, err := q.NoisyAverage(0, dp.Range{Lo: 0, Hi: 100}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if avg > 50 {
			// Malicious analyst: burn everything when the secret is large.
			_, _ = q.NoisyCount(q.Remaining())
		}
		return q.Remaining()
	}
	lowRemaining := run(90, 95, 99) // secret-dependent burn fires
	highRemaining := run(1, 2, 3)   // burn does not fire
	if !(lowRemaining < highRemaining) {
		t.Errorf("budget attack failed to leak: remaining %v vs %v", lowRemaining, highRemaining)
	}
}

func TestPartition(t *testing.T) {
	q := NewQueryable(valueRows(1, 2, 3, 10, 20), 100, 1)
	parts, err := q.Partition(2, func(r mathutil.Vec) int {
		if r[0] < 5 {
			return 0
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[0].rows) != 3 || len(parts[1].rows) != 2 {
		t.Errorf("partition sizes %d/%d", len(parts[0].rows), len(parts[1].rows))
	}
	// Shared accountant: spends through a child drain the parent budget.
	if err := parts[0].ChargeParallel("op", 60); err != nil {
		t.Fatal(err)
	}
	if q.Remaining() > 40+1e-9 {
		t.Errorf("child spend invisible to parent: remaining %v", q.Remaining())
	}
	if _, err := q.Partition(0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	// Out-of-range keys are dropped, not a crash.
	parts2, err := q.Partition(1, func(mathutil.Vec) int { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	if len(parts2[0].rows) != 0 {
		t.Error("out-of-range keys not dropped")
	}
}

// Partition hands analyst key functions copies of rows, not the originals.
func TestPartitionKeyFuncGetsCopies(t *testing.T) {
	rows := valueRows(1, 2, 3)
	q := NewQueryable(rows, 100, 1)
	_, err := q.Partition(1, func(r mathutil.Vec) int {
		r[0] = -999
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 1 {
		t.Error("key function mutated protected rows")
	}
}

func TestKMeansConvergesWithAdequateBudget(t *testing.T) {
	rng := mathutil.NewRNG(3)
	var rows []mathutil.Vec
	for i := 0; i < 600; i++ {
		c := 2.0
		if i%2 == 0 {
			c = 8
		}
		rows = append(rows, mathutil.Vec{c + 0.2*rng.NormFloat64(), c + 0.2*rng.NormFloat64()})
	}
	q := NewQueryable(rows, 1e6, 1)
	centers, err := KMeans(q, 2, 2, 10, dp.Range{Lo: 0, Hi: 10}, 1e5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if centers[0].Dist(mathutil.Vec{2, 2}) > 1 || centers[1].Dist(mathutil.Vec{8, 8}) > 1 {
		t.Errorf("centers = %v, want near (2,2) and (8,8)", centers)
	}
}

// Fig. 5's mechanism: the same total budget spread over many declared
// iterations yields worse clustering than over few.
func TestKMeansDegradesWithDeclaredIterations(t *testing.T) {
	rng := mathutil.NewRNG(4)
	var rows []mathutil.Vec
	for i := 0; i < 800; i++ {
		c := 2.0
		if i%2 == 0 {
			c = 8
		}
		rows = append(rows, mathutil.Vec{c + 0.3*rng.NormFloat64(), c + 0.3*rng.NormFloat64()})
	}
	icv := func(iters int) float64 {
		var worst float64
		for seed := int64(0); seed < 5; seed++ {
			q := NewQueryable(rows, 1e9, seed)
			centers, err := KMeans(q, 2, 2, iters, dp.Range{Lo: 0, Hi: 10}, 2.0, seed)
			if err != nil {
				t.Fatal(err)
			}
			worst += icvOf(rows, centers)
		}
		return worst / 5
	}
	few, many := icv(5), icv(200)
	if many <= few {
		t.Errorf("200 declared iters ICV %v not worse than 5 iters ICV %v", many, few)
	}
}

func icvOf(rows, centers []mathutil.Vec) float64 {
	var total float64
	for _, r := range rows {
		best := math.Inf(1)
		for _, c := range centers {
			if d := r.Dist2(c); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(rows))
}

func TestKMeansBudgetExhaustion(t *testing.T) {
	q := NewQueryable(valueRows(1, 2, 3), 0.1, 1)
	if _, err := KMeans(q, 2, 1, 5, dp.Range{Lo: 0, Hi: 10}, 1.0, 1); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Errorf("err = %v, want budget exhausted", err)
	}
}

func TestKMeansValidation(t *testing.T) {
	q := NewQueryable(valueRows(1), 1, 1)
	if _, err := KMeans(q, 0, 1, 1, dp.Range{Lo: 0, Hi: 1}, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(q, 1, 0, 1, dp.Range{Lo: 0, Hi: 1}, 1, 1); err == nil {
		t.Error("dims=0 accepted")
	}
	if _, err := KMeans(q, 1, 1, 0, dp.Range{Lo: 0, Hi: 1}, 1, 1); err == nil {
		t.Error("iters=0 accepted")
	}
}

func TestColumnValidation(t *testing.T) {
	q := NewQueryable(valueRows(1, 2), 100, 1)
	if _, err := q.NoisySum(5, dp.Range{Lo: 0, Hi: 1}, 1); err == nil {
		t.Error("bad column accepted")
	}
}
