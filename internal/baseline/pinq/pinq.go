// Package pinq is a minimal reimplementation of PINQ (McSherry, SIGMOD '09)
// sufficient for the paper's comparisons: an analyst-driven query API over a
// protected dataset offering per-operation differentially private
// primitives (NoisyCount, NoisySum, NoisyAverage) and partitioning with
// parallel composition.
//
// Two PINQ properties matter for GUPT's evaluation and are reproduced
// faithfully:
//
//  1. The *analyst* decides how much ε each operation spends. For iterative
//     algorithms the analyst must pre-declare an iteration count and divide
//     the budget by it, so over-estimating iterations wastes budget on
//     noise (Fig. 5).
//  2. Analyst code runs with the Queryable in hand, so a malicious program
//     can spend the remaining budget conditionally on data it has observed
//     (the privacy-budget side channel of Haeberlen et al., Table 1), and
//     its closures execute in-process where they can keep global state
//     (the state side channel).
package pinq

import (
	"errors"
	"fmt"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// Queryable is PINQ's protected data handle: analysts call DP primitives on
// it, each spending from the associated budget. Unlike GUPT, the handle is
// given directly to untrusted analyst code.
type Queryable struct {
	rows []mathutil.Vec
	acct *dp.Accountant
	rng  *mathutil.RNG
}

// NewQueryable wraps rows with a total privacy budget.
func NewQueryable(rows []mathutil.Vec, totalEps float64, seed int64) *Queryable {
	return &Queryable{
		rows: rows,
		acct: dp.NewAccountant(totalEps),
		rng:  mathutil.NewRNG(seed),
	}
}

// Remaining exposes the unspent budget. PINQ makes this visible to the
// analyst; GUPT deliberately does not.
func (q *Queryable) Remaining() float64 { return q.acct.Remaining() }

// NoisyCount returns a DP count of the rows, spending eps.
func (q *Queryable) NoisyCount(eps float64) (float64, error) {
	if err := q.acct.Spend("NoisyCount", eps); err != nil {
		return 0, err
	}
	return dp.NoisyCount(q.rng, len(q.rows), eps)
}

// NoisySum returns a DP sum of column col clamped to r, spending eps.
func (q *Queryable) NoisySum(col int, r dp.Range, eps float64) (float64, error) {
	if err := q.checkCol(col); err != nil {
		return 0, err
	}
	if err := q.acct.Spend("NoisySum", eps); err != nil {
		return 0, err
	}
	return dp.NoisySum(q.rng, q.column(col), r, eps)
}

// NoisyAverage returns a DP mean of column col clamped to r, spending eps.
func (q *Queryable) NoisyAverage(col int, r dp.Range, eps float64) (float64, error) {
	if err := q.checkCol(col); err != nil {
		return 0, err
	}
	if len(q.rows) == 0 {
		return 0, errors.New("pinq: empty queryable")
	}
	if err := q.acct.Spend("NoisyAverage", eps); err != nil {
		return 0, err
	}
	return dp.NoisyAvg(q.rng, q.column(col), r, eps)
}

// Partition splits the queryable into k disjoint parts by the analyst's
// key function. The parts share the parent's accountant: PINQ's parallel
// composition means one logical operation applied to every part should be
// charged once, which ChargeParallel below provides.
func (q *Queryable) Partition(k int, key func(mathutil.Vec) int) ([]*Queryable, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pinq: partition into %d parts", k)
	}
	parts := make([]*Queryable, k)
	for i := range parts {
		parts[i] = &Queryable{acct: q.acct, rng: q.rng}
	}
	for _, r := range q.rows {
		i := key(r.Clone()) // analyst code sees a copy, like PINQ's LINQ values
		if i < 0 || i >= k {
			continue // PINQ drops out-of-range keys
		}
		parts[i].rows = append(parts[i].rows, r)
	}
	return parts, nil
}

// ChargeParallel debits eps once for an operation applied across disjoint
// partitions (parallel composition), returning a noise helper bound to the
// shared RNG. The caller then uses Unsafe* methods on each part without
// further charges.
func (q *Queryable) ChargeParallel(label string, eps float64) error {
	return q.acct.Spend(label, eps)
}

// UnsafeCount is NoisyCount without a budget charge, for use after
// ChargeParallel across a partition family.
func (q *Queryable) UnsafeCount(eps float64) (float64, error) {
	return dp.NoisyCount(q.rng, len(q.rows), eps)
}

// UnsafeSum is NoisySum without a budget charge, for use after
// ChargeParallel across a partition family.
func (q *Queryable) UnsafeSum(col int, r dp.Range, eps float64) (float64, error) {
	if err := q.checkCol(col); err != nil {
		return 0, err
	}
	return dp.NoisySum(q.rng, q.column(col), r, eps)
}

func (q *Queryable) checkCol(col int) error {
	if len(q.rows) == 0 {
		return nil // empty partitions are fine; sums are just noise
	}
	if col < 0 || col >= len(q.rows[0]) {
		return fmt.Errorf("pinq: column %d out of range", col)
	}
	return nil
}

func (q *Queryable) column(col int) []float64 {
	if len(q.rows) == 0 {
		return nil
	}
	out := make([]float64, len(q.rows))
	for i, r := range q.rows {
		out[i] = r[col]
	}
	return out
}

// KMeans is the PINQ-style private k-means of the Fig. 5 comparison: the
// analyst pre-declares the iteration count and the total budget is divided
// evenly across iterations. Each iteration partitions points by nearest
// center (parallel composition) and refines every center from a noisy
// count and noisy per-dimension sums. Declared iterations beyond what the
// algorithm needs dilute the per-iteration budget and degrade the result —
// exactly the behavior GUPT's black-box model avoids.
func KMeans(q *Queryable, k, dims, declaredIters int, bounds dp.Range, totalEps float64, seed int64) ([]mathutil.Vec, error) {
	if k <= 0 || dims <= 0 || declaredIters <= 0 {
		return nil, fmt.Errorf("pinq: invalid kmeans parameters k=%d dims=%d iters=%d", k, dims, declaredIters)
	}
	epsIter, err := dp.SplitUniform(totalEps, declaredIters)
	if err != nil {
		return nil, err
	}
	// Within an iteration: half the budget to counts, half to the
	// per-dimension sums.
	epsCount := epsIter / 2
	epsSum := epsIter / (2 * float64(dims))

	// Deterministic initial centers spread across the bounds; PINQ gives no
	// private seeding primitive, so a data-independent grid is standard.
	rng := mathutil.NewRNG(seed)
	centers := make([]mathutil.Vec, k)
	for c := range centers {
		centers[c] = make(mathutil.Vec, dims)
		for d := range centers[c] {
			centers[c][d] = bounds.Lo + bounds.Width()*(float64(c)+0.5)/float64(k) +
				0.01*bounds.Width()*rng.Float64()
		}
	}

	for iter := 0; iter < declaredIters; iter++ {
		parts, err := q.Partition(k, func(row mathutil.Vec) int {
			return nearestCenter(centers, row[:dims])
		})
		if err != nil {
			return nil, err
		}
		if err := q.ChargeParallel("kmeans-counts", epsCount); err != nil {
			return nil, err
		}
		if err := q.ChargeParallel("kmeans-sums", epsSum*float64(dims)); err != nil {
			return nil, err
		}
		for c, part := range parts {
			count, err := part.UnsafeCount(epsCount)
			if err != nil {
				return nil, err
			}
			if count < 1 {
				count = 1
			}
			for d := 0; d < dims; d++ {
				sum, err := part.UnsafeSum(d, bounds, epsSum)
				if err != nil {
					return nil, err
				}
				centers[c][d] = bounds.Clamp(sum / count)
			}
		}
	}
	analytics.SortCenters(centers)
	return centers, nil
}

func nearestCenter(centers []mathutil.Vec, p mathutil.Vec) int {
	best, bestIdx := -1.0, 0
	for c, center := range centers {
		d := p.Dist2(center)
		if best < 0 || d < best {
			best, bestIdx = d, c
		}
	}
	return bestIdx
}
