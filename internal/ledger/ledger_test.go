package ledger

import (
	"errors"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gupt/internal/dp"
	"gupt/internal/telemetry"
)

func openTest(t *testing.T, dir string, opts Options) *Ledger {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// A charge must survive close + reopen: the whole point of the ledger.
func TestChargePersistsAcrossReopen(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryRecord, SyncBatched} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Sync: policy, FlushInterval: time.Millisecond}

			l := openTest(t, dir, opts)
			acct := dp.NewAccountant(10)
			b, err := l.Bind("census", acct)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Spend("q1", 1.5); err != nil {
				t.Fatal(err)
			}
			if err := b.Spend("q2", 0.25); err != nil {
				t.Fatal(err)
			}
			if got := acct.Spent(); got != 1.75 {
				t.Fatalf("in-memory spent = %v, want 1.75", got)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2 := openTest(t, dir, opts)
			acct2 := dp.NewAccountant(10)
			if _, err := l2.Bind("census", acct2); err != nil {
				t.Fatal(err)
			}
			if got := acct2.Spent(); got != 1.75 {
				t.Fatalf("recovered spent = %v, want 1.75", got)
			}
			if got := acct2.Remaining(); got != 8.25 {
				t.Fatalf("recovered remaining = %v, want 8.25", got)
			}
		})
	}
}

// An exhausted-budget refusal must not consume durable budget: the
// provisional charge is cancelled by a refund record.
func TestExhaustedChargeIsRefunded(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	acct := dp.NewAccountant(1)
	b, err := l.Bind("ds", acct)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Spend("ok", 0.75); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend("too-big", 0.5); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("Spend(0.5) err = %v, want ErrBudgetExhausted", err)
	}
	if got := l.Spent("ds"); got != 0.75 {
		t.Fatalf("ledger spent = %v, want 0.75 (refund must cancel the refused charge)", got)
	}
	l.Close()

	l2 := openTest(t, dir, Options{})
	acct2 := dp.NewAccountant(1)
	if _, err := l2.Bind("ds", acct2); err != nil {
		t.Fatal(err)
	}
	if got := acct2.Spent(); got != 0.75 {
		t.Fatalf("recovered spent = %v, want 0.75", got)
	}
	// The refused charge must still be spendable after recovery.
	b2, _ := l2.Bind("ds", acct2)
	if err := b2.Spend("refill", 0.25); err != nil {
		t.Fatalf("spending the refunded budget after recovery: %v", err)
	}
}

// Compaction absorbs the log prefix into a snapshot and truncates the WAL;
// totals must be identical before and after, across a reopen.
func TestCompactionPreservesTotals(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SnapshotThreshold: 1024}
	l := openTest(t, dir, opts)
	acct := dp.NewAccountant(1000)
	b, err := l.Bind("ds", acct)
	if err != nil {
		t.Fatal(err)
	}
	const n, eps = 200, 0.5
	for i := 0; i < n; i++ {
		if err := b.Spend("q", eps); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Status()
	if st.SnapshotSeq == 0 {
		t.Fatal("no snapshot taken despite a tiny threshold")
	}
	if st.WALBytes >= 1024+256 {
		t.Fatalf("WAL not truncated by compaction: %d bytes", st.WALBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	l.Close()

	l2 := openTest(t, dir, opts)
	acct2 := dp.NewAccountant(1000)
	if _, err := l2.Bind("ds", acct2); err != nil {
		t.Fatal(err)
	}
	if got, want := acct2.Spent(), float64(n)*eps; got != want {
		t.Fatalf("recovered spent = %v, want %v", got, want)
	}
	// Sequence numbers must keep increasing after recovery from snapshot.
	if l2.Status().Records < l.Status().Records {
		t.Fatalf("seq went backwards: %d < %d", l2.Status().Records, l.Status().Records)
	}
}

// Forced compaction on an explicit call, independent of the threshold.
func TestCompactExplicit(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SnapshotThreshold: -1})
	acct := dp.NewAccountant(10)
	b, _ := l.Bind("ds", acct)
	if err := b.Spend("q", 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.Status().SnapshotSeq == 0 {
		t.Fatal("Compact took no snapshot")
	}
	l.Close()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets["ds"].Spent; got != 2 {
		t.Fatalf("recovered spent = %v, want 2", got)
	}
}

// Register records update a changed total; rebinding with the same total
// appends nothing new.
func TestRebindTotals(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	if _, err := l.Bind("ds", dp.NewAccountant(5)); err != nil {
		t.Fatal(err)
	}
	seqAfterFirst := l.Status().Records
	if _, err := l.Bind("ds", dp.NewAccountant(5)); err != nil {
		t.Fatal(err)
	}
	if got := l.Status().Records; got != seqAfterFirst {
		t.Fatalf("idempotent rebind appended records: %d -> %d", seqAfterFirst, got)
	}
	if _, err := l.Bind("ds", dp.NewAccountant(7)); err != nil {
		t.Fatal(err)
	}
	if got := l.Status().Records; got != seqAfterFirst+1 {
		t.Fatalf("total change appended %d records, want 1", got-seqAfterFirst)
	}
	l.Close()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets["ds"].Total; got != 7 {
		t.Fatalf("recovered total = %v, want 7", got)
	}
}

// Charges to a dataset never bound fail; closed ledgers refuse charges.
func TestChargeErrors(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	acct := dp.NewAccountant(1)
	b, err := l.Bind("ds", acct)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.charge("ghost", "q", "", 0.1, acct); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("charging unbound dataset: err = %v", err)
	}
	for _, eps := range []float64{0, -1} {
		if err := b.Spend("bad", eps); !errors.Is(err, dp.ErrInvalidEpsilon) {
			t.Fatalf("Spend(%v) err = %v, want ErrInvalidEpsilon", eps, err)
		}
	}
	l.Close()
	if err := b.Spend("after-close", 0.1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Spend after Close err = %v, want ErrClosed", err)
	}
	if got := acct.Spent(); got != 0 {
		t.Fatalf("failed charges leaked into the accountant: spent = %v", got)
	}
}

// Telemetry counters move on the expected events.
func TestTelemetryCounters(t *testing.T) {
	tel := telemetry.NewRegistry()
	dir := t.TempDir()
	l := openTest(t, dir, Options{Telemetry: tel, SnapshotThreshold: 512})
	acct := dp.NewAccountant(3)
	b, _ := l.Bind("ds", acct)
	for i := 0; i < 40; i++ {
		b.Spend("q", 0.1) // the tail of these exhausts the budget → refunds
	}
	if tel.Counter("ledger.appends").Value() == 0 {
		t.Error("ledger.appends did not move")
	}
	if tel.Counter("ledger.fsyncs").Value() == 0 {
		t.Error("ledger.fsyncs did not move")
	}
	if tel.Counter("ledger.refunds").Value() == 0 {
		t.Error("ledger.refunds did not move (exhausted charges must refund)")
	}
	if tel.Counter("ledger.snapshots").Value() == 0 {
		t.Error("ledger.snapshots did not move despite a tiny threshold")
	}
	l.Close()

	tel2 := telemetry.NewRegistry()
	l2 := openTest(t, dir, Options{Telemetry: tel2})
	defer l2.Close()
	if tel2.Counter("ledger.recovery.replayed_records").Value() == 0 {
		t.Error("ledger.recovery.replayed_records did not move on reopen")
	}
}

// Status surfaces the operational facts the admin /ledger endpoint serves.
func TestStatus(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncBatched, FlushInterval: time.Millisecond})
	acct := dp.NewAccountant(10)
	b, _ := l.Bind("ds", acct)
	if err := b.Spend("q", 1); err != nil {
		t.Fatal(err)
	}
	st := l.Status()
	if st.Dir != dir {
		t.Errorf("Dir = %q, want %q", st.Dir, dir)
	}
	if st.SyncPolicy != "batched" {
		t.Errorf("SyncPolicy = %q, want batched", st.SyncPolicy)
	}
	if st.Records == 0 || st.Datasets != 1 || st.WALBytes == 0 {
		t.Errorf("Status = %+v, want nonzero records/bytes and 1 dataset", st)
	}
	if st.Synced < st.Records {
		t.Errorf("acknowledged charge not covered: synced %d < records %d", st.Synced, st.Records)
	}
	if st.LastFsync.IsZero() {
		t.Error("LastFsync is zero after an acknowledged charge")
	}
}

// The group-commit path must ack only after its record is durable, and a
// quiet logger must not panic anything.
func TestBatchedAckDurability(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{
		Sync:          SyncBatched,
		FlushInterval: 500 * time.Microsecond,
		Logger:        log.New(os.Stderr, "", 0),
	})
	acct := dp.NewAccountant(1000)
	b, _ := l.Bind("ds", acct)
	for i := 0; i < 50; i++ {
		if err := b.Spend("q", 0.01); err != nil {
			t.Fatal(err)
		}
		// Every acknowledged charge must already be durable on disk: a
		// recovery snapshot taken *now* (same files, no close) must see at
		// least the acked total.
		if i%16 != 0 {
			continue
		}
		rec, err := Recover(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(i+1) * 0.01
		if got := rec.Datasets["ds"].Spent; got < want-1e-9 {
			t.Fatalf("after %d acks recovery sees %v, want ≥ %v", i+1, got, want)
		}
	}
}

// A directory-fsync failure after the compaction rename is past the point
// of no return: the swap must still happen (appends target the inode the
// directory entry now names) and the ledger must fail further charges
// closed, since their durability across a crash can no longer be
// guaranteed. Nothing acknowledged may be lost across a reopen.
func TestCompactDirFsyncFailurePoisons(t *testing.T) {
	calls := 0
	fsyncDir = func(dir string) error {
		calls++
		if calls == 2 { // 1st: snapshot publish; 2nd: post-rename WAL swap
			return errors.New("injected dir fsync failure")
		}
		return syncDir(dir)
	}
	defer func() { fsyncDir = syncDir }()

	dir := t.TempDir()
	l := openTest(t, dir, Options{SnapshotThreshold: -1})
	acct := dp.NewAccountant(10)
	b, err := l.Bind("ds", acct)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Spend("q", 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("Compact err = %v, want the injected dir fsync failure", err)
	}
	st := l.Status()
	if st.Poisoned == "" {
		t.Fatal("Status.Poisoned empty after a post-rename dir fsync failure")
	}
	if st.SnapshotSeq == 0 {
		t.Fatal("snapshot bookkeeping lost: the rename already published it")
	}
	// The swap must have happened: the live WAL is the fresh marker-only
	// file, not the old unlinked inode (whose records recovery never sees).
	markerLen := int64(len(EncodeRecord(nil, Record{Type: RecordSnapshotMarker})))
	if st.WALBytes != markerLen {
		t.Fatalf("WALBytes = %d, want %d (fresh marker-only WAL)", st.WALBytes, markerLen)
	}
	// Charges fail closed from here on, and nothing leaks into the books.
	if err := b.Spend("q2", 1); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("Spend on poisoned ledger err = %v, want fail-closed", err)
	}
	if got := acct.Spent(); got != 3 {
		t.Fatalf("failed charge debited the accountant: spent = %v", got)
	}
	if got := l.Spent("ds"); got != 3 {
		t.Fatalf("failed charge reached the ledger books: spent = %v", got)
	}
	if err := l.Compact(); err == nil {
		t.Fatal("Compact on a poisoned ledger must refuse")
	}
	l.Close()

	// Everything acknowledged before the poison survives a reopen: the
	// snapshot absorbed it, whichever wal.log inode a crash would expose.
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets["ds"].Spent; got != 3 {
		t.Fatalf("recovered spent = %v, want 3", got)
	}
}

// Over-long dataset names and labels are rejected up front: the wire
// format caps strings at maxStringLen, and truncating instead would alias
// two datasets sharing a 1024-byte prefix to one ledger entry on replay.
func TestOverLongStringsRejected(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	long := strings.Repeat("x", maxStringLen+1)
	if _, err := l.Bind(long, dp.NewAccountant(1)); err == nil {
		t.Fatal("Bind accepted an over-long dataset name")
	}
	acct := dp.NewAccountant(1)
	b, err := l.Bind("ds", acct)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(long, 0.1); err == nil {
		t.Fatal("Spend accepted an over-long label")
	}
	if got := acct.Spent(); got != 0 {
		t.Fatalf("rejected charge debited the accountant: spent = %v", got)
	}
	// A name exactly at the limit round-trips intact.
	edge := strings.Repeat("y", maxStringLen)
	be, err := l.Bind(edge, dp.NewAccountant(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Spend("q", 0.5); err != nil {
		t.Fatal(err)
	}
	l.Close()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets[edge].Spent; got != 0.5 {
		t.Fatalf("limit-length dataset name did not round-trip: spent = %v, want 0.5", got)
	}
}
