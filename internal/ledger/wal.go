package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncEveryRecord fsyncs after each append before acknowledging it.
	// Maximum durability, one fsync per charge on the query path.
	SyncEveryRecord SyncPolicy = iota
	// SyncBatched acknowledges a record only once an fsync covering it has
	// completed, but lets concurrent appenders share one fsync (group
	// commit): the first waiter becomes the flush leader, sleeps up to
	// FlushInterval to let a batch accumulate, syncs once, and releases
	// everyone it covered. Same never-under-count guarantee as
	// SyncEveryRecord — an acknowledged charge is always durable — at a
	// fraction of the fsync cost under concurrency.
	SyncBatched
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryRecord:
		return "every-record"
	case SyncBatched:
		return "batched"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

const walName = "wal.log"

// wal owns the open log file and the group-commit machinery.
//
// Locking: the owning Ledger serializes all writes (and file swaps during
// compaction) under its own mutex, so wal fields written on the append
// path need no extra lock. The group-commit state is guarded by flushMu,
// which is never held across an fsync — the leader syncs the file outside
// the lock so followers can queue up and appends can proceed. Because the
// leader runs without the Ledger mutex, f is additionally protected by
// flushMu against compaction's swap: the leader copies f under flushMu
// while syncing is set, and swap/close wait for syncing to clear before
// replacing or closing the file, so a leader never fsyncs a closed fd.
type wal struct {
	f    *os.File
	path string
	dir  string
	size int64
	buf  []byte // scratch frame buffer, reused across appends

	appended atomic.Uint64 // seq of the last record written to the file

	flushMu   sync.Mutex
	flushCond *sync.Cond
	synced    uint64 // seq of the last record covered by a completed fsync
	syncErr   error  // first fsync failure; latches, fails all later acks
	syncing   bool   // a flush leader is currently syncing
	lastSync  time.Time
}

// openWAL opens (creating if needed) dir/wal.log for appending. size is
// the current byte length after recovery truncated any torn tail; lastSeq
// seeds both the appended and synced watermarks — everything already in
// the file predates this process, so it is treated as durable.
func openWAL(dir string, size int64, lastSeq uint64) (*wal, error) {
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("ledger: open wal: %w", err)
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: seek wal: %w", err)
	}
	w := &wal{f: f, path: path, dir: dir, size: size}
	w.flushCond = sync.NewCond(&w.flushMu)
	w.appended.Store(lastSeq)
	w.synced = lastSeq
	return w, nil
}

// append writes one framed record. Callers hold the Ledger mutex. The
// record is durable only after sync (SyncEveryRecord) or waitSynced.
func (w *wal) append(r Record) error {
	w.buf = EncodeRecord(w.buf[:0], r)
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("ledger: append wal: %w", err)
	}
	w.appended.Store(r.Seq)
	return nil
}

// sync fsyncs the file immediately and advances the synced watermark.
// Callers hold the Ledger mutex (SyncEveryRecord path and compaction).
func (w *wal) sync() error {
	err := w.f.Sync()
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.lastSync = time.Now()
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = err
		}
		w.flushCond.Broadcast()
		return fmt.Errorf("ledger: fsync wal: %w", err)
	}
	if seq := w.appended.Load(); seq > w.synced {
		w.synced = seq
	}
	w.flushCond.Broadcast()
	return nil
}

// waitSynced blocks until an fsync covering seq has completed (group
// commit). The caller must NOT hold the Ledger mutex. Returns the number
// of records the caller's flush covered when it acted as leader (for
// batch-size telemetry), or 0 when it rode along as a follower.
func (w *wal) waitSynced(seq uint64, interval time.Duration) (int64, error) {
	w.flushMu.Lock()
	for w.synced < seq && w.syncErr == nil {
		if w.syncing {
			// A leader is already flushing; ride its batch.
			w.flushCond.Wait()
			continue
		}
		// Become the flush leader. syncing=true keeps swap (compaction)
		// and close from replacing or closing the fd mid-fsync — both
		// wait for it to clear. Sleep briefly so concurrent appenders
		// join this batch, then sync once outside the lock.
		w.syncing = true
		w.flushMu.Unlock()
		if interval > 0 {
			time.Sleep(interval)
		}
		w.flushMu.Lock()
		f := w.f // cannot go stale: swap waits while syncing is set
		w.flushMu.Unlock()
		target := w.appended.Load() // everything written before the fsync below
		err := f.Sync()
		w.flushMu.Lock()
		w.syncing = false
		w.lastSync = time.Now()
		var batch int64
		if err != nil {
			if w.syncErr == nil {
				w.syncErr = err
			}
		} else if target > w.synced {
			batch = int64(target - w.synced)
			w.synced = target
		}
		w.flushCond.Broadcast()
		if w.synced >= seq || w.syncErr != nil {
			serr := w.syncErr
			w.flushMu.Unlock()
			if serr != nil {
				return batch, fmt.Errorf("ledger: fsync wal: %w", serr)
			}
			return batch, nil
		}
	}
	err := w.syncErr
	w.flushMu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("ledger: fsync wal: %w", err)
	}
	return 0, nil
}

// syncedThrough reports the durable watermark and last fsync time.
func (w *wal) syncedThrough() (uint64, time.Time) {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	return w.synced, w.lastSync
}

// swap replaces the open file with the freshly compacted one. Callers hold
// the Ledger mutex and have already brought the old file fully synced, so
// no group-commit waiter still needs the old file durable — but a flush
// leader may be mid-fsync on it, so swap waits for syncing to clear before
// installing the new file (under flushMu, the lock leaders copy w.f under)
// and closing the old one. No new leader can slip in between: compaction's
// preceding sync satisfied every queued waiter, and the Ledger mutex held
// here keeps new records from being appended.
func (w *wal) swap(f *os.File, size int64) {
	w.flushMu.Lock()
	for w.syncing {
		w.flushCond.Wait()
	}
	old := w.f
	w.f = f
	w.flushMu.Unlock()
	w.size = size
	old.Close()
}

func (w *wal) close() error {
	w.flushMu.Lock()
	for w.syncing {
		w.flushCond.Wait()
	}
	w.syncing = true // exclusive fd ownership: no leader syncs a closing fd
	f := w.f
	w.flushMu.Unlock()

	err := f.Sync()
	cerr := f.Close()

	w.flushMu.Lock()
	w.lastSync = time.Now()
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = err
		}
	} else {
		if seq := w.appended.Load(); seq > w.synced {
			w.synced = seq
		}
	}
	w.syncing = false
	w.flushCond.Broadcast()
	w.flushMu.Unlock()
	if err == nil {
		err = cerr
	}
	return err
}

// fsyncDir fsyncs a directory so renames within it are durable. Tests
// swap it out to exercise the post-rename failure path in compaction.
var fsyncDir = syncDir

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
