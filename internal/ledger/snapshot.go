package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Snapshot compaction. When the WAL grows past Options.SnapshotThreshold,
// the ledger writes the full replayed state to snapshot.json with the same
// atomic discipline as dataset/persist.go — write a temp file, fsync it,
// rename into place, fsync the directory — then starts a fresh WAL whose
// first record is a snapshot-marker. Every record carries a sequence
// number and recovery skips records at or below the snapshot's LastSeq, so
// a crash between the two renames (new snapshot + old WAL) replays
// nothing twice.

const (
	snapshotName    = "snapshot.json"
	snapshotVersion = 1
)

// snapshotDataset is one dataset's compacted ledger state.
type snapshotDataset struct {
	Name string `json:"name"`
	// Total is the lifetime ε budget last registered for the dataset.
	Total float64 `json:"total"`
	// Spent is the replayed cumulative ε, including provisional charges
	// whose refunds were lost to a crash (over-count-safe).
	Spent float64 `json:"spent"`
	// Charges counts settled (non-refunded) charge records.
	Charges int `json:"charges"`
	// Tenants maps tenant id → settled ε (PR 8), so per-tenant balances
	// survive WAL compaction. Absent in pre-tenancy snapshots, which decode
	// with no per-tenant attribution — exactly the legacy reading.
	Tenants map[string]float64 `json:"tenants,omitempty"`
}

type snapshotFile struct {
	Version int `json:"version"`
	// LastSeq is the highest record sequence number the snapshot absorbed;
	// WAL records at or below it are skipped during replay.
	LastSeq  uint64            `json:"lastSeq"`
	TakenAt  time.Time         `json:"takenAt"`
	Datasets []snapshotDataset `json:"datasets"`
}

// writeSnapshot atomically persists s to dir/snapshot.json. beforeRename,
// when non-nil, runs after the temp file is durable but before the rename
// publishes it — the kill-test hook for the mid-compaction crash window.
func writeSnapshot(dir string, s snapshotFile, beforeRename func()) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("ledger: marshal snapshot: %w", err)
	}
	path := filepath.Join(dir, snapshotName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("ledger: write snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ledger: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ledger: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ledger: close snapshot: %w", err)
	}
	if beforeRename != nil {
		beforeRename()
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ledger: commit snapshot: %w", err)
	}
	if err := fsyncDir(dir); err != nil {
		return fmt.Errorf("ledger: fsync ledger dir: %w", err)
	}
	return nil
}

// readSnapshot loads dir/snapshot.json. A missing file is not an error
// (ok=false); a present-but-unreadable one is, because snapshots are
// written atomically and never legitimately half-present.
func readSnapshot(dir string) (snapshotFile, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return snapshotFile{}, false, nil
	}
	if err != nil {
		return snapshotFile{}, false, fmt.Errorf("ledger: read snapshot: %w", err)
	}
	var s snapshotFile
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshotFile{}, false, fmt.Errorf("ledger: parse snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return snapshotFile{}, false, fmt.Errorf("ledger: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	return s, true, nil
}
