package ledger

import (
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gupt/internal/dp"
	"gupt/internal/telemetry"
)

// ErrClosed is returned by operations on a closed ledger.
var ErrClosed = errors.New("ledger: closed")

// Crash points, for the kill-test matrix (Options.CrashPoint). Production
// code never sets the hook; tests use it to SIGKILL the process at exact
// fsync and rename boundaries and prove recovery never under-counts.
const (
	CrashAfterAppend       = "append.after-write"    // record written, not yet fsync'd
	CrashAfterSync         = "append.after-fsync"    // record durable, accountant not yet debited
	CrashAfterSpend        = "charge.after-spend"    // accountant debited, ack not yet returned
	CrashAfterRefund       = "refund.after-write"    // refund written (possibly volatile)
	CrashAfterSnapshot     = "compact.after-snapshot" // snapshot renamed, old WAL still whole
	CrashAfterWALSwap      = "compact.after-swap"    // fresh WAL renamed into place
	CrashBeforeSnapshotRename = "compact.before-snapshot-rename" // temp written, rename pending
)

// Options configures a ledger.
type Options struct {
	// Sync selects the fsync policy; default SyncEveryRecord.
	Sync SyncPolicy
	// FlushInterval is the group-commit accumulation window for
	// SyncBatched; the flush leader waits this long before syncing so
	// concurrent charges share the fsync. Default 2ms. Ignored under
	// SyncEveryRecord.
	FlushInterval time.Duration
	// SnapshotThreshold compacts the WAL into a snapshot once the log file
	// exceeds this many bytes. Default 1 MiB; negative disables
	// compaction.
	SnapshotThreshold int64
	// Telemetry receives ledger counters (ledger.appends, ledger.fsyncs,
	// ledger.synced_records, ledger.refunds, ledger.snapshots,
	// ledger.recovery.replayed_records). Nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Logger receives recovery warnings (torn tails, orphan refunds) and
	// non-fatal persistence diagnostics. Nil silences them.
	Logger *log.Logger
	// CrashPoint, when set, is invoked with a named durability boundary
	// just after the ledger crosses it. Test hook for the SIGKILL matrix;
	// leave nil in production.
	CrashPoint func(point string)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FlushInterval <= 0 {
		out.FlushInterval = 2 * time.Millisecond
	}
	if out.SnapshotThreshold == 0 {
		out.SnapshotThreshold = 1 << 20
	}
	return out
}

// datasetState is the ledger's live mirror of one dataset's budget.
type datasetState struct {
	total   float64
	spent   float64
	charges int
	// tenantSpent mirrors per-tenant settled ε (PR 8) so compaction can
	// carry the balances into the snapshot. The "" (default) principal is
	// never in the map.
	tenantSpent map[string]float64
}

func (st *datasetState) addTenantSpent(tenant string, eps float64) {
	if tenant == "" {
		return
	}
	if st.tenantSpent == nil {
		st.tenantSpent = make(map[string]float64)
	}
	st.tenantSpent[tenant] += eps
}

// Ledger is the durable privacy-budget ledger for one directory. All
// mutation flows through a single mutex; group-commit waiting happens
// outside it, so charge throughput under SyncBatched is bounded by fsync
// bandwidth, not fsync latency.
//
// Lock ordering: Ledger.mu is acquired before dp.Accountant's internal
// mutex (Bind and charge call Accountant methods while holding mu), and
// dataset.Registry's lock is acquired before Ledger.mu (the registration
// hook binds under the registry lock). Nothing ever takes these in the
// reverse order: the ledger never calls into the registry, and the
// accountant calls into nothing. Registry.mu → Ledger.mu → Accountant.mu.
type Ledger struct {
	opts Options
	dir  string

	mu     sync.Mutex
	wal    *wal
	state  map[string]*datasetState
	seq    uint64
	closed bool
	// poisoned latches when a compaction published a fresh WAL whose
	// rename could not be made durable (directory fsync failed after the
	// point of no return). New appends would land on an inode a crash
	// might orphan — the under-count direction — so the ledger fails all
	// further mutation closed until the operator intervenes.
	poisoned error

	snapshotSeq uint64
	snapshotAt  time.Time
	recovered   *Recovered // boot-time replay, for Status and diagnostics

	appends       *telemetry.Counter
	fsyncs        *telemetry.Counter
	syncedRecords *telemetry.Counter
	refunds       *telemetry.Counter
	snapshots     *telemetry.Counter
	replayed      *telemetry.Counter
	cacheHitsRec  *telemetry.Counter
}

// Open recovers the ledger directory (creating it if absent) and returns a
// ledger ready for appends. Recovery replays snapshot + WAL tail,
// truncates a torn final record, and fails on interior corruption.
func Open(dir string, opts Options) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("ledger: create dir: %w", err)
	}
	rec, err := Recover(dir, opts.Logger)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(dir, rec.WALSize, rec.LastSeq)
	if err != nil {
		return nil, err
	}
	l := &Ledger{
		opts:        opts.withDefaults(),
		dir:         dir,
		wal:         w,
		state:       make(map[string]*datasetState, len(rec.Datasets)),
		seq:         rec.LastSeq,
		snapshotSeq: rec.SnapshotSeq,
		snapshotAt:  rec.SnapshotAt,
		recovered:   rec,
	}
	for name, d := range rec.Datasets {
		st := &datasetState{total: d.Total, spent: d.Spent, charges: d.Charges}
		for tid, eps := range d.TenantSpent {
			st.addTenantSpent(tid, eps)
		}
		l.state[name] = st
	}
	if tel := opts.Telemetry; tel != nil {
		l.appends = tel.Counter("ledger.appends")
		l.fsyncs = tel.Counter("ledger.fsyncs")
		l.syncedRecords = tel.Counter("ledger.synced_records")
		l.refunds = tel.Counter("ledger.refunds")
		l.snapshots = tel.Counter("ledger.snapshots")
		l.replayed = tel.Counter("ledger.recovery.replayed_records")
		l.cacheHitsRec = tel.Counter("ledger.cache_hits")
		l.replayed.Add(int64(rec.WALRecords))
	}
	return l, nil
}

// Recovered returns the boot-time replay result (datasets, torn-tail flag,
// replayed record count). The map is shared; treat it as read-only.
func (l *Ledger) Recovered() *Recovered { return l.recovered }

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// crash fires the test-only crash hook.
func (l *Ledger) crash(point string) {
	if l.opts.CrashPoint != nil {
		l.opts.CrashPoint(point)
	}
}

// appendLocked assigns the next sequence number, stamps the record, and
// writes it. Under SyncEveryRecord it also fsyncs before returning, so the
// record is durable at return. Callers hold l.mu.
func (l *Ledger) appendLocked(r Record) (uint64, error) {
	l.seq++
	r.Seq = l.seq
	r.At = time.Now().UnixNano()
	if err := l.wal.append(r); err != nil {
		l.seq-- // the write failed; do not burn the seq
		return 0, err
	}
	l.appends.Inc()
	l.crash(CrashAfterAppend)
	if l.opts.Sync == SyncEveryRecord {
		if err := l.wal.sync(); err != nil {
			return 0, err
		}
		l.fsyncs.Inc()
		l.syncedRecords.Inc()
		l.crash(CrashAfterSync)
	}
	return r.Seq, nil
}

// waitDurable blocks until the record with seq is covered by an fsync.
// Callers must NOT hold l.mu.
func (l *Ledger) waitDurable(seq uint64) error {
	if l.opts.Sync == SyncEveryRecord {
		return nil // appendLocked already synced
	}
	batch, err := l.wal.waitSynced(seq, l.opts.FlushInterval)
	if batch > 0 {
		l.fsyncs.Inc()
		l.syncedRecords.Add(batch)
	}
	if err != nil {
		return err
	}
	l.crash(CrashAfterSync)
	return nil
}

// register ensures the dataset exists in the ledger with the given total,
// appending a register record when it is new or its total changed.
func (l *Ledger) register(name string, total float64) (*datasetState, error) {
	if err := validateString("dataset name", name); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.poisoned != nil {
		return nil, l.poisoned
	}
	st, ok := l.state[name]
	if ok && st.total == total {
		return st, nil
	}
	if _, err := l.appendLocked(Record{Type: RecordRegister, Dataset: name, Total: total}); err != nil {
		return nil, err
	}
	if !ok {
		st = &datasetState{}
		l.state[name] = st
	}
	st.total = total
	return st, nil
}

// charge is the log-before-charge path. Sequence:
//
//  1. append the charge record (durable immediately under SyncEveryRecord)
//  2. debit the in-memory accountant
//  3. if the accountant refused (exhausted), append a refund naming the
//     charge's seq and return the refusal
//  4. otherwise wait for the group commit to cover the record, then ack
//
// A crash after (1) replays a charge the analyst never saw answered —
// over-count, safe. A crash before the refund in (3) persists loses
// nothing the analyst gained. An ack in (4) is returned only once the
// record is on stable storage, so acknowledged (answer-releasing) charges
// can never be under-counted by recovery.
func (l *Ledger) charge(name, label, tenant string, eps float64, acct *dp.Accountant) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		// Same grammar as dp.checkEpsilon: reject before the WAL sees a
		// garbage (NaN/negative) epsilon that would poison replay sums.
		return fmt.Errorf("%w: got %v", dp.ErrInvalidEpsilon, eps)
	}
	if err := validateString("dataset name", name); err != nil {
		return err
	}
	if err := validateString("charge label", label); err != nil {
		return err
	}
	if err := validateString("tenant id", tenant); err != nil {
		return err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.poisoned != nil {
		err := l.poisoned
		l.mu.Unlock()
		return err
	}
	st, ok := l.state[name]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("ledger: dataset %q not bound", name)
	}
	seq, err := l.appendLocked(Record{Type: RecordCharge, Dataset: name, Label: label, Epsilon: eps, Tenant: tenant})
	if err != nil {
		// Fail closed: if the charge cannot be made durable the in-memory
		// accountant is never debited and no answer is released.
		l.mu.Unlock()
		return err
	}
	st.spent += eps
	st.charges++
	st.addTenantSpent(tenant, eps)

	// The accountant's exhaustion check runs here, under the ledger lock,
	// so concurrent charges against one dataset serialize their
	// check-then-refund pairs (see the lock-ordering note on Ledger).
	spendErr := acct.Spend(label, eps)
	if spendErr != nil {
		l.crash(CrashAfterSpend) // point still exercised on the refusal path
		if _, rerr := l.appendLocked(Record{Type: RecordRefund, Dataset: name, ChargeSeq: seq, Epsilon: eps, Tenant: tenant}); rerr == nil {
			st.spent -= eps
			st.charges--
			st.addTenantSpent(tenant, -eps)
			l.refunds.Inc()
			l.crash(CrashAfterRefund)
		} else if l.opts.Logger != nil {
			// The provisional charge stays on the books — over-count, the
			// safe direction.
			l.opts.Logger.Printf("ledger: refund append failed, provisional charge %d stands: %v", seq, rerr)
		}
		l.mu.Unlock()
		return spendErr
	}
	l.crash(CrashAfterSpend)
	compactErr := l.maybeCompactLocked()
	benign := compactErr != nil && l.poisoned == nil
	l.mu.Unlock()

	if err := l.waitDurable(seq); err != nil {
		// The in-memory debit stands (over-count-safe); the query fails
		// closed because its charge may not be durable.
		return err
	}
	if benign && l.opts.Logger != nil {
		// Pre-rename compaction failures leave the old WAL intact; the
		// poisoned case already logged itself in compactLocked.
		l.opts.Logger.Printf("ledger: compaction failed (log keeps growing): %v", compactErr)
	}
	return nil
}

// cacheHit journals an ε=0 re-release of a previously published answer.
// It never touches the accountant or the dataset's spent total — a cache
// hit moves no budget by construction, and replay treats the record the
// same way — but it follows the same append/durability discipline as a
// charge so the WAL stays a complete, tamper-surviving account of every
// release. Losing one in a crash is benign (no budget direction exists to
// err in), so durability here buys auditability, not safety.
func (l *Ledger) cacheHit(name, label, tenant string) error {
	if err := validateString("dataset name", name); err != nil {
		return err
	}
	if err := validateString("charge label", label); err != nil {
		return err
	}
	if err := validateString("tenant id", tenant); err != nil {
		return err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.poisoned != nil {
		err := l.poisoned
		l.mu.Unlock()
		return err
	}
	if _, ok := l.state[name]; !ok {
		l.mu.Unlock()
		return fmt.Errorf("ledger: dataset %q not bound", name)
	}
	seq, err := l.appendLocked(Record{Type: RecordCacheHit, Dataset: name, Label: label, Tenant: tenant})
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.cacheHitsRec.Inc()
	compactErr := l.maybeCompactLocked()
	benign := compactErr != nil && l.poisoned == nil
	l.mu.Unlock()

	if err := l.waitDurable(seq); err != nil {
		return err
	}
	if benign && l.opts.Logger != nil {
		l.opts.Logger.Printf("ledger: compaction failed (log keeps growing): %v", compactErr)
	}
	return nil
}

// Spent returns the ledger's replayed+live spent total for a dataset.
func (l *Ledger) Spent(name string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.state[name]; ok {
		return st.spent
	}
	return 0
}

// SpentByTenant returns a copy of the dataset's per-tenant settled ε
// (tenant id → ε; the default principal "" is never a key). Serves the
// admin per-tenant ledger view and tests.
func (l *Ledger) SpentByTenant(name string) map[string]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.state[name]
	if !ok || len(st.tenantSpent) == 0 {
		return nil
	}
	out := make(map[string]float64, len(st.tenantSpent))
	for tid, eps := range st.tenantSpent {
		out[tid] = eps
	}
	return out
}

// maybeCompactLocked snapshots and truncates the WAL once it outgrows the
// threshold. Callers hold l.mu. Compaction failures leave the WAL intact
// (it just keeps growing), so they are reported but never lose state.
func (l *Ledger) maybeCompactLocked() error {
	if l.opts.SnapshotThreshold < 0 || l.wal.size < l.opts.SnapshotThreshold {
		return nil
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	return l.compactLocked()
}

func (l *Ledger) compactLocked() error {
	// Bring the current WAL fully durable first: every in-flight group
	// commit waiter is then already satisfied, so swapping files cannot
	// strand a waiter on a stale fd.
	if err := l.wal.sync(); err != nil {
		return err
	}
	l.fsyncs.Inc()

	snap := snapshotFile{
		Version: snapshotVersion,
		LastSeq: l.seq,
		TakenAt: time.Now(),
	}
	for name, st := range l.state {
		sd := snapshotDataset{Name: name, Total: st.total, Spent: st.spent, Charges: st.charges}
		if len(st.tenantSpent) > 0 {
			sd.Tenants = make(map[string]float64, len(st.tenantSpent))
			for tid, eps := range st.tenantSpent {
				sd.Tenants[tid] = eps
			}
		}
		snap.Datasets = append(snap.Datasets, sd)
	}
	if err := writeSnapshot(l.dir, snap, func() { l.crash(CrashBeforeSnapshotRename) }); err != nil {
		return err
	}
	l.crash(CrashAfterSnapshot)

	// Fresh WAL: a temp file holding only the snapshot marker, renamed
	// over wal.log. Until the rename lands, recovery sees the new snapshot
	// plus the old WAL — whose records are all ≤ LastSeq and therefore
	// skipped on replay.
	l.seq++
	marker := Record{Type: RecordSnapshotMarker, Seq: l.seq, At: time.Now().UnixNano(), SnapshotSeq: snap.LastSeq}
	frame := EncodeRecord(nil, marker)
	tmpPath := filepath.Join(l.dir, walName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		l.seq--
		return fmt.Errorf("ledger: new wal: %w", err)
	}
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		l.seq--
		return fmt.Errorf("ledger: new wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		l.seq--
		return fmt.Errorf("ledger: fsync new wal: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, walName)); err != nil {
		tmp.Close()
		l.seq--
		return fmt.Errorf("ledger: commit new wal: %w", err)
	}
	// Point of no return: the directory entry now names the fresh WAL, so
	// every append from here on must target the new inode. The swap and
	// watermark updates below happen even if the directory fsync fails —
	// returning early would leave acknowledged charges landing on the old,
	// unlinked inode while recovery reads the fresh wal.log, losing them
	// (the under-count direction).
	dirErr := fsyncDir(l.dir)
	l.wal.appended.Store(l.seq)
	l.wal.flushMu.Lock()
	l.wal.synced = l.seq
	l.wal.flushMu.Unlock()
	l.wal.swap(tmp, int64(len(frame)))
	l.snapshotSeq = snap.LastSeq
	l.snapshotAt = snap.TakenAt
	l.snapshots.Inc()
	l.crash(CrashAfterWALSwap)
	if dirErr != nil {
		// Without the directory fsync the rename itself may not survive a
		// crash: recovery could resurrect the old wal.log while new charges
		// exist only on the fresh inode. The snapshot already absorbed
		// everything up to this point (it is durable and its LastSeq covers
		// all prior records), so nothing acknowledged is at risk — but no
		// FUTURE charge can be made crash-safe. Fail them closed.
		l.poisoned = fmt.Errorf("ledger: wal swap not durable (dir fsync failed): %w", dirErr)
		if l.opts.Logger != nil {
			l.opts.Logger.Printf("ledger: poisoned, failing further charges closed: %v", l.poisoned)
		}
		return l.poisoned
	}
	return nil
}

// Compact forces a snapshot regardless of the size threshold.
func (l *Ledger) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	return l.compactLocked()
}

// Close flushes and closes the WAL. Charges issued after Close fail.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.wal.close()
}

// Status is the operator view served at the admin /ledger endpoint.
type Status struct {
	Dir string
	// SyncPolicy is the configured fsync policy ("every-record",
	// "batched").
	SyncPolicy string
	// Records is the highest sequence number ever assigned (lifetime
	// record count across snapshots).
	Records uint64
	// WALBytes is the current log file size.
	WALBytes int64
	// Datasets counts datasets with ledger state.
	Datasets int
	// LastFsync is the completion time of the most recent fsync (zero
	// before the first).
	LastFsync time.Time
	// SnapshotSeq / SnapshotAt describe the newest snapshot (zero when
	// none has been taken).
	SnapshotSeq uint64
	SnapshotAt  time.Time
	// Synced is the durable sequence watermark; Records - Synced is the
	// volatile tail an immediate crash would replay provisionally.
	Synced uint64
	// RecoveredTornTail reports that boot-time recovery truncated a torn
	// final record.
	RecoveredTornTail bool
	// Poisoned, when non-empty, is the error that put the ledger into the
	// fail-closed state (a WAL swap whose rename could not be fsync'd);
	// all further charges are refused. Empty when healthy.
	Poisoned string
}

// Status snapshots the ledger's operational state.
func (l *Ledger) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	synced, lastSync := l.wal.syncedThrough()
	var poisoned string
	if l.poisoned != nil {
		poisoned = l.poisoned.Error()
	}
	return Status{
		Poisoned:          poisoned,
		Dir:               l.dir,
		SyncPolicy:        l.opts.Sync.String(),
		Records:           l.seq,
		WALBytes:          l.wal.size,
		Datasets:          len(l.state),
		LastFsync:         lastSync,
		SnapshotSeq:       l.snapshotSeq,
		SnapshotAt:        l.snapshotAt,
		Synced:            synced,
		RecoveredTornTail: l.recovered.TornTail,
	}
}
