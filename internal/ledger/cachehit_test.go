package ledger

import (
	"testing"
	"time"

	"gupt/internal/dp"
)

// TestCacheHitsAreBudgetInvariant is the ledger half of the zero-ε cache
// contract: any number of cache_hit records moves no budget — not in
// memory, not on replay. The records are still journaled (the audit trail
// must show every release, charged or not) and surface as a count after
// recovery.
func TestCacheHitsAreBudgetInvariant(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryRecord, SyncBatched} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Sync: policy, FlushInterval: time.Millisecond}

			l := openTest(t, dir, opts)
			acct := dp.NewAccountant(10)
			b, err := l.Bind("census", acct)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Spend("q1", 1.5); err != nil {
				t.Fatal(err)
			}
			const hits = 25
			for i := 0; i < hits; i++ {
				if err := b.RecordCacheHit("census:mean"); err != nil {
					t.Fatal(err)
				}
			}
			if got := acct.Spent(); got != 1.5 {
				t.Fatalf("cache hits moved in-memory budget: spent %v, want 1.5", got)
			}
			if got := acct.Queries(); got != 1 {
				t.Fatalf("cache hits counted as charges: queries %d, want 1", got)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Replay: the WAL now holds 1 charge + N cache hits. Recovery
			// must reproduce the exact pre-crash balance and report the hits
			// as a count, not a spend.
			l2 := openTest(t, dir, opts)
			rec := l2.Recovered()
			ds, ok := rec.Datasets["census"]
			if !ok {
				t.Fatal("census missing from recovery")
			}
			if ds.CacheHits != hits {
				t.Errorf("recovered CacheHits = %d, want %d", ds.CacheHits, hits)
			}
			acct2 := dp.NewAccountant(10)
			if _, err := l2.Bind("census", acct2); err != nil {
				t.Fatal(err)
			}
			if got := acct2.Spent(); got != 1.5 {
				t.Fatalf("replayed spent = %v, want 1.5 (cache hits must be budget-neutral)", got)
			}
			if got := acct2.Remaining(); got != 8.5 {
				t.Fatalf("replayed remaining = %v, want 8.5", got)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCacheHitRefusedWhenUnbound mirrors the charge path's fail-closed
// stance: a cache hit on a dataset the ledger has no binding for is an
// error, never a silent drop — the audit trail would be missing a release.
func TestCacheHitRefusedWhenUnbound(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncEveryRecord})
	defer l.Close()
	if err := l.cacheHit("ghost", "label", ""); err == nil {
		t.Fatal("cache hit against an unbound dataset must fail")
	}
}
