package ledger

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gupt/internal/dp"
)

// Concurrent charges against one dataset: the §6.2 exhaustion check runs
// under the ledger lock (Registry.mu → Ledger.mu → Accountant.mu, see the
// lock-ordering note on Ledger), so exactly the charges the accountant
// accepted are on the durable books — no lost updates, no overdraft, no
// under-count after recovery. Run with -race.
func TestConcurrentChargesOneDataset(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryRecord, SyncBatched} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openTest(t, dir, Options{Sync: policy, FlushInterval: 200 * time.Microsecond})
			const total = 10.0
			acct := dp.NewAccountant(total)
			b, err := l.Bind("ds", acct)
			if err != nil {
				t.Fatal(err)
			}

			// 16 goroutines race 2000 charges of 0.01 against a budget that
			// only fits 1000 of them.
			const goroutines, perG = 16, 125
			const eps = 0.01
			var wg sync.WaitGroup
			var mu sync.Mutex
			var ok, exhausted int
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						err := b.Spend("race", eps)
						mu.Lock()
						switch {
						case err == nil:
							ok++
						case errors.Is(err, dp.ErrBudgetExhausted):
							exhausted++
						default:
							t.Errorf("unexpected error: %v", err)
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			if ok+exhausted != goroutines*perG {
				t.Fatalf("accounted %d outcomes, want %d", ok+exhausted, goroutines*perG)
			}
			// The accountant's tolerance admits at most the budget's worth.
			wantSpent := float64(ok) * eps
			if got := acct.Spent(); got < wantSpent-1e-6 || got > wantSpent+1e-6 {
				t.Fatalf("in-memory spent = %v, want %v (ok=%d)", got, wantSpent, ok)
			}
			if got := l.Spent("ds"); got < wantSpent-1e-6 || got > wantSpent+1e-6 {
				t.Fatalf("ledger spent = %v, want %v", got, wantSpent)
			}
			l.Close()

			// Recovery must agree with what was acknowledged.
			rec, err := Recover(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := rec.Datasets["ds"].Spent; got < wantSpent-1e-6 {
				t.Fatalf("recovered spent = %v, want ≥ %v (never under-count)", got, wantSpent)
			}
			if got := rec.Datasets["ds"].Charges; got != ok {
				t.Fatalf("recovered charges = %d, want %d", got, ok)
			}
		})
	}
}

// Group commits race compaction: a tiny snapshot threshold makes every
// few charges swap the WAL file while batched flush leaders are mid-fsync
// on it. The leader copies the fd under flushMu and swap waits for the
// syncing flag to clear, so a leader never fsyncs a closed fd (that would
// latch a sync error and fail every later charge). Run with -race.
func TestGroupCommitRacesCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{
		Sync:              SyncBatched,
		FlushInterval:     100 * time.Microsecond,
		SnapshotThreshold: 256, // compact every handful of records
	})
	b, err := l.Bind("ds", dp.NewAccountant(1e6))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := b.Spend("q", 0.25); err != nil {
					t.Errorf("charge during compaction churn: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := l.Status(); st.SnapshotSeq == 0 {
		t.Fatal("no compaction happened; the race was not exercised")
	}
	l.Close()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rec.Datasets["ds"].Spent, float64(goroutines*perG)*0.25; got < want-1e-6 {
		t.Fatalf("recovered spent = %v, want ≥ %v", got, want)
	}
}

// The widest version of the same race: a long flush interval keeps the
// group-commit leader asleep (fd in hand) across entire explicit Compact
// calls issued from another goroutine, so without the flushMu handshake
// the leader would fsync the swapped-out, closed fd.
func TestExplicitCompactRacesFlushLeader(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{
		Sync:              SyncBatched,
		FlushInterval:     2 * time.Millisecond,
		SnapshotThreshold: -1, // only the explicit Compact loop below
	})
	b, err := l.Bind("ds", dp.NewAccountant(1e6))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := b.Spend("q", 0.25); err != nil {
					t.Errorf("charge racing Compact: %v", err)
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := l.Compact(); err != nil {
			t.Errorf("Compact: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	l.Close()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets["ds"].Spent; got <= 0 {
		t.Fatalf("recovered spent = %v, want > 0", got)
	}
}

// Concurrent charges across several datasets sharing one ledger: group
// commits interleave across datasets without crosstalk.
func TestConcurrentChargesManyDatasets(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncBatched, FlushInterval: 200 * time.Microsecond})
	names := []string{"a", "b", "c", "d"}
	backed := make(map[string]*Backed, len(names))
	for _, n := range names {
		b, err := l.Bind(n, dp.NewAccountant(1000))
		if err != nil {
			t.Fatal(err)
		}
		backed[n] = b
	}
	var wg sync.WaitGroup
	const perDataset = 100
	for _, n := range names {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			for i := 0; i < perDataset; i++ {
				if err := backed[n].Spend("q", 0.5); err != nil {
					t.Errorf("%s: %v", n, err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	l.Close()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if got := rec.Datasets[n].Spent; got != perDataset*0.5 {
			t.Fatalf("%s recovered spent = %v, want %v", n, got, perDataset*0.5)
		}
	}
}
