package ledger

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gupt/internal/dp"
)

// Concurrent charges against one dataset: the §6.2 exhaustion check runs
// under the ledger lock (Registry.mu → Ledger.mu → Accountant.mu, see the
// lock-ordering note on Ledger), so exactly the charges the accountant
// accepted are on the durable books — no lost updates, no overdraft, no
// under-count after recovery. Run with -race.
func TestConcurrentChargesOneDataset(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryRecord, SyncBatched} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openTest(t, dir, Options{Sync: policy, FlushInterval: 200 * time.Microsecond})
			const total = 10.0
			acct := dp.NewAccountant(total)
			b, err := l.Bind("ds", acct)
			if err != nil {
				t.Fatal(err)
			}

			// 16 goroutines race 2000 charges of 0.01 against a budget that
			// only fits 1000 of them.
			const goroutines, perG = 16, 125
			const eps = 0.01
			var wg sync.WaitGroup
			var mu sync.Mutex
			var ok, exhausted int
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						err := b.Spend("race", eps)
						mu.Lock()
						switch {
						case err == nil:
							ok++
						case errors.Is(err, dp.ErrBudgetExhausted):
							exhausted++
						default:
							t.Errorf("unexpected error: %v", err)
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			if ok+exhausted != goroutines*perG {
				t.Fatalf("accounted %d outcomes, want %d", ok+exhausted, goroutines*perG)
			}
			// The accountant's tolerance admits at most the budget's worth.
			wantSpent := float64(ok) * eps
			if got := acct.Spent(); got < wantSpent-1e-6 || got > wantSpent+1e-6 {
				t.Fatalf("in-memory spent = %v, want %v (ok=%d)", got, wantSpent, ok)
			}
			if got := l.Spent("ds"); got < wantSpent-1e-6 || got > wantSpent+1e-6 {
				t.Fatalf("ledger spent = %v, want %v", got, wantSpent)
			}
			l.Close()

			// Recovery must agree with what was acknowledged.
			rec, err := Recover(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := rec.Datasets["ds"].Spent; got < wantSpent-1e-6 {
				t.Fatalf("recovered spent = %v, want ≥ %v (never under-count)", got, wantSpent)
			}
			if got := rec.Datasets["ds"].Charges; got != ok {
				t.Fatalf("recovered charges = %d, want %d", got, ok)
			}
		})
	}
}

// Concurrent charges across several datasets sharing one ledger: group
// commits interleave across datasets without crosstalk.
func TestConcurrentChargesManyDatasets(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncBatched, FlushInterval: 200 * time.Microsecond})
	names := []string{"a", "b", "c", "d"}
	backed := make(map[string]*Backed, len(names))
	for _, n := range names {
		b, err := l.Bind(n, dp.NewAccountant(1000))
		if err != nil {
			t.Fatal(err)
		}
		backed[n] = b
	}
	var wg sync.WaitGroup
	const perDataset = 100
	for _, n := range names {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			for i := 0; i < perDataset; i++ {
				if err := backed[n].Spend("q", 0.5); err != nil {
					t.Errorf("%s: %v", n, err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	l.Close()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if got := rec.Datasets[n].Spent; got != perDataset*0.5 {
			t.Fatalf("%s recovered spent = %v, want %v", n, got, perDataset*0.5)
		}
	}
}
