package ledger

import (
	"errors"
	"testing"

	"gupt/internal/budget"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func testTable(t *testing.T, rows int) *dataset.Table {
	t.Helper()
	tbl := dataset.New([]string{"x"})
	for i := 0; i < rows; i++ {
		if err := tbl.Append(mathutil.Vec{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// Attach binds existing datasets and, via the registration hook, datasets
// registered afterwards; charges through the budget manager (the platform
// charge path) must survive a "crash" — reopening the directory from
// scratch.
func TestAttachRoutesManagerCharges(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})

	reg := dataset.NewRegistry()
	if _, err := reg.Register("pre", testTable(t, 50), dataset.RegisterOptions{TotalBudget: 10}); err != nil {
		t.Fatal(err)
	}
	if err := Attach(l, reg); err != nil {
		t.Fatal(err)
	}
	// Registered after Attach: the hook must bind it transparently.
	if _, err := reg.Register("post", testTable(t, 50), dataset.RegisterOptions{TotalBudget: 5}); err != nil {
		t.Fatal(err)
	}

	mgr := budget.NewManager(reg)
	if err := mgr.Charge("pre", "q1", 2); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Charge("post", "q2", 1.5); err != nil {
		t.Fatal(err)
	}
	if rem, _ := mgr.Remaining("pre"); rem != 8 {
		t.Fatalf("pre remaining = %v, want 8", rem)
	}
	l.Close()

	// Crash-restart: fresh registry (as guptd would rebuild from -dataset
	// flags), fresh ledger over the same dir.
	l2 := openTest(t, dir, Options{})
	reg2 := dataset.NewRegistry()
	reg2.Register("pre", testTable(t, 50), dataset.RegisterOptions{TotalBudget: 10})
	reg2.Register("post", testTable(t, 50), dataset.RegisterOptions{TotalBudget: 5})
	if err := Attach(l2, reg2); err != nil {
		t.Fatal(err)
	}
	mgr2 := budget.NewManager(reg2)
	if rem, _ := mgr2.Remaining("pre"); rem != 8 {
		t.Fatalf("recovered pre remaining = %v, want 8", rem)
	}
	if rem, _ := mgr2.Remaining("post"); rem != 3.5 {
		t.Fatalf("recovered post remaining = %v, want 3.5", rem)
	}
	// And the restored books still enforce exhaustion durably.
	if err := mgr2.Charge("post", "q3", 4); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("overdraft after recovery: err = %v, want ErrBudgetExhausted", err)
	}
}

// A closed ledger makes the registration hook fail, and the failed dataset
// must not be half-registered.
func TestAttachFailClosed(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	reg := dataset.NewRegistry()
	if err := Attach(l, reg); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := reg.Register("late", testTable(t, 50), dataset.RegisterOptions{TotalBudget: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register on closed ledger err = %v, want ErrClosed", err)
	}
	if _, err := reg.Lookup("late"); !errors.Is(err, dataset.ErrNotFound) {
		t.Fatal("failed registration must not publish the dataset")
	}
}

// Registered.Spend without a bound charger still hits the accountant —
// the non-durable default path keeps working.
func TestSpendWithoutCharger(t *testing.T) {
	reg := dataset.NewRegistry()
	r, err := reg.Register("plain", testTable(t, 50), dataset.RegisterOptions{TotalBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Spend("q", 1.5); err != nil {
		t.Fatal(err)
	}
	if got := r.Accountant.Spent(); got != 1.5 {
		t.Fatalf("spent = %v, want 1.5", got)
	}
}
