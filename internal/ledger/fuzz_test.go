package ledger

import (
	"bytes"
	"errors"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A final record whose payload bytes were lost (CRC fails, frame runs to
// exactly EOF) is a torn tail, not interior corruption: truncate and warn.
func TestRecoverCRCTornAtTail(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = EncodeRecord(buf, Record{Type: RecordRegister, Seq: 1, Dataset: "ds", Total: 10})
	buf = EncodeRecord(buf, Record{Type: RecordCharge, Seq: 2, Dataset: "ds", Label: "q", Epsilon: 3})
	tornStart := len(buf)
	buf = EncodeRecord(buf, Record{Type: RecordCharge, Seq: 3, Dataset: "ds", Label: "lost", Epsilon: 5})
	buf[len(buf)-1] ^= 0xff // the payload sector the crash never persisted
	if err := os.WriteFile(filepath.Join(dir, walName), buf, 0o600); err != nil {
		t.Fatal(err)
	}
	var logbuf bytes.Buffer
	rec, err := Recover(dir, log.New(&logbuf, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail {
		t.Fatal("CRC failure at exact EOF must count as a torn tail")
	}
	if got := rec.Datasets["ds"].Spent; got != 3 {
		t.Fatalf("spent = %v, want 3", got)
	}
	if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() != int64(tornStart) {
		t.Fatalf("file size = %d, want %d (torn frame truncated)", fi.Size(), tornStart)
	}
	if !strings.Contains(logbuf.String(), "truncating torn record") {
		t.Errorf("no truncation warning, got %q", logbuf.String())
	}
}

// FuzzDecodeRecord feeds arbitrary bytes through the WAL record decoder:
// it must never panic, every successfully decoded record must re-encode
// and decode back to itself (round trip), and flipping any payload bit of
// a valid frame must be detected by the CRC.
func FuzzDecodeRecord(f *testing.F) {
	seed := []Record{
		{Type: RecordCharge, Seq: 1, At: 12345, Dataset: "census", Label: "mean-age", Epsilon: 0.5},
		{Type: RecordRefund, Seq: 2, At: 1, Dataset: "census", ChargeSeq: 1, Epsilon: 0.5},
		{Type: RecordRegister, Seq: 3, Dataset: "ads", Total: 10},
		{Type: RecordSnapshotMarker, Seq: 4, SnapshotSeq: 3},
	}
	for _, r := range seed {
		f.Add(EncodeRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}

		// Round trip: encode the decoded record and decode it again. The
		// encodings are compared byte-for-byte (not the structs) so NaN
		// epsilon bit patterns still compare equal.
		re := EncodeRecord(nil, r)
		r2, n2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || !bytes.Equal(re, EncodeRecord(nil, r2)) {
			t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", r, r2)
		}

		// Corrupt CRC detection: flipping any payload byte of the valid
		// frame must fail decoding (the header's declared length and CRC
		// fields are covered by the payload checks and length bound).
		for i := frameHeaderLen; i < len(re); i++ {
			bad := append([]byte(nil), re...)
			bad[i] ^= 0x01
			if _, _, err := DecodeRecord(bad); err == nil {
				t.Fatalf("payload corruption at byte %d went undetected", i)
			}
		}
	})
}
