package ledger

import (
	"fmt"

	"gupt/internal/dp"
)

// Backed couples one dataset's in-memory dp.Accountant to the durable
// ledger with log-before-charge semantics: every Spend appends (and, by
// ack time, fsyncs) a charge record before the accountant debits it, so a
// crash at any instant can only over-count the dataset's spent ε.
//
// Aborted queries keep their charge (paper §6.2, PR 1): the engine charges
// through Spend before running analyst code, and nothing on the abort path
// refunds — so the charge-on-abort is already durable the moment it was
// acknowledged. The only refunds the ledger ever writes cancel charges the
// in-memory accountant itself refused (budget exhausted), which never
// released an answer.
type Backed struct {
	led  *Ledger
	name string
	acct *dp.Accountant
}

// Bind attaches a dataset's accountant to the ledger. It registers the
// dataset (appending a register record when new or when the lifetime total
// changed) and replays any recovered spent ε into the fresh accountant.
// When the recovered spend exceeds the accountant's budget — refund
// records lost to a crash, or an owner who lowered the total — the
// accountant is clamped to exhausted rather than failing the boot: the
// dataset serves no further queries, but the platform still comes up.
func (l *Ledger) Bind(name string, acct *dp.Accountant) (*Backed, error) {
	if acct == nil {
		return nil, fmt.Errorf("ledger: binding %q with nil accountant", name)
	}
	st, err := l.register(name, acct.Total())
	if err != nil {
		return nil, err
	}

	// Replay recovered spend into the accountant. st is only mutated under
	// l.mu; take a consistent read of it there.
	l.mu.Lock()
	recovered := st.spent
	l.mu.Unlock()
	if already := acct.Spent(); already > 0 {
		// The accountant was pre-charged (e.g. a legacy state-file restore
		// ran first). Only replay the shortfall, never double-charge.
		recovered -= already
	}
	if recovered > 0 {
		if remaining := acct.Remaining(); recovered > remaining {
			recovered = remaining // clamp to exhausted, never error at boot
		}
		if recovered > 0 {
			if err := acct.Spend("ledger-recovered", recovered); err != nil {
				return nil, fmt.Errorf("ledger: replaying %q spend: %w", name, err)
			}
		}
	}
	return &Backed{led: l, name: name, acct: acct}, nil
}

// Spend durably debits eps: the charge record is on stable storage before
// Spend returns nil. A dp.ErrBudgetExhausted refusal leaves the in-memory
// ledger unchanged (the provisional record is cancelled by a refund).
// The charge is attributed to the default principal (empty tenant).
func (b *Backed) Spend(label string, eps float64) error {
	return b.led.charge(b.name, label, "", eps, b.acct)
}

// SpendAs is Spend with the charge attributed to a tenant id (PR 8): the
// WAL record carries the tenant, recovery replays it into the per-tenant
// balance, and a refusal's refund cancels that same attribution. It
// implements dataset.TenantSpender. An empty tenant is identical to Spend.
func (b *Backed) SpendAs(tenant, label string, eps float64) error {
	return b.led.charge(b.name, label, tenant, eps, b.acct)
}

// RecordCacheHit journals an ε=0 re-release of a previously published
// answer (a noisy-answer cache hit) without touching the accountant. It
// implements dataset.CacheHitRecorder so the platform's cache path reaches
// the WAL through the same charger binding as fresh spends; the record is
// replay-neutral — recovery counts it but moves no budget.
func (b *Backed) RecordCacheHit(label string) error {
	return b.led.cacheHit(b.name, label, "")
}

// RecordCacheHitAs is RecordCacheHit with tenant attribution, so the audit
// trail shows WHOSE cached answer was re-released. Still budget-neutral.
func (b *Backed) RecordCacheHitAs(tenant, label string) error {
	return b.led.cacheHit(b.name, label, tenant)
}

// Accountant exposes the wrapped in-memory accountant (read paths:
// Remaining, Spent, History).
func (b *Backed) Accountant() *dp.Accountant { return b.acct }

// Ledger returns the ledger this binding writes to.
func (b *Backed) Ledger() *Ledger { return b.led }
