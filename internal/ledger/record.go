// Package ledger is GUPT's durability subsystem for privacy-budget state.
//
// The platform's core §6.2 guarantee — the analyst can never spend more
// than a dataset's lifetime ε — only holds if spent budget survives
// crashes. An in-memory accountant forgets every charge when guptd dies,
// so an attacker could reset their consumption by killing the daemon
// ("budget amnesia", see SECURITY.md). This package closes that hole with
// a write-ahead log: every charge is appended to an fsync'd, checksummed
// log *before* the in-memory accountant debits it, so a crash at any
// instant can only over-count spent budget, never under-count it.
//
// On-disk layout (one directory per deployment):
//
//	wal.log        append-only record log (framing below)
//	snapshot.json  atomic compaction of the log prefix (see snapshot.go)
//
// WAL framing, little-endian:
//
//	| length uint32 | crc32c(payload) uint32 | payload (length bytes) |
//
// payload:
//
//	| type uint8 | seq uint64 | unixNano int64 | type-specific body |
//
// Strings are uint16 length + bytes (at most maxStringLen; over-long
// names and labels are rejected at register/charge time, never
// truncated). Every record carries a strictly increasing sequence number;
// replay is idempotent because records at or below the snapshot's LastSeq
// are skipped. A torn final record (the tail the crash interrupted —
// a stream ending mid-frame, a CRC mismatch running to exactly EOF, or an
// all-zero tail) is truncated with a warning; any other corruption fails
// recovery, including a CRC-valid record with bad grammar, which no torn
// write can produce.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// RecordType discriminates WAL payloads.
type RecordType uint8

const (
	// RecordCharge debits Epsilon from Dataset's budget. Appended and
	// fsync'd before the in-memory accountant spends (log-before-charge).
	RecordCharge RecordType = 1
	// RecordRefund cancels the provisional charge with sequence number
	// ChargeSeq: it is appended only when the in-memory accountant refused
	// the already-logged debit (budget exhausted). Losing a refund in a
	// crash over-counts spent budget — the safe direction.
	RecordRefund RecordType = 2
	// RecordRegister declares Dataset's lifetime budget Total. Appended
	// the first time a dataset binds to the ledger and whenever its total
	// changes.
	RecordRegister RecordType = 3
	// RecordSnapshotMarker is the first record of a freshly compacted WAL;
	// SnapshotSeq names the sequence number the snapshot file absorbed.
	RecordSnapshotMarker RecordType = 4
	// RecordCacheHit journals an ε=0 re-release of a previously published
	// answer (the noisy-answer cache, DESIGN.md §11). It moves no budget —
	// replay leaves Spent untouched — but keeps the WAL a complete account
	// of every release, so a cache hit is distinguishable from a fresh
	// spend when auditing the books.
	RecordCacheHit RecordType = 5
)

func (t RecordType) String() string {
	switch t {
	case RecordCharge:
		return "charge"
	case RecordRefund:
		return "refund"
	case RecordRegister:
		return "register"
	case RecordSnapshotMarker:
		return "snapshot-marker"
	case RecordCacheHit:
		return "cache-hit"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is the decoded form of one WAL entry. Which fields are meaningful
// depends on Type; the rest are zero.
type Record struct {
	Type RecordType
	Seq  uint64
	At   int64 // unixNano of the append

	Dataset string  // charge, refund, register, cache-hit
	Label   string  // charge, cache-hit: audit label
	Epsilon float64 // charge, refund
	Total   float64 // register
	// Tenant attributes a charge/refund/cache-hit to a principal (PR 8).
	// Encoded as an optional payload tail: records written before tenancy
	// carry no tail and decode to "", which replay treats as the
	// single-tenant/default principal. New writers always append the tail
	// (possibly an empty string), so round-trips are canonical.
	Tenant string // charge, refund, cache-hit

	ChargeSeq   uint64 // refund: the charge it cancels
	SnapshotSeq uint64 // snapshot-marker
}

// Framing limits. A length prefix beyond maxPayload means the frame is
// garbage (or the file is corrupt); rejecting it bounds decode allocation.
const (
	frameHeaderLen = 8 // uint32 length + uint32 crc
	maxPayload     = 1 << 16
	maxStringLen   = 1 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrCorrupt means a well-framed record failed its CRC or
// its payload grammar; ErrTorn means the byte stream ended mid-record.
var (
	ErrCorrupt = errors.New("ledger: corrupt record")
	ErrTorn    = errors.New("ledger: torn record")
)

// errCRCMismatch marks the ErrCorrupt subclass a torn write can actually
// produce: a checksum failure. Recovery truncates a bad *final* record
// only for this class — a CRC-valid record with bad grammar (say, an
// unknown type from a newer version) cannot be a cut-short write, so
// dropping it could silently lose a real charge.
var errCRCMismatch = errors.New("crc mismatch")

// validateString rejects strings the WAL framing cannot represent. Called
// at register/charge time so encoding never has to truncate: two names
// sharing a long prefix must never alias to one ledger entry on replay.
func validateString(what, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("ledger: %s is %d bytes, exceeds the %d-byte limit", what, len(s), maxStringLen)
	}
	return nil
}

// EncodeRecord appends the framed encoding of r to dst and returns the
// extended slice.
func EncodeRecord(dst []byte, r Record) []byte {
	payload := encodePayload(nil, r)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func encodePayload(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.At))
	switch r.Type {
	case RecordCharge:
		dst = appendString(dst, r.Dataset)
		dst = appendString(dst, r.Label)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Epsilon))
		dst = appendString(dst, r.Tenant)
	case RecordRefund:
		dst = appendString(dst, r.Dataset)
		dst = binary.LittleEndian.AppendUint64(dst, r.ChargeSeq)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Epsilon))
		dst = appendString(dst, r.Tenant)
	case RecordRegister:
		dst = appendString(dst, r.Dataset)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Total))
	case RecordSnapshotMarker:
		dst = binary.LittleEndian.AppendUint64(dst, r.SnapshotSeq)
	case RecordCacheHit:
		dst = appendString(dst, r.Dataset)
		dst = appendString(dst, r.Label)
		dst = appendString(dst, r.Tenant)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	// Over-long strings are rejected before any record is built
	// (validateString at register/charge time). Encoding the raw length
	// here means a violation that somehow slips through decodes as
	// ErrCorrupt instead of silently aliasing two truncated names.
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// DecodeRecord decodes one framed record from the front of b. It returns
// the record and the number of bytes consumed. A stream that ends
// mid-record returns ErrTorn; a complete frame whose checksum or grammar
// is wrong returns ErrCorrupt. It never panics on arbitrary input.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, n)
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	end := frameHeaderLen + int(n)
	if len(b) < end {
		return Record{}, 0, ErrTorn
	}
	payload := b[frameHeaderLen:end]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return Record{}, 0, fmt.Errorf("%w: %w (got %08x want %08x)", ErrCorrupt, errCRCMismatch, got, want)
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, end, nil
}

func decodePayload(p []byte) (Record, error) {
	d := decoder{b: p}
	r := Record{
		Type: RecordType(d.u8()),
		Seq:  d.u64(),
		At:   int64(d.u64()),
	}
	switch r.Type {
	case RecordCharge:
		r.Dataset = d.str()
		r.Label = d.str()
		r.Epsilon = math.Float64frombits(d.u64())
		r.Tenant = d.optionalTailStr()
	case RecordRefund:
		r.Dataset = d.str()
		r.ChargeSeq = d.u64()
		r.Epsilon = math.Float64frombits(d.u64())
		r.Tenant = d.optionalTailStr()
	case RecordRegister:
		r.Dataset = d.str()
		r.Total = math.Float64frombits(d.u64())
	case RecordSnapshotMarker:
		r.SnapshotSeq = d.u64()
	case RecordCacheHit:
		r.Dataset = d.str()
		r.Label = d.str()
		r.Tenant = d.optionalTailStr()
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, r.Type)
	}
	if d.err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if len(d.b) != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b))
	}
	return r, nil
}

// decoder consumes little-endian fields from a payload, latching the first
// framing error instead of panicking on short input.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// optionalTailStr reads a string only if payload bytes remain — the
// tenant-column migration seam (PR 8). A pre-tenancy record's payload ends
// before the tail and decodes to ""; a new record always carries it. A
// PARTIAL tail (length prefix present, bytes missing) still latches
// io.ErrUnexpectedEOF through str(), so truncation inside the tail remains
// ErrCorrupt rather than silently reading as legacy.
func (d *decoder) optionalTailStr() string {
	if d.err != nil || len(d.b) == 0 {
		return ""
	}
	return d.str()
}

func (d *decoder) str() string {
	n := int(d.u16())
	if n > maxStringLen {
		if d.err == nil {
			d.err = fmt.Errorf("string length %d exceeds limit", n)
		}
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
