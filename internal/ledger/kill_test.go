package ledger

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"gupt/internal/dp"
)

// SIGKILL recovery matrix. The test re-executes its own binary as a child
// process (TestMain dispatch) that charges a ledger in a loop and kills
// itself — a real, unblockable SIGKILL — at a named durability boundary
// (Options.CrashPoint) or at a random instant. The parent then replays the
// directory and asserts the §6.2 invariant the whole subsystem exists for:
//
//	recovered spent ε  ≥  sum of acknowledged charges
//
// An acknowledged charge is one whose Spend returned nil (the child prints
// an ack line only after that), i.e. one an answer may have been released
// for. Over-counting is allowed — a charge the crash cut off before its
// ack may still be on the books — under-counting never is.

const (
	envChild     = "LEDGER_KILL_CHILD"
	envDir       = "LEDGER_KILL_DIR"
	envSync      = "LEDGER_KILL_SYNC"
	envPoint     = "LEDGER_KILL_POINT"
	envAfter     = "LEDGER_KILL_AFTER"
	envTotal     = "LEDGER_KILL_TOTAL"
	envCharges   = "LEDGER_KILL_N"
	envEps       = "LEDGER_KILL_EPS"
	envThreshold = "LEDGER_KILL_SNAPSHOT"
	envTenants   = "LEDGER_KILL_TENANTS"
)

func TestMain(m *testing.M) {
	if os.Getenv(envChild) == "1" {
		runKillChild()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runKillChild is the workload under test: bind one dataset, charge in a
// loop, ack each durable charge on stdout, and SIGKILL ourselves when the
// configured crash point fires.
func runKillChild() {
	dir := os.Getenv(envDir)
	point := os.Getenv(envPoint)
	after, _ := strconv.Atoi(os.Getenv(envAfter))
	total, _ := strconv.ParseFloat(os.Getenv(envTotal), 64)
	n, _ := strconv.Atoi(os.Getenv(envCharges))
	eps, _ := strconv.ParseFloat(os.Getenv(envEps), 64)
	threshold, _ := strconv.ParseInt(os.Getenv(envThreshold), 10, 64)

	var policy SyncPolicy
	if os.Getenv(envSync) == "batched" {
		policy = SyncBatched
	}

	seen := 0
	opts := Options{
		Sync:              policy,
		FlushInterval:     200 * time.Microsecond,
		SnapshotThreshold: threshold,
	}
	if point != "" {
		opts.CrashPoint = func(p string) {
			if p != point {
				return
			}
			seen++
			if seen >= after {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // unreachable; SIGKILL cannot be handled
			}
		}
	}

	l, err := Open(dir, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: open: %v\n", err)
		os.Exit(3)
	}
	b, err := l.Bind("ds", dp.NewAccountant(total))
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: bind: %v\n", err)
		os.Exit(3)
	}
	// With envTenants set the child round-robins charges across tenant ids
	// (SpendAs) so the parent can check PER-TENANT balances after the kill.
	var tenants []string
	if tl := os.Getenv(envTenants); tl != "" {
		tenants = strings.Split(tl, ",")
	}
	for i := 0; i < n; i++ {
		tid := ""
		if len(tenants) > 0 {
			tid = tenants[i%len(tenants)]
		}
		if err := b.SpendAs(tid, "kill-q", eps); err == nil {
			// The charge is durable (Spend acks only after fsync); a
			// SIGKILL between Spend and this print can only lose an ack,
			// never a durable record — the safe direction for the check.
			fmt.Printf("ack %d %s\n", i, tid)
		}
	}
	l.Close()
}

// runKill launches the child with the given scenario and returns the
// number of acknowledged charges (total and per tenant id) and whether it
// died by signal.
func runKill(t *testing.T, scenario map[string]string, killAfter time.Duration) (acks int, ackByTenant map[string]int, signaled bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0])
	cmd.Env = append(os.Environ(), envChild+"=1")
	for k, v := range scenario {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	if killAfter > 0 {
		go func() {
			time.Sleep(killAfter)
			cmd.Process.Signal(syscall.SIGKILL)
		}()
	}
	err := cmd.Wait()
	if ctx.Err() != nil {
		t.Fatalf("child timed out; stderr: %s", errb.String())
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == 3 {
		t.Fatalf("child setup failed: %s", errb.String())
	}
	ackByTenant = make(map[string]int)
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "ack" {
			acks++
			if len(fields) >= 3 {
				ackByTenant[fields[2]]++
			}
		}
	}
	signaled = err != nil && cmd.ProcessState.ExitCode() == -1
	return acks, ackByTenant, signaled
}

// recoverAndCheck replays the directory and enforces the invariant, then
// proves a restart can keep serving: bind, charge once more, recover again.
func recoverAndCheck(t *testing.T, dir string, acks int, eps, total float64) {
	t.Helper()
	rec, err := Recover(dir, testLogger(t))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	ackSum := float64(acks) * eps
	got := rec.Datasets["ds"].Spent
	if got < ackSum-1e-9 {
		t.Fatalf("UNDER-COUNT: recovered spent %v < acknowledged %v (%d acks)", got, ackSum, acks)
	}

	// Restart path: the same directory must come back up and keep charging.
	l, err := Open(dir, Options{Logger: testLogger(t)})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer l.Close()
	acct := dp.NewAccountant(total)
	b, err := l.Bind("ds", acct)
	if err != nil {
		t.Fatalf("rebind after kill: %v", err)
	}
	if acct.Remaining() > eps {
		if err := b.Spend("post-restart", eps); err != nil {
			t.Fatalf("charging after restart: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(dir, nil)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if rec2.Datasets["ds"].Spent < got-1e-9 {
		t.Fatalf("spend went backwards across restart: %v -> %v", got, rec2.Datasets["ds"].Spent)
	}
}

func testLogger(t *testing.T) *log.Logger {
	return log.New(testWriter{t}, "", 0)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// TestKillMatrix SIGKILLs the child at every durability boundary the
// ledger crosses — after the record write, after the fsync, after the
// in-memory debit, and at each step of snapshot compaction — under both
// fsync policies, and proves recovery never under-counts acknowledged ε.
func TestKillMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many child processes")
	}
	const eps = 0.001
	const total = 1e6
	boundaries := []struct {
		point string
		after int // fire on the n-th crossing, to land mid-stream too
	}{
		{CrashAfterAppend, 1},
		{CrashAfterAppend, 9},
		{CrashAfterSync, 1},
		{CrashAfterSync, 17},
		{CrashAfterSpend, 1},
		{CrashAfterSpend, 25},
		{CrashBeforeSnapshotRename, 1},
		{CrashAfterSnapshot, 1},
		{CrashAfterWALSwap, 1},
	}
	for _, sync := range []string{"record", "batched"} {
		for _, bd := range boundaries {
			bd := bd
			t.Run(fmt.Sprintf("%s/%s@%d", sync, bd.point, bd.after), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				acks, _, signaled := runKill(t, map[string]string{
					envDir:       dir,
					envSync:      sync,
					envPoint:     bd.point,
					envAfter:     strconv.Itoa(bd.after),
					envTotal:     fmt.Sprint(total),
					envCharges:   "400",
					envEps:       fmt.Sprint(eps),
					envThreshold: "1500", // force compaction within the run
				}, 0)
				if !signaled {
					t.Fatal("crash point never fired; the scenario exercised nothing")
				}
				recoverAndCheck(t, dir, acks, eps, total)
			})
		}
	}
}

// TestKillOnRefundPath exhausts a tiny budget so refund records flow, then
// kills at the refund boundary: lost refunds may over-count, never under.
func TestKillOnRefundPath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const eps = 0.01
	const total = 0.05
	for _, sync := range []string{"record", "batched"} {
		t.Run(sync, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			acks, _, signaled := runKill(t, map[string]string{
				envDir:     dir,
				envSync:    sync,
				envPoint:   CrashAfterRefund,
				envAfter:   "2",
				envTotal:   fmt.Sprint(total),
				envCharges: "40",
				envEps:     fmt.Sprint(eps),
			}, 0)
			if !signaled {
				t.Fatal("refund crash point never fired")
			}
			recoverAndCheck(t, dir, acks, eps, total)
		})
	}
}

// TestKillTenantBalances runs the kill matrix with charges round-robined
// across two tenant ids and checks the PR 8 invariant per tenant: each
// tenant's recovered balance is at least its acknowledged ε. Tenant
// attribution must survive SIGKILL at the same durability boundaries the
// aggregate invariant does, including through a snapshot compaction.
func TestKillTenantBalances(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const eps = 0.001
	const total = 1e6
	boundaries := []struct {
		point string
		after int
	}{
		{CrashAfterSync, 7},
		{CrashAfterSpend, 13},
		{CrashAfterSnapshot, 1},
		{CrashAfterWALSwap, 1},
	}
	for _, sync := range []string{"record", "batched"} {
		for _, bd := range boundaries {
			bd := bd
			t.Run(fmt.Sprintf("%s/%s@%d", sync, bd.point, bd.after), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				_, ackByTenant, signaled := runKill(t, map[string]string{
					envDir:       dir,
					envSync:      sync,
					envPoint:     bd.point,
					envAfter:     strconv.Itoa(bd.after),
					envTotal:     fmt.Sprint(total),
					envCharges:   "400",
					envEps:       fmt.Sprint(eps),
					envThreshold: "1500",
					envTenants:   "alpha,beta",
				}, 0)
				if !signaled {
					t.Fatal("crash point never fired; the scenario exercised nothing")
				}
				rec, err := Recover(dir, testLogger(t))
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				ds := rec.Datasets["ds"]
				for _, tid := range []string{"alpha", "beta"} {
					ackSum := float64(ackByTenant[tid]) * eps
					if got := ds.TenantSpent[tid]; got < ackSum-1e-9 {
						t.Fatalf("tenant %s UNDER-COUNT: recovered %v < acknowledged %v (%d acks)",
							tid, got, ackSum, ackByTenant[tid])
					}
				}
				// The per-tenant attributions must never exceed the aggregate.
				var tenantSum float64
				for _, v := range ds.TenantSpent {
					tenantSum += v
				}
				if tenantSum > ds.Spent+1e-9 {
					t.Fatalf("tenant balances sum %v exceeds aggregate spent %v", tenantSum, ds.Spent)
				}
			})
		}
	}
}

// TestKillRandomTiming kills the child at arbitrary wall-clock instants —
// including mid-write, which no named boundary can hit — and checks the
// same invariant. Several delays per policy give the schedule room to land
// in different phases.
func TestKillRandomTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const eps = 0.001
	const total = 1e6
	delays := []time.Duration{3 * time.Millisecond, 11 * time.Millisecond, 29 * time.Millisecond}
	for _, sync := range []string{"record", "batched"} {
		for i, d := range delays {
			d := d
			t.Run(fmt.Sprintf("%s/delay%d", sync, i), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				acks, _, _ := runKill(t, map[string]string{
					envDir:       dir,
					envSync:      sync,
					envTotal:     fmt.Sprint(total),
					envCharges:   "200000",
					envEps:       fmt.Sprint(eps),
					envThreshold: "4096",
				}, d)
				// The child may or may not die before finishing; either way
				// the books must not under-count.
				recoverAndCheck(t, dir, acks, eps, total)
			})
		}
	}
}
