package ledger

import (
	"bytes"
	"errors"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gupt/internal/dp"
)

// Empty directory: recovery yields a clean slate, and Open works on a
// directory that does not exist yet.
func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Datasets) != 0 || rec.LastSeq != 0 || rec.TornTail {
		t.Fatalf("empty dir recovered %+v, want clean slate", rec)
	}

	l, err := Open(filepath.Join(dir, "does", "not", "exist"), Options{})
	if err != nil {
		t.Fatalf("Open on a missing dir: %v", err)
	}
	l.Close()
}

// Zero-length log file: same as no log.
func TestRecoverZeroLengthLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), nil, 0o600); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Datasets) != 0 || rec.WALRecords != 0 || rec.TornTail {
		t.Fatalf("zero-length log recovered %+v, want clean slate", rec)
	}
}

// Snapshot-only directory (WAL deleted, e.g. by an operator clearing a
// corrupt tail): the snapshot alone restores the totals.
func TestRecoverSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	b, _ := l.Bind("ds", dp.NewAccountant(10))
	if err := b.Spend("q", 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.Remove(filepath.Join(dir, walName)); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets["ds"].Spent; got != 3 {
		t.Fatalf("snapshot-only recovery spent = %v, want 3", got)
	}
	// And the ledger must reopen and append from there.
	l2 := openTest(t, dir, Options{})
	acct := dp.NewAccountant(10)
	b2, err := l2.Bind("ds", acct)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Spend("q2", 1); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	rec2, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.Datasets["ds"].Spent; got != 4 {
		t.Fatalf("post-reopen spent = %v, want 4", got)
	}
}

// A torn final record (the crash cut the write short) is truncated with a
// warning; the records before it survive.
func TestRecoverTornTail(t *testing.T) {
	for _, cut := range []int{1, 5, frameHeaderLen, frameHeaderLen + 3} {
		dir := t.TempDir()
		l := openTest(t, dir, Options{})
		b, _ := l.Bind("ds", dp.NewAccountant(10))
		if err := b.Spend("q", 2); err != nil {
			t.Fatal(err)
		}
		l.Close()

		// Append a torn record: a valid frame with its tail cut off.
		frame := EncodeRecord(nil, Record{Type: RecordCharge, Seq: 99, Dataset: "ds", Label: "torn", Epsilon: 5})
		if cut > len(frame) {
			cut = len(frame) - 1
		}
		path := filepath.Join(dir, walName)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(frame[:cut]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		before, _ := os.Stat(path)

		var buf bytes.Buffer
		rec, err := Recover(dir, log.New(&buf, "", 0))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !rec.TornTail {
			t.Fatalf("cut=%d: TornTail not reported", cut)
		}
		if got := rec.Datasets["ds"].Spent; got != 2 {
			t.Fatalf("cut=%d: spent = %v, want 2 (torn record must not count)", cut, got)
		}
		if !strings.Contains(buf.String(), "truncating torn record") {
			t.Errorf("cut=%d: no warning logged, got %q", cut, buf.String())
		}
		after, _ := os.Stat(path)
		if after.Size() != before.Size()-int64(cut) {
			t.Errorf("cut=%d: file not truncated: %d -> %d", cut, before.Size(), after.Size())
		}
		// Reopen and append over the clean boundary.
		l2 := openTest(t, dir, Options{})
		b2, _ := l2.Bind("ds", dp.NewAccountant(10))
		if err := b2.Spend("q2", 1); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		rec2, err := Recover(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := rec2.Datasets["ds"].Spent; got != 3 {
			t.Fatalf("cut=%d: post-truncation spent = %v, want 3", cut, got)
		}
	}
}

// A CRC-corrupt record in the interior of the log is real corruption and
// must fail recovery, not be skipped (skipping could under-count).
func TestRecoverCorruptInterior(t *testing.T) {
	dir := t.TempDir()
	// Build the log by hand so the corrupted byte provably lands inside
	// the middle record's *payload* (a corrupted length header instead
	// shifts framing and is indistinguishable from a torn tail, which is
	// handled — and tested — separately).
	var buf []byte
	buf = EncodeRecord(buf, Record{Type: RecordRegister, Seq: 1, Dataset: "ds", Total: 10})
	mid := len(buf)
	buf = EncodeRecord(buf, Record{Type: RecordCharge, Seq: 2, Dataset: "ds", Label: "q", Epsilon: 1})
	buf = EncodeRecord(buf, Record{Type: RecordCharge, Seq: 3, Dataset: "ds", Label: "q", Epsilon: 1})
	buf[mid+frameHeaderLen+2] ^= 0xff // inside record 2's payload
	path := filepath.Join(dir, walName)
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, nil); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption: err = %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open must refuse a ledger with interior corruption")
	}
}

// A replayed total exceeding the dataset's registered budget clamps the
// accountant to exhausted instead of failing the boot.
func TestRecoverOverBudgetClampsToExhausted(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	b, _ := l.Bind("ds", dp.NewAccountant(100))
	for i := 0; i < 8; i++ {
		if err := b.Spend("q", 10); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// The owner lowered the budget to 50 < the 80 already spent.
	l2 := openTest(t, dir, Options{})
	acct := dp.NewAccountant(50)
	b2, err := l2.Bind("ds", acct)
	if err != nil {
		t.Fatalf("over-budget replay must not error out of boot: %v", err)
	}
	if got := acct.Remaining(); got != 0 {
		t.Fatalf("remaining = %v, want 0 (clamped to exhausted)", got)
	}
	if err := b2.Spend("q", 1); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("Spend on clamped dataset err = %v, want ErrBudgetExhausted", err)
	}
	// The ledger still remembers the true (higher) spend.
	if got := l2.Spent("ds"); got != 80 {
		t.Fatalf("ledger spent = %v, want 80", got)
	}
}

// An orphan refund (naming a charge the replay never saw) is ignored:
// replay stays monotone in the over-count direction.
func TestRecoverOrphanRefundIgnored(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = EncodeRecord(buf, Record{Type: RecordRegister, Seq: 1, Dataset: "ds", Total: 10})
	buf = EncodeRecord(buf, Record{Type: RecordCharge, Seq: 2, Dataset: "ds", Label: "q", Epsilon: 3})
	buf = EncodeRecord(buf, Record{Type: RecordRefund, Seq: 3, Dataset: "ds", ChargeSeq: 77, Epsilon: 3})
	if err := os.WriteFile(filepath.Join(dir, walName), buf, 0o600); err != nil {
		t.Fatal(err)
	}
	var logbuf bytes.Buffer
	rec, err := Recover(dir, log.New(&logbuf, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets["ds"].Spent; got != 3 {
		t.Fatalf("spent = %v, want 3 (orphan refund must not subtract)", got)
	}
	if !strings.Contains(logbuf.String(), "orphan refund") {
		t.Errorf("no orphan-refund warning, got %q", logbuf.String())
	}
}

// A legacy state-file restore followed by a ledger bind must not
// double-charge the accountant.
func TestBindAfterPreCharge(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	b, _ := l.Bind("ds", dp.NewAccountant(10))
	if err := b.Spend("q", 4); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := openTest(t, dir, Options{})
	acct := dp.NewAccountant(10)
	if err := acct.Spend("legacy-restore", 4); err != nil { // state file got there first
		t.Fatal(err)
	}
	if _, err := l2.Bind("ds", acct); err != nil {
		t.Fatal(err)
	}
	if got := acct.Spent(); got != 4 {
		t.Fatalf("spent = %v, want 4 (no double restore)", got)
	}
}

// A CRC-valid record with bad grammar (here: an unknown type from a
// hypothetical newer version) cannot be a torn write — a cut-short write
// cannot forge a checksum — so recovery must fail even when it is the
// final record, rather than truncate away something real.
func TestRecoverGrammarCorruptAtEOFFails(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = EncodeRecord(buf, Record{Type: RecordRegister, Seq: 1, Dataset: "ds", Total: 10})
	buf = EncodeRecord(buf, Record{Type: RecordType(99), Seq: 2})
	path := filepath.Join(dir, walName)
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, nil); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery err = %v, want ErrCorrupt (CRC-valid grammar corruption must not be truncated)", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(buf)) {
		t.Fatalf("recovery modified the file: %d bytes, want %d (err %v)", fi.Size(), len(buf), err)
	}
}

// An all-zero tail — the file-size update survived the crash, the data
// blocks did not — is a torn write: truncated with a warning, with the
// records before it intact. Exercises tails shorter than a frame header,
// exactly one zero header (whose empty payload trivially passes CRC), and
// a longer zero run.
func TestRecoverZeroFilledTail(t *testing.T) {
	for _, pad := range []int{3, frameHeaderLen, 40} {
		dir := t.TempDir()
		var buf []byte
		buf = EncodeRecord(buf, Record{Type: RecordRegister, Seq: 1, Dataset: "ds", Total: 10})
		buf = EncodeRecord(buf, Record{Type: RecordCharge, Seq: 2, Dataset: "ds", Label: "q", Epsilon: 2})
		keep := len(buf)
		buf = append(buf, make([]byte, pad)...)
		path := filepath.Join(dir, walName)
		if err := os.WriteFile(path, buf, 0o600); err != nil {
			t.Fatal(err)
		}
		var logbuf bytes.Buffer
		rec, err := Recover(dir, log.New(&logbuf, "", 0))
		if err != nil {
			t.Fatalf("pad=%d: %v", pad, err)
		}
		if !rec.TornTail {
			t.Fatalf("pad=%d: zero tail not reported as torn", pad)
		}
		if got := rec.Datasets["ds"].Spent; got != 2 {
			t.Fatalf("pad=%d: spent = %v, want 2", pad, got)
		}
		if fi, _ := os.Stat(path); fi.Size() != int64(keep) {
			t.Fatalf("pad=%d: file size %d, want %d (zero tail truncated)", pad, fi.Size(), keep)
		}
	}
}
