package ledger

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"
)

// RecoveredDataset is one dataset's replayed budget state.
type RecoveredDataset struct {
	// Total is the lifetime ε budget from the last register record (0 if
	// only charges were found — e.g. the register record predates a lost
	// prefix; binding re-registers it).
	Total float64
	// Spent is the replayed cumulative ε. It may exceed Total: provisional
	// charges whose refunds were lost, or an owner who lowered the budget.
	// Binding clamps the accountant to exhausted; recovery never errors on
	// over-spend (see Bind).
	Spent float64
	// Charges counts settled (non-refunded) charge records.
	Charges int
	// CacheHits counts ε=0 cache re-release records. They move no budget;
	// the count is kept so recovery can report a complete account.
	CacheHits int
	// TenantSpent maps tenant id → this tenant's settled ε on the dataset
	// (PR 8). Records written before tenancy carry no tenant and are NOT in
	// this map — they belong to the single-tenant/default principal, whose
	// consumption is Spent minus the sum of this map. guptd seeds the
	// tenant registry's quota balances from it at boot and fails closed on
	// ids the registry does not know.
	TenantSpent map[string]float64
}

// addTenantSpent accumulates into the lazily allocated per-tenant map.
func (d *RecoveredDataset) addTenantSpent(tenant string, eps float64) {
	if tenant == "" {
		return
	}
	if d.TenantSpent == nil {
		d.TenantSpent = make(map[string]float64)
	}
	d.TenantSpent[tenant] += eps
}

// Recovered is the result of replaying a ledger directory.
type Recovered struct {
	Datasets map[string]RecoveredDataset
	// LastSeq is the highest sequence number seen (snapshot or WAL);
	// appends continue after it.
	LastSeq uint64
	// WALRecords counts records replayed from the log tail (after the
	// snapshot cut-off).
	WALRecords int
	// WALSize is the byte length of the log after any tail truncation.
	WALSize int64
	// TornTail reports that the final record was torn and truncated away.
	TornTail bool
	// SnapshotSeq / SnapshotAt describe the loaded snapshot (zero when the
	// directory has none).
	SnapshotSeq uint64
	SnapshotAt  time.Time
}

// Recover replays the ledger directory: snapshot first, then every WAL
// record above the snapshot's cut-off. It tolerates a missing directory,
// missing files, an empty log, and a torn final record (which it truncates
// off the file, with a warning to logger, so the next append starts at a
// clean boundary). Anything else fails recovery — a bad CRC with valid
// data after it, and a CRC-valid record whose grammar is wrong even at
// EOF (a torn write cannot forge a checksum): that is real corruption,
// and silently skipping it could under-count spent budget.
//
// Refund records cancel a charge only when the charge they name was seen
// in the same replay; an orphaned refund is ignored, keeping replay
// monotone in the over-count direction.
func Recover(dir string, logger *log.Logger) (*Recovered, error) {
	rec := &Recovered{Datasets: make(map[string]RecoveredDataset)}

	snap, haveSnap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	if haveSnap {
		rec.LastSeq = snap.LastSeq
		rec.SnapshotSeq = snap.LastSeq
		rec.SnapshotAt = snap.TakenAt
		for _, d := range snap.Datasets {
			rd := RecoveredDataset{Total: d.Total, Spent: d.Spent, Charges: d.Charges}
			for tid, eps := range d.Tenants {
				rd.addTenantSpent(tid, eps)
			}
			rec.Datasets[d.Name] = rd
		}
	}
	// Leftover temp files mean a crash mid-compaction; the published
	// snapshot and WAL (if any) are intact, so the temps are garbage.
	os.Remove(filepath.Join(dir, snapshotName) + ".tmp")
	os.Remove(filepath.Join(dir, walName) + ".tmp")

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: read wal: %w", err)
	}

	// pending maps a charge's seq to its ε so a later refund can cancel
	// exactly the charge it names.
	type pendingCharge struct {
		dataset string
		tenant  string
		eps     float64
	}
	pending := make(map[uint64]pendingCharge)

	off := 0
	for off < len(data) {
		r, n, err := DecodeRecord(data[off:])
		if err != nil {
			// Only damage a cut-short write can produce may be truncated
			// as a torn tail: the stream ending mid-record, a CRC failure
			// on a frame running to exactly EOF (payload sectors lost), or
			// an all-zero remainder (the size update outran the data
			// blocks). A CRC-valid record with bad grammar — e.g. an
			// unknown type from a newer version — cannot be torn, because
			// a torn write cannot forge a checksum; it fails recovery even
			// at EOF rather than risk dropping a real charge.
			tail := errors.Is(err, ErrTorn)
			if !tail && errors.Is(err, errCRCMismatch) {
				tail = tornAtEOF(data[off:])
			}
			if !tail {
				tail = allZero(data[off:])
			}
			if !tail {
				return nil, fmt.Errorf("ledger: wal corrupt at offset %d: %w", off, err)
			}
			if logger != nil {
				logger.Printf("ledger: truncating torn record at wal offset %d (%d trailing bytes): %v", off, len(data)-off, err)
			}
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, fmt.Errorf("ledger: truncate torn wal tail: %w", err)
			}
			rec.TornTail = true
			data = data[:off]
			break
		}
		off += n
		if r.Seq <= rec.SnapshotSeq && r.Type != RecordSnapshotMarker {
			continue // absorbed by the snapshot already
		}
		if r.Seq > rec.LastSeq {
			rec.LastSeq = r.Seq
		}
		rec.WALRecords++
		switch r.Type {
		case RecordRegister:
			d := rec.Datasets[r.Dataset]
			d.Total = r.Total
			rec.Datasets[r.Dataset] = d
		case RecordCharge:
			d := rec.Datasets[r.Dataset]
			d.Spent += r.Epsilon
			d.Charges++
			d.addTenantSpent(r.Tenant, r.Epsilon)
			rec.Datasets[r.Dataset] = d
			pending[r.Seq] = pendingCharge{dataset: r.Dataset, tenant: r.Tenant, eps: r.Epsilon}
		case RecordRefund:
			p, ok := pending[r.ChargeSeq]
			if !ok || p.dataset != r.Dataset || (r.Tenant != "" && r.Tenant != p.tenant) {
				if logger != nil {
					logger.Printf("ledger: ignoring orphan refund seq %d for charge %d (%s)", r.Seq, r.ChargeSeq, r.Dataset)
				}
				continue
			}
			delete(pending, r.ChargeSeq)
			d := rec.Datasets[r.Dataset]
			d.Spent -= p.eps
			d.Charges--
			// The charge's own tenant attribution is authoritative for the
			// cancellation — a legacy ("") refund still backs out a
			// tenant-attributed charge it names.
			d.addTenantSpent(p.tenant, -p.eps)
			rec.Datasets[r.Dataset] = d
		case RecordCacheHit:
			// An ε=0 re-release of an already-published answer: by
			// construction it moves no budget, so replay leaves Spent and
			// Charges exactly as they were.
			d := rec.Datasets[r.Dataset]
			d.CacheHits++
			rec.Datasets[r.Dataset] = d
		case RecordSnapshotMarker:
			if r.Seq <= rec.SnapshotSeq {
				continue // marker from an older compaction generation
			}
			if r.SnapshotSeq != rec.SnapshotSeq && logger != nil {
				logger.Printf("ledger: snapshot-marker names seq %d but snapshot holds %d; replaying conservatively", r.SnapshotSeq, rec.SnapshotSeq)
			}
		}
	}
	rec.WALSize = int64(len(data))
	return rec, nil
}

// tornAtEOF reports whether the frame starting at b extends to exactly the
// end of the buffer — the signature of a write the crash cut short after
// the header landed (CRC can't match a half-written payload). A bad frame
// with more data after it is interior corruption instead.
func tornAtEOF(b []byte) bool {
	if len(b) < frameHeaderLen {
		return true
	}
	n := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if n > maxPayload {
		return false
	}
	return frameHeaderLen+n >= len(b)
}

// allZero reports whether every byte of b is zero — the signature of a
// tail whose file-size update survived a crash but whose data blocks never
// landed (delayed allocation). No legitimate record encodes to zeros (the
// smallest payload is 17 bytes, so the length prefix is never zero), so an
// all-zero tail is torn, not interior corruption.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
