package ledger

import (
	"fmt"

	"gupt/internal/dataset"
)

// Attach binds every dataset in the registry to the ledger and installs a
// registration hook so datasets registered later (the guptd register op)
// bind too. Each binding re-registers the dataset in the ledger, replays
// its recovered spend into the fresh accountant (clamping to exhausted on
// over-spend), and routes the dataset's charges through the durable
// log-before-charge path.
//
// Call Attach at boot, after the initial datasets are registered and
// before serving: the hook makes later registrations safe, but bindings
// for already-registered datasets do not synchronize with in-flight
// charges on them.
//
// Lock ordering: the hook runs under the registry's lock and takes the
// ledger's, which in turn takes each accountant's —
// Registry.mu → Ledger.mu → Accountant.mu, never the reverse.
func Attach(l *Ledger, reg *dataset.Registry) error {
	bind := func(r *dataset.Registered) error {
		b, err := l.Bind(r.Name, r.Accountant)
		if err != nil {
			return fmt.Errorf("ledger: attaching %q: %w", r.Name, err)
		}
		r.BindCharger(b)
		return nil
	}
	for _, name := range reg.Names() {
		r, err := reg.Lookup(name)
		if err != nil {
			continue // unregistered between Names and Lookup
		}
		if err := bind(r); err != nil {
			return err
		}
	}
	// New registrations fail if they cannot be made durable: a dataset
	// serving queries outside the ledger would silently revive budget
	// amnesia for exactly the datasets registered at runtime.
	reg.SetRegisterHook(bind)
	return nil
}
