package ledger

import (
	"encoding/binary"
	"flag"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gupt/internal/dp"
)

// updatePreTenancy regenerates the checked-in pre-tenancy WAL fixture:
//
//	go test ./internal/ledger -run TestPreTenancyWALStillRecovers -update-pre-tenancy
//
// The fixture encodes records in the PRE-PR8 payload grammar (no tenant
// tail) and must never be regenerated with the current encoder — its whole
// point is to pin the migration path.
var updatePreTenancy = flag.Bool("update-pre-tenancy", false, "rewrite testdata/pre_tenancy_wal.log")

func TestTenantAttributionRoundTrip(t *testing.T) {
	for _, r := range []Record{
		{Type: RecordCharge, Seq: 7, At: 99, Dataset: "ds", Label: "q", Epsilon: 0.25, Tenant: "alice"},
		{Type: RecordRefund, Seq: 8, At: 100, Dataset: "ds", ChargeSeq: 7, Epsilon: 0.25, Tenant: "alice"},
		{Type: RecordCacheHit, Seq: 9, At: 101, Dataset: "ds", Label: "q", Tenant: "bob"},
		{Type: RecordCharge, Seq: 10, At: 102, Dataset: "ds", Label: "q", Epsilon: 0.1}, // default principal
	} {
		frame := EncodeRecord(nil, r)
		got, n, err := DecodeRecord(frame)
		if err != nil || n != len(frame) {
			t.Fatalf("decode %v: n=%d err=%v", r, n, err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestTenantBalancesRecoverAndSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Bind("ds", dp.NewAccountant(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SpendAs("alice", "q1", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.SpendAs("bob", "q2", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend("q3", 0.125); err != nil { // default principal
		t.Fatal(err)
	}
	if err := b.RecordCacheHitAs("alice", "q1"); err != nil {
		t.Fatal(err)
	}
	byTenant := l.SpentByTenant("ds")
	if byTenant["alice"] != 0.5 || byTenant["bob"] != 0.25 {
		t.Fatalf("live SpentByTenant = %v", byTenant)
	}
	if _, ok := byTenant[""]; ok {
		t.Fatal("default principal leaked into the tenant map")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	ds := rec.Datasets["ds"]
	if ds.TenantSpent["alice"] != 0.5 || ds.TenantSpent["bob"] != 0.25 {
		t.Fatalf("recovered TenantSpent = %v", ds.TenantSpent)
	}
	if ds.Spent != 0.875 {
		t.Fatalf("recovered Spent = %v, want 0.875", ds.Spent)
	}

	// Compaction must carry the balances through the snapshot.
	l2, err := Open(dir, Options{Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(dir, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	ds2 := rec2.Datasets["ds"]
	if ds2.TenantSpent["alice"] != 0.5 || ds2.TenantSpent["bob"] != 0.25 || ds2.Spent != 0.875 {
		t.Fatalf("post-compaction recovery = %+v", ds2)
	}
	if rec2.WALRecords != 1 { // only the snapshot marker remains
		t.Fatalf("WALRecords after compaction = %d, want 1", rec2.WALRecords)
	}
}

func TestTenantRefundOnRefusalCancelsAttribution(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b, err := l.Bind("ds", dp.NewAccountant(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SpendAs("alice", "q1", 0.25); err != nil {
		t.Fatal(err)
	}
	// Refused by the global accountant: the provisional charge's refund
	// must cancel alice's attribution too.
	if err := b.SpendAs("alice", "q2", 0.25); err == nil {
		t.Fatal("over-budget charge accepted")
	}
	if got := l.SpentByTenant("ds")["alice"]; got != 0.25 {
		t.Fatalf("alice after refused charge = %v, want 0.25", got)
	}
}

// encodeLegacyRecord frames a record in the pre-PR8 grammar: charge,
// refund, and cache-hit payloads END at their last pre-tenancy field (no
// tenant tail). This is a frozen copy of the old encoder, used only to
// build and pin the migration fixture.
func encodeLegacyRecord(dst []byte, r Record) []byte {
	payload := []byte{byte(r.Type)}
	payload = binary.LittleEndian.AppendUint64(payload, r.Seq)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(r.At))
	str := func(s string) {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(s)))
		payload = append(payload, s...)
	}
	switch r.Type {
	case RecordCharge:
		str(r.Dataset)
		str(r.Label)
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Epsilon))
	case RecordRefund:
		str(r.Dataset)
		payload = binary.LittleEndian.AppendUint64(payload, r.ChargeSeq)
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Epsilon))
	case RecordRegister:
		str(r.Dataset)
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Total))
	case RecordCacheHit:
		str(r.Dataset)
		str(r.Label)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

const preTenancyFixture = "testdata/pre_tenancy_wal.log"

// preTenancyRecords is the exact history the fixture encodes: a register,
// a settled charge, a refused charge with its refund, and a cache hit.
// Expected replay: Total 1.0, Spent 0.25, Charges 1, CacheHits 1, no
// tenant attribution.
func preTenancyRecords() []Record {
	return []Record{
		{Type: RecordRegister, Seq: 1, At: 1000, Dataset: "census", Total: 1.0},
		{Type: RecordCharge, Seq: 2, At: 1001, Dataset: "census", Label: "q1", Epsilon: 0.25},
		{Type: RecordCharge, Seq: 3, At: 1002, Dataset: "census", Label: "q2", Epsilon: 0.5},
		{Type: RecordRefund, Seq: 4, At: 1003, Dataset: "census", ChargeSeq: 3, Epsilon: 0.5},
		{Type: RecordCacheHit, Seq: 5, At: 1004, Dataset: "census", Label: "q1"},
	}
}

// TestPreTenancyWALStillRecovers pins migration compatibility: a WAL
// written before the tenant column existed (checked-in binary fixture)
// must recover byte-for-byte identically under the tenant-aware decoder —
// same balances, empty tenant attribution — and the directory must then
// accept tenant-attributed charges without rewriting history.
func TestPreTenancyWALStillRecovers(t *testing.T) {
	if *updatePreTenancy {
		var buf []byte
		for _, r := range preTenancyRecords() {
			buf = encodeLegacyRecord(buf, r)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(preTenancyFixture, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fixture, err := os.ReadFile(preTenancyFixture)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with -update-pre-tenancy): %v", err)
	}

	// Belt and braces: the checked-in bytes must still be what the frozen
	// legacy encoder produces, so nobody "refreshes" them with the new
	// grammar by accident.
	var want []byte
	for _, r := range preTenancyRecords() {
		want = encodeLegacyRecord(want, r)
	}
	if string(fixture) != string(want) {
		t.Fatal("fixture bytes drifted from the frozen legacy encoding")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), fixture, 0o600); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, testLogger(t))
	if err != nil {
		t.Fatalf("pre-tenancy WAL failed recovery: %v", err)
	}
	ds, ok := rec.Datasets["census"]
	if !ok {
		t.Fatal("dataset census not recovered")
	}
	if ds.Total != 1.0 || ds.Spent != 0.25 || ds.Charges != 1 || ds.CacheHits != 1 {
		t.Fatalf("recovered %+v, want Total 1.0 Spent 0.25 Charges 1 CacheHits 1", ds)
	}
	if len(ds.TenantSpent) != 0 {
		t.Fatalf("pre-tenancy records attributed to tenants: %v", ds.TenantSpent)
	}

	// The migrated directory keeps working with tenant-attributed charges
	// appended after the legacy prefix.
	l, err := Open(dir, Options{Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Bind("census", dp.NewAccountant(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SpendAs("alice", "post-migration", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(dir, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	ds2 := rec2.Datasets["census"]
	if ds2.Spent != 0.5 || ds2.TenantSpent["alice"] != 0.25 {
		t.Fatalf("mixed-era replay = Spent %v TenantSpent %v", ds2.Spent, ds2.TenantSpent)
	}
}
