package qcache

import (
	"math"
	"testing"
)

// TestHasherCanonical pins the aliasing-resistance properties the
// fingerprint relies on: length prefixes keep concatenations apart, floats
// hash by bit pattern, and identical field sequences hash identically.
func TestHasherCanonical(t *testing.T) {
	sum := func(write func(h *Hasher)) Fingerprint {
		h := NewHasher()
		write(h)
		return h.Sum()
	}

	a := sum(func(h *Hasher) { h.Str("ab"); h.Str("c") })
	b := sum(func(h *Hasher) { h.Str("a"); h.Str("bc") })
	if a == b {
		t.Error("string concatenations alias: ab|c == a|bc")
	}

	if sum(func(h *Hasher) { h.Str("x") }) != sum(func(h *Hasher) { h.Str("x") }) {
		t.Error("identical writes hash differently")
	}

	if sum(func(h *Hasher) { h.F64(0.0) }) == sum(func(h *Hasher) { h.F64(math.Copysign(0, -1)) }) {
		t.Error("+0.0 and -0.0 alias; floats must hash by bit pattern")
	}
	if sum(func(h *Hasher) { h.F64(1.0) }) == sum(func(h *Hasher) { h.F64(2.0) }) {
		t.Error("distinct floats alias")
	}

	// A count-prefixed empty slice is distinct from writing nothing, so a
	// message with an absent list can't alias one with a shifted tail.
	if sum(func(h *Hasher) { h.F64s(nil); h.I64(7) }) == sum(func(h *Hasher) { h.I64(7) }) {
		t.Error("empty slice writes nothing")
	}

	if sum(func(h *Hasher) { h.Ints([]int{1, 2}) }) == sum(func(h *Hasher) { h.Ints([]int{2, 1}) }) {
		t.Error("slice order ignored")
	}

	if sum(func(h *Hasher) { h.Bool(true) }) == sum(func(h *Hasher) { h.Bool(false) }) {
		t.Error("booleans alias")
	}

	// Sum is a prefix hash: more fields, different fingerprint.
	h := NewHasher()
	h.Str("q")
	first := h.Sum()
	h.U64(1)
	if first == h.Sum() {
		t.Error("appending a field did not change the fingerprint")
	}
}
