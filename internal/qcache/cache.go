package qcache

import (
	"container/list"
	"sync"
	"time"

	"gupt/internal/telemetry"
)

// Config sizes a Cache.
type Config struct {
	// MaxEntries bounds the number of cached releases; the least recently
	// used entry is evicted first. Must be positive (a cache that cannot
	// hold anything is represented by a nil *Cache, which all methods
	// accept).
	MaxEntries int
	// TTL, when positive, expires entries this long after they were
	// stored. Expiry is a memory/freshness policy only — correctness never
	// depends on it, because the dataset content version inside every
	// fingerprint already makes stale entries unreachable.
	TTL time.Duration
	// Telemetry receives qcache.hits / qcache.misses / qcache.evictions /
	// qcache.invalidations counters and the qcache.entries /
	// qcache.bytes gauges. Nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
}

// Stats is a point-in-time snapshot of the cache, for the /cache admin
// view. All values are event counts or sizes — never query content.
type Stats struct {
	Entries       int   `json:"entries"`
	MaxEntries    int   `json:"maxEntries"`
	Bytes         int64 `json:"bytes"`
	TTLSeconds    int64 `json:"ttlSeconds"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Expirations   int64 `json:"expirations"`
	Invalidations int64 `json:"invalidations"`
}

// entry is one cached release.
type entry struct {
	key     Fingerprint
	dataset string
	val     any
	size    int64
	stored  time.Time
}

// Cache is a size-bounded LRU with optional TTL over released answers,
// keyed by canonical fingerprint. It is safe for concurrent use. A nil
// *Cache is a valid, permanently empty cache: Get always misses, Put and
// Invalidate are no-ops — callers never branch on "caching enabled".
//
// The cache stores only values that have already been released to the
// analyst (post-processing), so its contents are no more sensitive than
// the query log; still, entries live only in memory and die with the
// process.
type Cache struct {
	mu      sync.Mutex
	entries map[Fingerprint]*list.Element
	ll      *list.List // front = most recently used
	max     int
	ttl     time.Duration
	now     func() time.Time
	bytes   int64

	hits          *telemetry.Counter
	misses        *telemetry.Counter
	evictions     *telemetry.Counter
	expirations   *telemetry.Counter
	invalidations *telemetry.Counter
	entriesGauge  *telemetry.Gauge
	bytesGauge    *telemetry.Gauge

	// local counters mirror the telemetry (which may be absent) so Stats
	// works without a registry.
	nHits, nMisses, nEvictions, nExpirations, nInvalidations int64
}

// New builds a cache; a non-positive MaxEntries returns nil (disabled).
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		return nil
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	tel := cfg.Telemetry
	return &Cache{
		entries:       make(map[Fingerprint]*list.Element, cfg.MaxEntries),
		ll:            list.New(),
		max:           cfg.MaxEntries,
		ttl:           cfg.TTL,
		now:           now,
		hits:          tel.Counter("qcache.hits"),
		misses:        tel.Counter("qcache.misses"),
		evictions:     tel.Counter("qcache.evictions"),
		expirations:   tel.Counter("qcache.expirations"),
		invalidations: tel.Counter("qcache.invalidations"),
		entriesGauge:  tel.Gauge("qcache.entries"),
		bytesGauge:    tel.Gauge("qcache.bytes"),
	}
}

// Get returns the cached release under k, if present and unexpired,
// updating recency. The caller must treat the returned value as immutable
// — it is the very release every future hit will also receive.
func (c *Cache) Get(k Fingerprint) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if ok {
		e := el.Value.(*entry)
		if c.ttl > 0 && c.now().Sub(e.stored) > c.ttl {
			c.removeLocked(el)
			c.expirations.Inc()
			c.nExpirations++
			ok = false
		} else {
			c.ll.MoveToFront(el)
			c.hits.Inc()
			c.nHits++
			return e.val, true
		}
	}
	_ = ok
	c.misses.Inc()
	c.nMisses++
	return nil, false
}

// Put stores a released answer under k, attributed to dataset (for
// Invalidate) with an approximate in-memory size for the bytes gauge.
// Storing over an existing key replaces it.
func (c *Cache) Put(k Fingerprint, dataset string, val any, size int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(&entry{key: k, dataset: dataset, val: val, size: size, stored: c.now()})
	c.entries[k] = el
	c.bytes += size
	c.entriesGauge.Set(int64(c.ll.Len()))
	c.bytesGauge.Set(c.bytes)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions.Inc()
		c.nEvictions++
	}
}

// Invalidate drops every entry attributed to dataset and returns the
// count. Correctness never depends on this — a mutated dataset's bumped
// content version already changes every future fingerprint — but eager
// invalidation reclaims memory that can no longer be hit.
func (c *Cache) Invalidate(dataset string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).dataset == dataset {
			c.removeLocked(el)
			dropped++
		}
		el = next
	}
	if dropped > 0 {
		c.invalidations.Add(int64(dropped))
		c.nInvalidations += int64(dropped)
	}
	return dropped
}

// removeLocked unlinks one element; c.mu held.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.entriesGauge.Set(int64(c.ll.Len()))
	c.bytesGauge.Set(c.bytes)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       c.ll.Len(),
		MaxEntries:    c.max,
		Bytes:         c.bytes,
		TTLSeconds:    int64(c.ttl / time.Second),
		Hits:          c.nHits,
		Misses:        c.nMisses,
		Evictions:     c.nEvictions,
		Expirations:   c.nExpirations,
		Invalidations: c.nInvalidations,
	}
}
