package qcache

import (
	"testing"
	"time"

	"gupt/internal/telemetry"
)

func fp(b byte) Fingerprint {
	var f Fingerprint
	f[0] = b
	return f
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c != New(Config{}) || New(Config{MaxEntries: -1}) != nil {
		t.Fatal("non-positive MaxEntries must build a nil (disabled) cache")
	}
	if _, ok := c.Get(fp(1)); ok {
		t.Error("nil cache hit")
	}
	c.Put(fp(1), "ds", 42, 8)
	if n := c.Invalidate("ds"); n != 0 {
		t.Errorf("nil cache invalidated %d", n)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestCacheHitMissAndStats(t *testing.T) {
	c := New(Config{MaxEntries: 4})
	if _, ok := c.Get(fp(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(fp(1), "ds", "answer", 100)
	v, ok := c.Get(fp(1))
	if !ok || v.(string) != "answer" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Errorf("stats = %+v", st)
	}
	// Replacing a key swaps the value and keeps one entry.
	c.Put(fp(1), "ds", "answer2", 60)
	if v, _ := c.Get(fp(1)); v.(string) != "answer2" {
		t.Errorf("replacement not visible: %v", v)
	}
	st = c.Stats()
	if st.Entries != 1 || st.Bytes != 60 {
		t.Errorf("after replace: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	c.Put(fp(1), "ds", 1, 1)
	c.Put(fp(2), "ds", 2, 1)
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := c.Get(fp(1)); !ok {
		t.Fatal("lost entry 1")
	}
	c.Put(fp(3), "ds", 3, 1)
	if _, ok := c.Get(fp(2)); ok {
		t.Error("LRU victim survived")
	}
	if _, ok := c.Get(fp(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get(fp(3)); !ok {
		t.Error("new entry missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{MaxEntries: 4, TTL: time.Minute, Now: func() time.Time { return now }})
	c.Put(fp(1), "ds", 1, 1)
	now = now.Add(59 * time.Second)
	if _, ok := c.Get(fp(1)); !ok {
		t.Fatal("expired before TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get(fp(1)); ok {
		t.Fatal("served after TTL")
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheInvalidateByDataset(t *testing.T) {
	c := New(Config{MaxEntries: 8})
	c.Put(fp(1), "a", 1, 10)
	c.Put(fp(2), "a", 2, 10)
	c.Put(fp(3), "b", 3, 10)
	if n := c.Invalidate("a"); n != 2 {
		t.Fatalf("Invalidate(a) = %d, want 2", n)
	}
	if _, ok := c.Get(fp(3)); !ok {
		t.Error("unrelated dataset invalidated")
	}
	st := c.Stats()
	if st.Invalidations != 2 || st.Entries != 1 || st.Bytes != 10 {
		t.Errorf("stats = %+v", st)
	}
	if n := c.Invalidate("a"); n != 0 {
		t.Errorf("second Invalidate(a) = %d", n)
	}
}

func TestCacheTelemetryCounters(t *testing.T) {
	tel := telemetry.NewRegistry()
	c := New(Config{MaxEntries: 1, Telemetry: tel})
	c.Put(fp(1), "ds", 1, 7)
	c.Get(fp(1))
	c.Get(fp(2))
	c.Put(fp(2), "ds", 2, 3) // evicts 1
	if got := tel.Counter("qcache.hits").Value(); got != 1 {
		t.Errorf("qcache.hits = %d", got)
	}
	if got := tel.Counter("qcache.misses").Value(); got != 1 {
		t.Errorf("qcache.misses = %d", got)
	}
	if got := tel.Counter("qcache.evictions").Value(); got != 1 {
		t.Errorf("qcache.evictions = %d", got)
	}
	if got := tel.Gauge("qcache.entries").Value(); got != 1 {
		t.Errorf("qcache.entries = %d", got)
	}
	if got := tel.Gauge("qcache.bytes").Value(); got != 3 {
		t.Errorf("qcache.bytes = %d", got)
	}
}
