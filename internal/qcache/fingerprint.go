// Package qcache is GUPT's noisy-answer cache: released query answers are
// stored under a canonical fingerprint of everything that determines their
// distribution, and a byte-identical repeat query is served the *same*
// already-published release at zero additional ε. Differential privacy is
// closed under post-processing, so re-releasing a value that has already
// crossed the privacy barrier reveals nothing new — but only if "identical"
// is pinned down exactly: the fingerprint must be stable under
// representation differences (JSON field ordering, float formatting) and
// distinct for anything that changes the released distribution (program,
// parameters, clamp ranges, ε, block geometry, seed, dataset content
// version). See SECURITY.md ("The noisy-answer cache as a side channel")
// for the analysis of why the cache is not a budget side channel.
package qcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint is the canonical identity of one released answer: a SHA-256
// over the fixed-order field encoding built by Hasher.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex (admin views, logs).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Hasher accumulates fields into a canonical byte stream and hashes it.
// The encoding discipline mirrors the wire and WAL codecs: every field is
// written in a fixed order chosen by the caller, scalars are fixed-width
// little-endian, floats are IEEE-754 bit patterns (so -0.0 ≠ +0.0 and any
// textual formatting difference is irrelevant), and variable-length data is
// length-prefixed so concatenations can never alias ("ab"+"c" ≠ "a"+"bc").
// Nothing here iterates a map, so Go's randomized map order cannot leak in.
//
// The zero value is not usable; call NewHasher.
type Hasher struct {
	buf []byte
}

// NewHasher returns an empty canonical hasher.
func NewHasher() *Hasher {
	return &Hasher{buf: make([]byte, 0, 256)}
}

// Str appends a length-prefixed string field.
func (h *Hasher) Str(s string) {
	h.buf = binary.LittleEndian.AppendUint32(h.buf, uint32(len(s)))
	h.buf = append(h.buf, s...)
}

// I64 appends a fixed-width signed integer field.
func (h *Hasher) I64(v int64) {
	h.buf = binary.LittleEndian.AppendUint64(h.buf, uint64(v))
}

// Int appends an int field (as int64).
func (h *Hasher) Int(v int) { h.I64(int64(v)) }

// U64 appends a fixed-width unsigned integer field.
func (h *Hasher) U64(v uint64) {
	h.buf = binary.LittleEndian.AppendUint64(h.buf, v)
}

// F64 appends a float64 field as its IEEE-754 bit pattern. Two floats
// fingerprint equal iff their bits are equal, independent of how any
// serialization layer formatted them.
func (h *Hasher) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bool appends a boolean field.
func (h *Hasher) Bool(v bool) {
	if v {
		h.buf = append(h.buf, 1)
	} else {
		h.buf = append(h.buf, 0)
	}
}

// F64s appends a count-prefixed float64 slice field.
func (h *Hasher) F64s(xs []float64) {
	h.buf = binary.LittleEndian.AppendUint32(h.buf, uint32(len(xs)))
	for _, x := range xs {
		h.F64(x)
	}
}

// Ints appends a count-prefixed int slice field.
func (h *Hasher) Ints(xs []int) {
	h.buf = binary.LittleEndian.AppendUint32(h.buf, uint32(len(xs)))
	for _, x := range xs {
		h.Int(x)
	}
}

// Strs appends a count-prefixed string slice field.
func (h *Hasher) Strs(ss []string) {
	h.buf = binary.LittleEndian.AppendUint32(h.buf, uint32(len(ss)))
	for _, s := range ss {
		h.Str(s)
	}
}

// Sum finalizes the fingerprint. The hasher may keep accumulating after
// Sum; each call hashes everything written so far.
func (h *Hasher) Sum() Fingerprint {
	return sha256.Sum256(h.buf)
}
