package experiments

import (
	"context"
	"fmt"
	"math"

	"gupt/internal/aging"
	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/workload"
)

// OptimizerRow is one ε's outcome of the §4.3 validation: what the
// aging-based block-size optimizer chose versus the paper's n^0.6 default,
// both evaluated by their actual measured error on the private data.
type OptimizerRow struct {
	Epsilon     float64
	ChosenBeta  int
	ChosenRMSE  float64 // measured at the chosen beta
	DefaultBeta int
	DefaultRMSE float64 // measured at n^0.6
}

// OptimizerResult validates that OptimizeBlockSize (driven only by the
// aged sample, Eq. 2) picks block sizes whose *measured* error on the
// private data beats the default — the mechanism behind the Fig. 9 claim
// that "GUPT can significantly reduce the total error by estimating the
// optimal block size".
type OptimizerResult struct {
	Query string
	Rows  []OptimizerRow
}

// Optimizer runs the validation for the median query on the internet-ads
// workload at the paper's two budgets.
func Optimizer(cfg Config) (*OptimizerResult, error) {
	n := cfg.scale(workload.AdsRows, 1200)
	data := workload.InternetAds(cfg.Seed, n)
	aged, private := data.Split(mathutil.NewRNG(cfg.Seed), 0.2)
	rows := private.Rows()
	truth := mathutil.Median(private.Column(0))
	ranges := []dp.Range{workload.AdsRange()}
	prog := analytics.Median{Col: 0}
	trials := cfg.scale(30, 8)

	measure := func(beta int, eps float64) (float64, error) {
		var sqErr float64
		for trial := 0; trial < trials; trial++ {
			out, err := core.Run(context.Background(), prog, rows,
				core.RangeSpec{Mode: core.ModeTight, Output: ranges},
				core.Options{Epsilon: eps, Seed: cfg.Seed + int64(trial), BlockSize: beta})
			if err != nil {
				return 0, err
			}
			d := out.Output[0] - truth
			sqErr += d * d
		}
		return math.Sqrt(sqErr/float64(trials)) / truth, nil
	}

	res := &OptimizerResult{Query: prog.Name()}
	for _, eps := range []float64{2, 6} {
		choice, err := aging.OptimizeBlockSize(prog, aged.Rows(), len(rows), eps, ranges)
		if err != nil {
			return nil, fmt.Errorf("optimizer eps=%v: %w", eps, err)
		}
		chosenRMSE, err := measure(choice.BlockSize, eps)
		if err != nil {
			return nil, err
		}
		defBeta := core.DefaultBlockSize(len(rows))
		defRMSE, err := measure(defBeta, eps)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, OptimizerRow{
			Epsilon:     eps,
			ChosenBeta:  choice.BlockSize,
			ChosenRMSE:  chosenRMSE,
			DefaultBeta: defBeta,
			DefaultRMSE: defRMSE,
		})
	}
	return res, nil
}

// Table renders the validation.
func (r *OptimizerResult) Table() string {
	t := newTable("epsilon", "chosen beta", "measured RMSE", "default beta (n^0.6)", "default RMSE")
	for _, row := range r.Rows {
		t.addRow(f(row.Epsilon), fmt.Sprintf("%d", row.ChosenBeta), f(row.ChosenRMSE),
			fmt.Sprintf("%d", row.DefaultBeta), f(row.DefaultRMSE))
	}
	return fmt.Sprintf("Block-size optimizer validation (§4.3): aged-sample tuning vs the n^0.6 default, %s\n%s",
		r.Query, t.String())
}
