package experiments

import (
	"fmt"

	"gupt/internal/aging"
	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/workload"
)

// Fig8Result reproduces Figure 8: the normalized lifetime of a dataset's
// total privacy budget — how many average-age queries each policy can run
// before exhausting it, normalized to the constant ε = 1 policy. The paper
// reports the variable-ε policy running ≈ 2.3× more queries than ε = 1.
type Fig8Result struct {
	Policies []string
	// Queries is how many queries each policy completed on the same total
	// budget.
	Queries map[string]int
	// NormalizedLifetime is Queries normalized to the constant ε=1 policy.
	NormalizedLifetime map[string]float64
	VariableEpsilon    float64
}

// Fig8 runs the experiment: a fixed total budget is drawn down by repeated
// identical queries under each policy until refused.
func Fig8(cfg Config) (*Fig8Result, error) {
	n := cfg.scale(workload.CensusRows, 6000)
	data := workload.CensusIncome(cfg.Seed, n)
	aged, private := data.Split(mathutil.NewRNG(cfg.Seed), 0.1)

	goal := aging.AccuracyGoal{Rho: 0.9, Confidence: 0.9}
	ranges := []dp.Range{workload.CensusLooseRange()}
	est, err := aging.EstimateEpsilon(analytics.Mean{Col: 0}, aged.Rows(),
		private.NumRows(), fig7BlockSize(private.NumRows()), ranges, goal)
	if err != nil {
		return nil, fmt.Errorf("fig8: epsilon estimation: %w", err)
	}

	const totalBudget = 30.0
	policies := map[string]float64{
		"constant eps=1":   1,
		"constant eps=0.3": 0.3,
		"variable eps":     est.Epsilon,
	}
	res := &Fig8Result{
		Policies:           []string{"constant eps=1", "variable eps", "constant eps=0.3"},
		Queries:            make(map[string]int),
		NormalizedLifetime: make(map[string]float64),
		VariableEpsilon:    est.Epsilon,
	}
	for name, eps := range policies {
		acct := dp.NewAccountant(totalBudget)
		count := 0
		for acct.Spend("avg-age", eps) == nil {
			count++
			if count > 1_000_000 {
				return nil, fmt.Errorf("fig8: runaway policy %s (eps=%v)", name, eps)
			}
		}
		res.Queries[name] = count
	}
	base := res.Queries["constant eps=1"]
	for name, q := range res.Queries {
		res.NormalizedLifetime[name] = float64(q) / float64(base)
	}
	return res, nil
}

// Table renders the figure's bars.
func (r *Fig8Result) Table() string {
	t := newTable("policy", "queries on shared budget", "normalized lifetime")
	for _, p := range r.Policies {
		t.addRow(p, fmt.Sprintf("%d", r.Queries[p]), f(r.NormalizedLifetime[p]))
	}
	return fmt.Sprintf("Figure 8: privacy budget lifetime by policy (variable eps = %s)\n%s",
		f(r.VariableEpsilon), t.String())
}
