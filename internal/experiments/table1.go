package experiments

import "fmt"

// Capability is one row of the paper's Table 1.
type Capability struct {
	Name    string
	GUPT    bool
	PINQ    bool
	Airavat bool
}

// Table1 returns the qualitative capability matrix of the paper's Table 1.
// Every "Yes" claimed for a system implemented in this repository is backed
// by an executable check: the side-channel rows are exercised by the
// adversarial tests in internal/sandbox, internal/baseline/pinq,
// internal/baseline/airavat and internal/experiments/table1_test.go.
func Table1() []Capability {
	return []Capability{
		// GUPT treats the whole program as an opaque binary; PINQ requires
		// rewriting against its primitives; Airavat requires restructuring
		// into map-reduce.
		{Name: "Works with unmodified programs", GUPT: true, PINQ: false, Airavat: false},
		// PINQ's primitive set is composable enough for most analyses;
		// Airavat's single untrusted mapper + trusted reducer cannot
		// express iterative algorithms with global state.
		{Name: "Allows expressive programs", GUPT: true, PINQ: true, Airavat: false},
		// Only GUPT translates accuracy goals into ε and distributes a
		// total budget across queries automatically.
		{Name: "Automated privacy budget allocation", GUPT: true, PINQ: false, Airavat: false},
		// PINQ hands the ledger to analyst code (see
		// pinq.TestBudgetAttackSucceedsAgainstPINQ); GUPT and Airavat keep
		// it platform-side.
		{Name: "Protection against privacy budget attack", GUPT: true, PINQ: false, Airavat: true},
		// Only GUPT isolates the full analysis in fresh chambers; PINQ and
		// Airavat execute analyst closures in-process where global state
		// survives (see airavat.TestStateAttackSucceedsAgainstAiravat).
		{Name: "Protection against state attack", GUPT: true, PINQ: false, Airavat: false},
		// Only GUPT normalizes per-block runtime to a fixed quantum (see
		// sandbox.TestInProcessTimingNormalization).
		{Name: "Protection against timing attack", GUPT: true, PINQ: false, Airavat: false},
	}
}

// Table renders Table 1.
func Table1String() string {
	t := newTable("capability", "GUPT", "PINQ", "Airavat")
	yn := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	for _, c := range Table1() {
		t.addRow(c.Name, yn(c.GUPT), yn(c.PINQ), yn(c.Airavat))
	}
	return fmt.Sprintf("Table 1: comparison of GUPT, PINQ and Airavat\n%s", t.String())
}
