package experiments

import (
	"context"
	"fmt"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/telemetry"
)

// ObservabilityOverheadResult quantifies what the flight recorder, the
// ε burn-down plane, and the per-block fan-out spans add on top of the
// tracing baseline BENCH_PR5.json already pinned. The "traced"
// configuration is that baseline (metrics registry + per-query trace +
// trace ring); each subsequent configuration layers one PR 10 addition
// onto it, ending at "full-obs" — the configuration guptd now runs in.
// The claim BENCH_PR10.json pins is that full-obs stays within
// run-to-run noise of traced: the recorder and the plane are O(1) work
// per query against the engine's O(rows) work.
type ObservabilityOverheadResult struct {
	// Rows and Queries pin the workload: Queries timed queries over a
	// Rows-record table per configuration, best of several passes.
	Rows    int
	Queries int
	// Spans is the number of fan-out dispatch spans fabricated per query
	// in the configurations that record them — one per block, matching
	// what a sharded execution over Rows/BlockSize blocks would emit.
	Spans int
	// Configs lists the measured configurations in run order: traced,
	// flight, burndown, fanout-spans, full-obs.
	Configs []string
	// NsPerQuery is the per-configuration cost, indexed like Configs.
	NsPerQuery []float64
	// OverheadPct is the percent increase over the traced baseline,
	// indexed like Configs (0 for the baseline itself).
	OverheadPct []float64
}

// ObservabilityOverhead runs the measurement. Each configuration executes
// the same deterministic query sequence; the reported figure is the best
// of three passes, which filters scheduler noise better than an average
// on a loaded machine.
func ObservabilityOverhead(cfg Config) (*ObservabilityOverheadResult, error) {
	n := cfg.scale(20000, 4000)
	queries := cfg.scale(40, 10)
	spans := 20 // one dispatch span per block at the default fan-out shape
	const passes = 3

	rng := mathutil.NewRNG(cfg.Seed)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	prog := analytics.Mean{Col: 0}
	spec := core.RangeSpec{Mode: core.ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}}

	// Fabricated worker results: what the fan-out path feeds into
	// AddRemoteSpans once per observed block result. Deterministic millis
	// so every pass does identical bucketing work.
	workerSpans := make([]telemetry.RemoteSpan, spans)
	for i := range workerSpans {
		workerSpans[i] = telemetry.RemoteSpan{
			Stage:  telemetry.StageFanoutDispatch,
			Status: telemetry.StatusOK,
			Millis: float64(i%7) + 0.5,
		}
	}

	// perQuery returns the options for one query under the configuration
	// and an after-hook mirroring what the server does once the query
	// settles under that configuration.
	type setup struct {
		name     string
		perQuery func(q int) (core.Options, func())
	}
	baseOpts := func(q int) core.Options {
		return core.Options{Epsilon: 0.5, Seed: cfg.Seed + int64(q), Parallelism: 1}
	}
	// Each configuration gets its own registry so bucket maps never carry
	// state across configurations.
	tracedSetup := func(reg *telemetry.Registry, after func(*telemetry.Trace)) func(q int) (core.Options, func()) {
		ring := telemetry.NewTraceBuffer(telemetry.DefaultTraceBufferSize)
		return func(q int) (core.Options, func()) {
			o := baseOpts(q)
			o.Metrics = reg
			tr := telemetry.NewTrace(reg, telemetry.NewTraceID(), "bench")
			o.Trace = tr
			return o, func() {
				ring.Add(tr, "ok")
				if after != nil {
					after(tr)
				}
			}
		}
	}
	flightReg := telemetry.NewRegistry()
	flightRec := telemetry.NewFlightRecorder(0)
	burnReg := telemetry.NewRegistry()
	burnPlane := telemetry.NewBudgetPlane(burnReg)
	burnPlane.Seed("", "bench", 0, 1e9)
	spanReg := telemetry.NewRegistry()
	fullReg := telemetry.NewRegistry()
	fullRec := telemetry.NewFlightRecorder(0)
	fullPlane := telemetry.NewBudgetPlane(fullReg)
	fullPlane.Seed("", "bench", 0, 1e9)
	var burnSpent, fullSpent float64
	configs := []setup{
		{"traced", tracedSetup(telemetry.NewRegistry(), nil)},
		{"flight", tracedSetup(flightReg, func(tr *telemetry.Trace) {
			flightRec.Record(tr, "ok", telemetry.FlightExtra{EpsilonCharged: 0.5, Blocks: spans})
		})},
		{"burndown", tracedSetup(burnReg, func(*telemetry.Trace) {
			burnSpent += 0.5
			burnPlane.Observe("", "bench", 0.5, burnSpent, 1e9)
		})},
		{"fanout-spans", tracedSetup(spanReg, func(tr *telemetry.Trace) {
			tr.AddRemoteSpans("worker:bench", workerSpans)
		})},
		{"full-obs", tracedSetup(fullReg, func(tr *telemetry.Trace) {
			tr.AddRemoteSpans("worker:bench", workerSpans)
			fullRec.Record(tr, "ok", telemetry.FlightExtra{EpsilonCharged: 0.5, Blocks: spans})
			fullSpent += 0.5
			fullPlane.Observe("", "bench", 0.5, fullSpent, 1e9)
		})},
	}

	res := &ObservabilityOverheadResult{Rows: n, Queries: queries, Spans: spans}
	for _, sc := range configs {
		// One untimed pass first: without it the first configuration pays
		// all the cache/allocator warmup and the comparison skews.
		for q := 0; q < queries; q++ {
			opts, done := sc.perQuery(q)
			if _, err := core.Run(context.Background(), prog, rows, spec, opts); err != nil {
				return nil, fmt.Errorf("observability overhead warmup %s: %w", sc.name, err)
			}
			done()
		}
		best := time.Duration(1<<63 - 1)
		for p := 0; p < passes; p++ {
			start := time.Now()
			for q := 0; q < queries; q++ {
				opts, done := sc.perQuery(q)
				if _, err := core.Run(context.Background(), prog, rows, spec, opts); err != nil {
					return nil, fmt.Errorf("observability overhead %s: %w", sc.name, err)
				}
				done()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		res.Configs = append(res.Configs, sc.name)
		res.NsPerQuery = append(res.NsPerQuery, float64(best.Nanoseconds())/float64(queries))
	}
	base := res.NsPerQuery[0]
	for _, ns := range res.NsPerQuery {
		res.OverheadPct = append(res.OverheadPct, 100*(ns-base)/base)
	}
	return res, nil
}

// Table renders the measurement.
func (r *ObservabilityOverheadResult) Table() string {
	t := newTable("configuration", "per-query", "vs traced")
	for i, name := range r.Configs {
		t.addRow(name,
			time.Duration(r.NsPerQuery[i]).Round(time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%", r.OverheadPct[i]))
	}
	return fmt.Sprintf("Flight recorder / burn-down / fan-out span overhead (%d queries over %d rows, %d spans per query, best of 3)\n",
		r.Queries, r.Rows, r.Spans) + t.String()
}

// CSV renders the series as config,ns_per_query,overhead_pct.
func (r *ObservabilityOverheadResult) CSV() string {
	var c csvBuilder
	c.row("config", "ns_per_query", "overhead_pct")
	for i, name := range r.Configs {
		c.row(name, fmt.Sprintf("%g", r.NsPerQuery[i]), fmt.Sprintf("%g", r.OverheadPct[i]))
	}
	return c.String()
}
