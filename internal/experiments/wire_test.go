package experiments

import (
	"strings"
	"testing"
)

func TestWireOverheadShape(t *testing.T) {
	r, err := WireOverhead(quick)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"binary"}
	if len(r.Modes) != len(want) {
		t.Fatalf("Modes = %v, want %v", r.Modes, want)
	}
	for i, name := range want {
		if r.Modes[i] != name {
			t.Errorf("Modes[%d] = %q, want %q", i, r.Modes[i], name)
		}
		if r.NsPerRoundTrip[i] <= 0 || r.NsPerQuery[i] <= 0 || r.NsPerBlock[i] <= 0 {
			t.Errorf("%s: non-positive timing: trip %v query %v block %v",
				name, r.NsPerRoundTrip[i], r.NsPerQuery[i], r.NsPerBlock[i])
		}
	}
	if !strings.Contains(r.Table(), "Wire overhead") {
		t.Error("Table() missing caption")
	}
	if !strings.HasPrefix(r.CSV(), "mode,ns_per_round_trip,ns_per_query,ns_per_block,blocks_per_sec") {
		t.Errorf("CSV header wrong: %q", r.CSV())
	}
}
