package experiments

import (
	"fmt"
	"net"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/workload"
)

// CacheEffectResult measures the noisy-answer cache on the hosted compman
// path, two ways:
//
//   - Latency: per-query wall time for the cold path (full block execution,
//     noise, ledger charge) versus the hit path (fingerprint lookup and
//     re-release of the already-published answer). Both are the same query
//     over the same wire; only the cache state differs.
//   - Budget: cumulative ε over a repeat-heavy Zipf schedule
//     (workload.RepeatMix) with the cache on versus off. With the cache on,
//     each distinct query charges once and every repeat is free
//     post-processing; with it off, every arrival charges.
type CacheEffectResult struct {
	// Rows is the census table size; Epsilon the per-query charge.
	Rows    int
	Epsilon float64
	// Queries is the schedule length, Distinct the number of distinct
	// queries inside it.
	Queries  int
	Distinct int
	// TimedQueries is the per-pass count behind each latency figure.
	TimedQueries int

	// NsPerColdQuery and NsPerCacheHit are best-of-3 per-query latencies.
	NsPerColdQuery float64
	NsPerCacheHit  float64

	// HitRate is the fraction of the cached schedule served at zero ε.
	HitRate float64
	// SpentCached and SpentUncached are cumulative ε after each scheduled
	// query (index i = after query i+1), cache on and off.
	SpentCached   []float64
	SpentUncached []float64
}

// Speedup is the cold-path latency over the hit-path latency.
func (r *CacheEffectResult) Speedup() float64 {
	if r.NsPerCacheHit <= 0 {
		return 0
	}
	return r.NsPerColdQuery / r.NsPerCacheHit
}

// EpsilonSaved is the fraction of the uncached spend the cache avoided.
func (r *CacheEffectResult) EpsilonSaved() float64 {
	if len(r.SpentCached) == 0 {
		return 0
	}
	off := r.SpentUncached[len(r.SpentUncached)-1]
	if off <= 0 {
		return 0
	}
	return 1 - r.SpentCached[len(r.SpentCached)-1]/off
}

// CacheEffect runs the measurement.
func CacheEffect(cfg Config) (*CacheEffectResult, error) {
	res := &CacheEffectResult{
		Rows:         cfg.scale(5000, 1000),
		Epsilon:      0.05,
		Queries:      cfg.scale(400, 60),
		Distinct:     cfg.scale(40, 12),
		TimedQueries: cfg.scale(30, 10),
	}
	const passes = 3

	// Latency: cold on a cache-off server, hits on a cache-on server.
	// Using the same query for both keeps everything but the cache state
	// identical — on the cold server a repeat is a fresh engine run.
	cold, err := cacheTimedPath(cfg, res, passes, false)
	if err != nil {
		return nil, fmt.Errorf("cache effect cold path: %w", err)
	}
	hit, err := cacheTimedPath(cfg, res, passes, true)
	if err != nil {
		return nil, fmt.Errorf("cache effect hit path: %w", err)
	}
	res.NsPerColdQuery, res.NsPerCacheHit = cold, hit

	// Budget: the same Zipf schedule against both server configurations.
	mix := workload.RepeatMix(cfg.Seed, res.Queries, res.Distinct)
	hits := 0
	for _, cached := range []bool{true, false} {
		client, srv, err := cacheBenchServer(cfg, res, cached)
		if err != nil {
			return nil, err
		}
		spent := make([]float64, 0, len(mix))
		total := 0.0
		for _, idx := range mix {
			resp, err := client.Query(cacheBenchQuery(cfg, res, idx))
			if err != nil {
				client.Close()
				srv.Close()
				return nil, fmt.Errorf("cache effect schedule (cached=%v): %w", cached, err)
			}
			total += resp.EpsilonCharged
			spent = append(spent, total)
			if cached && resp.CacheHit {
				hits++
			}
		}
		if cached {
			res.SpentCached = spent
		} else {
			res.SpentUncached = spent
		}
		client.Close()
		srv.Close()
	}
	res.HitRate = float64(hits) / float64(len(mix))
	return res, nil
}

// cacheBenchServer starts a compman server over a fresh census registry,
// with or without the noisy-answer cache.
func cacheBenchServer(cfg Config, res *CacheEffectResult, cached bool) (*compman.Client, *compman.Server, error) {
	reg := dataset.NewRegistry()
	// Budget covers every pass with a wide margin so the ledger never
	// becomes the variable under test.
	if _, err := reg.Register("census", workload.CensusIncome(cfg.Seed, res.Rows), dataset.RegisterOptions{
		TotalBudget: 1e6,
		Ranges:      []dp.Range{workload.CensusLooseRange()},
		Seed:        cfg.Seed,
	}); err != nil {
		return nil, nil, err
	}
	sc := compman.ServerConfig{}
	if cached {
		sc.CacheEntries = 4 * res.Distinct
	}
	srv := compman.NewServer(reg, sc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	go srv.Serve(l)
	client, err := compman.Dial(l.Addr().String())
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return client, srv, nil
}

// cacheBenchQuery is the idx-th distinct query of the schedule: same mean
// program, distinct noise seed — a distinct released answer, so a distinct
// cache key.
func cacheBenchQuery(cfg Config, res *CacheEffectResult, idx int) *compman.Request {
	return &compman.Request{
		Dataset:      "census",
		Program:      &compman.ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      res.Epsilon,
		BlockSize:    res.Rows / 20,
		Seed:         cfg.Seed + int64(idx),
	}
}

// cacheTimedPath times TimedQueries repeats of one query, best of passes.
// With the cache on, the warmup fills and every timed repeat is a hit;
// with it off, every repeat is a full cold run.
func cacheTimedPath(cfg Config, res *CacheEffectResult, passes int, cached bool) (float64, error) {
	client, srv, err := cacheBenchServer(cfg, res, cached)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	defer client.Close()

	run := func() error {
		_, err := client.Query(cacheBenchQuery(cfg, res, 0))
		return err
	}
	// Warmup: fills the cache (cached path) and pays connection and
	// allocator startup on both.
	for i := 0; i < res.TimedQueries/4+1; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	// Sanity-check the path under measurement before timing it.
	probe, err := client.Query(cacheBenchQuery(cfg, res, 0))
	if err != nil {
		return 0, err
	}
	if probe.CacheHit != cached {
		return 0, fmt.Errorf("probe CacheHit=%v on a cached=%v server", probe.CacheHit, cached)
	}
	best := time.Duration(1<<63 - 1)
	for p := 0; p < passes; p++ {
		start := time.Now()
		for i := 0; i < res.TimedQueries; i++ {
			if err := run(); err != nil {
				return 0, err
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(res.TimedQueries), nil
}

// Table renders the measurement.
func (r *CacheEffectResult) Table() string {
	t := newTable("path", "per query")
	t.addRow("cold", time.Duration(r.NsPerColdQuery).Round(time.Microsecond).String())
	t.addRow("cache hit", time.Duration(r.NsPerCacheHit).Round(time.Microsecond).String())
	t.addRow("speedup", fmt.Sprintf("%.1fx", r.Speedup()))
	final := 0.0
	if n := len(r.SpentCached); n > 0 {
		final = r.SpentCached[n-1]
	}
	finalOff := 0.0
	if n := len(r.SpentUncached); n > 0 {
		finalOff = r.SpentUncached[n-1]
	}
	return fmt.Sprintf("Noisy-answer cache (%d-row table, %d-query Zipf schedule over %d distinct, best of 3)\n",
		r.Rows, r.Queries, r.Distinct) + t.String() +
		fmt.Sprintf("schedule: %.0f%% hit rate, ε spent %.2f cached vs %.2f uncached (%.0f%% saved)\n",
			100*r.HitRate, final, finalOff, 100*r.EpsilonSaved())
}

// CSV renders the series in long form — headline latencies and hit rate as
// step-0 rows, then the two cumulative spend curves — so one rectangular
// table carries both the comparison and the plottable curves.
func (r *CacheEffectResult) CSV() string {
	var c csvBuilder
	c.row("series", "step", "value")
	c.row("ns_per_cold_query", "0", fmt.Sprintf("%g", r.NsPerColdQuery))
	c.row("ns_per_cache_hit", "0", fmt.Sprintf("%g", r.NsPerCacheHit))
	c.row("speedup", "0", fmt.Sprintf("%g", r.Speedup()))
	c.row("hit_rate", "0", fmt.Sprintf("%g", r.HitRate))
	c.row("eps_saved_fraction", "0", fmt.Sprintf("%g", r.EpsilonSaved()))
	for i, v := range r.SpentCached {
		c.row("cum_eps_cached", fmt.Sprint(i+1), fmt.Sprintf("%g", v))
	}
	for i, v := range r.SpentUncached {
		c.row("cum_eps_uncached", fmt.Sprint(i+1), fmt.Sprintf("%g", v))
	}
	return c.String()
}
