package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/tenant"
	"gupt/internal/workload"
)

// TenancyOverheadResult measures the multi-tenant front door, two ways:
//
//   - Hot path: per-query wall time with tenancy off versus on. The
//     tenancy-on path adds API-key authentication (constant-time scan over
//     the registry), a dataset-grant check, a token-bucket admission, and
//     the per-tenant quota reservation layered on the global charge. Both
//     paths run the same query over the same wire against the same table.
//   - Flood: a tenant whose quota covers only ~5% of an incoming burst.
//     Everything past the quota must be refused fast (no engine run, no
//     ledger write) and free (ε spent stays pinned at the quota), so the
//     front door's rejection throughput is what an abusive or runaway
//     tenant actually experiences.
type TenancyOverheadResult struct {
	// Rows is the census table size; Epsilon the per-query charge.
	Rows    int
	Epsilon float64
	// TimedQueries is the per-pass count behind each latency figure.
	TimedQueries int

	// NsPerQueryOff and NsPerQueryOn are best-of-3 per-query latencies
	// without and with the tenancy front door.
	NsPerQueryOff float64
	NsPerQueryOn  float64

	// FloodRequests is the burst size; FloodQuota the tenant's ε ceiling
	// (~5% of what the burst would cost).
	FloodRequests int
	FloodQuota    float64
	// FloodAdmitted and FloodRejected partition the burst.
	FloodAdmitted int
	FloodRejected int
	// NsPerRejection is the mean wall time of a quota refusal.
	NsPerRejection float64
	// FloodSpent is the tenant's ε spend after the burst — the isolation
	// claim is FloodSpent == FloodQuota, never more.
	FloodSpent float64
}

// OverheadFraction is the tenancy-on hot-path cost relative to tenancy off.
func (r *TenancyOverheadResult) OverheadFraction() float64 {
	if r.NsPerQueryOff <= 0 {
		return 0
	}
	return r.NsPerQueryOn/r.NsPerQueryOff - 1
}

// RejectionsPerSecond is the front door's refusal throughput.
func (r *TenancyOverheadResult) RejectionsPerSecond() float64 {
	if r.NsPerRejection <= 0 {
		return 0
	}
	return 1e9 / r.NsPerRejection
}

// TenancyOverhead runs the measurement.
func TenancyOverhead(cfg Config) (*TenancyOverheadResult, error) {
	res := &TenancyOverheadResult{
		Rows:          cfg.scale(5000, 1000),
		Epsilon:       0.05,
		TimedQueries:  cfg.scale(30, 10),
		FloodRequests: cfg.scale(400, 80),
	}
	// The quota admits ~5% of the flood; the remaining 95% must bounce.
	res.FloodQuota = 0.05 * float64(res.FloodRequests) * res.Epsilon
	const passes = 3

	off, err := tenancyTimedPath(cfg, res, passes, false)
	if err != nil {
		return nil, fmt.Errorf("tenancy off path: %w", err)
	}
	on, err := tenancyTimedPath(cfg, res, passes, true)
	if err != nil {
		return nil, fmt.Errorf("tenancy on path: %w", err)
	}
	res.NsPerQueryOff, res.NsPerQueryOn = off, on

	if err := tenancyFlood(cfg, res); err != nil {
		return nil, fmt.Errorf("tenancy flood: %w", err)
	}
	return res, nil
}

// tenancyBenchServer starts a compman server over a fresh census registry,
// with or without the tenant front door. With tenancy on, one tenant
// ("bench") is created and granted the dataset; quota 0 means unlimited.
func tenancyBenchServer(cfg Config, res *TenancyOverheadResult, tenancy bool, quota float64) (*compman.Client, *compman.Server, *tenant.Registry, error) {
	reg := dataset.NewRegistry()
	if _, err := reg.Register("census", workload.CensusIncome(cfg.Seed, res.Rows), dataset.RegisterOptions{
		TotalBudget: 1e6,
		Ranges:      []dp.Range{workload.CensusLooseRange()},
		Seed:        cfg.Seed,
	}); err != nil {
		return nil, nil, nil, err
	}
	sc := compman.ServerConfig{}
	var tenants *tenant.Registry
	var key string
	if tenancy {
		tenants = tenant.NewRegistry()
		var err error
		key, err = tenants.Create("bench")
		if err != nil {
			return nil, nil, nil, err
		}
		if err := tenants.Grant("bench", "census"); err != nil {
			return nil, nil, nil, err
		}
		if quota > 0 {
			if err := tenants.SetQuota("bench", "census", quota); err != nil {
				return nil, nil, nil, err
			}
		}
		sc.Tenants = tenants
	}
	srv := compman.NewServer(reg, sc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, nil, nil, err
	}
	go srv.Serve(l)
	client, err := compman.Dial(l.Addr().String())
	if err != nil {
		srv.Close()
		return nil, nil, nil, err
	}
	if tenancy {
		client.SetAPIKey(key)
	}
	return client, srv, tenants, nil
}

// tenancyBenchQuery is the timed query: same mean program each time, a
// distinct seed per call so the noisy-answer cache never short-circuits
// the path under measurement.
func tenancyBenchQuery(cfg Config, res *TenancyOverheadResult, idx int) *compman.Request {
	return &compman.Request{
		Dataset:      "census",
		Program:      &compman.ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      res.Epsilon,
		BlockSize:    res.Rows / 20,
		Seed:         cfg.Seed + int64(idx),
	}
}

// tenancyTimedPath times TimedQueries full queries, best of passes, with
// the front door off or on.
func tenancyTimedPath(cfg Config, res *TenancyOverheadResult, passes int, tenancy bool) (float64, error) {
	client, srv, _, err := tenancyBenchServer(cfg, res, tenancy, 0)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	defer client.Close()

	seq := 0
	run := func() error {
		seq++
		_, err := client.Query(tenancyBenchQuery(cfg, res, seq))
		return err
	}
	for i := 0; i < res.TimedQueries/4+1; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	best := time.Duration(1<<63 - 1)
	for p := 0; p < passes; p++ {
		start := time.Now()
		for i := 0; i < res.TimedQueries; i++ {
			if err := run(); err != nil {
				return 0, err
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(res.TimedQueries), nil
}

// tenancyFlood drives the over-quota burst and times the refusal path.
func tenancyFlood(cfg Config, res *TenancyOverheadResult) error {
	client, srv, tenants, err := tenancyBenchServer(cfg, res, true, res.FloodQuota)
	if err != nil {
		return err
	}
	defer srv.Close()
	defer client.Close()

	var rejectedNs int64
	for i := 0; i < res.FloodRequests; i++ {
		start := time.Now()
		_, err := client.Query(tenancyBenchQuery(cfg, res, i))
		elapsed := time.Since(start)
		switch {
		case err == nil:
			res.FloodAdmitted++
		case strings.Contains(err.Error(), dp.ErrBudgetExhausted.Error()):
			res.FloodRejected++
			rejectedNs += elapsed.Nanoseconds()
		default:
			return fmt.Errorf("flood query %d: %w", i, err)
		}
	}
	if res.FloodRejected > 0 {
		res.NsPerRejection = float64(rejectedNs) / float64(res.FloodRejected)
	}
	res.FloodSpent = tenants.Spent("bench", "census")
	if res.FloodSpent > res.FloodQuota+1e-9 {
		return fmt.Errorf("flood breached the quota: spent %g > %g", res.FloodSpent, res.FloodQuota)
	}
	return nil
}

// Table renders the measurement.
func (r *TenancyOverheadResult) Table() string {
	t := newTable("path", "per query")
	t.addRow("tenancy off", time.Duration(r.NsPerQueryOff).Round(time.Microsecond).String())
	t.addRow("tenancy on", time.Duration(r.NsPerQueryOn).Round(time.Microsecond).String())
	t.addRow("overhead", fmt.Sprintf("%+.1f%%", 100*r.OverheadFraction()))
	t.addRow("quota rejection", time.Duration(r.NsPerRejection).Round(time.Microsecond).String())
	return fmt.Sprintf("Tenancy front door (%d-row table, %d timed queries, best of 3)\n", r.Rows, r.TimedQueries) +
		t.String() +
		fmt.Sprintf("flood: %d requests vs a %.2f ε quota -> %d admitted, %d rejected (%.0f rejections/s), ε spent %.2f (quota held)\n",
			r.FloodRequests, r.FloodQuota, r.FloodAdmitted, r.FloodRejected, r.RejectionsPerSecond(), r.FloodSpent)
}

// CSV renders the headline figures as step-0 rows.
func (r *TenancyOverheadResult) CSV() string {
	var c csvBuilder
	c.row("series", "step", "value")
	c.row("ns_per_query_tenancy_off", "0", fmt.Sprintf("%g", r.NsPerQueryOff))
	c.row("ns_per_query_tenancy_on", "0", fmt.Sprintf("%g", r.NsPerQueryOn))
	c.row("overhead_fraction", "0", fmt.Sprintf("%g", r.OverheadFraction()))
	c.row("ns_per_rejection", "0", fmt.Sprintf("%g", r.NsPerRejection))
	c.row("rejections_per_second", "0", fmt.Sprintf("%g", r.RejectionsPerSecond()))
	c.row("flood_admitted", "0", fmt.Sprint(r.FloodAdmitted))
	c.row("flood_rejected", "0", fmt.Sprint(r.FloodRejected))
	c.row("flood_spent_eps", "0", fmt.Sprintf("%g", r.FloodSpent))
	c.row("flood_quota_eps", "0", fmt.Sprintf("%g", r.FloodQuota))
	return c.String()
}
