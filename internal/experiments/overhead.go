package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
	"gupt/internal/workload"
)

// OverheadMeasurement is one row of the §6.1 reproduction: the same k-means
// computation through in-process versus subprocess chambers at one
// per-block workload (fixed rows, varying iteration count).
type OverheadMeasurement struct {
	Iters        int
	Runs         int
	InProcess    time.Duration // total across runs
	Subprocess   time.Duration
	OverheadFrac float64 // (sub - in) / in
}

// OverheadResult reproduces the §6.1 sandbox-overhead measurement. The
// paper measured its AppArmor sandbox at ≈1.26% on 6,000 k-means runs;
// attaching a MAC profile costs far less than our spawn-a-process-per-block
// isolation, so the absolute percentage differs by construction. The claim
// that transfers — and that the two rows demonstrate — is that isolation
// costs a small *constant per block*, so its relative overhead shrinks as
// the per-block computation grows.
type OverheadResult struct {
	Light OverheadMeasurement
	Heavy OverheadMeasurement
}

// SandboxOverhead measures chamber overhead on a k-means block at a light
// and a heavy iteration count (same rows, so the chamber's fixed
// per-execution costs — spawn and serialization — stay constant while the
// computation grows). appPath, appArgs and appEnv identify an executable
// speaking the sandbox protocol that runs the same k-means computation;
// any "{iters}" in appArgs is substituted per measurement, and the
// environment additionally carries GUPT_APP_ITERS (the benchmarks pass the
// test binary re-executed in app mode, which reads that variable;
// cmd/gupt-app takes -iters {iters}).
func SandboxOverhead(cfg Config, appPath string, appArgs, appEnv []string) (*OverheadResult, error) {
	res := &OverheadResult{}
	runs := cfg.scale(25, 4)
	light, err := measureOverhead(cfg, 5, runs, appPath, appArgs, appEnv)
	if err != nil {
		return nil, err
	}
	res.Light = light
	heavy, err := measureOverhead(cfg, 120, runs, appPath, appArgs, appEnv)
	if err != nil {
		return nil, err
	}
	res.Heavy = heavy
	return res, nil
}

func measureOverhead(cfg Config, iters, runs int, appPath string, appArgs, appEnv []string) (OverheadMeasurement, error) {
	features := lifeSciFeatureRows(workload.LifeSci(cfg.Seed, cfg.scale(2000, 400)).Rows())
	prog := analytics.KMeans{K: workload.LifeSciClusters, FeatureDims: workload.LifeSciDims, Iters: iters, Seed: cfg.Seed}
	m := OverheadMeasurement{Iters: iters, Runs: runs}

	args := make([]string, len(appArgs))
	for i, a := range appArgs {
		args[i] = strings.ReplaceAll(a, "{iters}", strconv.Itoa(iters))
	}
	env := append(append([]string(nil), appEnv...), "GUPT_APP_ITERS="+strconv.Itoa(iters))
	ctx := context.Background()

	inproc := &sandbox.InProcess{Program: prog}
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := inproc.Execute(ctx, features); err != nil {
			return m, fmt.Errorf("overhead: in-process run %d: %w", i, err)
		}
	}
	m.InProcess = time.Since(start)

	subproc := &sandbox.Subprocess{Path: appPath, Args: args, ExtraEnv: env}
	start = time.Now()
	for i := 0; i < runs; i++ {
		out, err := subproc.Execute(ctx, features)
		if err != nil {
			return m, fmt.Errorf("overhead: subprocess run %d: %w", i, err)
		}
		if len(out) != prog.OutputDims() {
			return m, fmt.Errorf("overhead: subprocess returned %d dims, want %d", len(out), prog.OutputDims())
		}
	}
	m.Subprocess = time.Since(start)

	m.OverheadFrac = float64(m.Subprocess-m.InProcess) / float64(m.InProcess)
	return m, nil
}

// Table renders the measurement.
func (r *OverheadResult) Table() string {
	t := newTable("kmeans iters", "runs", "in-process/run", "subprocess/run", "overhead")
	for _, m := range []OverheadMeasurement{r.Light, r.Heavy} {
		t.addRow(fmt.Sprintf("%d", m.Iters), fmt.Sprintf("%d", m.Runs),
			(m.InProcess / time.Duration(m.Runs)).Round(time.Microsecond).String(),
			(m.Subprocess / time.Duration(m.Runs)).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", 100*m.OverheadFrac))
	}
	return "Sandbox overhead (paper §6.1): per-block isolation cost amortizes with computation size\n" + t.String()
}

// ResamplingResult is the §4.2/Claim 1 ablation: output variance of a
// median query at fixed ε and fixed block size as the resampling factor γ
// grows. Claim 1 says the noise does not grow with γ, so total variance
// should fall.
type ResamplingResult struct {
	Gammas    []int
	Variances []float64
}

// ResamplingVariance runs the ablation.
func ResamplingVariance(cfg Config) (*ResamplingResult, error) {
	n := cfg.scale(1200, 600)
	rng := mathutil.NewRNG(cfg.Seed)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(rng.LogNormal(3, 0.8), 0, 150)}
	}
	res := &ResamplingResult{Gammas: []int{1, 2, 4, 8}}
	if cfg.Quick {
		res.Gammas = []int{1, 4}
	}
	trials := cfg.scale(50, 12)
	for _, gamma := range res.Gammas {
		outs := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			out, err := coreRunMedian(rows, cfg.Seed+int64(trial), gamma)
			if err != nil {
				return nil, fmt.Errorf("resampling gamma=%d: %w", gamma, err)
			}
			outs = append(outs, out)
		}
		res.Variances = append(res.Variances, mathutil.Variance(outs))
	}
	return res, nil
}

// Table renders the ablation.
func (r *ResamplingResult) Table() string {
	t := newTable("gamma", "output variance")
	for i, g := range r.Gammas {
		t.addRow(fmt.Sprintf("%d", g), f(r.Variances[i]))
	}
	return "Resampling ablation (§4.2, Claim 1): variance vs gamma at fixed eps and block size\n" + t.String()
}
