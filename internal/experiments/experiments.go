// Package experiments reproduces every table and figure in the GUPT
// paper's evaluation (§6.1 and §7), one runner per artifact. Each runner
// returns a typed result with the same rows/series the paper reports plus a
// Table() rendering; cmd/gupt-bench drives them from the command line and
// bench_test.go wraps them as testing.B benchmarks.
//
// The workloads are the synthetic stand-ins from internal/workload (see
// DESIGN.md §3 for the substitution rationale), so absolute numbers differ
// from the paper; the shape of each result — who wins, how trends move with
// ε, iterations or block size, where crossovers fall — is the reproduction
// target. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"
)

// Config scales the experiments.
type Config struct {
	// Seed drives all randomness; fixed seed ⇒ identical report.
	Seed int64
	// Quick shrinks dataset sizes and trial counts for CI and unit tests.
	// Full-size runs reproduce the paper's setup.
	Quick bool
}

// scale returns full when Quick is off, quick otherwise.
func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// table is a small text-table builder shared by the runners' Table()
// methods.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addRowf(format string, args ...any) {
	t.addRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

func f(v float64) string { return fmt.Sprintf("%.4g", v) }
