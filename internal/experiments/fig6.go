package experiments

import (
	"context"
	"fmt"
	"time"

	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/workload"
)

// Fig6Result reproduces Figure 6: wall-clock completion time of k-means
// versus iteration count, comparing the non-private run against GUPT-helper
// and GUPT-loose. The paper's claims: GUPT-helper pays an O(n log n)
// percentile estimation over the inputs, GUPT-loose only over the ~n^0.4
// block outputs, and the platform overhead grows slowly relative to the
// computation, because each chamber works on an n^0.6-size block.
type Fig6Result struct {
	Iterations []int
	NonPrivate []time.Duration
	GUPTHelper []time.Duration
	GUPTLoose  []time.Duration
}

// Fig6 runs the experiment.
func Fig6(cfg Config) (*Fig6Result, error) {
	n := cfg.scale(workload.LifeSciRows, 3000)
	features := lifeSciFeatureRows(workload.LifeSci(cfg.Seed, n).Rows())
	res := &Fig6Result{Iterations: []int{20, 80, 100, 200}}
	if cfg.Quick {
		res.Iterations = []int{5, 20}
	}

	inputRanges := kmeansRanges(features, false)[:workload.LifeSciDims]

	for _, iters := range res.Iterations {
		prog := lifeSciKMeans(iters, cfg.Seed)

		start := time.Now()
		if _, err := prog.Run(features); err != nil {
			return nil, fmt.Errorf("fig6: non-private iters=%d: %w", iters, err)
		}
		res.NonPrivate = append(res.NonPrivate, time.Since(start))

		start = time.Now()
		if _, err := core.Run(context.Background(), prog, features,
			core.RangeSpec{
				Mode:      core.ModeHelper,
				Input:     inputRanges,
				Translate: kmeansTranslate,
			},
			core.Options{Epsilon: 2, Seed: cfg.Seed}); err != nil {
			return nil, fmt.Errorf("fig6: helper iters=%d: %w", iters, err)
		}
		res.GUPTHelper = append(res.GUPTHelper, time.Since(start))

		start = time.Now()
		if _, err := core.Run(context.Background(), prog, features,
			core.RangeSpec{Mode: core.ModeLoose, Output: kmeansRanges(features, true)},
			core.Options{Epsilon: 2, Seed: cfg.Seed}); err != nil {
			return nil, fmt.Errorf("fig6: loose iters=%d: %w", iters, err)
		}
		res.GUPTLoose = append(res.GUPTLoose, time.Since(start))
	}
	return res, nil
}

// kmeansTranslate maps privately estimated per-attribute input ranges to
// output ranges for the flattened centers: a center coordinate in attribute
// d lies within that attribute's range, widened because the estimated IQR
// understates the attribute's span.
func kmeansTranslate(in []dp.Range) []dp.Range {
	widened := make([]dp.Range, len(in))
	for d, r := range in {
		pad := r.Width() // IQR → roughly triple the interval
		widened[d] = dp.Range{Lo: r.Lo - pad, Hi: r.Hi + pad}
	}
	out := make([]dp.Range, 0, workload.LifeSciClusters*len(in))
	for c := 0; c < workload.LifeSciClusters; c++ {
		out = append(out, widened...)
	}
	return out
}

// Table renders the figure's series.
func (r *Fig6Result) Table() string {
	t := newTable("iterations", "non-private", "GUPT-helper", "GUPT-loose")
	for i, iters := range r.Iterations {
		t.addRow(fmt.Sprintf("%d", iters),
			r.NonPrivate[i].Round(time.Millisecond).String(),
			r.GUPTHelper[i].Round(time.Millisecond).String(),
			r.GUPTLoose[i].Round(time.Millisecond).String())
	}
	return "Figure 6: completion time vs k-means iteration count\n" + t.String()
}
