package experiments

import (
	"context"
	"fmt"
	"math"

	"gupt/internal/analytics"
	"gupt/internal/budget"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/workload"
)

// coreRunMedian is a small helper for the resampling ablation.
func coreRunMedian(rows []mathutil.Vec, seed int64, gamma int) (float64, error) {
	out, err := core.Run(context.Background(), analytics.Median{Col: 0}, rows,
		core.RangeSpec{Mode: core.ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}},
		core.Options{Epsilon: 1000, Seed: seed, BlockSize: 60, Gamma: gamma})
	if err != nil {
		return 0, err
	}
	return out.Output[0], nil
}

// DistributionResult is the §5.2/Example 4 ablation: running an average and
// a variance query on the census ages under (a) an equal split of the total
// budget and (b) the ζ-proportional split. As in the paper's Example 4, the
// proportional split equalizes the *absolute* Laplace noise the two queries
// suffer, instead of letting the wide-range variance query's noise exceed
// the mean query's by a factor of max.
type DistributionResult struct {
	// AbsErr[policy][query] is the mean absolute error across trials.
	AbsErr map[string]map[string]float64
	// Epsilons[policy][query] is the per-query allocation.
	Epsilons map[string]map[string]float64
	Policies []string
	Queries  []string
}

// BudgetDistribution runs the ablation.
func BudgetDistribution(cfg Config) (*DistributionResult, error) {
	n := cfg.scale(workload.CensusRows, 6000)
	data := workload.CensusIncome(cfg.Seed, n)
	rows := data.Rows()
	col := data.Column(0)
	trueMean := mathutil.Mean(col)
	trueVar := mathutil.Variance(col)

	const totalEps = 2.0
	const beta = 64
	maxAge := 150.0
	meanRange := []dp.Range{{Lo: 0, Hi: maxAge}}
	// Variance of ages lies in [0, max^2/4].
	varRange := []dp.Range{{Lo: 0, Hi: maxAge * maxAge / 4}}

	zMean, err := budget.Zeta(meanRange, beta, n)
	if err != nil {
		return nil, err
	}
	zVar, err := budget.Zeta(varRange, beta, n)
	if err != nil {
		return nil, err
	}
	prop, err := budget.Distribute(totalEps, []float64{zMean, zVar})
	if err != nil {
		return nil, err
	}

	res := &DistributionResult{
		AbsErr:   map[string]map[string]float64{},
		Epsilons: map[string]map[string]float64{},
		Policies: []string{"equal split", "proportional split"},
		Queries:  []string{"mean", "variance"},
	}
	allocations := map[string]map[string]float64{
		"equal split":        {"mean": totalEps / 2, "variance": totalEps / 2},
		"proportional split": {"mean": prop[0], "variance": prop[1]},
	}
	trials := cfg.scale(30, 8)
	for policy, alloc := range allocations {
		res.Epsilons[policy] = alloc
		res.AbsErr[policy] = map[string]float64{}
		var meanErr, varErr float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + int64(trial)
			m, err := core.Run(context.Background(), analytics.Mean{Col: 0}, rows,
				core.RangeSpec{Mode: core.ModeTight, Output: meanRange},
				core.Options{Epsilon: alloc["mean"], Seed: seed, BlockSize: beta})
			if err != nil {
				return nil, fmt.Errorf("distribution %s mean: %w", policy, err)
			}
			meanErr += math.Abs(m.Output[0] - trueMean)

			v, err := core.Run(context.Background(), analytics.Variance{Col: 0}, rows,
				core.RangeSpec{Mode: core.ModeTight, Output: varRange},
				core.Options{Epsilon: alloc["variance"], Seed: seed + 7919, BlockSize: beta})
			if err != nil {
				return nil, fmt.Errorf("distribution %s variance: %w", policy, err)
			}
			varErr += math.Abs(v.Output[0] - trueVar)
		}
		res.AbsErr[policy]["mean"] = meanErr / float64(trials)
		res.AbsErr[policy]["variance"] = varErr / float64(trials)
	}
	return res, nil
}

// NoiseImbalance returns the ratio of a policy's larger query error to its
// smaller one — the quantity the ζ-proportional split drives toward 1.
func (r *DistributionResult) NoiseImbalance(policy string) float64 {
	a, b := r.AbsErr[policy]["mean"], r.AbsErr[policy]["variance"]
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// Table renders the ablation.
func (r *DistributionResult) Table() string {
	t := newTable("policy", "query", "epsilon", "mean absolute error")
	for _, p := range r.Policies {
		for _, q := range r.Queries {
			t.addRow(p, q, f(r.Epsilons[p][q]), f(r.AbsErr[p][q]))
		}
	}
	return "Budget distribution ablation (§5.2, Example 4): equal vs zeta-proportional split\n" + t.String()
}
