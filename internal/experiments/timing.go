package experiments

import (
	"context"
	"fmt"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// TimingResult quantifies the §6.2 timing-attack defense. The adversary's
// program stalls when it sees a target record, hoping the query's total
// runtime reveals whether the record is present. With the execution quantum
// armed, every block takes the same wall-clock time whatever the data, so
// the runtime gap between "present" and "absent" collapses.
type TimingResult struct {
	// GapUndefended is |runtime(present) − runtime(absent)| with no
	// quantum: the signal the attacker reads.
	GapUndefended time.Duration
	// GapDefended is the same gap with the quantum armed.
	GapDefended time.Duration
	// Quantum is the per-block quantum used for the defended run.
	Quantum time.Duration
}

// TimingAttack runs the measurement. The planted "secret" is a record with
// value exactly 123.456; the malicious program sleeps when it encounters
// it.
func TimingAttack(cfg Config) (*TimingResult, error) {
	const secret = 123.456
	n := cfg.scale(600, 200)
	stall := cfg.scale(40, 25)
	quantum := time.Duration(cfg.scale(120, 80)) * time.Millisecond

	mkRows := func(withSecret bool) []mathutil.Vec {
		rng := mathutil.NewRNG(cfg.Seed)
		rows := make([]mathutil.Vec, n)
		for i := range rows {
			rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
		}
		if withSecret {
			rows[0][0] = secret
		}
		return rows
	}

	evil := analytics.Func{ProgName: "staller", Dims: 1, F: func(block []mathutil.Vec) (mathutil.Vec, error) {
		for _, r := range block {
			if r[0] == secret {
				time.Sleep(time.Duration(stall) * 10 * time.Millisecond)
			}
		}
		return analytics.Mean{Col: 0}.Run(block)
	}}

	measure := func(withSecret bool, quantum time.Duration) (time.Duration, error) {
		rows := mkRows(withSecret)
		start := time.Now()
		_, err := core.Run(context.Background(), evil, rows,
			core.RangeSpec{Mode: core.ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}},
			core.Options{Epsilon: 1, Seed: cfg.Seed, BlockSize: n / 4, Parallelism: 1, Quantum: quantum})
		if err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	res := &TimingResult{Quantum: quantum}

	present, err := measure(true, 0)
	if err != nil {
		return nil, fmt.Errorf("timing undefended present: %w", err)
	}
	absent, err := measure(false, 0)
	if err != nil {
		return nil, fmt.Errorf("timing undefended absent: %w", err)
	}
	res.GapUndefended = absDuration(present - absent)

	present, err = measure(true, quantum)
	if err != nil {
		return nil, fmt.Errorf("timing defended present: %w", err)
	}
	absent, err = measure(false, quantum)
	if err != nil {
		return nil, fmt.Errorf("timing defended absent: %w", err)
	}
	res.GapDefended = absDuration(present - absent)

	return res, nil
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Table renders the measurement.
func (r *TimingResult) Table() string {
	t := newTable("configuration", "runtime gap (present vs absent)")
	t.addRow("no quantum (undefended)", r.GapUndefended.Round(time.Millisecond).String())
	t.addRow(fmt.Sprintf("quantum %s (defended)", r.Quantum), r.GapDefended.Round(time.Millisecond).String())
	return "Timing-attack defense (§6.2): a program that stalls on a target record leaks its presence\nthrough runtime only when the execution quantum is off\n" + t.String()
}
