package experiments

import (
	"strings"
	"testing"
)

func TestCacheEffectShape(t *testing.T) {
	r, err := CacheEffect(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.NsPerColdQuery <= 0 || r.NsPerCacheHit <= 0 {
		t.Fatalf("non-positive timing: cold %v hit %v", r.NsPerColdQuery, r.NsPerCacheHit)
	}
	if r.NsPerCacheHit >= r.NsPerColdQuery {
		t.Errorf("hit path (%v ns) not faster than cold path (%v ns)", r.NsPerCacheHit, r.NsPerColdQuery)
	}
	if len(r.SpentCached) != r.Queries || len(r.SpentUncached) != r.Queries {
		t.Fatalf("spend curves %d/%d points, want %d", len(r.SpentCached), len(r.SpentUncached), r.Queries)
	}
	// Cache off: every arrival charges. Cache on: only the distinct set.
	wantOff := float64(r.Queries) * r.Epsilon
	if got := r.SpentUncached[r.Queries-1]; !near(got, wantOff) {
		t.Errorf("uncached spend = %v, want %v", got, wantOff)
	}
	wantOn := float64(r.Distinct) * r.Epsilon
	if got := r.SpentCached[r.Queries-1]; !near(got, wantOn) {
		t.Errorf("cached spend = %v, want %v (one charge per distinct query)", got, wantOn)
	}
	wantHits := float64(r.Queries-r.Distinct) / float64(r.Queries)
	if !near(r.HitRate, wantHits) {
		t.Errorf("hit rate = %v, want %v", r.HitRate, wantHits)
	}
	// Curves are monotone and cached never exceeds uncached.
	for i := range r.SpentCached {
		if i > 0 && (r.SpentCached[i] < r.SpentCached[i-1] || r.SpentUncached[i] < r.SpentUncached[i-1]) {
			t.Fatalf("spend curve decreased at step %d", i)
		}
		if r.SpentCached[i] > r.SpentUncached[i]+1e-9 {
			t.Fatalf("cached spend exceeds uncached at step %d: %v > %v", i, r.SpentCached[i], r.SpentUncached[i])
		}
	}
	if !strings.Contains(r.Table(), "Noisy-answer cache") {
		t.Error("Table() missing caption")
	}
	if !strings.HasPrefix(r.CSV(), "series,step,value") {
		t.Errorf("CSV header wrong: %q", r.CSV())
	}
}

func near(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}
