package experiments

import (
	"context"
	"fmt"

	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/workload"
)

// Fig4Result reproduces Figure 4: normalized intra-cluster variance of
// k-means on the life-sciences dataset versus privacy budget, for
// GUPT-tight and GUPT-loose, against the non-private baseline ICV.
// Normalization: 100 × ICV / baselineICV, so the baseline sits at 100 and
// lower is better.
type Fig4Result struct {
	Epsilons    []float64
	GUPTTight   []float64 // normalized ICV per epsilon
	GUPTLoose   []float64
	BaselineICV float64 // raw (unnormalized) non-private ICV
}

// lifeSciKMeans is the black box of Figs. 4–6.
func lifeSciKMeans(iters int, seed int64) analytics.KMeans {
	return analytics.KMeans{
		K:           workload.LifeSciClusters,
		FeatureDims: workload.LifeSciDims,
		Iters:       iters,
		Seed:        seed,
	}
}

// kmeansRanges returns per-coordinate output ranges for the flattened
// centers: tight uses the exact per-attribute min/max of the data (as the
// paper does for GUPT-tight), loose doubles it (the paper's [min·2, max·2]).
func kmeansRanges(rows []mathutil.Vec, loose bool) []dp.Range {
	dims := workload.LifeSciDims
	ranges := make([]dp.Range, dims)
	for d := 0; d < dims; d++ {
		lo, hi := rows[0][d], rows[0][d]
		for _, r := range rows {
			if r[d] < lo {
				lo = r[d]
			}
			if r[d] > hi {
				hi = r[d]
			}
		}
		if loose {
			lo, hi = 2*lo, 2*hi
			if lo > hi {
				lo, hi = hi, lo
			}
		}
		ranges[d] = dp.Range{Lo: lo, Hi: hi}
	}
	out := make([]dp.Range, 0, workload.LifeSciClusters*dims)
	for c := 0; c < workload.LifeSciClusters; c++ {
		out = append(out, ranges...)
	}
	return out
}

// icvOfFlat computes the intra-cluster variance of a flattened center
// vector against the feature rows.
func icvOfFlat(flat mathutil.Vec, rows []mathutil.Vec) (float64, error) {
	centers, err := analytics.UnflattenCenters(flat, workload.LifeSciClusters, workload.LifeSciDims)
	if err != nil {
		return 0, err
	}
	return analytics.IntraClusterVariance(rows, centers), nil
}

// Fig4 runs the experiment over the paper's ε sweep.
func Fig4(cfg Config) (*Fig4Result, error) {
	n := cfg.scale(workload.LifeSciRows, 4000)
	features := lifeSciFeatureRows(workload.LifeSci(cfg.Seed, n).Rows())
	iters := cfg.scale(20, 8)
	prog := lifeSciKMeans(iters, cfg.Seed)

	baseFlat, err := prog.Run(features)
	if err != nil {
		return nil, fmt.Errorf("fig4: baseline: %w", err)
	}
	baseICV, err := icvOfFlat(baseFlat, features)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{BaselineICV: baseICV}

	if cfg.Quick {
		res.Epsilons = []float64{1, 8}
	} else {
		res.Epsilons = []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 2.0, 3.0, 4.0}
	}
	// The k-means output is K·dims = 40 dimensional, so the Theorem-1 split
	// leaves ε/40 per coordinate; the default n^0.6 blocks would drown in
	// noise. A smaller block size (more blocks) buys the noise down — the
	// §4.3 tuning the aging model automates, fixed here for reproducibility.
	blockSize := cfg.scale(64, 16)
	tightRanges := kmeansRanges(features, false)
	looseRanges := kmeansRanges(features, true)
	for _, eps := range res.Epsilons {
		tight, err := core.Run(context.Background(), prog, features,
			core.RangeSpec{Mode: core.ModeTight, Output: tightRanges},
			core.Options{Epsilon: eps, Seed: cfg.Seed + int64(eps*1000), BlockSize: blockSize})
		if err != nil {
			return nil, fmt.Errorf("fig4: tight eps=%v: %w", eps, err)
		}
		icv, err := icvOfFlat(tight.Output, features)
		if err != nil {
			return nil, err
		}
		res.GUPTTight = append(res.GUPTTight, 100*icv/baseICV)

		loose, err := core.Run(context.Background(), prog, features,
			core.RangeSpec{Mode: core.ModeLoose, Output: looseRanges},
			core.Options{Epsilon: eps, Seed: cfg.Seed + int64(eps*1000) + 1, BlockSize: blockSize})
		if err != nil {
			return nil, fmt.Errorf("fig4: loose eps=%v: %w", eps, err)
		}
		icv, err = icvOfFlat(loose.Output, features)
		if err != nil {
			return nil, err
		}
		res.GUPTLoose = append(res.GUPTLoose, 100*icv/baseICV)
	}
	return res, nil
}

// Table renders the figure's series.
func (r *Fig4Result) Table() string {
	t := newTable("epsilon", "GUPT-tight (norm ICV)", "GUPT-loose (norm ICV)", "baseline (norm)")
	for i, eps := range r.Epsilons {
		t.addRow(f(eps), f(r.GUPTTight[i]), f(r.GUPTLoose[i]), "100")
	}
	return fmt.Sprintf("Figure 4: k-means normalized intra-cluster variance vs privacy budget\n(baseline raw ICV = %s)\n%s",
		f(r.BaselineICV), t.String())
}
