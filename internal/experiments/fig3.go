package experiments

import (
	"context"
	"fmt"

	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/workload"
)

// Fig3Result reproduces Figure 3: logistic-regression classification
// accuracy on the life-sciences dataset as a function of the privacy
// budget, GUPT-tight versus the non-private baseline.
type Fig3Result struct {
	Epsilons []float64
	// GUPTTight[i] is the accuracy of the model released by GUPT at
	// Epsilons[i].
	GUPTTight []float64
	// NonPrivate is the baseline accuracy of the same program run directly
	// on the full dataset (the paper's 94%).
	NonPrivate float64
	// BlockBaseline is the accuracy of the program on a single block of
	// n^0.6 records — the paper's diagnostic that most of GUPT's loss is
	// estimation error, not noise (their 82%).
	BlockBaseline float64
}

// lifeSciLogReg is the black-box program of Figs. 3: L2-regularized
// logistic regression on the 10 principal components.
func lifeSciLogReg() analytics.LogisticRegression {
	return analytics.LogisticRegression{
		FeatureDims: workload.LifeSciDims,
		LabelCol:    workload.LifeSciDims,
		Iters:       150,
		LearnRate:   0.5,
		L2:          1e-4,
	}
}

// logRegWeightRange is the analyst's tight output range for every model
// parameter: regularized weights on unit-variance features stay small.
func logRegWeightRange() dp.Range { return dp.Range{Lo: -3, Hi: 3} }

// Fig3 runs the experiment. ε sweep matches the paper's x-axis.
func Fig3(cfg Config) (*Fig3Result, error) {
	n := cfg.scale(workload.LifeSciRows, 4000)
	data := workload.LifeSci(cfg.Seed, n)
	rows := data.Rows()
	prog := lifeSciLogReg()

	// Non-private baseline: the same black box on the full dataset.
	baseParams, err := prog.Run(rows)
	if err != nil {
		return nil, fmt.Errorf("fig3: baseline: %w", err)
	}
	res := &Fig3Result{
		NonPrivate: analytics.ClassificationAccuracy(baseParams, rows, workload.LifeSciDims, workload.LifeSciDims),
	}

	// Single-block diagnostic: accuracy when the program sees only n^0.6
	// records.
	beta := core.DefaultBlockSize(n)
	blockParams, err := prog.Run(rows[:beta])
	if err != nil {
		return nil, fmt.Errorf("fig3: block baseline: %w", err)
	}
	res.BlockBaseline = analytics.ClassificationAccuracy(blockParams, rows, workload.LifeSciDims, workload.LifeSciDims)

	ranges := make([]dp.Range, prog.OutputDims())
	for i := range ranges {
		ranges[i] = logRegWeightRange()
	}
	res.Epsilons = []float64{2, 4, 6, 8, 10}
	for _, eps := range res.Epsilons {
		out, err := core.Run(context.Background(), prog, rows,
			core.RangeSpec{Mode: core.ModeTight, Output: ranges},
			core.Options{Epsilon: eps, Seed: cfg.Seed + int64(eps*100)})
		if err != nil {
			return nil, fmt.Errorf("fig3: eps=%v: %w", eps, err)
		}
		acc := analytics.ClassificationAccuracy(out.Output, rows, workload.LifeSciDims, workload.LifeSciDims)
		res.GUPTTight = append(res.GUPTTight, acc)
	}
	return res, nil
}

// Table renders the figure's series.
func (r *Fig3Result) Table() string {
	t := newTable("epsilon", "GUPT-tight accuracy", "non-private baseline", "single-block baseline")
	for i, eps := range r.Epsilons {
		t.addRow(f(eps), f(r.GUPTTight[i]), f(r.NonPrivate), f(r.BlockBaseline))
	}
	return "Figure 3: logistic regression accuracy vs privacy budget (life sciences)\n" + t.String()
}

// lifeSciFeatureRows strips the label column, for k-means experiments.
func lifeSciFeatureRows(rows []mathutil.Vec) []mathutil.Vec {
	out := make([]mathutil.Vec, len(rows))
	for i, r := range rows {
		out[i] = r[:workload.LifeSciDims].Clone()
	}
	return out
}
