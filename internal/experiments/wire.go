package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// WireOverheadResult measures the length-prefixed binary framing on both
// compman paths: the client control plane (protocol round trips and full DP
// queries against guptd) and the worker data plane (blocks shipped to
// gupt-worker chambers). The data plane is where the bytes are — every
// block crosses the wire as a float matrix — so blocks/sec is the headline
// figure. The legacy JSON wire this framing replaced has been retired
// (wire.go); the JSON-vs-binary comparison that justified the migration is
// pinned historically in BENCH_PR6.json.
type WireOverheadResult struct {
	// Rows/Queries/RoundTrips pin the control-plane workload: Queries
	// timed ε-spending mean queries plus RoundTrips timed budget-op
	// exchanges against a Rows-record table, per wire.
	Rows       int
	Queries    int
	RoundTrips int
	// Blocks/BlockRows/BlockDims pin the data-plane workload: Blocks
	// chamber executions, each shipping a BlockRows×BlockDims float
	// matrix to a worker and a vector back.
	Blocks    int
	BlockRows int
	BlockDims int
	// Modes lists the measured wires in run order; binary only since the
	// JSON wire's retirement.
	Modes []string
	// NsPerRoundTrip is the budget-op protocol round trip — the purest
	// wire measurement, no engine work on either end.
	NsPerRoundTrip []float64
	// NsPerQuery is the full DP mean query, engine included.
	NsPerQuery []float64
	// NsPerBlock and BlocksPerSec measure the worker data plane.
	NsPerBlock   []float64
	BlocksPerSec []float64
}

// WireOverhead runs the measurement. Every figure is the best of three
// passes over the same deterministic sequence, which filters scheduler
// noise better than an average on a loaded machine.
func WireOverhead(cfg Config) (*WireOverheadResult, error) {
	res := &WireOverheadResult{
		Rows:       cfg.scale(5000, 1000),
		Queries:    cfg.scale(30, 8),
		RoundTrips: cfg.scale(2000, 300),
		Blocks:     cfg.scale(200, 30),
		BlockRows:  cfg.scale(2000, 400),
		BlockDims:  8,
	}
	const passes = 3

	nsTrip, nsQuery, err := wireClientPath(cfg, res, passes)
	if err != nil {
		return nil, fmt.Errorf("wire overhead client path: %w", err)
	}
	nsBlock, err := wireWorkerPath(cfg, res, passes)
	if err != nil {
		return nil, fmt.Errorf("wire overhead worker path: %w", err)
	}
	res.Modes = append(res.Modes, "binary")
	res.NsPerRoundTrip = append(res.NsPerRoundTrip, nsTrip)
	res.NsPerQuery = append(res.NsPerQuery, nsQuery)
	res.NsPerBlock = append(res.NsPerBlock, nsBlock)
	res.BlocksPerSec = append(res.BlocksPerSec, 1e9/nsBlock)
	return res, nil
}

// wireClientPath measures the guptd-facing wire: budget-op round trips
// (pure protocol) and full mean queries (protocol + engine) over one
// persistent connection, as gupt-cli holds one.
func wireClientPath(cfg Config, res *WireOverheadResult, passes int) (nsTrip, nsQuery float64, err error) {
	reg := dataset.NewRegistry()
	rng := mathutil.NewRNG(cfg.Seed)
	tbl := dataset.New([]string{"age"})
	for i := 0; i < res.Rows; i++ {
		if err := tbl.Append(mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}); err != nil {
			return 0, 0, err
		}
	}
	// Budget covers warmup plus every timed pass with a wide margin, so
	// the ledger never becomes the variable under test.
	if _, err := reg.Register("census", tbl, dataset.RegisterOptions{
		TotalBudget: 1e6,
		Ranges:      []dp.Range{{Lo: 0, Hi: 150}},
		Seed:        cfg.Seed,
	}); err != nil {
		return 0, 0, err
	}
	srv := compman.NewServer(reg, compman.ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	go srv.Serve(l)
	defer srv.Close()

	client, err := compman.Dial(l.Addr().String())
	if err != nil {
		return 0, 0, err
	}
	defer client.Close()

	query := func(q int) error {
		_, err := client.Query(&compman.Request{
			Dataset:      "census",
			Program:      &compman.ProgramSpec{Type: "mean", Col: 0},
			OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 150}},
			Epsilon:      0.05,
			BlockSize:    res.Rows / 20,
			Seed:         cfg.Seed + int64(q),
		})
		return err
	}

	// One untimed pass of each shape first, so no timed pass pays the
	// connection/allocator warmup.
	for i := 0; i < res.RoundTrips; i++ {
		if _, err := client.RemainingBudget("census"); err != nil {
			return 0, 0, err
		}
	}
	for q := 0; q < res.Queries; q++ {
		if err := query(q); err != nil {
			return 0, 0, err
		}
	}

	bestTrip := time.Duration(1<<63 - 1)
	bestQuery := bestTrip
	for p := 0; p < passes; p++ {
		start := time.Now()
		for i := 0; i < res.RoundTrips; i++ {
			if _, err := client.RemainingBudget("census"); err != nil {
				return 0, 0, err
			}
		}
		if d := time.Since(start); d < bestTrip {
			bestTrip = d
		}
		start = time.Now()
		for q := 0; q < res.Queries; q++ {
			if err := query(q); err != nil {
				return 0, 0, err
			}
		}
		if d := time.Since(start); d < bestQuery {
			bestQuery = d
		}
	}
	return float64(bestTrip.Nanoseconds()) / float64(res.RoundTrips),
		float64(bestQuery.Nanoseconds()) / float64(res.Queries), nil
}

// wireWorkerPath measures the data plane: a block matrix shipped to a
// gupt-worker chamber and the aggregate shipped back, over the pool's
// persistent connection. This is the exchange the binary wire's contiguous
// float encoding targets.
func wireWorkerPath(cfg Config, res *WireOverheadResult, passes int) (float64, error) {
	worker := compman.NewWorker(compman.WorkerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go worker.Serve(l)
	defer worker.Close()

	pool, err := compman.NewWorkerPool([]string{l.Addr().String()})
	if err != nil {
		return 0, err
	}
	defer pool.Close()

	rng := mathutil.NewRNG(cfg.Seed)
	block := make([]mathutil.Vec, res.BlockRows)
	for i := range block {
		row := make(mathutil.Vec, res.BlockDims)
		for d := range row {
			row[d] = 200 * (rng.Float64() - 0.5)
		}
		block[i] = row
	}
	spec := compman.WorkSpec{Program: compman.ProgramSpec{Type: "mean", Col: 0}}
	ctx := context.Background()

	execute := func() error {
		_, err := pool.Chamber(spec, nil).Execute(ctx, block)
		return err
	}
	for i := 0; i < res.Blocks/4+1; i++ {
		if err := execute(); err != nil {
			return 0, err
		}
	}
	best := time.Duration(1<<63 - 1)
	for p := 0; p < passes; p++ {
		start := time.Now()
		for i := 0; i < res.Blocks; i++ {
			if err := execute(); err != nil {
				return 0, err
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(res.Blocks), nil
}

// Table renders the measurement.
func (r *WireOverheadResult) Table() string {
	t := newTable("wire", "round-trip", "dp query", "per-block", "blocks/sec")
	for i, mode := range r.Modes {
		t.addRow(mode,
			time.Duration(r.NsPerRoundTrip[i]).Round(100*time.Nanosecond).String(),
			time.Duration(r.NsPerQuery[i]).Round(time.Microsecond).String(),
			time.Duration(r.NsPerBlock[i]).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", r.BlocksPerSec[i]))
	}
	return fmt.Sprintf("Wire overhead: binary framing (%d-row table, %d×%d blocks, best of 3)\n",
		r.Rows, r.BlockRows, r.BlockDims) + t.String()
}

// CSV renders the series; cmd/gupt-bench embeds it in the bench report.
func (r *WireOverheadResult) CSV() string {
	var c csvBuilder
	c.row("mode", "ns_per_round_trip", "ns_per_query", "ns_per_block", "blocks_per_sec")
	for i, mode := range r.Modes {
		c.row(mode,
			fmt.Sprintf("%g", r.NsPerRoundTrip[i]),
			fmt.Sprintf("%g", r.NsPerQuery[i]),
			fmt.Sprintf("%g", r.NsPerBlock[i]),
			fmt.Sprintf("%g", r.BlocksPerSec[i]))
	}
	return c.String()
}
