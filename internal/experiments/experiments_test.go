package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
	"gupt/internal/workload"
)

// TestMain doubles as the subprocess app for the sandbox-overhead
// experiment, mirroring the re-exec pattern of the sandbox tests.
func TestMain(m *testing.M) {
	if os.Getenv("GUPT_EXP_APP") == "state" {
		err := sandbox.ServeApp(os.Stdin, os.Stdout, func(block []mathutil.Vec) (mathutil.Vec, error) {
			marker := os.Getenv(sandbox.ScratchEnv) + "/marker"
			found := 0.0
			if _, err := os.Stat(marker); err == nil {
				found = 1
			}
			if err := os.WriteFile(marker, []byte("leak"), 0o600); err != nil {
				return nil, err
			}
			return mathutil.Vec{found}, nil
		})
		if err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	if os.Getenv("GUPT_EXP_APP") == "kmeans" {
		iters, err := strconv.Atoi(os.Getenv("GUPT_APP_ITERS"))
		if err != nil || iters <= 0 {
			iters = 10
		}
		err = sandbox.ServeApp(os.Stdin, os.Stdout, func(block []mathutil.Vec) (mathutil.Vec, error) {
			return lifeSciKMeans(iters, 42).Run(block)
		})
		if err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var quick = Config{Seed: 42, Quick: true}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: non-private ≈ 94%; GUPT below it but usable; the
	// single-block baseline explains most of the gap.
	if r.NonPrivate < 0.88 {
		t.Errorf("non-private baseline accuracy %v, want >= 0.88", r.NonPrivate)
	}
	for i, acc := range r.GUPTTight {
		if acc < 0.5 {
			t.Errorf("GUPT accuracy at eps=%v is %v — should clearly beat coin flipping", r.Epsilons[i], acc)
		}
		if acc > r.NonPrivate+0.02 {
			t.Errorf("GUPT accuracy %v exceeds non-private baseline %v", acc, r.NonPrivate)
		}
	}
	// Highest-epsilon accuracy should be within reach of the single-block
	// baseline (the dominant loss is estimation, not noise).
	last := r.GUPTTight[len(r.GUPTTight)-1]
	if last < r.BlockBaseline-0.2 {
		t.Errorf("high-eps GUPT accuracy %v too far below block baseline %v", last, r.BlockBaseline)
	}
	if !strings.Contains(r.Table(), "Figure 3") {
		t.Error("Table() missing caption")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineICV <= 0 {
		t.Fatalf("baseline ICV = %v", r.BaselineICV)
	}
	last := len(r.Epsilons) - 1
	// Tight-mode clustering approaches the baseline (normalized 100) at the
	// largest epsilon.
	if r.GUPTTight[last] > 400 {
		t.Errorf("GUPT-tight at eps=%v normalized ICV %v, want near baseline", r.Epsilons[last], r.GUPTTight[last])
	}
	// Both modes improve as the budget grows.
	if r.GUPTTight[last] >= r.GUPTTight[0] {
		t.Errorf("GUPT-tight did not improve with eps: %v", r.GUPTTight)
	}
	if r.GUPTLoose[last] >= r.GUPTLoose[0] {
		t.Errorf("GUPT-loose did not improve with eps: %v", r.GUPTLoose)
	}
	if !strings.Contains(r.Table(), "Figure 4") {
		t.Error("Table() missing caption")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	lastIter := len(r.Iterations) - 1
	// GUPT's perturbation is independent of the declared iteration count;
	// PINQ's degrades because its per-iteration budget shrinks.
	guptGrowth := r.Series["GUPT-tight eps=2"][lastIter] / r.Series["GUPT-tight eps=2"][0]
	pinqGrowth := r.Series["PINQ-tight eps=2"][lastIter] / r.Series["PINQ-tight eps=2"][0]
	if guptGrowth > 2 || guptGrowth < 0.5 {
		t.Errorf("GUPT accuracy should be roughly independent of declared iterations; growth %v", guptGrowth)
	}
	if pinqGrowth <= 1.05 {
		t.Errorf("PINQ should degrade with declared iterations; growth %v", pinqGrowth)
	}
	// At the largest declared iteration count, GUPT (even at stricter eps)
	// beats PINQ.
	if r.Series["GUPT-tight eps=2"][lastIter] >= r.Series["PINQ-tight eps=2"][lastIter] {
		t.Errorf("GUPT ICV %v should beat PINQ ICV %v at %d declared iterations",
			r.Series["GUPT-tight eps=2"][lastIter], r.Series["PINQ-tight eps=2"][lastIter], r.Iterations[lastIter])
	}
	if !strings.Contains(r.Table(), "Figure 5") {
		t.Error("Table() missing caption")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Iterations) - 1
	// All runtimes grow with iterations.
	if r.NonPrivate[last] <= r.NonPrivate[0]/2 {
		t.Errorf("non-private time did not grow with iterations: %v", r.NonPrivate)
	}
	// GUPT-helper pays the O(n log n) input percentile cost, so it should
	// not be faster than GUPT-loose at the smallest iteration count by any
	// large margin (both include it in quick mode noise; just sanity-check
	// positivity).
	for i := range r.Iterations {
		if r.GUPTHelper[i] <= 0 || r.GUPTLoose[i] <= 0 {
			t.Errorf("non-positive timing at row %d", i)
		}
	}
	if !strings.Contains(r.Table(), "Figure 6") {
		t.Error("Table() missing caption")
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.VariableEpsilon <= 0 {
		t.Fatalf("variable epsilon = %v", r.VariableEpsilon)
	}
	// The variable policy must meet its contract: >= ~90% of queries at >=
	// 90% accuracy (allow slack for the quick trial count).
	if met := r.MeetsGoal("variable eps"); met < 0.8 {
		t.Errorf("variable eps met the goal on only %v of queries", met)
	}
	// eps=1 overshoots the goal (wasteful), eps=0.3 undershoots it — the
	// paper's point that manual constants are either too much or too little.
	met1 := r.MeetsGoal("constant eps=1")
	met03 := r.MeetsGoal("constant eps=0.3")
	if met1 < met03 {
		t.Errorf("eps=1 (%v) should meet the goal more often than eps=0.3 (%v)", met1, met03)
	}
	if !strings.Contains(r.Table(), "Figure 7") {
		t.Error("Table() missing caption")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.NormalizedLifetime["constant eps=1"] != 1 {
		t.Errorf("normalization broken: %+v", r.NormalizedLifetime)
	}
	// The variable policy extends the budget lifetime beyond constant eps=1
	// (the paper's 2.3x) because the estimated eps is below 1.
	if r.VariableEpsilon >= 1 {
		t.Errorf("variable epsilon %v >= 1; expected the accuracy goal to cost less than eps=1", r.VariableEpsilon)
	}
	if r.NormalizedLifetime["variable eps"] <= 1 {
		t.Errorf("variable policy lifetime %v, want > 1", r.NormalizedLifetime["variable eps"])
	}
	// Constant eps=0.3 trivially runs the most queries (but misses accuracy,
	// per Fig 7).
	if r.NormalizedLifetime["constant eps=0.3"] <= r.NormalizedLifetime["constant eps=1"] {
		t.Errorf("eps=0.3 lifetime should exceed eps=1: %+v", r.NormalizedLifetime)
	}
	if !strings.Contains(r.Table(), "Figure 8") {
		t.Error("Table() missing caption")
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Mean: block size 1 is optimal (Example 3) — error grows with beta.
	mean2 := r.Series["mean eps=2"]
	if mean2[0] > mean2[len(mean2)-1] {
		t.Errorf("mean eps=2 error at beta=1 (%v) should be <= at beta=max (%v)", mean2[0], mean2[len(mean2)-1])
	}
	// Median at eps=2: tiny blocks are noisy enough that beta=1 is not
	// clearly optimal; interior or larger blocks should do at least as well.
	med2 := r.Series["median eps=2"]
	best := med2[0]
	for _, v := range med2[1:] {
		if v < best {
			best = v
		}
	}
	if best > med2[0] {
		t.Errorf("median eps=2: no block size beat beta=1 (%v vs %v)", best, med2[0])
	}
	// Higher epsilon reduces error pointwise (same partitions, less noise),
	// at least on average.
	var sum2, sum6 float64
	for i := range r.BlockSizes {
		sum2 += r.Series["median eps=2"][i]
		sum6 += r.Series["median eps=6"][i]
	}
	if sum6 >= sum2 {
		t.Errorf("median eps=6 average error %v not below eps=2 error %v", sum6, sum2)
	}
	if !strings.Contains(r.Table(), "Figure 9") {
		t.Error("Table() missing caption")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(rows))
	}
	// Spot-check the rows against the paper's values.
	byName := map[string]Capability{}
	for _, c := range rows {
		byName[c.Name] = c
	}
	if c := byName["Works with unmodified programs"]; !c.GUPT || c.PINQ || c.Airavat {
		t.Errorf("unmodified-programs row wrong: %+v", c)
	}
	if c := byName["Protection against privacy budget attack"]; !c.GUPT || c.PINQ || !c.Airavat {
		t.Errorf("budget-attack row wrong: %+v", c)
	}
	if c := byName["Protection against timing attack"]; !c.GUPT || c.PINQ || c.Airavat {
		t.Errorf("timing-attack row wrong: %+v", c)
	}
	if !strings.Contains(Table1String(), "Table 1") {
		t.Error("Table1String missing caption")
	}
}

func TestSandboxOverheadRuns(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	r, err := SandboxOverhead(quick, exe, nil, []string{"GUPT_EXP_APP=kmeans"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Light.InProcess <= 0 || r.Light.Subprocess <= 0 {
		t.Fatalf("timings: %+v", r)
	}
	// The §6.1 claim: isolation is a constant per block, so its relative
	// overhead shrinks as per-block computation grows.
	if r.Heavy.OverheadFrac >= r.Light.OverheadFrac {
		t.Errorf("overhead did not amortize: light %.1f%% vs heavy %.1f%%",
			100*r.Light.OverheadFrac, 100*r.Heavy.OverheadFrac)
	}
	if !strings.Contains(r.Table(), "Sandbox overhead") {
		t.Error("Table() missing caption")
	}
}

func TestResamplingVarianceShape(t *testing.T) {
	r, err := ResamplingVariance(quick)
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Variances[0], r.Variances[len(r.Variances)-1]
	if last >= first {
		t.Errorf("resampling variance did not fall: gamma=%d %v vs gamma=%d %v",
			r.Gammas[0], first, r.Gammas[len(r.Gammas)-1], last)
	}
	if !strings.Contains(r.Table(), "Resampling") {
		t.Error("Table() missing caption")
	}
}

func TestBudgetDistributionShape(t *testing.T) {
	r, err := BudgetDistribution(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The proportional split gives the wide-range variance query most of
	// the budget.
	if r.Epsilons["proportional split"]["variance"] <= r.Epsilons["proportional split"]["mean"] {
		t.Errorf("proportional split allocations wrong: %+v", r.Epsilons["proportional split"])
	}
	// It equalizes the two queries' absolute noise (Example 4): the error
	// imbalance drops versus the equal split, where the variance query's
	// noise exceeds the mean query's by roughly the range ratio.
	if r.NoiseImbalance("proportional split") >= r.NoiseImbalance("equal split") {
		t.Errorf("proportional imbalance %v not below equal split %v",
			r.NoiseImbalance("proportional split"), r.NoiseImbalance("equal split"))
	}
	// And the wide-range variance query's error improves outright.
	if r.AbsErr["proportional split"]["variance"] >= r.AbsErr["equal split"]["variance"] {
		t.Errorf("variance query error did not improve: %v vs %v",
			r.AbsErr["proportional split"]["variance"], r.AbsErr["equal split"]["variance"])
	}
	if !strings.Contains(r.Table(), "Budget distribution") {
		t.Error("Table() missing caption")
	}
}

func TestOptimizerBeatsDefault(t *testing.T) {
	r, err := Optimizer(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ChosenBeta <= 0 {
			t.Errorf("eps=%v: chosen beta %d", row.Epsilon, row.ChosenBeta)
		}
		// The aged-sample choice must not lose badly to the default; at
		// the paper's budgets it should win outright (small slack for the
		// quick trial count).
		if row.ChosenRMSE > row.DefaultRMSE*1.2 {
			t.Errorf("eps=%v: chosen beta %d RMSE %v worse than default beta %d RMSE %v",
				row.Epsilon, row.ChosenBeta, row.ChosenRMSE, row.DefaultBeta, row.DefaultRMSE)
		}
	}
	if !strings.Contains(r.Table(), "optimizer") {
		t.Error("Table() missing caption")
	}
}

func TestBudgetAttackExperiment(t *testing.T) {
	r, err := BudgetAttack(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.PINQLeak <= 0 {
		t.Errorf("PINQ budget leak = %v, the attack should extract a positive gap", r.PINQLeak)
	}
	if r.GUPTConditionalSpendPossible {
		t.Error("GUPT reported vulnerable to conditional spends")
	}
	if !strings.Contains(r.Table(), "Privacy-budget attack") {
		t.Error("Table() missing caption")
	}
}

func TestStateAttackExperiment(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	r, err := StateAttack(quick, exe, nil, []string{"GUPT_EXP_APP=state"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.AiravatLeaked {
		t.Error("Airavat in-process mapper did not carry state — vacuous experiment")
	}
	if r.GUPTLeaked {
		t.Error("GUPT chambers leaked state between executions")
	}
	if !strings.Contains(r.Table(), "State attack") {
		t.Error("Table() missing caption")
	}
}

func TestTimingAttackDefense(t *testing.T) {
	r, err := TimingAttack(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Undefended, the stall leaks loudly; defended, the gap collapses to
	// scheduler noise — far below the planted stall.
	if r.GapUndefended < 100*time.Millisecond {
		t.Errorf("undefended gap %v too small — the attack signal vanished, test is vacuous", r.GapUndefended)
	}
	if r.GapDefended > r.GapUndefended/3 {
		t.Errorf("defended gap %v did not collapse (undefended %v)", r.GapDefended, r.GapUndefended)
	}
	if !strings.Contains(r.Table(), "Timing-attack") {
		t.Error("Table() missing caption")
	}
}

// Every CSV emitter yields a parseable rectangular file with a header.
func TestCSVEmitters(t *testing.T) {
	fig3, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	fig8, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	for name, csv := range map[string]string{
		"fig3": fig3.CSV(), "fig8": fig8.CSV(), "fig9": fig9.CSV(),
	} {
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: csv has %d lines", name, len(lines))
			continue
		}
		cols := len(strings.Split(lines[0], ","))
		for i, line := range lines {
			if got := len(strings.Split(line, ",")); got != cols {
				t.Errorf("%s: line %d has %d columns, header has %d", name, i, got, cols)
			}
		}
	}
}

func TestConfigScale(t *testing.T) {
	if (Config{Quick: true}).scale(100, 10) != 10 {
		t.Error("quick scale wrong")
	}
	if (Config{}).scale(100, 10) != 100 {
		t.Error("full scale wrong")
	}
	_ = workload.LifeSciRows // the full sizes stay referenced
}
