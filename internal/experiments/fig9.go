package experiments

import (
	"context"
	"fmt"
	"math"

	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/workload"
)

// Fig9Result reproduces Figure 9: normalized RMSE of the mean and median
// aspect-ratio queries on the internet-ads dataset as the block size β
// sweeps upward, at ε = 2 and ε = 6. The paper's shape: the mean is best at
// β = 1 (averaging is already what SAF does), while the median at ε = 2 has
// an interior optimum (≈10) after which noise reduction no longer pays for
// estimation bias; at ε = 6 the median keeps improving over the swept range.
type Fig9Result struct {
	BlockSizes []int
	// Series maps "mean eps=2" etc. to normalized RMSE per block size.
	Series      map[string][]float64
	SeriesOrder []string
	TrueMean    float64
	TrueMedian  float64
}

// Fig9 runs the experiment.
func Fig9(cfg Config) (*Fig9Result, error) {
	n := cfg.scale(workload.AdsRows, 1200)
	data := workload.InternetAds(cfg.Seed, n)
	rows := data.Rows()
	col := data.Column(0)

	res := &Fig9Result{
		BlockSizes:  []int{1, 2, 5, 10, 20, 30, 40, 50, 60, 70},
		Series:      make(map[string][]float64),
		SeriesOrder: []string{"mean eps=2", "mean eps=6", "median eps=2", "median eps=6"},
		TrueMean:    mathutil.Mean(col),
		TrueMedian:  mathutil.Median(col),
	}
	if cfg.Quick {
		res.BlockSizes = []int{1, 10, 40}
	}
	trials := cfg.scale(30, 6)
	ranges := []dp.Range{workload.AdsRange()}

	type queryDef struct {
		name  string
		prog  analytics.Program
		eps   float64
		truth float64
	}
	queries := []queryDef{
		{"mean eps=2", analytics.Mean{Col: 0}, 2, res.TrueMean},
		{"mean eps=6", analytics.Mean{Col: 0}, 6, res.TrueMean},
		{"median eps=2", analytics.Median{Col: 0}, 2, res.TrueMedian},
		{"median eps=6", analytics.Median{Col: 0}, 6, res.TrueMedian},
	}
	for _, q := range queries {
		for _, beta := range res.BlockSizes {
			var sqErr float64
			for trial := 0; trial < trials; trial++ {
				out, err := core.Run(context.Background(), q.prog, rows,
					core.RangeSpec{Mode: core.ModeTight, Output: ranges},
					core.Options{Epsilon: q.eps, Seed: cfg.Seed + int64(trial*1000+beta), BlockSize: beta})
				if err != nil {
					return nil, fmt.Errorf("fig9: %s beta=%d: %w", q.name, beta, err)
				}
				d := out.Output[0] - q.truth
				sqErr += d * d
			}
			rmse := math.Sqrt(sqErr / float64(trials))
			res.Series[q.name] = append(res.Series[q.name], rmse/q.truth)
		}
	}
	return res, nil
}

// Table renders the figure's series.
func (r *Fig9Result) Table() string {
	header := []string{"block size"}
	header = append(header, r.SeriesOrder...)
	t := newTable(header...)
	for i, beta := range r.BlockSizes {
		row := []string{fmt.Sprintf("%d", beta)}
		for _, s := range r.SeriesOrder {
			row = append(row, f(r.Series[s][i]))
		}
		t.addRow(row...)
	}
	return "Figure 9: normalized RMSE vs block size (internet ads aspect ratio)\n" + t.String()
}
