package experiments

import (
	"context"
	"fmt"

	"gupt/internal/analytics"
	"gupt/internal/baseline/pinq"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/workload"
)

// Fig5Result reproduces Figure 5: total perturbation (normalized ICV) as a
// function of the k-means iteration count. PINQ must divide its budget
// across the declared iterations, so conservative iteration estimates
// degrade it; GUPT perturbs only the final output, so its accuracy is
// independent of the iteration count. Note GUPT runs at a *stricter*
// privacy level than PINQ, as in the paper (GUPT ε ∈ {1,2} vs PINQ ∈ {2,4}).
type Fig5Result struct {
	Iterations []int
	// Series maps a configuration label ("PINQ-tight eps=2", "GUPT-tight
	// eps=1", ...) to normalized ICV per iteration count.
	Series map[string][]float64
	// SeriesOrder fixes the rendering order.
	SeriesOrder []string
	BaselineICV float64
}

// Fig5 runs the experiment.
func Fig5(cfg Config) (*Fig5Result, error) {
	n := cfg.scale(workload.LifeSciRows, 4000)
	features := lifeSciFeatureRows(workload.LifeSci(cfg.Seed, n).Rows())

	iterations := []int{20, 80, 200}
	if cfg.Quick {
		iterations = []int{5, 40}
	}

	// Baseline for normalization: non-private k-means at the smallest
	// iteration count (well past convergence for this data).
	base, err := lifeSciKMeans(iterations[0], cfg.Seed).Run(features)
	if err != nil {
		return nil, fmt.Errorf("fig5: baseline: %w", err)
	}
	baseICV, err := icvOfFlat(base, features)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{
		Iterations:  iterations,
		Series:      make(map[string][]float64),
		SeriesOrder: []string{"PINQ-tight eps=2", "PINQ-tight eps=4", "GUPT-tight eps=1", "GUPT-tight eps=2"},
		BaselineICV: baseICV,
	}

	// PINQ bounds: a single coordinate range covering the data.
	var bound dp.Range
	bound.Lo, bound.Hi = features[0][0], features[0][0]
	for _, r := range features {
		for _, v := range r {
			if v < bound.Lo {
				bound.Lo = v
			}
			if v > bound.Hi {
				bound.Hi = v
			}
		}
	}

	// Average each configuration over a few seeds so per-run noise does not
	// mask the trend.
	const trials = 3
	for _, iters := range iterations {
		for _, eps := range []float64{2, 4} {
			var total float64
			for trial := int64(0); trial < trials; trial++ {
				q := pinq.NewQueryable(features, eps+1, cfg.Seed+trial)
				centers, err := pinq.KMeans(q, workload.LifeSciClusters, workload.LifeSciDims,
					iters, bound, eps, cfg.Seed+trial)
				if err != nil {
					return nil, fmt.Errorf("fig5: pinq iters=%d eps=%v: %w", iters, eps, err)
				}
				total += analytics.IntraClusterVariance(features, centers)
			}
			key := fmt.Sprintf("PINQ-tight eps=%g", eps)
			res.Series[key] = append(res.Series[key], 100*total/trials/baseICV)
		}
		for _, eps := range []float64{1, 2} {
			var total float64
			for trial := int64(0); trial < trials; trial++ {
				prog := lifeSciKMeans(iters, cfg.Seed)
				out, err := core.Run(context.Background(), prog, features,
					core.RangeSpec{Mode: core.ModeTight, Output: kmeansRanges(features, false)},
					core.Options{Epsilon: eps, Seed: cfg.Seed + int64(iters) + trial*7919, BlockSize: cfg.scale(64, 16)})
				if err != nil {
					return nil, fmt.Errorf("fig5: gupt iters=%d eps=%v: %w", iters, eps, err)
				}
				icv, err := icvOfFlat(out.Output, features)
				if err != nil {
					return nil, err
				}
				total += icv
			}
			key := fmt.Sprintf("GUPT-tight eps=%g", eps)
			res.Series[key] = append(res.Series[key], 100*total/trials/baseICV)
		}
	}
	return res, nil
}

// Table renders the figure's series.
func (r *Fig5Result) Table() string {
	header := []string{"iterations"}
	header = append(header, r.SeriesOrder...)
	t := newTable(header...)
	for i, iters := range r.Iterations {
		row := []string{fmt.Sprintf("%d", iters)}
		for _, s := range r.SeriesOrder {
			row = append(row, f(r.Series[s][i]))
		}
		t.addRow(row...)
	}
	return "Figure 5: normalized ICV vs k-means iteration count (PINQ splits budget per iteration; GUPT does not)\n" + t.String()
}
