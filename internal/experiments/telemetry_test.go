package experiments

import (
	"strings"
	"testing"
)

func TestTelemetryOverheadShape(t *testing.T) {
	r, err := TelemetryOverhead(quick)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"untraced", "metrics", "traced"}
	if len(r.Configs) != len(want) {
		t.Fatalf("Configs = %v, want %v", r.Configs, want)
	}
	for i, name := range want {
		if r.Configs[i] != name {
			t.Errorf("Configs[%d] = %q, want %q", i, r.Configs[i], name)
		}
		if r.NsPerQuery[i] <= 0 {
			t.Errorf("NsPerQuery[%s] = %v, want > 0", name, r.NsPerQuery[i])
		}
	}
	if r.OverheadPct[0] != 0 {
		t.Errorf("baseline overhead = %v, want 0", r.OverheadPct[0])
	}
	if !strings.Contains(r.Table(), "Telemetry overhead") {
		t.Error("Table() missing caption")
	}
	if !strings.HasPrefix(r.CSV(), "config,ns_per_query,overhead_pct\n") {
		t.Errorf("CSV header wrong: %q", r.CSV())
	}
}
