package experiments

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/workload"
)

// FanoutPoint is one worker-count on the scaling curve.
type FanoutPoint struct {
	// Workers is the fleet size; ConnsPerWorker the per-worker pipeline
	// width, so Workers*ConnsPerWorker blocks are in flight at once.
	Workers        int
	ConnsPerWorker int
	// Queries is how many full DP queries the point timed.
	Queries int
	// QPS and BlocksPerSec are the point's throughput; MeanQueryMillis the
	// mean end-to-end latency.
	QPS             float64
	BlocksPerSec    float64
	MeanQueryMillis float64
	// P99BucketMillis is the p99 latency snapped up to the next bucket
	// bound — bucketed like every duration this system exports (§6.3):
	// the bench must not normalize publishing raw per-query timings.
	P99BucketMillis int64
}

// FanoutScalingResult measures the sharded block executor and the
// deadline-aware scheduler:
//
//   - Scaling curve: the same quantum-padded query against 1, 2 and 4
//     workers. The timing-defense quantum (§6.3) makes every block cost
//     exactly QuantumMillis of wall time on its worker, so the curve
//     isolates the dispatcher: if sharding works, blocks/sec grows with
//     the fleet; if it serializes, the curve is flat.
//   - Overload: a burst of deadline-carrying queries against a server
//     whose scheduler admits one at a time with a short queue. The
//     sharding claim under overload is *refusal, not lateness*: surplus
//     queries get an immediate RetryAfterMillis hint at zero ε, and no
//     admitted query blows its deadline.
type FanoutScalingResult struct {
	// Rows, BlockSize and Blocks pin the workload; QuantumMillis is the
	// per-block padding that makes the curve deterministic.
	Rows          int
	BlockSize     int
	Blocks        int
	QuantumMillis int64
	Epsilon       float64

	// Curve holds one point per fleet size, ascending.
	Curve []FanoutPoint

	// Overload run: a Burst of queries with DeadlineMillis against
	// MaxConcurrent=1/MaxQueue=2 admission.
	OverloadBurst          int
	OverloadDeadlineMillis int64
	OverloadServed         int
	OverloadRefused        int
	// OverloadRetryHints counts refusals carrying a positive
	// RetryAfterMillis — the acceptance bar is RetryHints == Refused.
	OverloadRetryHints int
	// OverloadLateAnswers counts served queries that finished after their
	// deadline, and OverloadOtherErrors anything that was neither served
	// nor cleanly refused. Both must be zero.
	OverloadLateAnswers int
	OverloadOtherErrors int
}

// Speedup is the blocks/sec ratio between the largest and smallest fleet.
func (r *FanoutScalingResult) Speedup() float64 {
	if len(r.Curve) < 2 || r.Curve[0].BlocksPerSec <= 0 {
		return 0
	}
	return r.Curve[len(r.Curve)-1].BlocksPerSec / r.Curve[0].BlocksPerSec
}

func (r *FanoutScalingResult) Table() string {
	t := newTable("workers", "queries", "qps", "blocks/s", "mean", "p99 bucket")
	for _, p := range r.Curve {
		t.addRow(
			fmt.Sprint(p.Workers),
			fmt.Sprint(p.Queries),
			fmt.Sprintf("%.2f", p.QPS),
			fmt.Sprintf("%.1f", p.BlocksPerSec),
			fmt.Sprintf("%.0fms", p.MeanQueryMillis),
			fmt.Sprintf("<=%dms", p.P99BucketMillis),
		)
	}
	return fmt.Sprintf("Fan-out scaling (%d rows, %d blocks of %d, %dms quantum per block)\n",
		r.Rows, r.Blocks, r.BlockSize, r.QuantumMillis) +
		t.String() +
		fmt.Sprintf("speedup %d->%d workers: %.2fx blocks/s\n",
			r.Curve[0].Workers, r.Curve[len(r.Curve)-1].Workers, r.Speedup()) +
		fmt.Sprintf("overload: %d-query burst, %dms deadlines -> %d served, %d refused (%d with retry hints), %d late, %d other errors\n",
			r.OverloadBurst, r.OverloadDeadlineMillis, r.OverloadServed,
			r.OverloadRefused, r.OverloadRetryHints, r.OverloadLateAnswers, r.OverloadOtherErrors)
}

func (r *FanoutScalingResult) CSV() string {
	var c csvBuilder
	c.row("series", "step", "value")
	for _, p := range r.Curve {
		step := fmt.Sprint(p.Workers)
		c.row("qps", step, fmt.Sprintf("%g", p.QPS))
		c.row("blocks_per_sec", step, fmt.Sprintf("%g", p.BlocksPerSec))
		c.row("mean_query_millis", step, fmt.Sprintf("%g", p.MeanQueryMillis))
		c.row("p99_bucket_millis", step, fmt.Sprint(p.P99BucketMillis))
	}
	c.row("speedup_blocks_per_sec", "0", fmt.Sprintf("%g", r.Speedup()))
	c.row("overload_served", "0", fmt.Sprint(r.OverloadServed))
	c.row("overload_refused", "0", fmt.Sprint(r.OverloadRefused))
	c.row("overload_retry_hints", "0", fmt.Sprint(r.OverloadRetryHints))
	c.row("overload_late_answers", "0", fmt.Sprint(r.OverloadLateAnswers))
	c.row("overload_other_errors", "0", fmt.Sprint(r.OverloadOtherErrors))
	return c.String()
}

// latencyBuckets is the §6.3 export ladder the bench snaps its p99 to.
var latencyBuckets = []int64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

func p99Bucket(latencies []time.Duration) int64 {
	if len(latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	p99 := sorted[(len(sorted)*99)/100].Milliseconds()
	for _, b := range latencyBuckets {
		if p99 <= b {
			return b
		}
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// fanoutFleet starts n in-process worker daemons on loopback listeners.
// Blocks are quantum-padded, so in-process workers still exercise the real
// dispatch pipeline: wire framing, rendezvous routing, per-worker slots.
func fanoutFleet(n int) (addrs []string, closer func(), err error) {
	var workers []*compman.Worker
	var listeners []net.Listener
	closer = func() {
		for _, w := range workers {
			w.Close()
		}
	}
	for i := 0; i < n; i++ {
		w := compman.NewWorker(compman.WorkerConfig{})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closer()
			return nil, nil, err
		}
		go w.Serve(l)
		workers = append(workers, w)
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	_ = listeners
	return addrs, closer, nil
}

// fanoutServer starts a compman server over a fresh census registry,
// backed by the given worker fleet.
func fanoutServer(cfg Config, r *FanoutScalingResult, sc compman.ServerConfig) (*compman.Client, *compman.Server, error) {
	reg := dataset.NewRegistry()
	if _, err := reg.Register("census", workload.CensusIncome(cfg.Seed, r.Rows), dataset.RegisterOptions{
		TotalBudget: 1e6,
		Ranges:      []dp.Range{workload.CensusLooseRange()},
		Seed:        cfg.Seed,
	}); err != nil {
		return nil, nil, err
	}
	srv := compman.NewServer(reg, sc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	go srv.Serve(l)
	client, err := compman.Dial(l.Addr().String())
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return client, srv, nil
}

func fanoutQuery(cfg Config, r *FanoutScalingResult, idx int) *compman.Request {
	return &compman.Request{
		Dataset:       "census",
		Program:       &compman.ProgramSpec{Type: "mean", Col: 0},
		OutputRanges:  []compman.RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:       r.Epsilon,
		BlockSize:     r.BlockSize,
		QuantumMillis: r.QuantumMillis,
		Seed:          cfg.Seed + int64(idx),
	}
}

// FanoutScaling runs the measurement.
func FanoutScaling(cfg Config) (*FanoutScalingResult, error) {
	r := &FanoutScalingResult{
		Rows:          cfg.scale(5000, 2000),
		BlockSize:     100,
		QuantumMillis: int64(cfg.scale(10, 5)),
		Epsilon:       0.02,
	}
	r.Blocks = r.Rows / r.BlockSize
	queries := cfg.scale(5, 2)

	for _, workers := range []int{1, 2, 4} {
		point, err := fanoutPoint(cfg, r, workers, queries)
		if err != nil {
			return nil, fmt.Errorf("%d workers: %w", workers, err)
		}
		r.Curve = append(r.Curve, *point)
	}
	if err := fanoutOverload(cfg, r); err != nil {
		return nil, fmt.Errorf("overload: %w", err)
	}
	return r, nil
}

func fanoutPoint(cfg Config, r *FanoutScalingResult, workers, queries int) (*FanoutPoint, error) {
	addrs, stopFleet, err := fanoutFleet(workers)
	if err != nil {
		return nil, err
	}
	defer stopFleet()
	client, srv, err := fanoutServer(cfg, r, compman.ServerConfig{WorkerAddrs: addrs})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	defer client.Close()

	// One warm-up query primes every worker connection off the clock.
	if _, err := client.Query(fanoutQuery(cfg, r, 1000)); err != nil {
		return nil, err
	}

	var latencies []time.Duration
	start := time.Now()
	for i := 0; i < queries; i++ {
		qs := time.Now()
		resp, err := client.Query(fanoutQuery(cfg, r, i))
		if err != nil {
			return nil, err
		}
		if resp.FailedBlocks != 0 {
			return nil, fmt.Errorf("healthy fleet substituted %d blocks", resp.FailedBlocks)
		}
		latencies = append(latencies, time.Since(qs))
	}
	total := time.Since(start)

	var meanMillis float64
	for _, l := range latencies {
		meanMillis += float64(l.Milliseconds())
	}
	meanMillis /= float64(len(latencies))
	return &FanoutPoint{
		Workers:         workers,
		ConnsPerWorker:  1,
		Queries:         queries,
		QPS:             float64(queries) / total.Seconds(),
		BlocksPerSec:    float64(queries*r.Blocks) / total.Seconds(),
		MeanQueryMillis: meanMillis,
		P99BucketMillis: p99Bucket(latencies),
	}, nil
}

// fanoutOverload drives a concurrent burst with answer-by deadlines at a
// deliberately starved scheduler (one slot, two queue entries). Expected
// split: ~3 served within deadline, the rest refused instantly with a
// retry hint and zero ε — never a late answer.
func fanoutOverload(cfg Config, r *FanoutScalingResult) error {
	addrs, stopFleet, err := fanoutFleet(1)
	if err != nil {
		return err
	}
	defer stopFleet()
	client, srv, err := fanoutServer(cfg, r, compman.ServerConfig{
		WorkerAddrs: addrs,
		Sched:       compman.SchedConfig{MaxConcurrent: 1, MaxQueue: 2},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	client.Close() // each burst query needs its own connection

	// Service time is deterministic: Blocks * Quantum on a single
	// worker/conn. The deadline admits the slot-holder plus a full queue.
	service := time.Duration(int64(r.Blocks)*r.QuantumMillis) * time.Millisecond
	deadline := 7 * service / 2
	r.OverloadDeadlineMillis = deadline.Milliseconds()
	r.OverloadBurst = cfg.scale(10, 6)

	addr := srv.Addr().String()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < r.OverloadBurst; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			cl, err := compman.Dial(addr)
			if err != nil {
				mu.Lock()
				r.OverloadOtherErrors++
				mu.Unlock()
				return
			}
			defer cl.Close()
			req := fanoutQuery(cfg, r, 2000+idx)
			req.DeadlineMillis = deadline.Milliseconds()
			qs := time.Now()
			_, err = cl.Query(req)
			elapsed := time.Since(qs)
			mu.Lock()
			defer mu.Unlock()
			switch qe, ok := err.(*compman.QueryError); {
			case err == nil:
				r.OverloadServed++
				if elapsed > deadline {
					r.OverloadLateAnswers++
				}
			case ok && qe.RetryAfterMillis > 0 && qe.EpsilonCharged == 0:
				r.OverloadRefused++
				r.OverloadRetryHints++
			case ok:
				r.OverloadRefused++
			default:
				r.OverloadOtherErrors++
			}
		}(i)
	}
	wg.Wait()

	if r.OverloadServed == 0 {
		return fmt.Errorf("overload burst served nothing")
	}
	if r.OverloadRefused == 0 {
		return fmt.Errorf("burst of %d never overloaded a 1-slot scheduler", r.OverloadBurst)
	}
	return nil
}
