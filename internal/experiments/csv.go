package experiments

import (
	"fmt"
	"strings"
	"time"
)

// CSV renderings of the figure series, for regenerating the paper's plots
// with any charting tool. Each emitter returns a header row plus one row
// per x-axis point; gupt-bench's -csv flag writes them to files.

type csvBuilder struct{ sb strings.Builder }

func (c *csvBuilder) row(cells ...string) {
	c.sb.WriteString(strings.Join(cells, ","))
	c.sb.WriteByte('\n')
}

func (c *csvBuilder) rowf(vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf("%g", v)
	}
	c.row(cells...)
}

func (c *csvBuilder) String() string { return c.sb.String() }

// CSV renders Figure 3 as epsilon,gupt,nonprivate,singleblock.
func (r *Fig3Result) CSV() string {
	var c csvBuilder
	c.row("epsilon", "gupt_tight_accuracy", "non_private_accuracy", "single_block_accuracy")
	for i, eps := range r.Epsilons {
		c.rowf(eps, r.GUPTTight[i], r.NonPrivate, r.BlockBaseline)
	}
	return c.String()
}

// CSV renders Figure 4 as epsilon,tight,loose (normalized ICV; baseline=100).
func (r *Fig4Result) CSV() string {
	var c csvBuilder
	c.row("epsilon", "gupt_tight_norm_icv", "gupt_loose_norm_icv")
	for i, eps := range r.Epsilons {
		c.rowf(eps, r.GUPTTight[i], r.GUPTLoose[i])
	}
	return c.String()
}

// CSV renders Figure 5 as iterations plus one column per configuration.
func (r *Fig5Result) CSV() string {
	var c csvBuilder
	header := append([]string{"iterations"}, r.SeriesOrder...)
	for i, h := range header {
		header[i] = strings.NewReplacer(" ", "_", "=", "").Replace(h)
	}
	c.row(header...)
	for i, iters := range r.Iterations {
		vals := []float64{float64(iters)}
		for _, s := range r.SeriesOrder {
			vals = append(vals, r.Series[s][i])
		}
		c.rowf(vals...)
	}
	return c.String()
}

// CSV renders Figure 6 as iterations and per-configuration milliseconds.
func (r *Fig6Result) CSV() string {
	var c csvBuilder
	c.row("iterations", "non_private_ms", "gupt_helper_ms", "gupt_loose_ms")
	for i, iters := range r.Iterations {
		c.rowf(float64(iters),
			float64(r.NonPrivate[i])/float64(time.Millisecond),
			float64(r.GUPTHelper[i])/float64(time.Millisecond),
			float64(r.GUPTLoose[i])/float64(time.Millisecond))
	}
	return c.String()
}

// CSV renders Figure 7's full CDFs: one row per query, columns per policy
// (sorted accuracies; row index / count is the cumulative probability).
func (r *Fig7Result) CSV() string {
	var c csvBuilder
	header := append([]string{"cdf_index"}, r.Policies...)
	for i, h := range header {
		header[i] = strings.NewReplacer(" ", "_", "=", "").Replace(h)
	}
	c.row(header...)
	n := len(r.Accuracies[r.Policies[0]])
	for i := 0; i < n; i++ {
		vals := []float64{float64(i+1) / float64(n)}
		for _, p := range r.Policies {
			vals = append(vals, r.Accuracies[p][i])
		}
		c.rowf(vals...)
	}
	return c.String()
}

// CSV renders Figure 8 as policy,queries,normalized_lifetime.
func (r *Fig8Result) CSV() string {
	var c csvBuilder
	c.row("policy", "queries", "normalized_lifetime")
	for _, p := range r.Policies {
		c.row(strings.NewReplacer(" ", "_", "=", "").Replace(p),
			fmt.Sprintf("%d", r.Queries[p]),
			fmt.Sprintf("%g", r.NormalizedLifetime[p]))
	}
	return c.String()
}

// CSV renders Figure 9 as block_size plus one column per query/epsilon.
func (r *Fig9Result) CSV() string {
	var c csvBuilder
	header := append([]string{"block_size"}, r.SeriesOrder...)
	for i, h := range header {
		header[i] = strings.NewReplacer(" ", "_", "=", "").Replace(h)
	}
	c.row(header...)
	for i, beta := range r.BlockSizes {
		vals := []float64{float64(beta)}
		for _, s := range r.SeriesOrder {
			vals = append(vals, r.Series[s][i])
		}
		c.rowf(vals...)
	}
	return c.String()
}
