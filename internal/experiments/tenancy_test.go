package experiments

import (
	"strings"
	"testing"
)

func TestTenancyOverheadShape(t *testing.T) {
	r, err := TenancyOverhead(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.NsPerQueryOff <= 0 || r.NsPerQueryOn <= 0 {
		t.Fatalf("non-positive timing: off %v on %v", r.NsPerQueryOff, r.NsPerQueryOn)
	}
	if r.FloodAdmitted+r.FloodRejected != r.FloodRequests {
		t.Fatalf("flood partition %d+%d != %d", r.FloodAdmitted, r.FloodRejected, r.FloodRequests)
	}
	// The quota covers ~5% of the flood, so the vast majority must bounce.
	if r.FloodRejected <= r.FloodAdmitted {
		t.Errorf("flood rejected %d <= admitted %d; the quota did not bite", r.FloodRejected, r.FloodAdmitted)
	}
	if r.NsPerRejection <= 0 {
		t.Errorf("no rejection timing recorded")
	}
	// Rejections are pre-engine refusals; they must be far cheaper than a
	// full query (block execution, aggregation, noise).
	if r.NsPerRejection >= r.NsPerQueryOn {
		t.Errorf("rejection (%v ns) not cheaper than a full query (%v ns)", r.NsPerRejection, r.NsPerQueryOn)
	}
	// The isolation claim: the flood spends exactly up to the quota.
	if r.FloodSpent > r.FloodQuota+1e-9 {
		t.Errorf("flood spent %v ε, quota was %v", r.FloodSpent, r.FloodQuota)
	}
	if !strings.Contains(r.Table(), "Tenancy front door") {
		t.Error("Table() missing caption")
	}
	if !strings.HasPrefix(r.CSV(), "series,step,value") {
		t.Errorf("CSV header wrong: %q", r.CSV())
	}
}
