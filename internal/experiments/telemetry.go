package experiments

import (
	"context"
	"fmt"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/telemetry"
)

// TelemetryOverheadResult quantifies what the observability layer costs on
// the query hot path: the same mean query is run with instrumentation off,
// with the metrics registry alone, and with full per-query tracing (random
// trace id, stage spans, trace ring) — the configuration guptd runs in.
// The overhead must stay in the noise floor for tracing to be on by
// default, which is the claim BENCH_PR5.json pins.
type TelemetryOverheadResult struct {
	// Rows and Queries pin the workload: Queries timed queries over a
	// Rows-record table per configuration, best of several passes.
	Rows    int
	Queries int
	// Configs lists the measured configurations in run order:
	// untraced, metrics, traced.
	Configs []string
	// NsPerQuery is the per-configuration cost, indexed like Configs.
	NsPerQuery []float64
	// OverheadPct is the percent increase over the untraced baseline,
	// indexed like Configs (0 for the baseline itself).
	OverheadPct []float64
}

// TelemetryOverhead runs the measurement. Each configuration executes the
// same deterministic query sequence; the reported figure is the best of
// three passes, which filters scheduler noise better than an average on a
// loaded machine.
func TelemetryOverhead(cfg Config) (*TelemetryOverheadResult, error) {
	n := cfg.scale(20000, 4000)
	queries := cfg.scale(40, 10)
	const passes = 3

	rng := mathutil.NewRNG(cfg.Seed)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	prog := analytics.Mean{Col: 0}
	spec := core.RangeSpec{Mode: core.ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}}

	// perQuery returns the options for one query under the configuration,
	// and an after-hook mirroring what the server does once a query
	// settles (publishing the trace to the ring buffer).
	type setup struct {
		name     string
		perQuery func(q int) (core.Options, func())
	}
	baseOpts := func(q int) core.Options {
		return core.Options{Epsilon: 0.5, Seed: cfg.Seed + int64(q), Parallelism: 1}
	}
	metricsReg := telemetry.NewRegistry()
	tracedReg := telemetry.NewRegistry()
	ring := telemetry.NewTraceBuffer(telemetry.DefaultTraceBufferSize)
	configs := []setup{
		{"untraced", func(q int) (core.Options, func()) {
			return baseOpts(q), func() {}
		}},
		{"metrics", func(q int) (core.Options, func()) {
			o := baseOpts(q)
			o.Metrics = metricsReg
			return o, func() {}
		}},
		{"traced", func(q int) (core.Options, func()) {
			o := baseOpts(q)
			o.Metrics = tracedReg
			tr := telemetry.NewTrace(tracedReg, telemetry.NewTraceID(), "bench")
			o.Trace = tr
			return o, func() { ring.Add(tr, "ok") }
		}},
	}

	res := &TelemetryOverheadResult{Rows: n, Queries: queries}
	for _, sc := range configs {
		// One untimed pass first: without it the first configuration pays
		// all the cache/allocator warmup and the comparison skews.
		for q := 0; q < queries; q++ {
			opts, done := sc.perQuery(q)
			if _, err := core.Run(context.Background(), prog, rows, spec, opts); err != nil {
				return nil, fmt.Errorf("telemetry overhead warmup %s: %w", sc.name, err)
			}
			done()
		}
		best := time.Duration(1<<63 - 1)
		for p := 0; p < passes; p++ {
			start := time.Now()
			for q := 0; q < queries; q++ {
				opts, done := sc.perQuery(q)
				if _, err := core.Run(context.Background(), prog, rows, spec, opts); err != nil {
					return nil, fmt.Errorf("telemetry overhead %s: %w", sc.name, err)
				}
				done()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		res.Configs = append(res.Configs, sc.name)
		res.NsPerQuery = append(res.NsPerQuery, float64(best.Nanoseconds())/float64(queries))
	}
	base := res.NsPerQuery[0]
	for _, ns := range res.NsPerQuery {
		res.OverheadPct = append(res.OverheadPct, 100*(ns-base)/base)
	}
	return res, nil
}

// Table renders the measurement.
func (r *TelemetryOverheadResult) Table() string {
	t := newTable("configuration", "per-query", "overhead")
	for i, name := range r.Configs {
		t.addRow(name,
			time.Duration(r.NsPerQuery[i]).Round(time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%", r.OverheadPct[i]))
	}
	return fmt.Sprintf("Telemetry overhead on the query hot path (%d queries over %d rows, best of 3)\n",
		r.Queries, r.Rows) + t.String()
}

// CSV renders the series as config,ns_per_query,overhead_pct.
func (r *TelemetryOverheadResult) CSV() string {
	var c csvBuilder
	c.row("config", "ns_per_query", "overhead_pct")
	for i, name := range r.Configs {
		c.row(name, fmt.Sprintf("%g", r.NsPerQuery[i]), fmt.Sprintf("%g", r.OverheadPct[i]))
	}
	return c.String()
}
