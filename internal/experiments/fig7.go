package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gupt/internal/aging"
	"gupt/internal/analytics"
	"gupt/internal/core"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/workload"
)

// fig7BlockCount fixes the paper's "pre-determined block size" for the
// census average-age query of Figs. 7 and 8 via a constant block *count*,
// so quick and full runs have the same noise geometry: β = n/300.
const fig7BlockCount = 300

func fig7BlockSize(n int) int {
	beta := n / fig7BlockCount
	if beta < 1 {
		beta = 1
	}
	return beta
}

// Fig7Result reproduces Figure 7: the CDF of result accuracy for the
// average-age query on the census dataset under three budget policies —
// constant ε = 1, constant ε = 0.3, and the variable ε chosen by GUPT to
// meet "90% accuracy for 90% of results" from the aged sample.
type Fig7Result struct {
	// Accuracies[policy][q] is query q's accuracy 1 − |out−truth|/truth,
	// sorted ascending (so index/len is the CDF).
	Accuracies map[string][]float64
	Policies   []string
	// VariableEpsilon is the ε the accuracy goal translated to.
	VariableEpsilon float64
	// ExpectedAccuracy is the goal line (0.9).
	ExpectedAccuracy float64
	// TrueMean is the dataset's true average age.
	TrueMean float64
}

// Fig7 runs the experiment: many repetitions of the same query under each
// policy, accuracy recorded per repetition.
func Fig7(cfg Config) (*Fig7Result, error) {
	n := cfg.scale(workload.CensusRows, 6000)
	data := workload.CensusIncome(cfg.Seed, n)

	// 10% of the dataset is treated as fully aged (the paper's setup).
	aged, private := data.Split(mathutil.NewRNG(cfg.Seed), 0.1)
	rows := private.Rows()
	truth := mathutil.Mean(private.Column(0))

	goal := aging.AccuracyGoal{Rho: 0.9, Confidence: 0.9}
	ranges := []dp.Range{workload.CensusLooseRange()}
	beta := fig7BlockSize(len(rows))
	est, err := aging.EstimateEpsilon(analytics.Mean{Col: 0}, aged.Rows(),
		len(rows), beta, ranges, goal)
	if err != nil {
		return nil, fmt.Errorf("fig7: epsilon estimation: %w", err)
	}

	trials := cfg.scale(100, 20)
	res := &Fig7Result{
		Accuracies:       make(map[string][]float64),
		Policies:         []string{"constant eps=1", "constant eps=0.3", "variable eps"},
		VariableEpsilon:  est.Epsilon,
		ExpectedAccuracy: goal.Rho,
		TrueMean:         truth,
	}
	policies := map[string]float64{
		"constant eps=1":   1,
		"constant eps=0.3": 0.3,
		"variable eps":     est.Epsilon,
	}
	for name, eps := range policies {
		accs := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			out, err := core.Run(context.Background(), analytics.Mean{Col: 0}, rows,
				core.RangeSpec{Mode: core.ModeTight, Output: ranges},
				core.Options{Epsilon: eps, Seed: cfg.Seed + int64(trial), BlockSize: beta})
			if err != nil {
				return nil, fmt.Errorf("fig7: %s trial %d: %w", name, trial, err)
			}
			acc := 1 - math.Abs(out.Output[0]-truth)/truth
			if acc < 0 {
				acc = 0
			}
			accs = append(accs, acc)
		}
		sort.Float64s(accs)
		res.Accuracies[name] = accs
	}
	return res, nil
}

// MeetsGoal reports the fraction of a policy's queries meeting the expected
// accuracy.
func (r *Fig7Result) MeetsGoal(policy string) float64 {
	accs := r.Accuracies[policy]
	if len(accs) == 0 {
		return 0
	}
	met := 0
	for _, a := range accs {
		if a >= r.ExpectedAccuracy {
			met++
		}
	}
	return float64(met) / float64(len(accs))
}

// Table renders CDF summary points per policy.
func (r *Fig7Result) Table() string {
	t := newTable("policy", "epsilon", "p10 accuracy", "median accuracy", "p90 accuracy", "frac >= goal")
	for _, p := range r.Policies {
		accs := r.Accuracies[p]
		eps := map[string]float64{
			"constant eps=1": 1, "constant eps=0.3": 0.3, "variable eps": r.VariableEpsilon,
		}[p]
		t.addRow(p, f(eps),
			f(mathutil.QuantileSorted(accs, 0.1)),
			f(mathutil.QuantileSorted(accs, 0.5)),
			f(mathutil.QuantileSorted(accs, 0.9)),
			f(r.MeetsGoal(p)))
	}
	return fmt.Sprintf("Figure 7: CDF of query accuracy under budget policies (goal: %.0f%% accuracy for 90%% of queries)\n%s",
		100*r.ExpectedAccuracy, t.String())
}
