package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"

	"gupt/internal/baseline/airavat"
	"gupt/internal/baseline/pinq"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

// The two remaining side channels of Table 1 as quantified experiments,
// complementing TimingAttack: the privacy-budget channel (GUPT closes it,
// PINQ does not) and the state channel (GUPT's subprocess chambers close
// it, Airavat's in-process mappers do not).

// BudgetAttackResult quantifies the privacy-budget side channel: a
// malicious analyst burns remaining budget conditionally on a secret
// predicate, then reads the budget level. The leak is the budget gap
// between runs on datasets where the predicate is true versus false.
type BudgetAttackResult struct {
	// PINQLeak is the remaining-budget gap the attack extracts from the
	// mini-PINQ baseline, in ε units (nonzero ⇒ one bit leaked per query).
	PINQLeak float64
	// GUPTConditionalSpendPossible reports whether analyst code could
	// express the same conditional spend against GUPT at all.
	GUPTConditionalSpendPossible bool
}

// BudgetAttack runs the measurement.
func BudgetAttack(cfg Config) (*BudgetAttackResult, error) {
	rows := func(secret bool) []mathutil.Vec {
		v := 10.0
		if secret {
			v = 90
		}
		out := make([]mathutil.Vec, 50)
		for i := range out {
			out[i] = mathutil.Vec{v}
		}
		return out
	}

	// Against PINQ: the analyst program holds the Queryable — it can query,
	// branch on the (noisy) answer, and burn budget.
	attack := func(q *pinq.Queryable) (float64, error) {
		avg, err := q.NoisyAverage(0, dp.Range{Lo: 0, Hi: 100}, 5)
		if err != nil {
			return 0, err
		}
		if avg > 50 {
			if _, err := q.NoisyCount(q.Remaining()); err != nil {
				return 0, err
			}
		}
		return q.Remaining(), nil
	}
	withSecret, err := attack(pinq.NewQueryable(rows(true), 10, cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("budget attack (secret): %w", err)
	}
	without, err := attack(pinq.NewQueryable(rows(false), 10, cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("budget attack (no secret): %w", err)
	}

	// Against GUPT the attack is not expressible: analyst programs receive
	// only data blocks inside chambers — no ledger handle, no query API —
	// and the accountant lives on the platform. This is a structural
	// property of the interfaces (analytics.Program sees []Vec, nothing
	// else), recorded here as the experiment's second row.
	return &BudgetAttackResult{
		PINQLeak:                     without - withSecret,
		GUPTConditionalSpendPossible: false,
	}, nil
}

// Table renders the measurement.
func (r *BudgetAttackResult) Table() string {
	t := newTable("system", "budget-level leak per query")
	t.addRow("PINQ (analyst-held ledger)", fmt.Sprintf("%.3g eps", r.PINQLeak))
	gupt := "attack not expressible (platform-held ledger)"
	if r.GUPTConditionalSpendPossible {
		gupt = "VULNERABLE"
	}
	t.addRow("GUPT", gupt)
	return "Privacy-budget attack (§6.2): conditional budget burn leaks one bit per query\nagainst PINQ; GUPT's programs never hold the ledger\n" + t.String()
}

// StateAttackResult quantifies the state side channel: a program processes
// two "queries" and tries to carry one bit from the first to the second
// through ambient state (a file marker).
type StateAttackResult struct {
	// AiravatLeaked reports whether the in-process mapper carried state
	// across records (the attack the paper says succeeds against Airavat).
	AiravatLeaked bool
	// GUPTLeaked reports whether the marker survived between subprocess
	// chamber executions (it must not).
	GUPTLeaked bool
}

// StateAttack runs the measurement. appPath/appArgs/appEnv identify an
// executable speaking the chamber protocol that writes a marker in its
// scratch space and reports whether a previous marker was present
// (`gupt-app -program statecheck`, or the test binary re-executed in state
// mode; any conforming binary works).
func StateAttack(cfg Config, appPath string, appArgs, appEnv []string) (*StateAttackResult, error) {
	res := &StateAttackResult{}

	// Against Airavat: the mapper closure shares the process; a captured
	// variable carries state across records.
	leaked := false
	carried := 0.0
	p := airavat.NewPlatform([]mathutil.Vec{{1}, {2}, {3}}, 100, cfg.Seed)
	_, err := p.SumReduce(airavat.Job{
		Map: func(r mathutil.Vec) []float64 {
			if carried > 0 {
				leaked = true // saw state from an earlier record
			}
			carried += r[0]
			return []float64{0}
		},
		Outputs: 1,
		Range:   dp.Range{Lo: 0, Hi: 1},
		Epsilon: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("state attack (airavat): %w", err)
	}
	res.AiravatLeaked = leaked

	// Against GUPT: two consecutive subprocess-chamber executions of a
	// marker-writing program; the second must not find the first's marker.
	scratch, err := os.MkdirTemp("", "gupt-state-attack-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	chamber := &sandbox.Subprocess{Path: appPath, Args: appArgs, ScratchRoot: scratch, ExtraEnv: appEnv}
	block := []mathutil.Vec{{1}}
	for run := 0; run < 2; run++ {
		out, err := chamber.Execute(context.Background(), block)
		if err != nil {
			return nil, fmt.Errorf("state attack (gupt run %d): %w", run, err)
		}
		if len(out) != 1 {
			return nil, errors.New("state attack app returned wrong arity")
		}
		if run > 0 && out[0] != 0 {
			res.GUPTLeaked = true
		}
	}
	// Belt and braces: nothing survives in the scratch root either.
	entries, err := os.ReadDir(scratch)
	if err != nil {
		return nil, err
	}
	if len(entries) != 0 {
		res.GUPTLeaked = true
	}
	return res, nil
}

// Table renders the measurement.
func (r *StateAttackResult) Table() string {
	t := newTable("system", "state carried across executions")
	leak := func(b bool) string {
		if b {
			return "YES (attack succeeds)"
		}
		return "no"
	}
	t.addRow("Airavat (in-process mapper)", leak(r.AiravatLeaked))
	t.addRow("GUPT (subprocess chambers)", leak(r.GUPTLeaked))
	return "State attack (§6.2): a program tries to carry one bit between executions\n" + t.String()
}
