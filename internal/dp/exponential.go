package dp

import (
	"fmt"

	"gupt/internal/mathutil"
)

// Exponential runs the exponential mechanism of McSherry and Talwar over a
// finite candidate set: it returns the index of a candidate sampled with
// probability proportional to exp(ε·u(i) / (2·sensitivity)), where u(i) =
// utilities[i] and sensitivity bounds how much any single record can change
// any candidate's utility.
//
// Sampling uses the Gumbel-max trick, so very large or very negative scaled
// utilities do not overflow.
func Exponential(rng *mathutil.RNG, utilities []float64, sensitivity, eps float64) (int, error) {
	if err := checkEpsilon(eps); err != nil {
		return 0, err
	}
	if len(utilities) == 0 {
		return 0, fmt.Errorf("dp: exponential mechanism with no candidates")
	}
	if !(sensitivity > 0) {
		return 0, fmt.Errorf("dp: exponential mechanism sensitivity must be positive, got %v", sensitivity)
	}
	logits := make([]float64, len(utilities))
	for i, u := range utilities {
		logits[i] = eps * u / (2 * sensitivity)
	}
	return rng.GumbelCategorical(logits), nil
}
