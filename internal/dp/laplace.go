package dp

import (
	"fmt"
	"math"

	"gupt/internal/mathutil"
)

// Laplace releases value + Lap(sensitivity/eps). It is the basic
// ε-differentially private release of a scalar whose global sensitivity is
// `sensitivity`.
func Laplace(rng *mathutil.RNG, value, sensitivity, eps float64) (float64, error) {
	if err := checkEpsilon(eps); err != nil {
		return 0, err
	}
	if sensitivity < 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return 0, fmt.Errorf("dp: invalid sensitivity %v", sensitivity)
	}
	return value + rng.Laplace(sensitivity/eps), nil
}

// LaplaceVec releases each component of value perturbed with independent
// Laplace noise of scale sensitivities[i]/eps. Component i's sensitivity is
// sensitivities[i]; the call consumes a single ε because each record affects
// each component through its own sensitivity bound (the caller is
// responsible for splitting ε across dimensions if the bounds are joint —
// see SplitUniform and the Theorem-1 helpers in split.go).
func LaplaceVec(rng *mathutil.RNG, value mathutil.Vec, sensitivities []float64, eps float64) (mathutil.Vec, error) {
	if err := checkEpsilon(eps); err != nil {
		return nil, err
	}
	if len(value) != len(sensitivities) {
		return nil, fmt.Errorf("dp: %d values but %d sensitivities", len(value), len(sensitivities))
	}
	// Validate every sensitivity before drawing, then draw the whole batch
	// under one generator lock (RNG.LaplaceFill). The draw sequence is
	// bit-identical to calling Laplace per dimension in index order, so the
	// DP guarantees (and regression fixtures) proven against the scalar
	// path transfer unchanged.
	scales := make([]float64, len(sensitivities))
	for i, s := range sensitivities {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("dp: invalid sensitivity %v at dimension %d", s, i)
		}
		scales[i] = s / eps
	}
	out := make(mathutil.Vec, len(value))
	rng.LaplaceFill(out, scales)
	for i, v := range value {
		out[i] += v
	}
	return out, nil
}

// NoisyCount releases the count n under ε-DP (sensitivity 1).
func NoisyCount(rng *mathutil.RNG, n int, eps float64) (float64, error) {
	return Laplace(rng, float64(n), 1, eps)
}

// NoisySum releases the sum of xs, each clamped to r, under ε-DP. The
// sensitivity of a clamped sum is max(|Lo|, |Hi|).
func NoisySum(rng *mathutil.RNG, xs []float64, r Range, eps float64) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	var sum float64
	for _, x := range xs {
		sum += r.Clamp(x)
	}
	sens := math.Max(math.Abs(r.Lo), math.Abs(r.Hi))
	return Laplace(rng, sum, sens, eps)
}

// NoisyAvg releases the mean of xs, each clamped to r, under ε-DP using the
// known (public) count len(xs). Sensitivity of the mean is Width/n.
func NoisyAvg(rng *mathutil.RNG, xs []float64, r Range, eps float64) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if len(xs) == 0 {
		return 0, fmt.Errorf("dp: NoisyAvg of empty slice")
	}
	var sum float64
	for _, x := range xs {
		sum += r.Clamp(x)
	}
	n := float64(len(xs))
	return Laplace(rng, sum/n, r.Width()/n, eps)
}
