package dp

import "fmt"

// BudgetSplit describes how a query's total ε is divided between GUPT's
// range-estimation phase and the sample-and-aggregate release, per dimension.
// These are the three cases of the paper's Theorem 1.
type BudgetSplit struct {
	// RangeEps is the ε spent per range-estimation invocation (one per input
	// dimension for GUPT-helper, one per output dimension for GUPT-loose,
	// zero for GUPT-tight).
	RangeEps float64
	// AggregateEps is the ε spent per output dimension by the
	// sample-and-aggregate Laplace release.
	AggregateEps float64
}

// SplitTight returns the Theorem 1 split for GUPT-tight: the analyst
// supplied exact output ranges, so the full budget goes to aggregation,
// ε/p per output dimension.
func SplitTight(eps float64, outputDims int) (BudgetSplit, error) {
	if err := checkEpsilon(eps); err != nil {
		return BudgetSplit{}, err
	}
	if outputDims <= 0 {
		return BudgetSplit{}, fmt.Errorf("dp: outputDims must be positive, got %d", outputDims)
	}
	return BudgetSplit{RangeEps: 0, AggregateEps: eps / float64(outputDims)}, nil
}

// SplitLoose returns the Theorem 1 split for GUPT-loose: per output
// dimension, ε/(2p) for the DP percentile estimation over block outputs and
// ε/(2p) for aggregation.
func SplitLoose(eps float64, outputDims int) (BudgetSplit, error) {
	if err := checkEpsilon(eps); err != nil {
		return BudgetSplit{}, err
	}
	if outputDims <= 0 {
		return BudgetSplit{}, fmt.Errorf("dp: outputDims must be positive, got %d", outputDims)
	}
	p := float64(outputDims)
	return BudgetSplit{RangeEps: eps / (2 * p), AggregateEps: eps / (2 * p)}, nil
}

// SplitHelper returns the Theorem 1 split for GUPT-helper: ε/(2k) per input
// dimension for the DP percentile estimation over raw inputs, and ε/(2p)
// per output dimension for aggregation.
func SplitHelper(eps float64, inputDims, outputDims int) (BudgetSplit, error) {
	if err := checkEpsilon(eps); err != nil {
		return BudgetSplit{}, err
	}
	if inputDims <= 0 || outputDims <= 0 {
		return BudgetSplit{}, fmt.Errorf("dp: dims must be positive, got k=%d p=%d", inputDims, outputDims)
	}
	return BudgetSplit{
		RangeEps:     eps / (2 * float64(inputDims)),
		AggregateEps: eps / (2 * float64(outputDims)),
	}, nil
}

// SplitUniform divides eps evenly across n uses.
func SplitUniform(eps float64, n int) (float64, error) {
	if err := checkEpsilon(eps); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("dp: cannot split budget across %d uses", n)
	}
	return eps / float64(n), nil
}
