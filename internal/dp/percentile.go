package dp

import (
	"fmt"
	"math"
	"sort"

	"gupt/internal/mathutil"
)

// Percentile computes an ε-differentially private estimate of the p-th
// percentile (p in (0,1)) of xs, which are first clamped to the public range
// r. This is the exponential-mechanism quantile estimator of Smith
// (STOC '11) that GUPT uses for its output-range estimation (paper §4.1):
//
//	sort and clamp the data, bracket it with the public endpoints, and
//	sample the gap between consecutive order statistics with probability
//	proportional to gapLength · exp(-ε·|gapRank − p·n| / 2),
//
// then return a uniform draw from the chosen gap. The rank utility has
// sensitivity 1, so the release is ε-DP.
func Percentile(rng *mathutil.RNG, xs []float64, p float64, r Range, eps float64) (float64, error) {
	if err := checkEpsilon(eps); err != nil {
		return 0, err
	}
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("dp: percentile p must be in (0,1), got %v", p)
	}
	if len(xs) == 0 {
		return 0, fmt.Errorf("dp: percentile of empty data")
	}

	n := len(xs)
	// z has n+2 entries: the public lower bound, the clamped sorted data,
	// and the public upper bound. Gap i is [z[i], z[i+1]] for i in 0..n.
	z := make([]float64, 0, n+2)
	z = append(z, r.Lo)
	for _, x := range xs {
		z = append(z, r.Clamp(x))
	}
	sort.Float64s(z[1:])
	z = append(z, r.Hi)

	target := p * float64(n)
	logits := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		gap := z[i+1] - z[i]
		if gap <= 0 {
			logits[i] = math.Inf(-1)
			continue
		}
		logits[i] = math.Log(gap) - eps*math.Abs(float64(i)-target)/2
	}
	// All gaps empty means every point (and the bounds) coincide; the only
	// possible answer is that single value.
	allEmpty := true
	for _, l := range logits {
		if !math.IsInf(l, -1) {
			allEmpty = false
			break
		}
	}
	if allEmpty {
		return r.Lo, nil
	}

	idx := rng.GumbelCategorical(logits)
	lo, hi := z[idx], z[idx+1]
	return lo + rng.Float64()*(hi-lo), nil
}

// PercentileRange privately estimates the [pLo-th, pHi-th] percentile
// interval of xs within the public range r, spending eps/2 on each endpoint
// (total ε). This is the range-estimation subroutine used by GUPT-loose and
// GUPT-helper; the paper's default pair is (0.25, 0.75), with wider pairs
// (e.g. 0.10, 0.90) appropriate when there are more samples (§4.1). If
// noise inverts the endpoints they are swapped, and the result is always a
// sub-interval of r.
func PercentileRange(rng *mathutil.RNG, xs []float64, pLo, pHi float64, r Range, eps float64) (Range, error) {
	if err := checkEpsilon(eps); err != nil {
		return Range{}, err
	}
	if !(pLo < pHi) {
		return Range{}, fmt.Errorf("dp: percentile pair (%v, %v) must be increasing", pLo, pHi)
	}
	lo, err := Percentile(rng, xs, pLo, r, eps/2)
	if err != nil {
		return Range{}, err
	}
	hi, err := Percentile(rng, xs, pHi, r, eps/2)
	if err != nil {
		return Range{}, err
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return Range{Lo: lo, Hi: hi}, nil
}

// InterquartileRange is PercentileRange at the paper's default (25th, 75th)
// pair.
func InterquartileRange(rng *mathutil.RNG, xs []float64, r Range, eps float64) (Range, error) {
	return PercentileRange(rng, xs, 0.25, 0.75, r, eps)
}
