package dp

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBudgetExhausted is returned by Accountant.Spend when a charge would
// push cumulative spend past the total budget. Queries that fail with this
// error consume nothing.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// Charge records one debit against a privacy budget.
type Charge struct {
	Label   string    // what the budget was spent on (query name, subroutine)
	Epsilon float64   // amount of ε consumed
	At      time.Time // wall-clock time of the debit
}

// Accountant tracks cumulative ε consumption against a fixed total budget
// under sequential composition (the composition lemma of Dwork et al. cited
// as [5] in the paper: ε_total = Σ ε_i). It is safe for concurrent use.
//
// The accountant is the platform-side defense against privacy-budget
// attacks (paper §6.2): analyst code never holds the ledger, so a malicious
// query cannot spend budget conditionally on the data it sees.
//
// Lock ordering: mu is a leaf lock. Accountant methods call into nothing
// that locks, so any caller may invoke them while holding its own locks —
// the durable ledger (internal/ledger) relies on this, calling Spend while
// holding its ledger mutex so the exhaustion check-then-refund pair is
// serialized under that lock (Registry.mu → Ledger.mu → Accountant.mu).
// Never acquire another system lock from inside this package.
type Accountant struct {
	mu    sync.Mutex
	total float64
	spent float64
	log   []Charge
}

// NewAccountant returns an accountant with the given total ε budget.
// A non-positive total yields an accountant that rejects every charge.
func NewAccountant(total float64) *Accountant {
	if total < 0 {
		total = 0
	}
	return &Accountant{total: total}
}

// Total returns the lifetime budget.
func (a *Accountant) Total() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Spent returns the cumulative ε consumed so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the budget still available.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.spent
}

// Spend atomically debits eps from the budget, recording the charge under
// label. It returns ErrBudgetExhausted (wrapped with the shortfall) if the
// debit would exceed the total; in that case nothing is consumed.
func (a *Accountant) Spend(label string, eps float64) error {
	if err := checkEpsilon(eps); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// A small relative tolerance absorbs float accumulation error when many
	// exact fractions of the budget are spent back-to-back.
	const slack = 1e-9
	if a.spent+eps > a.total*(1+slack) {
		return fmt.Errorf("%w: requested %v, remaining %v", ErrBudgetExhausted, eps, a.total-a.spent)
	}
	a.spent += eps
	a.log = append(a.log, Charge{Label: label, Epsilon: eps, At: time.Now()})
	return nil
}

// History returns a copy of all charges in order.
func (a *Accountant) History() []Charge {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Charge(nil), a.log...)
}

// Queries returns the number of successful charges.
func (a *Accountant) Queries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.log)
}
